//! A certificate authority, standing in for Fabric-CA (paper Sec. 4.1).
//!
//! Each organization runs one CA. The CA holds a signing key, publishes a
//! self-signed root certificate, and issues end-entity certificates for
//! clients, peers, orderers, and admins of its organization. Serial numbers
//! are unique per CA and drive the revocation list maintained by
//! [`crate::msp::Msp`].

use parking_lot::Mutex;

use fabric_crypto::{SigningKey, VerifyingKey};

use crate::cert::{Certificate, Role};

/// A certificate authority for one organization.
pub struct CertificateAuthority {
    name: String,
    msp_id: String,
    key: SigningKey,
    root: Certificate,
    next_serial: Mutex<u64>,
}

impl CertificateAuthority {
    /// Creates a CA with a key derived deterministically from `seed`
    /// (deterministic setups make whole-network tests reproducible).
    pub fn new(name: impl Into<String>, msp_id: impl Into<String>, seed: &[u8]) -> Self {
        let name = name.into();
        let msp_id = msp_id.into();
        let key = SigningKey::from_seed(seed);
        let root = Certificate {
            subject: name.clone(),
            msp_id: msp_id.clone(),
            role: Role::Authority,
            public_key: key.verifying_key().to_sec1().to_vec(),
            issuer: name.clone(),
            serial: 0,
            signature: vec![],
        }
        .sign_with(&key);
        CertificateAuthority {
            name,
            msp_id,
            key,
            root,
            next_serial: Mutex::new(1),
        }
    }

    /// The CA's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The organization this CA issues for.
    pub fn msp_id(&self) -> &str {
        &self.msp_id
    }

    /// The self-signed root certificate distributed in the channel config.
    pub fn root_cert(&self) -> &Certificate {
        &self.root
    }

    /// The CA's public key.
    pub fn verifying_key(&self) -> &VerifyingKey {
        self.key.verifying_key()
    }

    /// Issues a certificate for `public_key` with the given subject and
    /// role, consuming the next serial number.
    pub fn issue(&self, subject: impl Into<String>, role: Role, public_key: &VerifyingKey) -> Certificate {
        let serial = {
            let mut s = self.next_serial.lock();
            let v = *s;
            *s += 1;
            v
        };
        Certificate {
            subject: subject.into(),
            msp_id: self.msp_id.clone(),
            role,
            public_key: public_key.to_sec1().to_vec(),
            issuer: self.name.clone(),
            serial,
            signature: vec![],
        }
        .sign_with(&self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_self_signed() {
        let ca = CertificateAuthority::new("ca.org1", "Org1MSP", b"seed1");
        ca.root_cert().verify_self_signed().unwrap();
        assert_eq!(ca.msp_id(), "Org1MSP");
        assert_eq!(ca.name(), "ca.org1");
    }

    #[test]
    fn issued_certs_chain_to_root() {
        let ca = CertificateAuthority::new("ca.org1", "Org1MSP", b"seed1");
        let subject = SigningKey::from_seed(b"peer-key");
        let cert = ca.issue("peer0.org1", Role::Peer, subject.verifying_key());
        cert.verify_issued_by(ca.verifying_key()).unwrap();
        assert_eq!(cert.msp_id, "Org1MSP");
        assert_eq!(cert.role, Role::Peer);
    }

    #[test]
    fn serials_increase() {
        let ca = CertificateAuthority::new("ca.org1", "Org1MSP", b"seed1");
        let k = SigningKey::from_seed(b"k");
        let c1 = ca.issue("a", Role::Client, k.verifying_key());
        let c2 = ca.issue("b", Role::Client, k.verifying_key());
        assert!(c2.serial > c1.serial);
        assert_ne!(c1.serial, 0, "serial 0 is reserved for the root");
    }

    #[test]
    fn deterministic_seeding() {
        let ca1 = CertificateAuthority::new("ca", "M", b"same-seed");
        let ca2 = CertificateAuthority::new("ca", "M", b"same-seed");
        assert_eq!(ca1.root_cert(), ca2.root_cert());
    }

    #[test]
    fn cross_ca_rejection() {
        let ca1 = CertificateAuthority::new("ca.org1", "Org1MSP", b"s1");
        let ca2 = CertificateAuthority::new("ca.org2", "Org2MSP", b"s2");
        let k = SigningKey::from_seed(b"k");
        let cert = ca1.issue("x", Role::Client, k.verifying_key());
        assert!(cert.verify_issued_by(ca2.verifying_key()).is_err());
    }
}
