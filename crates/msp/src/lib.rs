//! # fabric-msp
//!
//! The membership service provider (paper Sec. 4.1): certificates, CAs,
//! signing identities, revocation, and the per-channel federation of
//! organization MSPs.
//!
//! Fabric's permissioned model rests on every node having an identity
//! issued by its organization's CA; all protocol messages are
//! signature-authenticated. This crate substitutes a compact certificate
//! format (see `DESIGN.md`) for X.509 while preserving the structure:
//! per-org root CAs, end-entity certificates with roles, serial-based
//! revocation, and federation across organizations via [`MspRegistry`].

pub mod ca;
pub mod cert;
pub mod identity;
pub mod msp;

pub use ca::CertificateAuthority;
pub use cert::{CertError, Certificate, Role};
pub use identity::{SigningIdentity, ValidatedIdentity};
pub use msp::{Msp, MspRegistry};

/// Convenience: create a CA, issue an identity, and wrap it — the common
/// setup step in tests and examples.
///
/// # Examples
///
/// ```
/// use fabric_msp::{issue_identity, CertificateAuthority, Role};
///
/// let ca = CertificateAuthority::new("ca.org1", "Org1MSP", b"seed");
/// let id = issue_identity(&ca, "peer0.org1", Role::Peer, b"peer0-key");
/// assert_eq!(id.msp_id(), "Org1MSP");
/// ```
pub fn issue_identity(
    ca: &CertificateAuthority,
    subject: &str,
    role: Role,
    key_seed: &[u8],
) -> SigningIdentity {
    let key = fabric_crypto::SigningKey::from_seed(key_seed);
    let cert = ca.issue(subject, role, key.verifying_key());
    SigningIdentity::new(cert, key).expect("key matches the certificate just issued")
}
