//! Compact certificates: the workspace's X.509 substitute.
//!
//! Fabric identities are X.509 certificates issued by per-organization CAs.
//! This module defines a minimal certificate with the fields the system
//! actually consumes — subject, organization (MSP id), role, public key,
//! issuer, serial, validity — signed by the issuing CA with the same ECDSA
//! scheme used everywhere else. Certificates chain at most once: a
//! self-signed root CA certificate signs end-entity certificates.

use fabric_crypto::{SigningKey, VerifyingKey};
use fabric_primitives::wire::{Decoder, Encoder, Wire, WireError};

/// The role a certificate grants its holder within its organization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Role {
    /// An application client that may submit proposals and transactions.
    Client,
    /// A peer that endorses and validates transactions.
    Peer,
    /// An ordering-service node.
    Orderer,
    /// An organization administrator (may sign config updates).
    Admin,
    /// A certificate authority (root certificates only).
    Authority,
}

impl Role {
    /// Stable string name (used by the policy language, e.g.
    /// `Org1MSP.admin`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Role::Client => "client",
            Role::Peer => "peer",
            Role::Orderer => "orderer",
            Role::Admin => "admin",
            Role::Authority => "authority",
        }
    }
}

impl Wire for Role {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            Role::Client => 0,
            Role::Peer => 1,
            Role::Orderer => 2,
            Role::Admin => 3,
            Role::Authority => 4,
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match dec.get_u8()? {
            0 => Role::Client,
            1 => Role::Peer,
            2 => Role::Orderer,
            3 => Role::Admin,
            4 => Role::Authority,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// A certificate binding a subject name, organization, role, and public key,
/// signed by the issuing CA.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Subject common name (e.g. `peer0.org1.example.com`).
    pub subject: String,
    /// The MSP (organization) this identity belongs to.
    pub msp_id: String,
    /// Granted role.
    pub role: Role,
    /// SEC1-encoded P-256 public key (65 bytes uncompressed).
    pub public_key: Vec<u8>,
    /// Issuing CA's name.
    pub issuer: String,
    /// Serial number, unique per issuer (used for revocation).
    pub serial: u64,
    /// CA signature over the to-be-signed encoding.
    pub signature: Vec<u8>,
}

impl Certificate {
    /// Builds the exact bytes the CA signs (everything except the
    /// signature itself).
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_string(&self.subject);
        enc.put_string(&self.msp_id);
        self.role.encode(&mut enc);
        enc.put_bytes(&self.public_key);
        enc.put_string(&self.issuer);
        enc.put_u64(self.serial);
        enc.finish()
    }

    /// Parses the embedded public key.
    pub fn verifying_key(&self) -> Result<VerifyingKey, CertError> {
        VerifyingKey::from_sec1(&self.public_key).map_err(|_| CertError::BadPublicKey)
    }

    /// Verifies this certificate's signature under the issuer key.
    pub fn verify_issued_by(&self, issuer_key: &VerifyingKey) -> Result<(), CertError> {
        let sig = fabric_crypto::Signature::from_bytes(&self.signature)
            .map_err(|_| CertError::BadSignature)?;
        issuer_key
            .verify(&self.tbs_bytes(), &sig)
            .map_err(|_| CertError::BadSignature)
    }

    /// Verifies a self-signed (root) certificate.
    pub fn verify_self_signed(&self) -> Result<(), CertError> {
        if self.role != Role::Authority {
            return Err(CertError::NotAnAuthority);
        }
        let key = self.verifying_key()?;
        self.verify_issued_by(&key)
    }

    /// Signs a to-be-signed certificate with `key`, filling in `signature`.
    pub fn sign_with(mut self, key: &SigningKey) -> Certificate {
        self.signature = key.sign(&self.tbs_bytes()).to_bytes().to_vec();
        self
    }
}

impl Wire for Certificate {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_string(&self.subject);
        enc.put_string(&self.msp_id);
        self.role.encode(enc);
        enc.put_bytes(&self.public_key);
        enc.put_string(&self.issuer);
        enc.put_u64(self.serial);
        enc.put_bytes(&self.signature);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Certificate {
            subject: dec.get_string()?,
            msp_id: dec.get_string()?,
            role: Role::decode(dec)?,
            public_key: dec.get_bytes()?,
            issuer: dec.get_string()?,
            serial: dec.get_u64()?,
            signature: dec.get_bytes()?,
        })
    }
}

/// Certificate validation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertError {
    /// The embedded public key did not parse.
    BadPublicKey,
    /// The issuer signature was malformed or did not verify.
    BadSignature,
    /// A root operation was attempted on a non-authority certificate.
    NotAnAuthority,
    /// The certificate bytes did not decode.
    Malformed,
    /// The certificate's serial is on the revocation list.
    Revoked,
    /// The certificate's MSP is not known to the verifier.
    UnknownMsp,
    /// The certificate's org does not match the claimed MSP id.
    MspMismatch,
}

impl core::fmt::Display for CertError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CertError::BadPublicKey => write!(f, "embedded public key invalid"),
            CertError::BadSignature => write!(f, "issuer signature invalid"),
            CertError::NotAnAuthority => write!(f, "certificate is not a CA root"),
            CertError::Malformed => write!(f, "certificate bytes malformed"),
            CertError::Revoked => write!(f, "certificate revoked"),
            CertError::UnknownMsp => write!(f, "unknown MSP"),
            CertError::MspMismatch => write!(f, "certificate org does not match MSP id"),
        }
    }
}

impl std::error::Error for CertError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca_key() -> SigningKey {
        SigningKey::from_seed(b"test-ca")
    }

    fn subject_key() -> SigningKey {
        SigningKey::from_seed(b"test-subject")
    }

    fn make_cert() -> Certificate {
        Certificate {
            subject: "peer0.org1".into(),
            msp_id: "Org1MSP".into(),
            role: Role::Peer,
            public_key: subject_key().verifying_key().to_sec1().to_vec(),
            issuer: "ca.org1".into(),
            serial: 7,
            signature: vec![],
        }
        .sign_with(&ca_key())
    }

    #[test]
    fn round_trip() {
        let cert = make_cert();
        assert_eq!(Certificate::from_wire(&cert.to_wire()).unwrap(), cert);
    }

    #[test]
    fn verifies_under_issuer() {
        let cert = make_cert();
        cert.verify_issued_by(ca_key().verifying_key()).unwrap();
    }

    #[test]
    fn rejects_wrong_issuer() {
        let cert = make_cert();
        let other = SigningKey::from_seed(b"other-ca");
        assert_eq!(
            cert.verify_issued_by(other.verifying_key()),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn tamper_detected() {
        let mut cert = make_cert();
        cert.subject = "peer0.evil".into();
        assert!(cert.verify_issued_by(ca_key().verifying_key()).is_err());

        let mut cert2 = make_cert();
        cert2.role = Role::Admin;
        assert!(cert2.verify_issued_by(ca_key().verifying_key()).is_err());

        let mut cert3 = make_cert();
        cert3.serial = 8;
        assert!(cert3.verify_issued_by(ca_key().verifying_key()).is_err());
    }

    #[test]
    fn self_signed_root() {
        let key = ca_key();
        let root = Certificate {
            subject: "ca.org1".into(),
            msp_id: "Org1MSP".into(),
            role: Role::Authority,
            public_key: key.verifying_key().to_sec1().to_vec(),
            issuer: "ca.org1".into(),
            serial: 0,
            signature: vec![],
        }
        .sign_with(&key);
        root.verify_self_signed().unwrap();
    }

    #[test]
    fn non_authority_rejected_as_root() {
        let cert = make_cert();
        assert_eq!(cert.verify_self_signed(), Err(CertError::NotAnAuthority));
    }

    #[test]
    fn role_round_trip() {
        for r in [Role::Client, Role::Peer, Role::Orderer, Role::Admin, Role::Authority] {
            assert_eq!(Role::from_wire(&r.to_wire()).unwrap(), r);
        }
        assert!(Role::from_wire(&[9]).is_err());
    }
}
