//! Signing identities: a certificate paired with its private key.
//!
//! Every node (client, peer, orderer) holds a [`SigningIdentity`] and
//! authenticates all its protocol messages with it (paper Sec. 4.1: "all
//! interactions among nodes occur through messages that are authenticated,
//! typically with digital signatures").

use fabric_crypto::{Signature, SigningKey, VerifyingKey};
use fabric_primitives::ids::SerializedIdentity;
use fabric_primitives::wire::Wire;

use crate::cert::{CertError, Certificate, Role};

/// A certificate plus the matching private key; can sign messages.
#[derive(Clone)]
pub struct SigningIdentity {
    cert: Certificate,
    key: SigningKey,
}

impl SigningIdentity {
    /// Pairs a certificate with its private key.
    ///
    /// Returns an error if the key does not match the certificate's
    /// embedded public key.
    pub fn new(cert: Certificate, key: SigningKey) -> Result<Self, CertError> {
        let cert_key = cert.verifying_key()?;
        if &cert_key != key.verifying_key() {
            return Err(CertError::BadPublicKey);
        }
        Ok(SigningIdentity { cert, key })
    }

    /// The certificate.
    pub fn cert(&self) -> &Certificate {
        &self.cert
    }

    /// The MSP id of this identity's organization.
    pub fn msp_id(&self) -> &str {
        &self.cert.msp_id
    }

    /// The role granted by the certificate.
    pub fn role(&self) -> Role {
        self.cert.role
    }

    /// Signs an arbitrary message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.key.sign(message)
    }

    /// Signs a batch of messages with one amortized modular inversion
    /// (Montgomery's trick over the RFC 6979 nonces). Signatures are
    /// byte-identical to calling [`SigningIdentity::sign`] per message —
    /// the batch endorser and the sequential endorser stay equivalent.
    pub fn sign_batch(&self, messages: &[&[u8]]) -> Vec<Signature> {
        self.key.sign_batch(messages)
    }

    /// The serialized form carried inside protocol messages.
    pub fn serialized(&self) -> SerializedIdentity {
        SerializedIdentity::new(self.cert.msp_id.clone(), self.cert.to_wire())
    }
}

impl core::fmt::Debug for SigningIdentity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "SigningIdentity({} @ {}, {:?})",
            self.cert.subject, self.cert.msp_id, self.cert.role
        )
    }
}

/// A validated remote identity: the parsed certificate and its public key,
/// as produced by [`crate::msp::MspRegistry::validate`].
#[derive(Clone, Debug)]
pub struct ValidatedIdentity {
    /// The parsed certificate.
    pub cert: Certificate,
    /// The certificate's public key, ready for verification.
    pub key: VerifyingKey,
}

impl ValidatedIdentity {
    /// Verifies `signature` (64-byte `r || s`) over `message`.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), CertError> {
        let sig = Signature::from_bytes(signature).map_err(|_| CertError::BadSignature)?;
        self.key
            .verify(message, &sig)
            .map_err(|_| CertError::BadSignature)
    }

    /// The organization of this identity.
    pub fn msp_id(&self) -> &str {
        &self.cert.msp_id
    }

    /// The role of this identity.
    pub fn role(&self) -> Role {
        self.cert.role
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;

    fn identity() -> SigningIdentity {
        let ca = CertificateAuthority::new("ca.org1", "Org1MSP", b"ca-seed");
        let key = SigningKey::from_seed(b"client-key");
        let cert = ca.issue("client1", Role::Client, key.verifying_key());
        SigningIdentity::new(cert, key).unwrap()
    }

    #[test]
    fn mismatched_key_rejected() {
        let ca = CertificateAuthority::new("ca.org1", "Org1MSP", b"ca-seed");
        let key = SigningKey::from_seed(b"client-key");
        let wrong = SigningKey::from_seed(b"wrong-key");
        let cert = ca.issue("client1", Role::Client, key.verifying_key());
        assert!(SigningIdentity::new(cert, wrong).is_err());
    }

    #[test]
    fn sign_and_verify() {
        let id = identity();
        let sig = id.sign(b"payload");
        let validated = ValidatedIdentity {
            key: id.cert().verifying_key().unwrap(),
            cert: id.cert().clone(),
        };
        validated.verify(b"payload", &sig.to_bytes()).unwrap();
        assert!(validated.verify(b"other", &sig.to_bytes()).is_err());
        assert!(validated.verify(b"payload", &[0u8; 64]).is_err());
        assert!(validated.verify(b"payload", b"short").is_err());
    }

    #[test]
    fn serialized_form_carries_cert() {
        let id = identity();
        let ser = id.serialized();
        assert_eq!(ser.msp_id, "Org1MSP");
        let parsed = Certificate::from_wire(&ser.cert_bytes).unwrap();
        assert_eq!(&parsed, id.cert());
    }

    #[test]
    fn accessors() {
        let id = identity();
        assert_eq!(id.msp_id(), "Org1MSP");
        assert_eq!(id.role(), Role::Client);
    }
}
