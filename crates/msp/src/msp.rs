//! The membership service provider and its federation (paper Sec. 4.1).
//!
//! An [`Msp`] validates identities of *one* organization: it holds the
//! org's root certificate and a revocation list, and checks that presented
//! certificates chain to the root. An [`MspRegistry`] federates the MSPs of
//! all organizations on a channel ("each organization issues identities to
//! its own members and every peer recognizes members of all organizations").

use std::collections::{BTreeMap, HashSet};

use parking_lot::RwLock;

use fabric_crypto::VerifyingKey;
use fabric_primitives::config::ChannelConfig;
use fabric_primitives::ids::SerializedIdentity;
use fabric_primitives::wire::Wire;

use crate::cert::{CertError, Certificate, Role};
use crate::identity::ValidatedIdentity;

/// Membership validation for a single organization.
pub struct Msp {
    msp_id: String,
    root: Certificate,
    root_key: VerifyingKey,
    revoked: RwLock<HashSet<u64>>,
    /// Digests of certificates whose chain has already been verified.
    ///
    /// Certificate-chain verification is an ECDSA operation per identity
    /// per message; production Fabric caches validated identities for the
    /// same reason. Revocation is still checked on every validation, so
    /// caching only skips the (immutable) signature chain.
    verified: RwLock<HashSet<fabric_crypto::Digest>>,
}

impl Msp {
    /// Creates an MSP from an organization's root certificate.
    ///
    /// The root must be a valid self-signed authority certificate whose
    /// `msp_id` matches.
    pub fn new(msp_id: impl Into<String>, root: Certificate) -> Result<Self, CertError> {
        let msp_id = msp_id.into();
        root.verify_self_signed()?;
        if root.msp_id != msp_id {
            return Err(CertError::MspMismatch);
        }
        let root_key = root.verifying_key()?;
        Ok(Msp {
            msp_id,
            root,
            root_key,
            revoked: RwLock::new(HashSet::new()),
            verified: RwLock::new(HashSet::new()),
        })
    }

    /// The organization this MSP validates.
    pub fn msp_id(&self) -> &str {
        &self.msp_id
    }

    /// The root certificate.
    pub fn root_cert(&self) -> &Certificate {
        &self.root
    }

    /// Adds a serial number to the revocation list.
    pub fn revoke(&self, serial: u64) {
        self.revoked.write().insert(serial);
    }

    /// Checks whether a serial is revoked.
    pub fn is_revoked(&self, serial: u64) -> bool {
        self.revoked.read().contains(&serial)
    }

    /// Validates a certificate of this organization: correct org, chained
    /// to the root, not revoked, and not itself an authority certificate.
    pub fn validate_cert(&self, cert: &Certificate) -> Result<ValidatedIdentity, CertError> {
        if cert.msp_id != self.msp_id {
            return Err(CertError::MspMismatch);
        }
        if cert.role == Role::Authority {
            // End entities must not present CA certificates.
            return Err(CertError::NotAnAuthority);
        }
        let digest = fabric_crypto::digest(&cert.to_wire());
        if !self.verified.read().contains(&digest) {
            cert.verify_issued_by(&self.root_key)?;
            self.verified.write().insert(digest);
        }
        if self.is_revoked(cert.serial) {
            return Err(CertError::Revoked);
        }
        let key = cert.verifying_key()?;
        Ok(ValidatedIdentity {
            cert: cert.clone(),
            key,
        })
    }
}

/// Federation of the MSPs of every organization on a channel.
///
/// Built from the channel configuration's org list; rebuild it when a
/// configuration update changes membership.
#[derive(Default)]
pub struct MspRegistry {
    msps: BTreeMap<String, Msp>,
}

impl MspRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a registry from a channel configuration, parsing each org's
    /// root certificate.
    pub fn from_channel_config(config: &ChannelConfig) -> Result<Self, CertError> {
        let mut reg = MspRegistry::new();
        for org in &config.orgs {
            let root =
                Certificate::from_wire(&org.root_cert).map_err(|_| CertError::Malformed)?;
            reg.add(Msp::new(org.msp_id.clone(), root)?);
        }
        Ok(reg)
    }

    /// Adds (or replaces) an organization's MSP.
    pub fn add(&mut self, msp: Msp) {
        self.msps.insert(msp.msp_id().to_string(), msp);
    }

    /// Looks up an MSP by id.
    pub fn get(&self, msp_id: &str) -> Option<&Msp> {
        self.msps.get(msp_id)
    }

    /// Lists the registered MSP ids.
    pub fn msp_ids(&self) -> Vec<&str> {
        self.msps.keys().map(|s| s.as_str()).collect()
    }

    /// Validates a serialized identity against its claimed organization.
    ///
    /// This is the single entry point used by peers and orderers to
    /// authenticate remote parties.
    pub fn validate(&self, identity: &SerializedIdentity) -> Result<ValidatedIdentity, CertError> {
        let msp = self.msps.get(&identity.msp_id).ok_or(CertError::UnknownMsp)?;
        let cert =
            Certificate::from_wire(&identity.cert_bytes).map_err(|_| CertError::Malformed)?;
        msp.validate_cert(&cert)
    }

    /// Validates an identity and verifies a signature it made.
    pub fn validate_and_verify(
        &self,
        identity: &SerializedIdentity,
        message: &[u8],
        signature: &[u8],
    ) -> Result<ValidatedIdentity, CertError> {
        let validated = self.validate(identity)?;
        validated.verify(message, signature)?;
        Ok(validated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::identity::SigningIdentity;
    use fabric_crypto::SigningKey;

    fn setup() -> (CertificateAuthority, MspRegistry) {
        let ca = CertificateAuthority::new("ca.org1", "Org1MSP", b"org1-seed");
        let mut reg = MspRegistry::new();
        reg.add(Msp::new("Org1MSP", ca.root_cert().clone()).unwrap());
        (ca, reg)
    }

    fn client(ca: &CertificateAuthority, seed: &[u8]) -> SigningIdentity {
        let key = SigningKey::from_seed(seed);
        let cert = ca.issue("client", Role::Client, key.verifying_key());
        SigningIdentity::new(cert, key).unwrap()
    }

    #[test]
    fn validates_member() {
        let (ca, reg) = setup();
        let id = client(&ca, b"c1");
        let v = reg.validate(&id.serialized()).unwrap();
        assert_eq!(v.msp_id(), "Org1MSP");
        assert_eq!(v.role(), Role::Client);
    }

    #[test]
    fn unknown_msp_rejected() {
        let (ca, reg) = setup();
        let id = client(&ca, b"c1");
        let mut ser = id.serialized();
        ser.msp_id = "GhostMSP".into();
        assert_eq!(reg.validate(&ser).err(), Some(CertError::UnknownMsp));
    }

    #[test]
    fn foreign_org_certificate_rejected() {
        let (_, reg) = setup();
        // Identity issued by a different org's CA but claiming Org1MSP.
        let ca2 = CertificateAuthority::new("ca.org2", "Org1MSP", b"org2-seed");
        let id = client(&ca2, b"c2");
        // Root key differs, so the chain check fails.
        assert_eq!(
            reg.validate(&id.serialized()).err(),
            Some(CertError::BadSignature)
        );
    }

    #[test]
    fn revocation() {
        let (ca, reg) = setup();
        let id = client(&ca, b"c1");
        let serial = id.cert().serial;
        reg.get("Org1MSP").unwrap().revoke(serial);
        assert_eq!(reg.validate(&id.serialized()).err(), Some(CertError::Revoked));
    }

    #[test]
    fn authority_certificate_rejected_as_end_entity() {
        let (ca, reg) = setup();
        let ser = SerializedIdentity::new("Org1MSP", ca.root_cert().to_wire());
        assert_eq!(reg.validate(&ser).err(), Some(CertError::NotAnAuthority));
    }

    #[test]
    fn malformed_cert_bytes_rejected() {
        let (_, reg) = setup();
        let ser = SerializedIdentity::new("Org1MSP", vec![1, 2, 3]);
        assert_eq!(reg.validate(&ser).err(), Some(CertError::Malformed));
    }

    #[test]
    fn validate_and_verify_signature() {
        let (ca, reg) = setup();
        let id = client(&ca, b"c1");
        let sig = id.sign(b"msg").to_bytes();
        reg.validate_and_verify(&id.serialized(), b"msg", &sig)
            .unwrap();
        assert!(reg
            .validate_and_verify(&id.serialized(), b"other", &sig)
            .is_err());
    }

    #[test]
    fn federation_of_two_orgs() {
        let ca1 = CertificateAuthority::new("ca.org1", "Org1MSP", b"s1");
        let ca2 = CertificateAuthority::new("ca.org2", "Org2MSP", b"s2");
        let mut reg = MspRegistry::new();
        reg.add(Msp::new("Org1MSP", ca1.root_cert().clone()).unwrap());
        reg.add(Msp::new("Org2MSP", ca2.root_cert().clone()).unwrap());
        assert_eq!(reg.msp_ids(), vec!["Org1MSP", "Org2MSP"]);

        let id1 = client(&ca1, b"c1");
        let key2 = SigningKey::from_seed(b"c2");
        let cert2 = ca2.issue("peer0", Role::Peer, key2.verifying_key());
        let id2 = SigningIdentity::new(cert2, key2).unwrap();
        assert!(reg.validate(&id1.serialized()).is_ok());
        assert!(reg.validate(&id2.serialized()).is_ok());
    }

    #[test]
    fn registry_from_channel_config() {
        use fabric_primitives::config::{
            BatchConfig, ConsensusType, OrdererConfig, OrgConfig,
        };
        use fabric_primitives::ids::ChannelId;

        let ca = CertificateAuthority::new("ca.org1", "Org1MSP", b"s1");
        let config = ChannelConfig {
            channel: ChannelId::new("ch"),
            sequence: 0,
            orgs: vec![OrgConfig {
                msp_id: "Org1MSP".into(),
                root_cert: ca.root_cert().to_wire(),
            }],
            orderer: OrdererConfig {
                consensus: ConsensusType::Solo,
                addresses: vec!["osn0".into()],
                batch: BatchConfig::default(),
            },
            admin_policy: "ANY(admins)".into(),
            writer_policy: "ANY(members)".into(),
            reader_policy: "ANY(members)".into(),
        };
        let reg = MspRegistry::from_channel_config(&config).unwrap();
        let id = client(&ca, b"c9");
        assert!(reg.validate(&id.serialized()).is_ok());
    }

    #[test]
    fn cached_validation_still_checks_revocation() {
        // The chain-verification cache must not bypass revocation.
        let (ca, reg) = setup();
        let id = client(&ca, b"c1");
        reg.validate(&id.serialized()).unwrap(); // populates the cache
        reg.get("Org1MSP").unwrap().revoke(id.cert().serial);
        assert_eq!(reg.validate(&id.serialized()).err(), Some(CertError::Revoked));
    }

    #[test]
    fn cache_does_not_admit_tampered_certs() {
        let (ca, reg) = setup();
        let id = client(&ca, b"c1");
        reg.validate(&id.serialized()).unwrap();
        // Tampered bytes hash differently, so the cache misses and the
        // chain check runs (and fails).
        let mut cert = id.cert().clone();
        cert.subject = "mallory".into();
        let ser = SerializedIdentity::new("Org1MSP", cert.to_wire());
        assert_eq!(reg.validate(&ser).err(), Some(CertError::BadSignature));
    }

    #[test]
    fn msp_rejects_mismatched_root() {
        let ca = CertificateAuthority::new("ca.org1", "Org1MSP", b"s1");
        assert_eq!(
            Msp::new("OtherMSP", ca.root_cert().clone()).err(),
            Some(CertError::MspMismatch)
        );
    }
}
