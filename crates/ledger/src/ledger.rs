//! The combined ledger: block store + PTM with crash recovery.
//!
//! Commit protocol (paper Sec. 4.4): the block — with its validation flags
//! already recorded in the metadata — is first appended to the block store
//! and flushed; then the PTM applies the state changes of valid
//! transactions together with the `savepoint` in one atomic batch. On open,
//! any gap between the block store height and the savepoint is replayed,
//! which is safe because state commits are idempotent.

use std::sync::Arc;

use fabric_kvstore::backend::Backend;
use fabric_kvstore::{open_state_store, EngineKind, MemBackend, WriteBatch};
use fabric_primitives::block::Block;
use fabric_primitives::ids::{TxId, TxValidationCode};

use crate::blockstore::{BlockStore, TxLocation};
use crate::ptm::{Ptm, TxSimulator};
use crate::LedgerError;

/// A peer's local ledger: the blockchain and the latest state.
pub struct Ledger {
    blocks: BlockStore,
    ptm: Ptm,
}

impl Ledger {
    /// Opens (or creates) a ledger on `backend` with the default
    /// (baseline) storage engine, replaying any blocks whose state changes
    /// were lost in a crash.
    pub fn open(backend: Arc<dyn Backend>, sync_writes: bool) -> Result<Self, LedgerError> {
        Self::open_with(backend, sync_writes, &EngineKind::Baseline)
    }

    /// Opens (or creates) a ledger on `backend` with an explicit storage
    /// engine (baseline single-memtable store, pure in-memory, or the
    /// sharded LSM), replaying any blocks whose state changes were lost in
    /// a crash.
    pub fn open_with(
        backend: Arc<dyn Backend>,
        sync_writes: bool,
        engine: &EngineKind,
    ) -> Result<Self, LedgerError> {
        let blocks = BlockStore::open(backend.clone(), sync_writes)?;
        let store = open_state_store(backend, sync_writes, engine)?;
        let ledger = Ledger {
            blocks,
            ptm: Ptm::new(store),
        };
        ledger.recover()?;
        Ok(ledger)
    }

    /// Opens an in-memory ledger (tests, RAM-disk experiments).
    pub fn in_memory() -> Self {
        Self::open(Arc::new(MemBackend::new()), false).expect("in-memory open cannot fail")
    }

    /// Replays state commits for blocks past the savepoint.
    fn recover(&self) -> Result<(), LedgerError> {
        let height = self.blocks.height();
        if height == 0 {
            return Ok(());
        }
        let start = match self.ptm.savepoint() {
            Some(sp) => sp + 1,
            None => 0,
        };
        // A rebased store holds no blocks below `base`; their state came
        // from the snapshot (whose savepoint is `base - 1`), so replay can
        // never be asked to start below it on an intact ledger.
        let start = start.max(self.blocks.base());
        for number in start..height {
            let block = self
                .blocks
                .get_block(number)?
                .expect("block below height exists");
            // The validation flags were persisted in the block metadata
            // before the block was appended.
            self.ptm.commit_block(&block, &block.metadata.validation)?;
        }
        Ok(())
    }

    /// Appends a validated block (metadata flags filled in) and commits its
    /// state changes.
    ///
    /// Commits are strictly ordered: with concurrent validation (the
    /// peer's pipelined committer) only the in-order sequencer may reach
    /// this point, and an out-of-order block is rejected before anything
    /// is written.
    pub fn commit(&self, block: &Block) -> Result<(), LedgerError> {
        let expected = self.blocks.height();
        if block.header.number != expected {
            return Err(LedgerError::OutOfOrder {
                expected,
                got: block.header.number,
            });
        }
        if block.metadata.validation.len() != block.envelopes.len() {
            return Err(LedgerError::MissingValidationFlags);
        }
        self.blocks.append(block)?;
        self.ptm.commit_block(block, &block.metadata.validation)?;
        // The savepoint must track the append exactly, or crash recovery
        // would replay from the wrong block.
        debug_assert_eq!(
            self.ptm.savepoint(),
            Some(block.header.number),
            "savepoint out of step with block store"
        );
        Ok(())
    }

    /// Runs the MVCC stage of validation for `block`, downgrading `flags`
    /// entries on conflicts (see [`Ptm::mvcc_validate`]).
    pub fn mvcc_validate(
        &self,
        block: &Block,
        flags: &mut [TxValidationCode],
    ) -> Result<(), LedgerError> {
        self.ptm
            .mvcc_validate(block, flags, &|tx_id| self.blocks.contains_tx(tx_id))
    }

    /// Starts a chaincode simulation against the latest state snapshot.
    pub fn simulator(&self) -> TxSimulator {
        self.ptm.simulator()
    }

    /// Chain height.
    pub fn height(&self) -> u64 {
        self.blocks.height()
    }

    /// Hash of the last block header.
    pub fn last_hash(&self) -> fabric_crypto::Digest {
        self.blocks.last_hash()
    }

    /// Reads a block by number.
    pub fn get_block(&self, number: u64) -> Result<Option<Block>, LedgerError> {
        self.blocks.get_block(number)
    }

    /// Looks up where a transaction was committed.
    pub fn tx_location(&self, tx_id: &TxId) -> Option<TxLocation> {
        self.blocks.tx_location(tx_id)
    }

    /// Returns `true` if the transaction id is already on the ledger.
    pub fn contains_tx(&self, tx_id: &TxId) -> bool {
        self.blocks.contains_tx(tx_id)
    }

    /// Number of the most recent configuration block.
    pub fn last_config(&self) -> u64 {
        self.blocks.last_config()
    }

    /// Reads the latest committed value of a state key.
    pub fn get_state(&self, ns: &str, key: &str) -> Result<Option<Vec<u8>>, LedgerError> {
        Ok(self.ptm.get_state(ns, key)?.map(|(_, v)| v))
    }

    /// Reads the latest `(version, value)` of a state key.
    pub fn get_state_versioned(
        &self,
        ns: &str,
        key: &str,
    ) -> Result<Option<(fabric_primitives::ids::Version, Vec<u8>)>, LedgerError> {
        self.ptm.get_state(ns, key)
    }

    /// Range-scans the latest state of a namespace.
    pub fn scan_state(
        &self,
        ns: &str,
        start: &str,
        end: &str,
    ) -> Result<Vec<(String, Vec<u8>)>, LedgerError> {
        Ok(self
            .ptm
            .scan(ns, start, end)?
            .into_iter()
            .map(|(k, _, v)| (k, v))
            .collect())
    }

    /// Chronological write history of a state key (valid txs only).
    pub fn key_history(
        &self,
        ns: &str,
        key: &str,
    ) -> Result<Vec<crate::ptm::HistoryEntry>, LedgerError> {
        self.ptm.history(ns, key)
    }

    /// A point-in-time dump of the *entire* state database — world state,
    /// history index, and the savepoint — as raw `(key, value)` pairs in
    /// key order. This is the payload a state snapshot carries: installing
    /// exactly these pairs reproduces the kvstore byte-for-byte.
    pub fn state_entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.ptm.store().snapshot().scan(b"", b"")
    }

    /// Installs a verified state snapshot into an **empty** ledger: the
    /// state database is atomically replaced by `entries` (one write
    /// batch, so a crash leaves either the old or the new state), and the
    /// block store is rebased so the chain resumes at `height`.
    ///
    /// `height` is the number of blocks the snapshot covers (its savepoint
    /// must be `height - 1`), `block_hash` the hash of block `height - 1`,
    /// and `last_config` the number of the latest config block — all three
    /// bound by the snapshot manifest the caller verified. After install,
    /// the ledger accepts block `height` next; earlier blocks are pruned.
    pub fn install_snapshot(
        &self,
        height: u64,
        block_hash: fabric_crypto::Digest,
        last_config: u64,
        entries: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(), LedgerError> {
        if self.blocks.height() != 0 || self.blocks.base() != 0 {
            return Err(LedgerError::Snapshot(format!(
                "ledger not empty (height {})",
                self.blocks.height()
            )));
        }
        if height == 0 {
            return Err(LedgerError::Snapshot("snapshot covers no blocks".into()));
        }
        let mut batch = WriteBatch::new();
        let incoming: std::collections::HashSet<&[u8]> =
            entries.iter().map(|(k, _)| k.as_slice()).collect();
        for (key, _) in self.ptm.store().snapshot().scan(b"", b"") {
            if !incoming.contains(key.as_slice()) {
                batch.delete(key);
            }
        }
        for (key, value) in entries {
            batch.put(key.clone(), value.clone());
        }
        self.ptm.store().write(batch)?;
        // The snapshot's own savepoint key must agree with the manifest
        // height, or recovery arithmetic would diverge from the chain.
        if self.ptm.savepoint() != Some(height - 1) {
            return Err(LedgerError::Snapshot(format!(
                "snapshot savepoint {:?} does not match height {height}",
                self.ptm.savepoint()
            )));
        }
        self.blocks.rebase(height, block_hash, last_config)
    }

    /// The incremental Merkle root over the whole state database — O(1),
    /// maintained by the storage engine on every commit. Two ledgers with
    /// byte-identical state report the same root regardless of engine.
    pub fn state_root(&self) -> fabric_crypto::Digest {
        self.ptm.store().state_root()
    }

    /// Durably checkpoints the state database (snapshot-consistent; the
    /// engines no longer block commits for the duration).
    pub fn checkpoint_state(&self) -> Result<(), LedgerError> {
        Ok(self.ptm.store().checkpoint()?)
    }

    /// Point-in-time storage-engine counters (cache, flush, compaction).
    pub fn storage_stats(&self) -> fabric_kvstore::StorageSnapshot {
        self.ptm.store().stats()
    }

    /// Direct access to the PTM (used by the peer's committer).
    pub fn ptm(&self) -> &Ptm {
        &self.ptm
    }

    /// Direct access to the block store.
    pub fn block_store(&self) -> &BlockStore {
        &self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_primitives::ids::{ChaincodeId, ChannelId, SerializedIdentity, Version};
    use fabric_primitives::rwset::TxReadWriteSet;
    use fabric_primitives::transaction::{
        ChaincodeResponse, Envelope, EnvelopeContent, ProposalPayload, ProposalResponsePayload,
        Transaction,
    };
    use fabric_primitives::wire::Wire;

    /// Builds an envelope carrying an explicit rwset.
    fn envelope_with_rwset(seed: u8, rwset: TxReadWriteSet) -> Envelope {
        let creator = SerializedIdentity::new("Org1MSP", vec![seed; 8]);
        let tx = Transaction {
            channel: ChannelId::new("ch"),
            creator: creator.clone(),
            nonce: [seed; 32],
            proposal_payload: ProposalPayload {
                chaincode: ChaincodeId::new("cc", "1"),
                function: "f".into(),
                args: vec![],
            },
            response_payload: ProposalResponsePayload {
                tx_id: TxId::derive(&creator.to_wire(), &[seed; 32]),
                chaincode: ChaincodeId::new("cc", "1"),
                rwset,
                response: ChaincodeResponse::ok(vec![]),
            },
            endorsements: vec![],
        };
        Envelope {
            content: EnvelopeContent::Transaction(tx),
            signature: vec![],
        }
    }

    /// Simulates `f` on the ledger and wraps the result in an envelope.
    fn simulate(ledger: &Ledger, seed: u8, f: impl FnOnce(&mut TxSimulator)) -> Envelope {
        let mut sim = ledger.simulator();
        f(&mut sim);
        envelope_with_rwset(seed, sim.into_rwset())
    }

    /// Commits envelopes as the next block, marking all transactions with
    /// the outcome of VSCC = Valid, running MVCC validation first.
    fn commit_block(ledger: &Ledger, envelopes: Vec<Envelope>) -> Vec<TxValidationCode> {
        let mut block = Block::new(ledger.height(), ledger.last_hash(), envelopes);
        let mut flags = vec![TxValidationCode::Valid; block.envelopes.len()];
        ledger.mvcc_validate(&block, &mut flags).unwrap();
        block.metadata.validation = flags.clone();
        ledger.commit(&block).unwrap();
        flags
    }

    #[test]
    fn simulate_and_commit_roundtrip() {
        let ledger = Ledger::in_memory();
        let env = simulate(&ledger, 1, |sim| {
            sim.put_state("cc", "k1", b"v1".to_vec());
            sim.put_state("cc", "k2", b"v2".to_vec());
        });
        let flags = commit_block(&ledger, vec![env]);
        assert_eq!(flags, vec![TxValidationCode::Valid]);
        assert_eq!(ledger.get_state("cc", "k1").unwrap(), Some(b"v1".to_vec()));
        let (ver, _) = ledger.get_state_versioned("cc", "k2").unwrap().unwrap();
        assert_eq!(ver, Version::new(0, 0));
    }

    #[test]
    fn mvcc_conflict_detected() {
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v0".to_vec()))],
        );
        // Two transactions both read k's current version and write it.
        let e1 = simulate(&ledger, 2, |sim| {
            sim.get_state("cc", "k").unwrap();
            sim.put_state("cc", "k", b"v1".to_vec());
        });
        let e2 = simulate(&ledger, 3, |sim| {
            sim.get_state("cc", "k").unwrap();
            sim.put_state("cc", "k", b"v2".to_vec());
        });
        let flags = commit_block(&ledger, vec![e1, e2]);
        assert_eq!(
            flags,
            vec![TxValidationCode::Valid, TxValidationCode::MvccReadConflict]
        );
        // First writer wins.
        assert_eq!(ledger.get_state("cc", "k").unwrap(), Some(b"v1".to_vec()));
    }

    #[test]
    fn stale_read_across_blocks_detected() {
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v0".to_vec()))],
        );
        // Simulate BEFORE the conflicting update commits.
        let stale = simulate(&ledger, 2, |sim| {
            sim.get_state("cc", "k").unwrap();
            sim.put_state("cc", "k", b"stale".to_vec());
        });
        commit_block(
            &ledger,
            vec![simulate(&ledger, 3, |sim| {
                sim.get_state("cc", "k").unwrap();
                sim.put_state("cc", "k", b"fresh".to_vec());
            })],
        );
        let flags = commit_block(&ledger, vec![stale]);
        assert_eq!(flags, vec![TxValidationCode::MvccReadConflict]);
        assert_eq!(ledger.get_state("cc", "k").unwrap(), Some(b"fresh".to_vec()));
    }

    #[test]
    fn read_of_missing_key_validates_against_absence() {
        let ledger = Ledger::in_memory();
        // Reads a missing key; still valid because it's still missing.
        let e = simulate(&ledger, 1, |sim| {
            assert_eq!(sim.get_state("cc", "ghost").unwrap(), None);
            sim.put_state("cc", "out", b"v".to_vec());
        });
        let flags = commit_block(&ledger, vec![e]);
        assert_eq!(flags, vec![TxValidationCode::Valid]);
        // Now a tx that read the key as missing, committed after it appears.
        let stale = simulate(&ledger, 2, |sim| {
            assert_eq!(sim.get_state("cc", "newkey").unwrap(), None);
            sim.put_state("cc", "out2", b"v".to_vec());
        });
        commit_block(
            &ledger,
            vec![simulate(&ledger, 3, |sim| {
                sim.put_state("cc", "newkey", b"appeared".to_vec())
            })],
        );
        let flags = commit_block(&ledger, vec![stale]);
        assert_eq!(flags, vec![TxValidationCode::MvccReadConflict]);
    }

    #[test]
    fn delete_then_read_conflict() {
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v".to_vec()))],
        );
        let reader = simulate(&ledger, 2, |sim| {
            sim.get_state("cc", "k").unwrap();
            sim.put_state("cc", "out", b"x".to_vec());
        });
        commit_block(
            &ledger,
            vec![simulate(&ledger, 3, |sim| sim.del_state("cc", "k"))],
        );
        let flags = commit_block(&ledger, vec![reader]);
        assert_eq!(flags, vec![TxValidationCode::MvccReadConflict]);
        assert_eq!(ledger.get_state("cc", "k").unwrap(), None);
    }

    #[test]
    fn intra_block_write_then_read_conflict() {
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v".to_vec()))],
        );
        // Both simulated against the same state; tx0 writes k, tx1 reads k.
        let writer = simulate(&ledger, 2, |sim| {
            sim.put_state("cc", "k", b"new".to_vec());
        });
        let reader = simulate(&ledger, 3, |sim| {
            sim.get_state("cc", "k").unwrap();
            sim.put_state("cc", "other", b"x".to_vec());
        });
        let flags = commit_block(&ledger, vec![writer, reader]);
        assert_eq!(
            flags,
            vec![TxValidationCode::Valid, TxValidationCode::MvccReadConflict]
        );
    }

    #[test]
    fn duplicate_txid_rejected() {
        let ledger = Ledger::in_memory();
        let env = simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v".to_vec()));
        commit_block(&ledger, vec![env.clone()]);
        let flags = commit_block(&ledger, vec![env]);
        assert_eq!(flags, vec![TxValidationCode::DuplicateTxId]);
    }

    #[test]
    fn duplicate_txid_within_block_rejected() {
        let ledger = Ledger::in_memory();
        let env = simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v".to_vec()));
        let flags = commit_block(&ledger, vec![env.clone(), env]);
        assert_eq!(
            flags,
            vec![TxValidationCode::Valid, TxValidationCode::DuplicateTxId]
        );
    }

    #[test]
    fn phantom_read_detected() {
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| {
                sim.put_state("cc", "a", b"1".to_vec());
                sim.put_state("cc", "c", b"3".to_vec());
            })],
        );
        // Range query over [a, z); then another tx inserts "b" inside the
        // range before this commits.
        let ranged = simulate(&ledger, 2, |sim| {
            let res = sim.get_state_range("cc", "a", "z").unwrap();
            assert_eq!(res.len(), 2);
            sim.put_state("cc", "out", b"x".to_vec());
        });
        commit_block(
            &ledger,
            vec![simulate(&ledger, 3, |sim| sim.put_state("cc", "b", b"2".to_vec()))],
        );
        let flags = commit_block(&ledger, vec![ranged]);
        assert_eq!(flags, vec![TxValidationCode::PhantomReadConflict]);
    }

    #[test]
    fn range_query_stable_when_untouched() {
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| sim.put_state("cc", "a", b"1".to_vec()))],
        );
        let ranged = simulate(&ledger, 2, |sim| {
            sim.get_state_range("cc", "a", "z").unwrap();
            sim.put_state("cc", "out", b"x".to_vec());
        });
        // Unrelated write outside the queried namespace range semantics.
        commit_block(
            &ledger,
            vec![simulate(&ledger, 3, |sim| {
                sim.put_state("other-ns", "b", b"2".to_vec())
            })],
        );
        let flags = commit_block(&ledger, vec![ranged]);
        assert_eq!(flags, vec![TxValidationCode::Valid]);
    }

    #[test]
    fn phantom_by_intra_block_write() {
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| sim.put_state("cc", "a", b"1".to_vec()))],
        );
        let inserter = simulate(&ledger, 2, |sim| {
            sim.put_state("cc", "b", b"2".to_vec());
        });
        let ranged = simulate(&ledger, 3, |sim| {
            sim.get_state_range("cc", "a", "z").unwrap();
            sim.put_state("cc", "out", b"x".to_vec());
        });
        let flags = commit_block(&ledger, vec![inserter, ranged]);
        assert_eq!(
            flags,
            vec![TxValidationCode::Valid, TxValidationCode::PhantomReadConflict]
        );
    }

    #[test]
    fn simulator_does_not_read_own_writes() {
        // Fabric semantics: GetState after PutState in the same simulation
        // returns the committed value, not the pending write.
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"old".to_vec()))],
        );
        let mut sim = ledger.simulator();
        sim.put_state("cc", "k", b"new".to_vec());
        assert_eq!(sim.get_state("cc", "k").unwrap(), Some(b"old".to_vec()));
    }

    #[test]
    fn namespaces_are_isolated() {
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| {
                sim.put_state("ns-a", "k", b"a".to_vec());
                sim.put_state("ns-b", "k", b"b".to_vec());
            })],
        );
        assert_eq!(ledger.get_state("ns-a", "k").unwrap(), Some(b"a".to_vec()));
        assert_eq!(ledger.get_state("ns-b", "k").unwrap(), Some(b"b".to_vec()));
        assert_eq!(ledger.get_state("ns-c", "k").unwrap(), None);
        // Scans don't leak across namespaces.
        assert_eq!(ledger.scan_state("ns-a", "", "").unwrap().len(), 1);
    }

    #[test]
    fn invalid_tx_state_not_applied() {
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v0".to_vec()))],
        );
        let e1 = simulate(&ledger, 2, |sim| {
            sim.get_state("cc", "k").unwrap();
            sim.put_state("cc", "k", b"v1".to_vec());
            sim.put_state("cc", "loser-key", b"should-not-exist".to_vec());
        });
        let e2 = simulate(&ledger, 3, |sim| {
            sim.get_state("cc", "k").unwrap();
            sim.put_state("cc", "k", b"v2".to_vec());
            sim.put_state("cc", "loser2", b"nope".to_vec());
        });
        commit_block(&ledger, vec![e2, e1]);
        // e1 lost the conflict: none of its writes are visible.
        assert_eq!(ledger.get_state("cc", "loser-key").unwrap(), None);
        assert_eq!(ledger.get_state("cc", "k").unwrap(), Some(b"v2".to_vec()));
    }

    #[test]
    fn ledger_keeps_invalid_transactions() {
        // Paper Sec. 3.4: the ledger contains all transactions, including
        // invalid ones, for audit.
        let ledger = Ledger::in_memory();
        let env = simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v".to_vec()));
        commit_block(&ledger, vec![env.clone()]);
        let flags = commit_block(&ledger, vec![env.clone()]);
        assert_eq!(flags, vec![TxValidationCode::DuplicateTxId]);
        let audit_block = ledger.get_block(1).unwrap().unwrap();
        assert_eq!(audit_block.envelopes.len(), 1);
        assert_eq!(
            audit_block.metadata.validation,
            vec![TxValidationCode::DuplicateTxId]
        );
    }

    #[test]
    fn crash_recovery_replays_missing_state() {
        let backend = Arc::new(MemBackend::new());
        let block = {
            let ledger = Ledger::open(backend.clone(), false).unwrap();
            let env = simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v".to_vec()));
            let mut block = Block::new(0, ledger.last_hash(), vec![env]);
            block.metadata.validation = vec![TxValidationCode::Valid];
            block
        };
        // Simulate a crash between block append and state commit: append
        // the block to the block store directly, skipping the PTM.
        {
            let store = BlockStore::open(backend.clone(), false).unwrap();
            store.append(&block).unwrap();
        }
        // Reopen: recovery must replay block 0 into the state.
        let ledger = Ledger::open(backend, false).unwrap();
        assert_eq!(ledger.height(), 1);
        assert_eq!(ledger.get_state("cc", "k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(ledger.ptm().savepoint(), Some(0));
    }

    #[test]
    fn out_of_order_commit_rejected_before_any_write() {
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v".to_vec()))],
        );
        let env = simulate(&ledger, 2, |sim| sim.put_state("cc", "j", b"w".to_vec()));
        let mut skipped = Block::new(5, ledger.last_hash(), vec![env]);
        skipped.metadata.validation = vec![TxValidationCode::Valid];
        assert!(matches!(
            ledger.commit(&skipped),
            Err(LedgerError::OutOfOrder { expected: 1, got: 5 })
        ));
        // Nothing was appended or applied.
        assert_eq!(ledger.height(), 1);
        assert_eq!(ledger.get_state("cc", "j").unwrap(), None);
        assert_eq!(ledger.ptm().savepoint(), Some(0));
    }

    #[test]
    fn commit_requires_validation_flags() {
        let ledger = Ledger::in_memory();
        let env = simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v".to_vec()));
        let block = Block::new(0, ledger.last_hash(), vec![env]);
        assert!(matches!(
            ledger.commit(&block),
            Err(LedgerError::MissingValidationFlags)
        ));
    }

    #[test]
    fn key_history_tracks_writes_and_deletes() {
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v1".to_vec()))],
        );
        commit_block(
            &ledger,
            vec![simulate(&ledger, 2, |sim| sim.put_state("cc", "k", b"v2".to_vec()))],
        );
        commit_block(
            &ledger,
            vec![simulate(&ledger, 3, |sim| sim.del_state("cc", "k"))],
        );
        let history = ledger.key_history("cc", "k").unwrap();
        assert_eq!(history.len(), 3);
        assert_eq!(history[0].version, Version::new(0, 0));
        assert_eq!(history[1].version, Version::new(1, 0));
        assert!(!history[1].is_delete);
        assert!(history[2].is_delete);
        // Chronological order and distinct tx ids.
        assert!(history[0].version < history[1].version);
        assert_ne!(history[0].tx_id, history[1].tx_id);
        // Untouched keys have no history.
        assert!(ledger.key_history("cc", "other").unwrap().is_empty());
    }

    #[test]
    fn invalid_tx_leaves_no_history() {
        let ledger = Ledger::in_memory();
        let env = simulate(&ledger, 1, |sim| sim.put_state("cc", "k", b"v".to_vec()));
        commit_block(&ledger, vec![env.clone()]);
        // Duplicate is invalid; must not append history.
        commit_block(&ledger, vec![env]);
        assert_eq!(ledger.key_history("cc", "k").unwrap().len(), 1);
    }

    #[test]
    fn snapshot_install_reproduces_state_and_resumes_chain() {
        // Build a source ledger with a few blocks of state.
        let source = Ledger::in_memory();
        for i in 0..4u8 {
            commit_block(
                &source,
                vec![simulate(&source, i + 1, |sim| {
                    sim.put_state("cc", &format!("k{i}"), vec![i]);
                })],
            );
        }
        let height = source.height();
        let tip = source.last_hash();
        let entries = source.state_entries();

        // Install into a fresh ledger; kvstore must be byte-identical.
        let backend = Arc::new(MemBackend::new());
        let target = Ledger::open(backend.clone(), false).unwrap();
        target
            .install_snapshot(height, tip, source.last_config(), &entries)
            .unwrap();
        assert_eq!(target.height(), height);
        assert_eq!(target.ptm().savepoint(), Some(height - 1));
        assert_eq!(target.state_entries(), entries, "byte-identical kvstore");
        assert_eq!(target.get_state("cc", "k2").unwrap(), Some(vec![2u8]));
        // History came along with the snapshot.
        assert_eq!(target.key_history("cc", "k0").unwrap().len(), 1);

        // The chain resumes where the snapshot left off.
        let env = simulate(&source, 9, |sim| sim.put_state("cc", "post", b"1".to_vec()));
        let mut block = Block::new(height, tip, vec![env]);
        block.metadata.validation = vec![TxValidationCode::Valid];
        source.commit(&block).unwrap();
        target.commit(&block).unwrap();
        assert_eq!(target.height(), source.height());
        assert_eq!(target.last_hash(), source.last_hash());
        assert_eq!(target.state_entries(), source.state_entries());

        // Reopen survives: recovery must not try to replay pruned blocks.
        drop(target);
        let reopened = Ledger::open(backend, false).unwrap();
        assert_eq!(reopened.height(), source.height());
        assert_eq!(reopened.state_entries(), source.state_entries());
    }

    #[test]
    fn snapshot_install_rejected_on_nonempty_or_mismatched() {
        let source = Ledger::in_memory();
        commit_block(
            &source,
            vec![simulate(&source, 1, |sim| sim.put_state("cc", "k", b"v".to_vec()))],
        );
        let entries = source.state_entries();

        // Non-empty target.
        let busy = Ledger::in_memory();
        commit_block(
            &busy,
            vec![simulate(&busy, 2, |sim| sim.put_state("cc", "x", b"y".to_vec()))],
        );
        assert!(matches!(
            busy.install_snapshot(1, source.last_hash(), 0, &entries),
            Err(LedgerError::Snapshot(_))
        ));

        // Height that disagrees with the snapshot's own savepoint.
        let target = Ledger::in_memory();
        assert!(matches!(
            target.install_snapshot(7, source.last_hash(), 0, &entries),
            Err(LedgerError::Snapshot(_))
        ));
    }

    #[test]
    fn scan_state_range_bounds() {
        let ledger = Ledger::in_memory();
        commit_block(
            &ledger,
            vec![simulate(&ledger, 1, |sim| {
                for k in ["a", "b", "c", "d"] {
                    sim.put_state("cc", k, k.as_bytes().to_vec());
                }
            })],
        );
        assert_eq!(ledger.scan_state("cc", "b", "d").unwrap().len(), 2);
        assert_eq!(ledger.scan_state("cc", "", "").unwrap().len(), 4);
        assert_eq!(ledger.scan_state("cc", "c", "").unwrap().len(), 2);
    }
}
