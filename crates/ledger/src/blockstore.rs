//! The append-only block store (paper Sec. 4.4).
//!
//! Blocks are immutable and arrive in a definite order, so the store is a
//! single append-only file of CRC-framed records plus in-memory indices for
//! random access by block number and by transaction id. The indices are
//! rebuilt by scanning the file on open; a torn tail (crash mid-append) is
//! truncated.
//!
//! A store normally begins at block 0 (the genesis config block). A peer
//! that joins a channel from a state snapshot instead **rebases** the
//! store: a small CRC-framed base record (`blocks.base`) pins the height
//! the snapshot covers, the hash of the last pruned block, and the number
//! of the most recent config block, and the chain then continues from
//! there — blocks `0..base` are not stored.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use fabric_crypto::Digest;
use fabric_kvstore::backend::{Backend, BackendFile};
use fabric_kvstore::log;
use fabric_primitives::block::Block;
use fabric_primitives::ids::TxId;
use fabric_primitives::wire::{Decoder, Encoder, Wire};

use crate::LedgerError;

const BLOCKS_FILE: &str = "blocks.dat";
const BASE_FILE: &str = "blocks.base";

/// Location of a transaction: block number and index within the block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxLocation {
    /// The containing block's number.
    pub block_num: u64,
    /// The transaction's index within the block.
    pub tx_index: u32,
}

struct Index {
    /// Number of pruned blocks below the first stored one (0 unless the
    /// store was rebased onto a state snapshot).
    base: u64,
    /// Byte offset and length of each block record, by `number - base`.
    blocks: Vec<(u64, usize)>,
    /// Transaction id → location (retained blocks only).
    txs: HashMap<TxId, TxLocation>,
    /// Hash of the last appended block's header (for a freshly rebased
    /// store: the hash recorded in the base record).
    last_hash: Digest,
    /// Number of the most recent config block (0 = genesis).
    last_config: u64,
}

/// Persistent, indexed storage of the block chain.
pub struct BlockStore {
    file: Mutex<Box<dyn BackendFile>>,
    /// Dedicated read handle: block fetches use positioned shared reads and
    /// never contend with appends on the writer lock.
    reader: Box<dyn BackendFile>,
    base_file: Mutex<Box<dyn BackendFile>>,
    index: RwLock<Index>,
    sync_writes: bool,
}

fn encode_base(base: u64, hash: &Digest, last_config: u64) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u64(base);
    enc.put_raw(hash);
    enc.put_u64(last_config);
    enc.finish()
}

fn decode_base(payload: &[u8]) -> Result<(u64, Digest, u64), LedgerError> {
    let mut dec = Decoder::new(payload);
    let parse = |dec: &mut Decoder<'_>| {
        let base = dec.get_u64()?;
        let hash = dec.get_array32()?;
        let last_config = dec.get_u64()?;
        dec.expect_end()?;
        Ok::<_, fabric_primitives::wire::WireError>((base, hash, last_config))
    };
    parse(&mut dec).map_err(|_| LedgerError::Corrupt)
}

impl BlockStore {
    /// Opens a block store, scanning existing blocks to rebuild indices.
    pub fn open(backend: Arc<dyn Backend>, sync_writes: bool) -> Result<Self, LedgerError> {
        let mut base_file = backend.open(BASE_FILE)?;
        let (base_records, base_good) = log::read_all(base_file.as_mut())?;
        if base_good < base_file.len()? {
            base_file.truncate(base_good)?;
        }
        let (base, base_hash, base_config) = match base_records.last() {
            Some(payload) => decode_base(payload)?,
            None => (0, [0u8; 32], 0),
        };
        let mut file = backend.open(BLOCKS_FILE)?;
        let (records, good_end) = log::read_all(file.as_mut())?;
        if good_end < file.len()? {
            file.truncate(good_end)?;
        }
        let mut index = Index {
            base,
            blocks: Vec::with_capacity(records.len()),
            txs: HashMap::new(),
            last_hash: base_hash,
            last_config: base_config,
        };
        let mut offset = 0u64;
        for (i, payload) in records.iter().enumerate() {
            let block = Block::from_wire(payload).map_err(|_| LedgerError::Corrupt)?;
            if block.header.number != base + i as u64 {
                return Err(LedgerError::Corrupt);
            }
            Self::index_block(&mut index, &block, offset, payload.len());
            offset += 8 + payload.len() as u64;
        }
        let reader = backend.open(BLOCKS_FILE)?;
        Ok(BlockStore {
            file: Mutex::new(file),
            reader,
            base_file: Mutex::new(base_file),
            index: RwLock::new(index),
            sync_writes,
        })
    }

    /// Rebases an **empty** store so the chain starts at `base` instead of
    /// 0: blocks `0..base` are declared pruned, the next append must carry
    /// number `base` and chain onto `base_hash` (the hash of block
    /// `base - 1`, as bound by a verified snapshot manifest). Part of the
    /// snapshot-install protocol — see `Ledger::install_snapshot`.
    pub fn rebase(
        &self,
        base: u64,
        base_hash: Digest,
        last_config: u64,
    ) -> Result<(), LedgerError> {
        let mut base_file = self.base_file.lock();
        let mut index = self.index.write();
        if index.base != 0 || !index.blocks.is_empty() {
            return Err(LedgerError::Snapshot(format!(
                "rebase requires an empty block store (base {}, {} blocks held)",
                index.base,
                index.blocks.len()
            )));
        }
        if base == 0 {
            return Err(LedgerError::Snapshot("rebase to height 0".into()));
        }
        log::append_record(base_file.as_mut(), &encode_base(base, &base_hash, last_config))?;
        if self.sync_writes {
            base_file.sync()?;
        }
        index.base = base;
        index.last_hash = base_hash;
        index.last_config = last_config;
        Ok(())
    }

    /// Number of pruned blocks below the first stored one (0 unless the
    /// store was rebased onto a snapshot).
    pub fn base(&self) -> u64 {
        self.index.read().base
    }

    fn index_block(index: &mut Index, block: &Block, offset: u64, len: usize) {
        for (i, env) in block.envelopes.iter().enumerate() {
            index.txs.insert(
                env.tx_id(),
                TxLocation {
                    block_num: block.header.number,
                    tx_index: i as u32,
                },
            );
        }
        if block.is_config_block() {
            index.last_config = block.header.number;
        }
        index.last_hash = block.hash();
        index.blocks.push((offset, len));
    }

    /// Appends the next block.
    ///
    /// The block's number must equal the current height and its
    /// previous-hash must match the last appended block (the "no skipping" /
    /// "hash chain integrity" properties are enforced at the storage
    /// boundary too).
    pub fn append(&self, block: &Block) -> Result<(), LedgerError> {
        let payload = block.to_wire();
        let mut file = self.file.lock();
        let mut index = self.index.write();
        let height = index.base + index.blocks.len() as u64;
        if block.header.number != height {
            return Err(LedgerError::OutOfOrder {
                expected: height,
                got: block.header.number,
            });
        }
        if height > 0 && block.header.previous_hash != index.last_hash {
            return Err(LedgerError::HashChainBroken(block.header.number));
        }
        let offset = log::append_record(file.as_mut(), &payload)?;
        if self.sync_writes {
            file.sync()?;
        }
        Self::index_block(&mut index, block, offset, payload.len());
        Ok(())
    }

    /// Current chain height (pruned base + number of blocks stored).
    pub fn height(&self) -> u64 {
        let index = self.index.read();
        index.base + index.blocks.len() as u64
    }

    /// Hash of the most recently appended block header (zeroes if empty).
    pub fn last_hash(&self) -> Digest {
        self.index.read().last_hash
    }

    /// Number of the most recent configuration block.
    pub fn last_config(&self) -> u64 {
        self.index.read().last_config
    }

    /// Reads block `number`, or `None` past the current height or below
    /// the rebased base (pruned blocks are gone).
    pub fn get_block(&self, number: u64) -> Result<Option<Block>, LedgerError> {
        let (offset, len) = {
            let index = self.index.read();
            let Some(slot) = number.checked_sub(index.base) else {
                return Ok(None);
            };
            match index.blocks.get(slot as usize) {
                Some(&loc) => loc,
                None => return Ok(None),
            }
        };
        let payload = self.reader.read_at_shared(offset + 8, len)?;
        let block = Block::from_wire(&payload).map_err(|_| LedgerError::Corrupt)?;
        Ok(Some(block))
    }

    /// Looks up the location of a transaction by id.
    pub fn tx_location(&self, tx_id: &TxId) -> Option<TxLocation> {
        self.index.read().txs.get(tx_id).copied()
    }

    /// Returns `true` if a transaction id has already been committed.
    pub fn contains_tx(&self, tx_id: &TxId) -> bool {
        self.index.read().txs.contains_key(tx_id)
    }

    /// Reads the block containing `tx_id`, if any.
    pub fn get_block_by_tx(&self, tx_id: &TxId) -> Result<Option<Block>, LedgerError> {
        match self.tx_location(tx_id) {
            Some(loc) => self.get_block(loc.block_num),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_kvstore::MemBackend;
    use fabric_primitives::block::Block;
    use fabric_primitives::ids::{ChaincodeId, ChannelId, SerializedIdentity};
    use fabric_primitives::rwset::TxReadWriteSet;
    use fabric_primitives::transaction::{
        ChaincodeResponse, Envelope, EnvelopeContent, ProposalPayload, ProposalResponsePayload,
        Transaction,
    };

    fn envelope(n: u8) -> Envelope {
        let creator = SerializedIdentity::new("Org1MSP", vec![n; 16]);
        let tx = Transaction {
            channel: ChannelId::new("ch"),
            creator: creator.clone(),
            nonce: [n; 32],
            proposal_payload: ProposalPayload {
                chaincode: ChaincodeId::new("cc", "1"),
                function: "f".into(),
                args: vec![],
            },
            response_payload: ProposalResponsePayload {
                tx_id: TxId::derive(&creator.to_wire(), &[n; 32]),
                chaincode: ChaincodeId::new("cc", "1"),
                rwset: TxReadWriteSet::default(),
                response: ChaincodeResponse::ok(vec![]),
            },
            endorsements: vec![],
        };
        Envelope {
            content: EnvelopeContent::Transaction(tx),
            signature: vec![],
        }
    }

    fn chain_of(n: u64) -> (Arc<MemBackend>, BlockStore, Vec<Block>) {
        let backend = Arc::new(MemBackend::new());
        let store = BlockStore::open(backend.clone(), false).unwrap();
        let mut blocks = Vec::new();
        let mut prev = [0u8; 32];
        for i in 0..n {
            let block = Block::new(i, prev, vec![envelope(i as u8), envelope(i as u8 + 100)]);
            prev = block.hash();
            store.append(&block).unwrap();
            blocks.push(block);
        }
        (backend, store, blocks)
    }

    #[test]
    fn append_and_read() {
        let (_, store, blocks) = chain_of(5);
        assert_eq!(store.height(), 5);
        for (i, expected) in blocks.iter().enumerate() {
            assert_eq!(&store.get_block(i as u64).unwrap().unwrap(), expected);
        }
        assert!(store.get_block(5).unwrap().is_none());
    }

    #[test]
    fn out_of_order_rejected() {
        let (_, store, _) = chain_of(2);
        let bad = Block::new(5, store.last_hash(), vec![]);
        assert!(matches!(
            store.append(&bad),
            Err(LedgerError::OutOfOrder { expected: 2, got: 5 })
        ));
    }

    #[test]
    fn broken_hash_chain_rejected() {
        let (_, store, _) = chain_of(2);
        let bad = Block::new(2, [9u8; 32], vec![]);
        assert!(matches!(
            store.append(&bad),
            Err(LedgerError::HashChainBroken(2))
        ));
    }

    #[test]
    fn tx_index() {
        let (_, store, blocks) = chain_of(3);
        let tx_id = blocks[1].envelopes[1].tx_id();
        let loc = store.tx_location(&tx_id).unwrap();
        assert_eq!(loc.block_num, 1);
        assert_eq!(loc.tx_index, 1);
        assert!(store.contains_tx(&tx_id));
        let block = store.get_block_by_tx(&tx_id).unwrap().unwrap();
        assert_eq!(block.header.number, 1);
        assert!(!store.contains_tx(&envelope(250).tx_id()));
    }

    #[test]
    fn reopen_rebuilds_index() {
        let (backend, store, blocks) = chain_of(4);
        let last = store.last_hash();
        drop(store);
        let store = BlockStore::open(backend, false).unwrap();
        assert_eq!(store.height(), 4);
        assert_eq!(store.last_hash(), last);
        let tx_id = blocks[3].envelopes[0].tx_id();
        assert_eq!(store.tx_location(&tx_id).unwrap().block_num, 3);
        // Chain can be extended after reopen.
        let next = Block::new(4, last, vec![envelope(42)]);
        store.append(&next).unwrap();
        assert_eq!(store.height(), 5);
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let (backend, store, _) = chain_of(2);
        drop(store);
        {
            let mut f = backend.open("blocks.dat").unwrap();
            f.append(&[1, 2, 3]).unwrap(); // garbage tail
        }
        let store = BlockStore::open(backend, false).unwrap();
        assert_eq!(store.height(), 2);
        let next = Block::new(2, store.last_hash(), vec![envelope(9)]);
        store.append(&next).unwrap();
        assert_eq!(store.height(), 3);
    }

    #[test]
    fn empty_store() {
        let backend = Arc::new(MemBackend::new());
        let store = BlockStore::open(backend, false).unwrap();
        assert_eq!(store.height(), 0);
        assert_eq!(store.last_hash(), [0u8; 32]);
        assert!(store.get_block(0).unwrap().is_none());
    }

    #[test]
    fn rebase_starts_chain_mid_stream() {
        let backend = Arc::new(MemBackend::new());
        let store = BlockStore::open(backend.clone(), false).unwrap();
        let snapshot_tip = [7u8; 32]; // hash of pruned block 4
        store.rebase(5, snapshot_tip, 3).unwrap();
        assert_eq!(store.height(), 5);
        assert_eq!(store.base(), 5);
        assert_eq!(store.last_config(), 3);
        assert!(store.get_block(0).unwrap().is_none(), "pruned");
        assert!(store.get_block(4).unwrap().is_none(), "pruned");

        // The next append must be block 5 chaining onto the base hash.
        let wrong = Block::new(5, [9u8; 32], vec![envelope(1)]);
        assert!(matches!(
            store.append(&wrong),
            Err(LedgerError::HashChainBroken(5))
        ));
        let early = Block::new(0, [0u8; 32], vec![envelope(1)]);
        assert!(matches!(
            store.append(&early),
            Err(LedgerError::OutOfOrder { expected: 5, got: 0 })
        ));
        let b5 = Block::new(5, snapshot_tip, vec![envelope(1)]);
        store.append(&b5).unwrap();
        let b6 = Block::new(6, b5.hash(), vec![envelope(2)]);
        store.append(&b6).unwrap();
        assert_eq!(store.height(), 7);
        assert_eq!(store.get_block(6).unwrap().unwrap(), b6);
        let loc = store.tx_location(&b6.envelopes[0].tx_id()).unwrap();
        assert_eq!(loc.block_num, 6);

        // The base survives reopen.
        drop(store);
        let store = BlockStore::open(backend, false).unwrap();
        assert_eq!(store.base(), 5);
        assert_eq!(store.height(), 7);
        assert_eq!(store.get_block(5).unwrap().unwrap(), b5);
        assert!(store.get_block(2).unwrap().is_none());
        let b7 = Block::new(7, store.last_hash(), vec![envelope(3)]);
        store.append(&b7).unwrap();
    }

    #[test]
    fn rebase_rejected_on_nonempty_store() {
        let (_, store, _) = chain_of(2);
        assert!(matches!(
            store.rebase(5, [1u8; 32], 0),
            Err(LedgerError::Snapshot(_))
        ));
        let backend = Arc::new(MemBackend::new());
        let empty = BlockStore::open(backend, false).unwrap();
        empty.rebase(3, [1u8; 32], 0).unwrap();
        assert!(
            matches!(empty.rebase(4, [1u8; 32], 0), Err(LedgerError::Snapshot(_))),
            "double rebase rejected"
        );
    }
}
