//! # fabric-ledger
//!
//! The peer's ledger component (paper Sec. 4.4): an append-only
//! [`blockstore::BlockStore`] persisting the hash-chained blocks, and the
//! peer transaction manager [`ptm::Ptm`] maintaining the latest state in a
//! versioned key-value store. [`ledger::Ledger`] combines the two with the
//! savepoint-based crash recovery protocol the paper describes.
//!
//! The state database sits on `fabric-kvstore` (the LevelDB substitute) and
//! can be file-backed or in-memory — the latter reproduces the paper's
//! RAM-disk variant (Experiment 3).

pub mod blockstore;
pub mod ledger;
pub mod ptm;

pub use blockstore::{BlockStore, TxLocation};
pub use ledger::Ledger;
pub use ptm::{HistoryEntry, Ptm, TxSimulator};

/// Errors produced by ledger operations.
#[derive(Debug)]
pub enum LedgerError {
    /// Underlying storage failed.
    Store(fabric_kvstore::StoreError),
    /// Persisted bytes failed to decode.
    Corrupt,
    /// A block arrived with the wrong sequence number.
    OutOfOrder {
        /// The expected next block number (current height).
        expected: u64,
        /// The number the block actually carried.
        got: u64,
    },
    /// A block's previous-hash did not match the chain tip.
    HashChainBroken(u64),
    /// `commit` was called on a block without validation metadata.
    MissingValidationFlags,
    /// A state-snapshot install or block-store rebase was rejected.
    Snapshot(String),
}

impl From<fabric_kvstore::StoreError> for LedgerError {
    fn from(e: fabric_kvstore::StoreError) -> Self {
        LedgerError::Store(e)
    }
}

impl core::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LedgerError::Store(e) => write!(f, "store error: {e}"),
            LedgerError::Corrupt => write!(f, "corrupt ledger data"),
            LedgerError::OutOfOrder { expected, got } => {
                write!(f, "block out of order: expected {expected}, got {got}")
            }
            LedgerError::HashChainBroken(n) => write!(f, "hash chain broken at block {n}"),
            LedgerError::MissingValidationFlags => {
                write!(f, "block committed without validation flags")
            }
            LedgerError::Snapshot(msg) => write!(f, "snapshot install rejected: {msg}"),
        }
    }
}

impl std::error::Error for LedgerError {}
