//! The peer transaction manager (PTM): versioned state, simulation, and
//! read-write conflict validation (paper Sec. 4.4).
//!
//! The PTM keeps the latest state in a versioned key-value store: one tuple
//! `(key, val, ver)` per entry, where `ver` is the `(block, tx)` coordinate
//! of the writing transaction — unique and monotonically increasing.
//!
//! * During **simulation** it serves a stable snapshot and records readset
//!   (key + observed version, plus hashed range-query results) and writeset.
//! * During **validation** it replays only the version checks sequentially,
//!   treating the writes of preceding valid transactions in the same block
//!   as committed; mismatches mark the transaction invalid
//!   (one-copy serializability).
//! * During **commit** it applies the writesets of valid transactions and
//!   persists the savepoint in the same atomic batch.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use fabric_kvstore::{StateSnapshot, StateStore, WriteBatch};
use fabric_primitives::block::Block;
use fabric_primitives::ids::{TxId, TxValidationCode, Version};
use fabric_primitives::rwset::{KeyRead, KeyWrite, NsReadWriteSet, RangeQueryInfo, TxReadWriteSet};
use fabric_primitives::transaction::EnvelopeContent;

use crate::LedgerError;

const SAVEPOINT_KEY: &[u8] = b"m/savepoint";
const STATE_PREFIX: &[u8] = b"s/";
const HISTORY_PREFIX: &[u8] = b"h/";

/// One entry in a key's write history (the history database behind
/// Fabric's `GetHistoryForKey`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoryEntry {
    /// The writing transaction's coordinates.
    pub version: Version,
    /// The writing transaction's id.
    pub tx_id: TxId,
    /// Whether the write was a deletion.
    pub is_delete: bool,
}

/// History key: `h/<ns>\0<key>\0<block BE><tx BE>` — big-endian version
/// suffix so a prefix scan yields chronological order.
fn history_key(ns: &str, key: &str, version: Version) -> Vec<u8> {
    let mut out = history_prefix(ns, key);
    out.extend_from_slice(&version.block_num.to_be_bytes());
    out.extend_from_slice(&version.tx_num.to_be_bytes());
    out
}

fn history_prefix(ns: &str, key: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + ns.len() + key.len() + 2);
    out.extend_from_slice(HISTORY_PREFIX);
    out.extend_from_slice(ns.as_bytes());
    out.push(0);
    out.extend_from_slice(key.as_bytes());
    out.push(0);
    out
}

fn state_key(ns: &str, key: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + ns.len() + 1 + key.len());
    out.extend_from_slice(STATE_PREFIX);
    out.extend_from_slice(ns.as_bytes());
    out.push(0);
    out.extend_from_slice(key.as_bytes());
    out
}

fn encode_value(version: Version, value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + value.len());
    out.extend_from_slice(&version.block_num.to_le_bytes());
    out.extend_from_slice(&version.tx_num.to_le_bytes());
    out.extend_from_slice(value);
    out
}

fn decode_value(raw: &[u8]) -> Result<(Version, Vec<u8>), LedgerError> {
    if raw.len() < 12 {
        return Err(LedgerError::Corrupt);
    }
    let block_num = u64::from_le_bytes(raw[0..8].try_into().expect("8 bytes"));
    let tx_num = u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes"));
    Ok((Version::new(block_num, tx_num), raw[12..].to_vec()))
}

/// The peer transaction manager over a pluggable [`StateStore`] engine.
#[derive(Clone)]
pub struct Ptm {
    store: Arc<dyn StateStore>,
}

impl Ptm {
    /// Wraps a state-store engine as the versioned state database.
    pub fn new(store: Arc<dyn StateStore>) -> Self {
        Ptm { store }
    }

    /// The largest block number whose writes are fully applied, or `None`
    /// if no block has been committed yet.
    pub fn savepoint(&self) -> Option<u64> {
        self.store
            .get(SAVEPOINT_KEY)
            .map(|raw| u64::from_le_bytes(raw[..8].try_into().expect("8 bytes")))
    }

    /// Reads the latest committed `(version, value)` of a key.
    pub fn get_state(&self, ns: &str, key: &str) -> Result<Option<(Version, Vec<u8>)>, LedgerError> {
        match self.store.get(&state_key(ns, key)) {
            Some(raw) => Ok(Some(decode_value(&raw)?)),
            None => Ok(None),
        }
    }

    /// Scans `[start, end)` within a namespace at the latest state,
    /// returning `(key, version, value)` triples in key order. An empty
    /// `end` scans to the end of the namespace.
    pub fn scan(
        &self,
        ns: &str,
        start: &str,
        end: &str,
    ) -> Result<Vec<(String, Version, Vec<u8>)>, LedgerError> {
        let lo = state_key(ns, start);
        let hi = if end.is_empty() {
            // End of this namespace: prefix with 0x01 after the separator.
            let mut k = Vec::with_capacity(2 + ns.len() + 1);
            k.extend_from_slice(STATE_PREFIX);
            k.extend_from_slice(ns.as_bytes());
            k.push(1);
            k
        } else {
            state_key(ns, end)
        };
        let prefix_len = STATE_PREFIX.len() + ns.len() + 1;
        self.store
            .scan(&lo, &hi)
            .into_iter()
            .map(|(k, raw)| {
                let key = String::from_utf8(k[prefix_len..].to_vec())
                    .map_err(|_| LedgerError::Corrupt)?;
                let (version, value) = decode_value(&raw)?;
                Ok((key, version, value))
            })
            .collect()
    }

    /// Starts a simulation against a stable snapshot of the latest state.
    pub fn simulator(&self) -> TxSimulator {
        TxSimulator {
            snap: self.store.snapshot(),
            namespaces: BTreeMap::new(),
        }
    }

    /// Runs the sequential read-write conflict check over a block
    /// (validation stage 2, paper Sec. 3.4).
    ///
    /// `flags` carries the per-transaction outcome of the VSCC stage;
    /// transactions currently `Valid` may be downgraded to
    /// `MvccReadConflict`, `PhantomReadConflict`, or `DuplicateTxId`.
    /// `already_committed` reports whether a transaction id exists in the
    /// ledger (the block store's tx index).
    pub fn mvcc_validate(
        &self,
        block: &Block,
        flags: &mut [TxValidationCode],
        already_committed: &dyn Fn(&TxId) -> bool,
    ) -> Result<(), LedgerError> {
        assert_eq!(flags.len(), block.envelopes.len());
        // Versions written by preceding valid transactions in this block:
        // state-key -> Some(version) for writes, None for deletes.
        let mut overlay: HashMap<Vec<u8>, Option<Version>> = HashMap::new();
        let mut seen_txids: HashSet<TxId> = HashSet::new();

        for (i, env) in block.envelopes.iter().enumerate() {
            if flags[i] != TxValidationCode::Valid {
                continue;
            }
            let tx = match &env.content {
                EnvelopeContent::Transaction(tx) => tx,
                // Config envelopes are validated by the peer's config logic,
                // not by MVCC.
                EnvelopeContent::Config(_) => continue,
            };
            let tx_id = tx.tx_id();
            if already_committed(&tx_id) || !seen_txids.insert(tx_id) {
                flags[i] = TxValidationCode::DuplicateTxId;
                continue;
            }
            let mut ok = true;
            'check: for ns_rw in &tx.response_payload.rwset.ns_rwsets {
                for read in &ns_rw.reads {
                    let skey = state_key(&ns_rw.namespace, &read.key);
                    let current = match overlay.get(&skey) {
                        Some(v) => *v,
                        None => self
                            .get_state(&ns_rw.namespace, &read.key)?
                            .map(|(ver, _)| ver),
                    };
                    if current != read.version {
                        flags[i] = TxValidationCode::MvccReadConflict;
                        ok = false;
                        break 'check;
                    }
                }
                for rq in &ns_rw.range_queries {
                    let rehash = self.range_query_hash(&ns_rw.namespace, rq, &overlay)?;
                    if rehash != rq.results_hash {
                        flags[i] = TxValidationCode::PhantomReadConflict;
                        ok = false;
                        break 'check;
                    }
                }
            }
            if !ok {
                continue;
            }
            // Record this transaction's writes in the overlay.
            let version = Version::new(block.header.number, i as u32);
            for ns_rw in &tx.response_payload.rwset.ns_rwsets {
                for write in &ns_rw.writes {
                    let skey = state_key(&ns_rw.namespace, &write.key);
                    overlay.insert(skey, if write.is_delete() { None } else { Some(version) });
                }
            }
        }
        Ok(())
    }

    /// Re-executes a recorded range query against current state + overlay
    /// and hashes the results, for phantom-read detection.
    fn range_query_hash(
        &self,
        ns: &str,
        rq: &RangeQueryInfo,
        overlay: &HashMap<Vec<u8>, Option<Version>>,
    ) -> Result<fabric_crypto::Digest, LedgerError> {
        let mut merged: BTreeMap<String, Version> = self
            .scan(ns, &rq.start_key, &rq.end_key)?
            .into_iter()
            .map(|(k, v, _)| (k, v))
            .collect();
        // Apply overlay entries that fall inside the queried range.
        for (skey, ver) in overlay {
            let prefix = state_key(ns, "");
            if !skey.starts_with(&prefix) {
                continue;
            }
            let key = match String::from_utf8(skey[prefix.len()..].to_vec()) {
                Ok(k) => k,
                Err(_) => continue,
            };
            let in_range =
                key.as_str() >= rq.start_key.as_str() && (rq.end_key.is_empty() || key.as_str() < rq.end_key.as_str());
            if !in_range {
                continue;
            }
            match ver {
                Some(v) => {
                    merged.insert(key, *v);
                }
                None => {
                    merged.remove(&key);
                }
            }
        }
        Ok(RangeQueryInfo::hash_results(
            merged.iter().map(|(k, v)| (k.as_str(), *v)),
        ))
    }

    /// Applies the writesets of all valid transactions in `block` and
    /// advances the savepoint, atomically (validation stage 3).
    ///
    /// Re-committing an already-committed block is harmless: versions are
    /// deterministic, so the operation is idempotent — exactly what crash
    /// recovery needs.
    pub fn commit_block(
        &self,
        block: &Block,
        flags: &[TxValidationCode],
    ) -> Result<(), LedgerError> {
        assert_eq!(flags.len(), block.envelopes.len());
        let mut batch = WriteBatch::new();
        for (i, env) in block.envelopes.iter().enumerate() {
            if flags[i] != TxValidationCode::Valid {
                continue;
            }
            let tx = match &env.content {
                EnvelopeContent::Transaction(tx) => tx,
                EnvelopeContent::Config(_) => continue,
            };
            let version = Version::new(block.header.number, i as u32);
            let tx_id = tx.tx_id();
            for ns_rw in &tx.response_payload.rwset.ns_rwsets {
                for write in &ns_rw.writes {
                    let skey = state_key(&ns_rw.namespace, &write.key);
                    match &write.value {
                        Some(value) => {
                            batch.put(skey, encode_value(version, value));
                        }
                        None => {
                            batch.delete(skey);
                        }
                    }
                    // History index entry (append-only; idempotent on
                    // recovery replay because the key is deterministic).
                    let mut hval = Vec::with_capacity(33);
                    hval.extend_from_slice(&tx_id.0);
                    hval.push(write.is_delete() as u8);
                    batch.put(history_key(&ns_rw.namespace, &write.key, version), hval);
                }
            }
        }
        batch.put(
            SAVEPOINT_KEY.to_vec(),
            block.header.number.to_le_bytes().to_vec(),
        );
        self.store.write(batch)?;
        Ok(())
    }

    /// Returns the chronological write history of a key: every committed
    /// (valid) transaction that set or deleted it.
    pub fn history(&self, ns: &str, key: &str) -> Result<Vec<HistoryEntry>, LedgerError> {
        let lo = history_prefix(ns, key);
        let mut hi = lo.clone();
        *hi.last_mut().expect("separator") = 1;
        let mut entries = Vec::new();
        for (k, raw) in self.store.scan(&lo, &hi) {
            if raw.len() != 33 || k.len() < lo.len() + 12 {
                return Err(LedgerError::Corrupt);
            }
            let suffix = &k[k.len() - 12..];
            let block_num = u64::from_be_bytes(suffix[..8].try_into().expect("8 bytes"));
            let tx_num = u32::from_be_bytes(suffix[8..].try_into().expect("4 bytes"));
            let mut tx_bytes = [0u8; 32];
            tx_bytes.copy_from_slice(&raw[..32]);
            entries.push(HistoryEntry {
                version: Version::new(block_num, tx_num),
                tx_id: TxId(tx_bytes),
                is_delete: raw[32] == 1,
            });
        }
        Ok(entries)
    }

    /// Access to the underlying store (checkpointing, stats).
    pub fn store(&self) -> &Arc<dyn StateStore> {
        &self.store
    }
}

/// A transaction simulator: executes chaincode state accesses against a
/// stable snapshot while building the read-write set (paper Sec. 3.2).
///
/// Note the Fabric semantics faithfully reproduced here: `get_state` reads
/// the *committed snapshot*, never the simulator's own pending writes — a
/// transaction that writes a key and reads it back within the same
/// simulation observes the pre-transaction value.
pub struct TxSimulator {
    snap: Box<dyn StateSnapshot>,
    namespaces: BTreeMap<String, NsBuilder>,
}

#[derive(Default)]
struct NsBuilder {
    reads: Vec<KeyRead>,
    read_keys: HashSet<String>,
    range_queries: Vec<RangeQueryInfo>,
    writes: BTreeMap<String, Option<Vec<u8>>>,
}

impl TxSimulator {
    /// Reads a key, recording it (with its observed version) in the readset.
    pub fn get_state(&mut self, ns: &str, key: &str) -> Result<Option<Vec<u8>>, LedgerError> {
        let entry = match self.snap.get(&state_key(ns, key)) {
            Some(raw) => Some(decode_value(&raw)?),
            None => None,
        };
        let builder = self.namespaces.entry(ns.to_string()).or_default();
        if builder.read_keys.insert(key.to_string()) {
            builder.reads.push(KeyRead {
                key: key.to_string(),
                version: entry.as_ref().map(|(v, _)| *v),
            });
        }
        Ok(entry.map(|(_, value)| value))
    }

    /// Stages a write of `key` to `value`.
    pub fn put_state(&mut self, ns: &str, key: &str, value: impl Into<Vec<u8>>) {
        self.namespaces
            .entry(ns.to_string())
            .or_default()
            .writes
            .insert(key.to_string(), Some(value.into()));
    }

    /// Stages a deletion of `key`.
    pub fn del_state(&mut self, ns: &str, key: &str) {
        self.namespaces
            .entry(ns.to_string())
            .or_default()
            .writes
            .insert(key.to_string(), None);
    }

    /// Executes a range query `[start, end)` over the snapshot, recording
    /// the hashed `(key, version)` results for phantom detection.
    pub fn get_state_range(
        &mut self,
        ns: &str,
        start: &str,
        end: &str,
    ) -> Result<Vec<(String, Vec<u8>)>, LedgerError> {
        let lo = state_key(ns, start);
        let hi = if end.is_empty() {
            let mut k = state_key(ns, "");
            *k.last_mut().expect("separator present") = 1;
            k
        } else {
            state_key(ns, end)
        };
        let prefix_len = STATE_PREFIX.len() + ns.len() + 1;
        let mut results = Vec::new();
        let mut versions = Vec::new();
        for (k, raw) in self.snap.scan(&lo, &hi) {
            let key =
                String::from_utf8(k[prefix_len..].to_vec()).map_err(|_| LedgerError::Corrupt)?;
            let (version, value) = decode_value(&raw)?;
            versions.push((key.clone(), version));
            results.push((key, value));
        }
        let hash = RangeQueryInfo::hash_results(versions.iter().map(|(k, v)| (k.as_str(), *v)));
        self.namespaces
            .entry(ns.to_string())
            .or_default()
            .range_queries
            .push(RangeQueryInfo {
                start_key: start.to_string(),
                end_key: end.to_string(),
                results_hash: hash,
            });
        Ok(results)
    }

    /// Finishes the simulation, producing a deterministic read-write set:
    /// namespaces and writes are key-ordered, reads in first-access order.
    pub fn into_rwset(self) -> TxReadWriteSet {
        let ns_rwsets = self
            .namespaces
            .into_iter()
            .map(|(namespace, builder)| NsReadWriteSet {
                namespace,
                reads: builder.reads,
                range_queries: builder.range_queries,
                writes: builder
                    .writes
                    .into_iter()
                    .map(|(key, value)| KeyWrite { key, value })
                    .collect(),
            })
            .collect();
        TxReadWriteSet { ns_rwsets }
    }
}
