//! A deterministic in-memory cluster driver for testing and simulation.
//!
//! Messages are queued per destination and delivered when the harness is
//! stepped; a fault hook can drop or delay messages to model partitions,
//! loss, and crashes, all reproducibly from a seed.

use std::collections::VecDeque;

use crate::message::{Message, NodeId, Output};
use crate::node::{ProposeError, RaftConfig, RaftNode, Role};

#[cfg(test)]
use crate::node::ReplicationMode;

/// A queued message in flight.
#[derive(Clone, Debug)]
pub struct InFlight {
    /// Sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// Payload.
    pub message: Message,
}

/// Fault-injection decision for one message.
pub enum Fate {
    /// Deliver normally.
    Deliver,
    /// Silently drop.
    Drop,
}

/// A deterministic cluster of Raft nodes with an in-memory network.
pub struct Cluster {
    /// The nodes, indexed by position (node ids are `1..=n`).
    pub nodes: Vec<RaftNode>,
    network: VecDeque<InFlight>,
    /// Committed entries observed per node, for agreement checks.
    pub committed: Vec<Vec<(u64, Vec<u8>)>>,
    /// Fault hook consulted for every delivery.
    fault: Box<dyn FnMut(&InFlight) -> Fate>,
}

impl Cluster {
    /// Creates a cluster of `n` nodes (ids `1..=n`).
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_fault(n, seed, Box::new(|_| Fate::Deliver))
    }

    /// Creates a cluster with a fault-injection hook.
    pub fn with_fault(n: usize, seed: u64, fault: Box<dyn FnMut(&InFlight) -> Fate>) -> Self {
        Self::with_config_and_fault(n, seed, RaftConfig::default(), fault)
    }

    /// Creates a cluster with an explicit node config (replication mode,
    /// window sizes, timeouts) and a fault-injection hook.
    pub fn with_config_and_fault(
        n: usize,
        seed: u64,
        config: RaftConfig,
        fault: Box<dyn FnMut(&InFlight) -> Fate>,
    ) -> Self {
        let ids: Vec<NodeId> = (1..=n as u64).collect();
        let nodes = ids
            .iter()
            .map(|&id| {
                let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p != id).collect();
                RaftNode::new(id, peers, config, seed)
            })
            .collect();
        Cluster {
            nodes,
            network: VecDeque::new(),
            committed: vec![Vec::new(); n],
            fault,
        }
    }

    fn node_index(&self, id: NodeId) -> usize {
        id as usize - 1
    }

    fn absorb(&mut self, from: NodeId, outputs: Vec<Output>) {
        for output in outputs {
            match output {
                Output::Send { to, message } => self.network.push_back(InFlight {
                    from,
                    to,
                    message,
                }),
                Output::Committed { index, data } => {
                    let idx = self.node_index(from);
                    self.committed[idx].push((index, data));
                }
                Output::BecameLeader | Output::SteppedDown => {}
            }
        }
    }

    /// Ticks every node once and delivers all queued messages to quiescence.
    pub fn tick(&mut self) {
        for i in 0..self.nodes.len() {
            let id = self.nodes[i].id();
            let outputs = self.nodes[i].tick();
            self.absorb(id, outputs);
        }
        self.drain();
    }

    /// Delivers queued messages until the network is empty.
    pub fn drain(&mut self) {
        let mut budget = 100_000;
        while let Some(inflight) = self.network.pop_front() {
            budget -= 1;
            assert!(budget > 0, "network did not quiesce");
            match (self.fault)(&inflight) {
                Fate::Drop => continue,
                Fate::Deliver => {
                    let idx = self.node_index(inflight.to);
                    let outputs = self.nodes[idx].step(inflight.from, inflight.message);
                    let id = inflight.to;
                    self.absorb(id, outputs);
                }
            }
        }
    }

    /// Runs ticks until a leader exists (panics after `max_ticks`).
    pub fn elect_leader(&mut self, max_ticks: usize) -> NodeId {
        for _ in 0..max_ticks {
            self.tick();
            if let Some(leader) = self.leader() {
                return leader;
            }
        }
        panic!("no leader elected within {max_ticks} ticks");
    }

    /// The current leader, if exactly one node believes it leads.
    pub fn leader(&self) -> Option<NodeId> {
        let leaders: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.role() == Role::Leader)
            .map(|n| n.id())
            .collect();
        // With partitions there can transiently be two "leaders" in
        // different terms; report the one with the highest term.
        leaders
            .into_iter()
            .max_by_key(|&id| self.nodes[self.node_index(id)].term())
    }

    /// Proposes via the current leader.
    pub fn propose(&mut self, data: Vec<u8>) -> Result<u64, ProposeError> {
        let leader = self.leader().ok_or(ProposeError::NotLeader(None))?;
        let idx = self.node_index(leader);
        let (index, outputs) = self.nodes[idx].propose(data)?;
        self.absorb(leader, outputs);
        self.drain();
        Ok(index)
    }

    /// Asserts the core safety property: all nodes' committed sequences are
    /// prefixes of one another (agreement).
    pub fn assert_agreement(&self) {
        let longest = self
            .committed
            .iter()
            .max_by_key(|c| c.len())
            .expect("at least one node");
        for (node, committed) in self.committed.iter().enumerate() {
            for (i, entry) in committed.iter().enumerate() {
                assert_eq!(
                    entry, &longest[i],
                    "node {} disagrees at commit position {}",
                    node + 1,
                    i
                );
            }
        }
    }

    /// At most one leader per term across the whole cluster history can't be
    /// checked retroactively here; this checks the instantaneous version:
    /// no two nodes lead in the same term right now.
    pub fn assert_single_leader_per_term(&self) {
        let mut seen = std::collections::HashMap::new();
        for node in &self.nodes {
            if node.role() == Role::Leader {
                if let Some(prev) = seen.insert(node.term(), node.id()) {
                    panic!(
                        "two leaders in term {}: {} and {}",
                        node.term(),
                        prev,
                        node.id()
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn elects_a_leader() {
        let mut cluster = Cluster::new(3, 42);
        let leader = cluster.elect_leader(200);
        assert!((1..=3).contains(&leader));
        cluster.assert_single_leader_per_term();
    }

    #[test]
    fn single_node_cluster_self_elects_and_commits() {
        let mut cluster = Cluster::new(1, 1);
        cluster.elect_leader(100);
        cluster.propose(b"solo".to_vec()).unwrap();
        assert_eq!(cluster.committed[0], vec![(1, b"solo".to_vec())]);
    }

    #[test]
    fn replicates_and_commits() {
        let mut cluster = Cluster::new(5, 7);
        cluster.elect_leader(200);
        for i in 0..10u8 {
            cluster.propose(vec![i]).unwrap();
        }
        // A couple more ticks to flush commit notifications to followers.
        for _ in 0..10 {
            cluster.tick();
        }
        for committed in &cluster.committed {
            assert_eq!(committed.len(), 10);
        }
        cluster.assert_agreement();
    }

    #[test]
    fn commits_in_order() {
        let mut cluster = Cluster::new(3, 9);
        cluster.elect_leader(200);
        for i in 0..20u8 {
            cluster.propose(vec![i]).unwrap();
        }
        for _ in 0..10 {
            cluster.tick();
        }
        for committed in &cluster.committed {
            let indices: Vec<u64> = committed.iter().map(|(i, _)| *i).collect();
            let expected: Vec<u64> = (1..=20).collect();
            assert_eq!(indices, expected);
        }
    }

    #[test]
    fn survives_message_loss() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut cluster = Cluster::with_fault(
            3,
            13,
            Box::new(move |_| {
                if rng.gen_bool(0.2) {
                    Fate::Drop
                } else {
                    Fate::Deliver
                }
            }),
        );
        cluster.elect_leader(2000);
        let mut proposed = 0;
        while proposed < 10 {
            if cluster.propose(vec![proposed]).is_ok() {
                proposed += 1;
            }
            cluster.tick();
        }
        for _ in 0..300 {
            cluster.tick();
        }
        cluster.assert_agreement();
        // With 20% loss the cluster still commits everything eventually.
        assert!(cluster.committed.iter().any(|c| c.len() == 10));
    }

    #[test]
    fn leader_failover() {
        let mut cluster = Cluster::new(3, 21);
        let first = cluster.elect_leader(200);
        cluster.propose(b"before".to_vec()).unwrap();
        for _ in 0..5 {
            cluster.tick();
        }
        // Partition the leader away: drop everything to/from it.
        let dead = first;
        cluster.fault = Box::new(move |m| {
            if m.from == dead || m.to == dead {
                Fate::Drop
            } else {
                Fate::Deliver
            }
        });
        // A new leader emerges among the remaining nodes.
        let mut new_leader = None;
        for _ in 0..500 {
            cluster.tick();
            if let Some(l) = cluster.leader() {
                if l != dead
                    && cluster.nodes[(l - 1) as usize].term()
                        > cluster.nodes[(dead - 1) as usize].term()
                {
                    new_leader = Some(l);
                    break;
                }
            }
        }
        let new_leader = new_leader.expect("failover leader");
        // Proposals via the new leader commit on the healthy majority.
        let idx = (new_leader - 1) as usize;
        let (_, outputs) = cluster.nodes[idx].propose(b"after".to_vec()).unwrap();
        cluster.absorb(new_leader, outputs);
        cluster.drain();
        for _ in 0..50 {
            cluster.tick();
        }
        cluster.assert_agreement();
        let healthy: Vec<_> = (0..3).filter(|&i| i != (dead - 1) as usize).collect();
        for &i in &healthy {
            assert!(
                cluster.committed[i]
                    .iter()
                    .any(|(_, d)| d == b"after"),
                "healthy node {} missing post-failover commit",
                i + 1
            );
        }
    }

    #[test]
    fn old_leader_rejoins_and_converges() {
        let mut cluster = Cluster::new(3, 33);
        let first = cluster.elect_leader(200);
        cluster.propose(b"a".to_vec()).unwrap();
        let dead = first;
        cluster.fault = Box::new(move |m| {
            if m.from == dead || m.to == dead {
                Fate::Drop
            } else {
                Fate::Deliver
            }
        });
        for _ in 0..500 {
            cluster.tick();
            if cluster.leader().map(|l| l != dead).unwrap_or(false) {
                break;
            }
        }
        cluster.propose(b"b".to_vec()).ok();
        // Heal the partition.
        cluster.fault = Box::new(|_| Fate::Deliver);
        for _ in 0..100 {
            cluster.tick();
        }
        cluster.assert_agreement();
        cluster.assert_single_leader_per_term();
        // Everyone eventually commits both entries.
        for committed in &cluster.committed {
            let data: Vec<&[u8]> = committed.iter().map(|(_, d)| d.as_slice()).collect();
            assert!(data.contains(&b"a".as_slice()));
            assert!(data.contains(&b"b".as_slice()));
        }
    }

    #[test]
    fn not_leader_rejected() {
        let mut cluster = Cluster::new(3, 5);
        let leader = cluster.elect_leader(200);
        let follower = (1..=3).find(|&i| i != leader).unwrap();
        let idx = (follower - 1) as usize;
        match cluster.nodes[idx].propose(b"x".to_vec()) {
            Err(ProposeError::NotLeader(hint)) => {
                assert_eq!(hint, Some(leader));
            }
            other => panic!("expected NotLeader, got {other:?}"),
        }
    }

    #[test]
    fn compaction_bounds_log_and_replication_continues() {
        let mut cluster = Cluster::new(3, 55);
        let leader = cluster.elect_leader(200);
        for i in 0..10u8 {
            cluster.propose(vec![i]).unwrap();
        }
        for _ in 0..10 {
            cluster.tick();
        }
        // Every follower matched all 10 entries; the leader may compact
        // everything it applied.
        let idx = (leader - 1) as usize;
        assert_eq!(cluster.nodes[idx].compact(10), 10);
        assert_eq!(cluster.nodes[idx].log_offset(), 10);
        assert_eq!(cluster.nodes[idx].retained_len(), 0);
        assert_eq!(cluster.nodes[idx].log_len(), 10, "total length unchanged");
        assert!(cluster.nodes[idx].entry(5).is_none(), "compacted entry gone");

        // Followers compact independently, clamped to what they applied.
        for i in 0..3usize {
            if i != idx {
                let applied = cluster.nodes[i].commit_index();
                assert_eq!(cluster.nodes[i].compact(u64::MAX), applied);
            }
        }

        // Replication continues seamlessly past the compaction point.
        for i in 10..15u8 {
            cluster.propose(vec![i]).unwrap();
        }
        for _ in 0..10 {
            cluster.tick();
        }
        cluster.assert_agreement();
        for committed in &cluster.committed {
            assert_eq!(committed.len(), 15);
        }
        assert!(cluster.nodes[idx].entry(12).is_some());
    }

    #[test]
    fn leader_compaction_clamps_to_slowest_follower() {
        let mut cluster = Cluster::new(3, 66);
        let leader = cluster.elect_leader(200);
        cluster.propose(b"seed".to_vec()).unwrap();
        for _ in 0..5 {
            cluster.tick();
        }
        // Partition one follower; the other still forms a majority.
        let straggler = (1..=3).find(|&i| i != leader).unwrap();
        cluster.fault = Box::new(move |m| {
            if m.from == straggler || m.to == straggler {
                Fate::Drop
            } else {
                Fate::Deliver
            }
        });
        for i in 0..8u8 {
            cluster.propose(vec![i]).unwrap();
            cluster.tick();
        }
        let idx = (leader - 1) as usize;
        let committed = cluster.nodes[idx].commit_index();
        assert!(committed >= 9, "majority still commits");
        // The straggler only matched the first entry, so compaction is
        // clamped there — the entries it still needs stay in the log.
        let offset = cluster.nodes[idx].compact(committed);
        assert!(
            offset <= 1,
            "compaction must not discard entries the straggler needs (offset {offset})"
        );
        // Heal; the straggler catches up entirely from the retained log.
        cluster.fault = Box::new(|_| Fate::Deliver);
        for _ in 0..100 {
            cluster.tick();
        }
        cluster.assert_agreement();
        let s_idx = (straggler - 1) as usize;
        assert_eq!(cluster.committed[s_idx].len(), 9);
    }

    #[test]
    fn follower_catches_up_from_compacted_leader_boundary() {
        // Compact on the leader right at the matched frontier, then keep
        // proposing: appends reference the boundary term (snapshot_term)
        // and must stay consistent.
        let mut cluster = Cluster::new(3, 91);
        cluster.elect_leader(200);
        for i in 0..4u8 {
            cluster.propose(vec![i]).unwrap();
        }
        for _ in 0..10 {
            cluster.tick();
        }
        for node in &mut cluster.nodes {
            node.compact(u64::MAX);
        }
        for i in 4..8u8 {
            cluster.propose(vec![i]).unwrap();
        }
        for _ in 0..10 {
            cluster.tick();
        }
        cluster.assert_agreement();
        for committed in &cluster.committed {
            assert_eq!(committed.len(), 8);
        }
    }

    fn run_mixed_schedule(mode: ReplicationMode, seed: u64) -> Vec<Vec<(u64, Vec<u8>)>> {
        let config = RaftConfig {
            mode,
            max_batch: 4,
            max_inflight: 3,
            ..RaftConfig::default()
        };
        let mut cluster =
            Cluster::with_config_and_fault(3, seed, config, Box::new(|_| Fate::Deliver));
        cluster.elect_leader(200);
        for i in 0..30u8 {
            cluster.propose(vec![i]).unwrap();
            if i % 3 == 0 {
                cluster.tick();
            }
        }
        for _ in 0..20 {
            cluster.tick();
        }
        cluster.committed
    }

    #[test]
    fn pipelined_commit_stream_matches_lockstep_oracle() {
        for seed in [11u64, 42, 97] {
            let lockstep = run_mixed_schedule(ReplicationMode::Lockstep, seed);
            let pipelined = run_mixed_schedule(ReplicationMode::Pipelined, seed);
            assert_eq!(lockstep, pipelined, "seed {seed}: commit streams diverge");
            assert!(
                lockstep.iter().all(|c| c.len() == 30),
                "seed {seed}: oracle did not commit everything"
            );
        }
    }

    #[test]
    fn pipelined_window_bounds_unacked_appends() {
        // Blackhole every message from one follower back to the cluster:
        // the leader never sees its acks, so after `max_inflight` batched
        // appends the window is full and the leader must stop sending it
        // entries (probes stay empty). Stall retransmission is disabled
        // via a huge `retransmit_beats`.
        let config = RaftConfig {
            max_batch: 1,
            max_inflight: 4,
            retransmit_beats: u64::MAX,
            ..RaftConfig::default()
        };
        let mut cluster =
            Cluster::with_config_and_fault(3, 7, config, Box::new(|_| Fate::Deliver));
        let leader = cluster.elect_leader(200);
        let mute = (1..=3u64).find(|&i| i != leader).unwrap();
        let sent = std::rc::Rc::new(std::cell::Cell::new(0usize));
        let counter = sent.clone();
        cluster.fault = Box::new(move |m| {
            if m.from == mute {
                return Fate::Drop;
            }
            if m.to == mute {
                if let Message::AppendEntries { entries, .. } = &m.message {
                    if !entries.is_empty() {
                        counter.set(counter.get() + 1);
                    }
                }
            }
            Fate::Deliver
        });
        for i in 0..50u8 {
            cluster.propose(vec![i]).unwrap();
            cluster.tick();
        }
        assert_eq!(
            sent.get(),
            4,
            "leader must stop at max_inflight unacked appends"
        );
        // The healthy majority still commits everything.
        let leader_idx = (leader - 1) as usize;
        assert_eq!(cluster.committed[leader_idx].len(), 50);
    }

    #[test]
    fn pipelined_gap_retransmit_heals_dropped_batches() {
        // Drop a contiguous run of entry-carrying appends to one follower
        // (probes and everything else still flow), creating a log gap.
        // The follower's conflict hints on the probes must drive go-back-N
        // retransmission until it converges — without any heal step.
        let config = RaftConfig {
            max_batch: 2,
            max_inflight: 4,
            ..RaftConfig::default()
        };
        let mut cluster =
            Cluster::with_config_and_fault(3, 19, config, Box::new(|_| Fate::Deliver));
        let leader = cluster.elect_leader(200);
        let victim = (1..=3u64).find(|&i| i != leader).unwrap();
        let dropped = std::rc::Rc::new(std::cell::Cell::new(0usize));
        let counter = dropped.clone();
        cluster.fault = Box::new(move |m| {
            if m.to == victim && counter.get() < 6 {
                if let Message::AppendEntries { entries, .. } = &m.message {
                    if !entries.is_empty() {
                        counter.set(counter.get() + 1);
                        return Fate::Drop;
                    }
                }
            }
            Fate::Deliver
        });
        for i in 0..20u8 {
            cluster.propose(vec![i]).unwrap();
            cluster.tick();
        }
        assert_eq!(dropped.get(), 6, "fault hook dropped the expected batches");
        for _ in 0..30 {
            cluster.tick();
        }
        cluster.assert_agreement();
        let victim_idx = (victim - 1) as usize;
        assert_eq!(
            cluster.committed[victim_idx].len(),
            20,
            "victim recovered every dropped batch via retransmission"
        );
    }

    #[test]
    fn lockstep_survives_message_loss() {
        // Keep the oracle path itself covered under loss.
        let mut rng = StdRng::seed_from_u64(31);
        let config = RaftConfig {
            mode: ReplicationMode::Lockstep,
            ..RaftConfig::default()
        };
        let mut cluster = Cluster::with_config_and_fault(
            3,
            31,
            config,
            Box::new(move |_| {
                if rng.gen_bool(0.2) {
                    Fate::Drop
                } else {
                    Fate::Deliver
                }
            }),
        );
        cluster.elect_leader(2000);
        let mut proposed = 0;
        while proposed < 10 {
            if cluster.propose(vec![proposed]).is_ok() {
                proposed += 1;
            }
            cluster.tick();
        }
        for _ in 0..300 {
            cluster.tick();
        }
        cluster.assert_agreement();
        assert!(cluster.committed.iter().any(|c| c.len() == 10));
    }

    #[test]
    fn agreement_under_random_partitions() {
        // Randomized stress: alternate partitions and healing, keep
        // proposing, assert agreement at every step.
        let mut driver_rng = StdRng::seed_from_u64(77);
        for trial in 0..5 {
            let seed = driver_rng.gen::<u64>();
            let mut cluster = Cluster::new(5, seed);
            let mut victim: Option<NodeId> = None;
            let mut phase_rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            for round in 0..60 {
                if round % 15 == 0 {
                    // New random partition victim (or heal).
                    victim = if phase_rng.gen_bool(0.5) {
                        Some(phase_rng.gen_range(1..=5))
                    } else {
                        None
                    };
                    let v = victim;
                    cluster.fault = Box::new(move |m| match v {
                        Some(dead) if m.from == dead || m.to == dead => Fate::Drop,
                        _ => Fate::Deliver,
                    });
                }
                cluster.tick();
                if cluster.leader().map(|l| Some(l) != victim).unwrap_or(false) {
                    let _ = cluster.propose(vec![round as u8]);
                }
                cluster.assert_agreement();
            }
            // Heal and converge.
            cluster.fault = Box::new(|_| Fate::Deliver);
            for _ in 0..200 {
                cluster.tick();
            }
            cluster.assert_agreement();
            assert!(
                !cluster.committed.iter().all(|c| c.is_empty()),
                "trial {trial}: nothing committed at all"
            );
        }
    }
}
