//! # fabric-raft
//!
//! A from-scratch Raft consensus implementation (Ongaro & Ousterhout),
//! serving as the crash-fault-tolerant replicated log behind the ordering
//! service — the role Apache Kafka + ZooKeeper play in the paper (Sec. 4.2).
//! Production Fabric later replaced Kafka with exactly this substitution
//! (etcd-raft), which is why a Raft log is the faithful CFT stand-in.
//!
//! The implementation is a pure state machine ([`RaftNode`]): drivers feed
//! ticks and messages, and execute the returned [`Output`]s. This keeps the
//! protocol deterministic and testable under seeded fault injection (see
//! [`cluster::Cluster`]) and lets the same code run threaded or inside the
//! discrete-event simulator.
//!
//! Scope notes: leadership transfer and membership change are not
//! implemented — the ordering service uses a static OSN cluster per
//! channel and persists delivered blocks itself, so the Raft log is a
//! transport, not the system of record. Log growth is bounded by
//! *anchored compaction* ([`RaftNode::compact`]): the driver passes the
//! latest peer state-checkpoint height and the node discards applied
//! entries up to it, clamped so no follower ever needs a discarded entry
//! (which is why no InstallSnapshot RPC is required).

pub mod cluster;
pub mod message;
pub mod node;

pub use cluster::{Cluster, Fate, InFlight};
pub use message::{LogEntry, Message, NodeId, Output};
pub use node::{ProposeError, RaftConfig, RaftNode, ReplicationMode, Role};
