//! The Raft consensus state machine.
//!
//! A [`RaftNode`] is a pure, deterministic state machine: the driver feeds
//! it clock ticks ([`RaftNode::tick`]) and messages ([`RaftNode::step`]) and
//! executes the [`Output`]s it returns. Determinism (given the seed) makes
//! whole-cluster behaviour reproducible in tests and in the discrete-event
//! simulator.
//!
//! Log indices are 1-based; index 0 is the empty-log sentinel.

use std::collections::{HashMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::message::{LogEntry, Message, NodeId, Output};

/// A node's current role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Passive replica.
    Follower,
    /// Election in progress.
    Candidate,
    /// Cluster leader.
    Leader,
}

/// Errors returned by [`RaftNode::propose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposeError {
    /// Only the leader accepts proposals; retry at the hinted leader.
    NotLeader(Option<NodeId>),
}

/// How the leader replicates its log to followers.
///
/// `Lockstep` is the original one-append-in-flight path: the leader sends
/// one `AppendEntries` per follower and waits for the ack before shipping
/// the next batch, resending from `next_index` on every propose/heartbeat.
/// It is kept verbatim as the equivalence oracle for the pipelined path.
///
/// `Pipelined` keeps up to [`RaftConfig::max_inflight`] batched appends in
/// flight per follower before any ack returns. The leader tracks each
/// unacked `(prev, last)` window; a failure ack or a stalled window
/// triggers go-back-N retransmission from the acked frontier. Assumes the
/// transport preserves per-connection FIFO order (both the in-memory
/// cluster and the simnet do); reordering only costs duplicate
/// retransmissions, never safety.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReplicationMode {
    /// One append in flight per follower (the pre-pipelining baseline).
    Lockstep,
    /// Windowed, batched appends in flight before acks return.
    #[default]
    Pipelined,
}

/// Tunable timing, in ticks (the driver defines the tick length).
#[derive(Clone, Copy, Debug)]
pub struct RaftConfig {
    /// Minimum election timeout.
    pub election_timeout_min: u64,
    /// Maximum election timeout (randomized per node and per election).
    pub election_timeout_max: u64,
    /// Leader heartbeat interval.
    pub heartbeat_interval: u64,
    /// Maximum entries shipped in one `AppendEntries`.
    pub max_batch: usize,
    /// Replication strategy (see [`ReplicationMode`]).
    pub mode: ReplicationMode,
    /// Maximum unacked `AppendEntries` per follower (`Pipelined` only).
    pub max_inflight: usize,
    /// Heartbeat intervals without ack progress on a non-empty in-flight
    /// window before the leader assumes loss and retransmits from the
    /// acked frontier (`Pipelined` only). Failure acks retransmit
    /// immediately; this is the fallback for lost acks.
    pub retransmit_beats: u64,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_timeout_min: 10,
            election_timeout_max: 20,
            heartbeat_interval: 3,
            max_batch: 512,
            mode: ReplicationMode::Pipelined,
            max_inflight: 8,
            retransmit_beats: 2,
        }
    }
}

/// A single Raft participant.
pub struct RaftNode {
    id: NodeId,
    peers: Vec<NodeId>,
    config: RaftConfig,
    rng: StdRng,

    // Persistent state (exposed via `hard_state` for drivers that persist).
    term: u64,
    voted_for: Option<NodeId>,
    log: Vec<LogEntry>,
    /// Entries `1..=log_offset` have been compacted away; `log[0]` is the
    /// entry at index `log_offset + 1`.
    log_offset: u64,
    /// Term of the entry at `log_offset` (the compaction boundary), needed
    /// for consistency checks that reference it.
    snapshot_term: u64,

    // Volatile state.
    role: Role,
    commit_index: u64,
    last_applied: u64,
    leader_hint: Option<NodeId>,
    ticks_since_activity: u64,
    election_deadline: u64,
    votes: HashSet<NodeId>,

    // Leader state.
    next_index: HashMap<NodeId, u64>,
    match_index: HashMap<NodeId, u64>,
    ticks_since_heartbeat: u64,

    // Pipelined-replication leader state. `inflight[peer]` holds the
    // unacked `(prev, last)` index windows in send order; `pipeline_next`
    // is the optimistic send frontier (>= `next_index`, which only
    // advances on acks); `stalled_beats` counts heartbeats without ack
    // progress while the window is non-empty.
    inflight: HashMap<NodeId, VecDeque<(u64, u64)>>,
    pipeline_next: HashMap<NodeId, u64>,
    stalled_beats: HashMap<NodeId, u64>,
}

impl RaftNode {
    /// Creates a node. `peers` lists the *other* cluster members; `seed`
    /// drives election-timeout randomization.
    pub fn new(id: NodeId, peers: Vec<NodeId>, config: RaftConfig, seed: u64) -> Self {
        let mut node = RaftNode {
            id,
            peers,
            config,
            rng: StdRng::seed_from_u64(seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            term: 0,
            voted_for: None,
            log: Vec::new(),
            log_offset: 0,
            snapshot_term: 0,
            role: Role::Follower,
            commit_index: 0,
            last_applied: 0,
            leader_hint: None,
            ticks_since_activity: 0,
            election_deadline: 0,
            votes: HashSet::new(),
            next_index: HashMap::new(),
            match_index: HashMap::new(),
            ticks_since_heartbeat: 0,
            inflight: HashMap::new(),
            pipeline_next: HashMap::new(),
            stalled_beats: HashMap::new(),
        };
        node.reset_election_deadline();
        node
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Highest committed log index.
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// Last known leader, if any.
    pub fn leader_hint(&self) -> Option<NodeId> {
        if self.role == Role::Leader {
            Some(self.id)
        } else {
            self.leader_hint
        }
    }

    /// Total log length (compacted prefix included).
    pub fn log_len(&self) -> u64 {
        self.log_offset + self.log.len() as u64
    }

    /// Number of entries retained in memory (after compaction).
    pub fn retained_len(&self) -> u64 {
        self.log.len() as u64
    }

    /// Highest compacted index; entries at or below it are gone.
    pub fn log_offset(&self) -> u64 {
        self.log_offset
    }

    /// Reads a log entry by 1-based index; `None` for out-of-range *and*
    /// compacted indices.
    pub fn entry(&self, index: u64) -> Option<&LogEntry> {
        if index <= self.log_offset {
            return None;
        }
        self.log.get((index - self.log_offset) as usize - 1)
    }

    /// Discards applied log entries up to `upto`, anchoring the compaction
    /// point so the node never discards an entry it may still need:
    ///
    /// * never beyond `commit_index` / `last_applied`;
    /// * on a leader, never beyond the slowest follower's `match_index`
    ///   (so every follower can still be repaired from the log, without an
    ///   InstallSnapshot RPC — a freshly elected leader therefore
    ///   compacts nothing until followers respond).
    ///
    /// The ordering service calls this with the latest peer state
    /// checkpoint height: blocks covered by a durable peer snapshot no
    /// longer need the Raft log as their transport, and a consenter that
    /// somehow lags below the anchor recovers via state transfer instead.
    ///
    /// Returns the new `log_offset`.
    pub fn compact(&mut self, upto: u64) -> u64 {
        let mut limit = upto.min(self.commit_index).min(self.last_applied);
        if self.role == Role::Leader {
            let min_match = self
                .peers
                .iter()
                .map(|p| *self.match_index.get(p).unwrap_or(&0))
                .min()
                .unwrap_or(limit);
            limit = limit.min(min_match);
        }
        if limit > self.log_offset {
            self.snapshot_term = self.term_at(limit);
            self.log.drain(..(limit - self.log_offset) as usize);
            self.log_offset = limit;
        }
        self.log_offset
    }

    fn quorum(&self) -> usize {
        self.peers.len().div_ceil(2) + 1
    }

    fn last_log_index(&self) -> u64 {
        self.log_offset + self.log.len() as u64
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map(|e| e.term).unwrap_or(self.snapshot_term)
    }

    fn term_at(&self, index: u64) -> u64 {
        if index == 0 {
            0
        } else if index <= self.log_offset {
            // Compacted entries are committed, hence identical on every
            // node; only the boundary term is ever compared.
            self.snapshot_term
        } else {
            self.log
                .get((index - self.log_offset) as usize - 1)
                .map(|e| e.term)
                .unwrap_or(0)
        }
    }

    fn reset_election_deadline(&mut self) {
        self.ticks_since_activity = 0;
        self.election_deadline = self
            .rng
            .gen_range(self.config.election_timeout_min..=self.config.election_timeout_max);
    }

    /// Advances the node's clock by one tick.
    pub fn tick(&mut self) -> Vec<Output> {
        let mut out = Vec::new();
        match self.role {
            Role::Leader => {
                self.ticks_since_heartbeat += 1;
                if self.ticks_since_heartbeat >= self.config.heartbeat_interval {
                    self.ticks_since_heartbeat = 0;
                    match self.config.mode {
                        ReplicationMode::Lockstep => self.broadcast_append(&mut out),
                        ReplicationMode::Pipelined => self.heartbeat_pipelined(&mut out),
                    }
                }
            }
            Role::Follower | Role::Candidate => {
                self.ticks_since_activity += 1;
                if self.ticks_since_activity >= self.election_deadline {
                    self.start_election(&mut out);
                }
            }
        }
        out
    }

    /// Proposes a command; only valid on the leader.
    pub fn propose(&mut self, data: Vec<u8>) -> Result<(u64, Vec<Output>), ProposeError> {
        if self.role != Role::Leader {
            return Err(ProposeError::NotLeader(self.leader_hint()));
        }
        self.log.push(LogEntry {
            term: self.term,
            data,
        });
        let index = self.last_log_index();
        let mut out = Vec::new();
        // Single-node cluster commits immediately.
        self.maybe_advance_commit(&mut out);
        match self.config.mode {
            ReplicationMode::Lockstep => {
                self.broadcast_append(&mut out);
                self.ticks_since_heartbeat = 0;
            }
            ReplicationMode::Pipelined => {
                // Ship to every follower with window room; the heartbeat
                // cadence is left alone so commit-index propagation and
                // the stall detector keep running under constant load.
                let peers = self.peers.clone();
                for peer in peers {
                    self.pump(peer, &mut out);
                }
            }
        }
        Ok((index, out))
    }

    /// Handles a message from `from`.
    pub fn step(&mut self, from: NodeId, message: Message) -> Vec<Output> {
        let mut out = Vec::new();
        // Any higher term converts us to follower first.
        if message.term() > self.term {
            self.become_follower(message.term(), &mut out);
        }
        match message {
            Message::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => self.on_request_vote(from, term, last_log_index, last_log_term, &mut out),
            Message::RequestVoteResponse { term, granted } => {
                self.on_vote_response(from, term, granted, &mut out)
            }
            Message::AppendEntries {
                term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => self.on_append_entries(
                from,
                term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
                &mut out,
            ),
            Message::AppendEntriesResponse {
                term,
                success,
                match_index,
            } => self.on_append_response(from, term, success, match_index, &mut out),
        }
        out
    }

    fn become_follower(&mut self, term: u64, out: &mut Vec<Output>) {
        let was_leader = self.role == Role::Leader;
        self.term = term;
        self.role = Role::Follower;
        self.voted_for = None;
        self.votes.clear();
        self.reset_election_deadline();
        if was_leader {
            out.push(Output::SteppedDown);
        }
    }

    fn start_election(&mut self, out: &mut Vec<Output>) {
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        self.votes.clear();
        self.votes.insert(self.id);
        self.reset_election_deadline();
        if self.votes.len() >= self.quorum() {
            // Single-node cluster.
            self.become_leader(out);
            return;
        }
        let msg = Message::RequestVote {
            term: self.term,
            last_log_index: self.last_log_index(),
            last_log_term: self.last_log_term(),
        };
        for &peer in &self.peers {
            out.push(Output::Send {
                to: peer,
                message: msg.clone(),
            });
        }
    }

    fn on_request_vote(
        &mut self,
        from: NodeId,
        term: u64,
        last_log_index: u64,
        last_log_term: u64,
        out: &mut Vec<Output>,
    ) {
        let up_to_date = last_log_term > self.last_log_term()
            || (last_log_term == self.last_log_term() && last_log_index >= self.last_log_index());
        let grant = term == self.term
            && up_to_date
            && (self.voted_for.is_none() || self.voted_for == Some(from));
        if grant {
            self.voted_for = Some(from);
            self.reset_election_deadline();
        }
        out.push(Output::Send {
            to: from,
            message: Message::RequestVoteResponse {
                term: self.term,
                granted: grant,
            },
        });
    }

    fn on_vote_response(&mut self, from: NodeId, term: u64, granted: bool, out: &mut Vec<Output>) {
        if self.role != Role::Candidate || term != self.term || !granted {
            return;
        }
        self.votes.insert(from);
        if self.votes.len() >= self.quorum() {
            self.become_leader(out);
        }
    }

    fn become_leader(&mut self, out: &mut Vec<Output>) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.id);
        self.next_index.clear();
        self.match_index.clear();
        let next = self.last_log_index() + 1;
        for &peer in &self.peers {
            self.next_index.insert(peer, next);
            self.match_index.insert(peer, 0);
        }
        self.inflight.clear();
        self.pipeline_next.clear();
        self.stalled_beats.clear();
        for &peer in &self.peers {
            self.pipeline_next.insert(peer, next);
        }
        self.ticks_since_heartbeat = 0;
        out.push(Output::BecameLeader);
        // Both modes open with an empty probe at the log end (`next` is
        // `last + 1`, so `send_append` ships no entries): followers that
        // lag answer with a conflict hint and repair starts from there.
        self.broadcast_append(out);
    }

    fn broadcast_append(&mut self, out: &mut Vec<Output>) {
        let peers = self.peers.clone();
        for peer in peers {
            self.send_append(peer, out);
        }
    }

    fn send_append(&mut self, peer: NodeId, out: &mut Vec<Output>) {
        // A follower below the compaction point cannot be repaired from
        // the log; resume from the boundary (the driver is responsible
        // for state-transferring such a follower — see `compact`).
        let next = (*self.next_index.get(&peer).unwrap_or(&1)).max(self.log_offset + 1);
        let prev_log_index = next - 1;
        let prev_log_term = self.term_at(prev_log_index);
        let from = (next - 1 - self.log_offset) as usize;
        let to = (from + self.config.max_batch).min(self.log.len());
        let entries = if from < self.log.len() {
            self.log[from..to].to_vec()
        } else {
            Vec::new()
        };
        out.push(Output::Send {
            to: peer,
            message: Message::AppendEntries {
                term: self.term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit: self.commit_index,
            },
        });
    }

    /// The peer's optimistic send frontier: the index after the last
    /// entry shipped (acked or not), clamped to the repairable range.
    fn send_frontier(&self, peer: NodeId) -> u64 {
        let base = (*self.next_index.get(&peer).unwrap_or(&1)).max(self.log_offset + 1);
        (*self.pipeline_next.get(&peer).unwrap_or(&base)).max(base)
    }

    /// Fills the peer's in-flight window with batched appends starting at
    /// the send frontier, without waiting for acks (`Pipelined` only).
    fn pump(&mut self, peer: NodeId, out: &mut Vec<Output>) {
        let last = self.last_log_index();
        loop {
            if self.inflight.get(&peer).map_or(0, |q| q.len()) >= self.config.max_inflight {
                return;
            }
            let start = self.send_frontier(peer);
            if start > last {
                return;
            }
            let prev = start - 1;
            let from = (start - 1 - self.log_offset) as usize;
            let to = (from + self.config.max_batch).min(self.log.len());
            let entries = self.log[from..to].to_vec();
            let sent_last = prev + entries.len() as u64;
            out.push(Output::Send {
                to: peer,
                message: Message::AppendEntries {
                    term: self.term,
                    prev_log_index: prev,
                    prev_log_term: self.term_at(prev),
                    entries,
                    leader_commit: self.commit_index,
                },
            });
            self.inflight
                .entry(peer)
                .or_default()
                .push_back((prev, sent_last));
            self.pipeline_next.insert(peer, sent_last + 1);
        }
    }

    /// Empty append at the send frontier: keeps the follower's election
    /// timer reset, propagates `leader_commit`, and — because its `prev`
    /// covers everything shipped so far — doubles as a gap detector (a
    /// follower missing a lost in-flight batch answers with a conflict
    /// hint, triggering immediate go-back-N retransmission).
    fn probe(&mut self, peer: NodeId, out: &mut Vec<Output>) {
        let prev = self.send_frontier(peer) - 1;
        out.push(Output::Send {
            to: peer,
            message: Message::AppendEntries {
                term: self.term,
                prev_log_index: prev,
                prev_log_term: self.term_at(prev),
                entries: Vec::new(),
                leader_commit: self.commit_index,
            },
        });
    }

    /// Abandons the peer's unacked window and rewinds the send frontier
    /// to `next_index` (the acked frontier after back-off), so the next
    /// `pump` retransmits everything outstanding (go-back-N).
    fn reset_pipeline(&mut self, peer: NodeId) {
        self.inflight.entry(peer).or_default().clear();
        let next = *self.next_index.get(&peer).unwrap_or(&1);
        self.pipeline_next.insert(peer, next);
        self.stalled_beats.insert(peer, 0);
    }

    fn heartbeat_pipelined(&mut self, out: &mut Vec<Output>) {
        let peers = self.peers.clone();
        for peer in peers {
            // Fallback stall detector: if the window has been non-empty
            // with no ack progress for `retransmit_beats` heartbeats, the
            // acks themselves were probably lost — retransmit.
            if self.inflight.get(&peer).is_some_and(|q| !q.is_empty()) {
                let stalled = self.stalled_beats.entry(peer).or_insert(0);
                *stalled += 1;
                if *stalled >= self.config.retransmit_beats {
                    self.reset_pipeline(peer);
                }
            }
            self.pump(peer, out);
            self.probe(peer, out);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append_entries(
        &mut self,
        from: NodeId,
        term: u64,
        prev_log_index: u64,
        prev_log_term: u64,
        entries: Vec<LogEntry>,
        leader_commit: u64,
        out: &mut Vec<Output>,
    ) {
        if term < self.term {
            out.push(Output::Send {
                to: from,
                message: Message::AppendEntriesResponse {
                    term: self.term,
                    success: false,
                    match_index: 0,
                },
            });
            return;
        }
        // Valid leader for this term.
        if self.role != Role::Follower {
            self.role = Role::Follower;
            self.votes.clear();
        }
        self.leader_hint = Some(from);
        self.reset_election_deadline();

        // A prefix that ends inside our compacted region is committed and
        // identical cluster-wide: skip the already-compacted entries and
        // anchor the consistency check at the compaction boundary.
        let (prev_log_index, prev_log_term, entries) = if prev_log_index < self.log_offset {
            let skip = ((self.log_offset - prev_log_index) as usize).min(entries.len());
            (self.log_offset, self.snapshot_term, entries[skip..].to_vec())
        } else {
            (prev_log_index, prev_log_term, entries)
        };

        // Consistency check.
        if prev_log_index > self.last_log_index()
            || self.term_at(prev_log_index) != prev_log_term
        {
            out.push(Output::Send {
                to: from,
                message: Message::AppendEntriesResponse {
                    term: self.term,
                    success: false,
                    // Hint: retry from our log end (simple but effective
                    // conflict back-off).
                    match_index: self.last_log_index().min(prev_log_index.saturating_sub(1)),
                },
            });
            return;
        }
        // Append, truncating conflicts. Entries at or below the
        // compaction boundary are committed and identical; never touched.
        let mut index = prev_log_index;
        for entry in entries {
            index += 1;
            if index <= self.log_offset {
                continue;
            }
            if self.term_at(index) != entry.term {
                self.log.truncate((index - self.log_offset) as usize - 1);
                self.log.push(entry);
            }
        }
        if leader_commit > self.commit_index {
            self.commit_index = leader_commit.min(self.last_log_index());
            self.emit_applied(out);
        }
        out.push(Output::Send {
            to: from,
            message: Message::AppendEntriesResponse {
                term: self.term,
                success: true,
                match_index: index,
            },
        });
    }

    fn on_append_response(
        &mut self,
        from: NodeId,
        term: u64,
        success: bool,
        match_index: u64,
        out: &mut Vec<Output>,
    ) {
        if self.role != Role::Leader || term != self.term {
            return;
        }
        match self.config.mode {
            ReplicationMode::Lockstep => {
                if success {
                    self.match_index.insert(from, match_index);
                    self.next_index.insert(from, match_index + 1);
                    self.maybe_advance_commit(out);
                    // Ship any remaining entries immediately.
                    if *self.next_index.get(&from).unwrap_or(&1) <= self.last_log_index() {
                        self.send_append(from, out);
                    }
                } else {
                    // Back off toward the follower's hint and retry, never
                    // moving forward on failure.
                    let current = *self.next_index.get(&from).unwrap_or(&1);
                    let backed_off = (match_index + 1).min(current.saturating_sub(1)).max(1);
                    self.next_index.insert(from, backed_off);
                    self.send_append(from, out);
                }
            }
            ReplicationMode::Pipelined => {
                self.on_append_response_pipelined(from, success, match_index, out)
            }
        }
    }

    /// Pipelined ack handling. Acks for a windowed stream arrive out of
    /// order relative to retransmissions and probes, so `match_index`
    /// only moves forward (`max`), acked windows are dropped from the
    /// front of the in-flight queue, and stale failure hints below the
    /// confirmed match are ignored (the follower is already known
    /// consistent through `match_index`).
    fn on_append_response_pipelined(
        &mut self,
        from: NodeId,
        success: bool,
        match_index: u64,
        out: &mut Vec<Output>,
    ) {
        let old_match = *self.match_index.get(&from).unwrap_or(&0);
        if success {
            let new_match = old_match.max(match_index);
            self.match_index.insert(from, new_match);
            let next = *self.next_index.get(&from).unwrap_or(&1);
            self.next_index.insert(from, next.max(new_match + 1));
            let queue = self.inflight.entry(from).or_default();
            let before = queue.len();
            while queue.front().is_some_and(|&(_, last)| last <= new_match) {
                queue.pop_front();
            }
            if queue.len() < before || new_match > old_match {
                self.stalled_beats.insert(from, 0);
            }
            self.maybe_advance_commit(out);
            self.pump(from, out);
        } else {
            if match_index < old_match {
                return;
            }
            let current = *self.next_index.get(&from).unwrap_or(&1);
            let backed_off = (match_index + 1).min(current.saturating_sub(1)).max(1);
            self.next_index.insert(from, backed_off);
            self.reset_pipeline(from);
            self.pump(from, out);
        }
    }

    fn maybe_advance_commit(&mut self, out: &mut Vec<Output>) {
        let last = self.last_log_index();
        for candidate in (self.commit_index + 1..=last).rev() {
            // Only entries from the current term commit by counting
            // (Raft §5.4.2).
            if self.term_at(candidate) != self.term {
                continue;
            }
            let replicas = 1 + self
                .match_index
                .values()
                .filter(|&&m| m >= candidate)
                .count();
            if replicas >= self.quorum() {
                self.commit_index = candidate;
                self.emit_applied(out);
                break;
            }
        }
    }

    fn emit_applied(&mut self, out: &mut Vec<Output>) {
        while self.last_applied < self.commit_index {
            self.last_applied += 1;
            // `compact` never discards above `last_applied`, so the entry
            // is always retained.
            let slot = (self.last_applied - self.log_offset) as usize - 1;
            let data = self.log[slot].data.clone();
            out.push(Output::Committed {
                index: self.last_applied,
                data,
            });
        }
    }
}
