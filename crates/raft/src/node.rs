//! The Raft consensus state machine.
//!
//! A [`RaftNode`] is a pure, deterministic state machine: the driver feeds
//! it clock ticks ([`RaftNode::tick`]) and messages ([`RaftNode::step`]) and
//! executes the [`Output`]s it returns. Determinism (given the seed) makes
//! whole-cluster behaviour reproducible in tests and in the discrete-event
//! simulator.
//!
//! Log indices are 1-based; index 0 is the empty-log sentinel.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::message::{LogEntry, Message, NodeId, Output};

/// A node's current role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Passive replica.
    Follower,
    /// Election in progress.
    Candidate,
    /// Cluster leader.
    Leader,
}

/// Errors returned by [`RaftNode::propose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposeError {
    /// Only the leader accepts proposals; retry at the hinted leader.
    NotLeader(Option<NodeId>),
}

/// Tunable timing, in ticks (the driver defines the tick length).
#[derive(Clone, Copy, Debug)]
pub struct RaftConfig {
    /// Minimum election timeout.
    pub election_timeout_min: u64,
    /// Maximum election timeout (randomized per node and per election).
    pub election_timeout_max: u64,
    /// Leader heartbeat interval.
    pub heartbeat_interval: u64,
    /// Maximum entries shipped in one `AppendEntries`.
    pub max_batch: usize,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_timeout_min: 10,
            election_timeout_max: 20,
            heartbeat_interval: 3,
            max_batch: 512,
        }
    }
}

/// A single Raft participant.
pub struct RaftNode {
    id: NodeId,
    peers: Vec<NodeId>,
    config: RaftConfig,
    rng: StdRng,

    // Persistent state (exposed via `hard_state` for drivers that persist).
    term: u64,
    voted_for: Option<NodeId>,
    log: Vec<LogEntry>,
    /// Entries `1..=log_offset` have been compacted away; `log[0]` is the
    /// entry at index `log_offset + 1`.
    log_offset: u64,
    /// Term of the entry at `log_offset` (the compaction boundary), needed
    /// for consistency checks that reference it.
    snapshot_term: u64,

    // Volatile state.
    role: Role,
    commit_index: u64,
    last_applied: u64,
    leader_hint: Option<NodeId>,
    ticks_since_activity: u64,
    election_deadline: u64,
    votes: HashSet<NodeId>,

    // Leader state.
    next_index: HashMap<NodeId, u64>,
    match_index: HashMap<NodeId, u64>,
    ticks_since_heartbeat: u64,
}

impl RaftNode {
    /// Creates a node. `peers` lists the *other* cluster members; `seed`
    /// drives election-timeout randomization.
    pub fn new(id: NodeId, peers: Vec<NodeId>, config: RaftConfig, seed: u64) -> Self {
        let mut node = RaftNode {
            id,
            peers,
            config,
            rng: StdRng::seed_from_u64(seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            term: 0,
            voted_for: None,
            log: Vec::new(),
            log_offset: 0,
            snapshot_term: 0,
            role: Role::Follower,
            commit_index: 0,
            last_applied: 0,
            leader_hint: None,
            ticks_since_activity: 0,
            election_deadline: 0,
            votes: HashSet::new(),
            next_index: HashMap::new(),
            match_index: HashMap::new(),
            ticks_since_heartbeat: 0,
        };
        node.reset_election_deadline();
        node
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Highest committed log index.
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// Last known leader, if any.
    pub fn leader_hint(&self) -> Option<NodeId> {
        if self.role == Role::Leader {
            Some(self.id)
        } else {
            self.leader_hint
        }
    }

    /// Total log length (compacted prefix included).
    pub fn log_len(&self) -> u64 {
        self.log_offset + self.log.len() as u64
    }

    /// Number of entries retained in memory (after compaction).
    pub fn retained_len(&self) -> u64 {
        self.log.len() as u64
    }

    /// Highest compacted index; entries at or below it are gone.
    pub fn log_offset(&self) -> u64 {
        self.log_offset
    }

    /// Reads a log entry by 1-based index; `None` for out-of-range *and*
    /// compacted indices.
    pub fn entry(&self, index: u64) -> Option<&LogEntry> {
        if index <= self.log_offset {
            return None;
        }
        self.log.get((index - self.log_offset) as usize - 1)
    }

    /// Discards applied log entries up to `upto`, anchoring the compaction
    /// point so the node never discards an entry it may still need:
    ///
    /// * never beyond `commit_index` / `last_applied`;
    /// * on a leader, never beyond the slowest follower's `match_index`
    ///   (so every follower can still be repaired from the log, without an
    ///   InstallSnapshot RPC — a freshly elected leader therefore
    ///   compacts nothing until followers respond).
    ///
    /// The ordering service calls this with the latest peer state
    /// checkpoint height: blocks covered by a durable peer snapshot no
    /// longer need the Raft log as their transport, and a consenter that
    /// somehow lags below the anchor recovers via state transfer instead.
    ///
    /// Returns the new `log_offset`.
    pub fn compact(&mut self, upto: u64) -> u64 {
        let mut limit = upto.min(self.commit_index).min(self.last_applied);
        if self.role == Role::Leader {
            let min_match = self
                .peers
                .iter()
                .map(|p| *self.match_index.get(p).unwrap_or(&0))
                .min()
                .unwrap_or(limit);
            limit = limit.min(min_match);
        }
        if limit > self.log_offset {
            self.snapshot_term = self.term_at(limit);
            self.log.drain(..(limit - self.log_offset) as usize);
            self.log_offset = limit;
        }
        self.log_offset
    }

    fn quorum(&self) -> usize {
        (self.peers.len() + 1) / 2 + 1
    }

    fn last_log_index(&self) -> u64 {
        self.log_offset + self.log.len() as u64
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map(|e| e.term).unwrap_or(self.snapshot_term)
    }

    fn term_at(&self, index: u64) -> u64 {
        if index == 0 {
            0
        } else if index <= self.log_offset {
            // Compacted entries are committed, hence identical on every
            // node; only the boundary term is ever compared.
            self.snapshot_term
        } else {
            self.log
                .get((index - self.log_offset) as usize - 1)
                .map(|e| e.term)
                .unwrap_or(0)
        }
    }

    fn reset_election_deadline(&mut self) {
        self.ticks_since_activity = 0;
        self.election_deadline = self
            .rng
            .gen_range(self.config.election_timeout_min..=self.config.election_timeout_max);
    }

    /// Advances the node's clock by one tick.
    pub fn tick(&mut self) -> Vec<Output> {
        let mut out = Vec::new();
        match self.role {
            Role::Leader => {
                self.ticks_since_heartbeat += 1;
                if self.ticks_since_heartbeat >= self.config.heartbeat_interval {
                    self.ticks_since_heartbeat = 0;
                    self.broadcast_append(&mut out);
                }
            }
            Role::Follower | Role::Candidate => {
                self.ticks_since_activity += 1;
                if self.ticks_since_activity >= self.election_deadline {
                    self.start_election(&mut out);
                }
            }
        }
        out
    }

    /// Proposes a command; only valid on the leader.
    pub fn propose(&mut self, data: Vec<u8>) -> Result<(u64, Vec<Output>), ProposeError> {
        if self.role != Role::Leader {
            return Err(ProposeError::NotLeader(self.leader_hint()));
        }
        self.log.push(LogEntry {
            term: self.term,
            data,
        });
        let index = self.last_log_index();
        let mut out = Vec::new();
        // Single-node cluster commits immediately.
        self.maybe_advance_commit(&mut out);
        self.broadcast_append(&mut out);
        self.ticks_since_heartbeat = 0;
        Ok((index, out))
    }

    /// Handles a message from `from`.
    pub fn step(&mut self, from: NodeId, message: Message) -> Vec<Output> {
        let mut out = Vec::new();
        // Any higher term converts us to follower first.
        if message.term() > self.term {
            self.become_follower(message.term(), &mut out);
        }
        match message {
            Message::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => self.on_request_vote(from, term, last_log_index, last_log_term, &mut out),
            Message::RequestVoteResponse { term, granted } => {
                self.on_vote_response(from, term, granted, &mut out)
            }
            Message::AppendEntries {
                term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => self.on_append_entries(
                from,
                term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
                &mut out,
            ),
            Message::AppendEntriesResponse {
                term,
                success,
                match_index,
            } => self.on_append_response(from, term, success, match_index, &mut out),
        }
        out
    }

    fn become_follower(&mut self, term: u64, out: &mut Vec<Output>) {
        let was_leader = self.role == Role::Leader;
        self.term = term;
        self.role = Role::Follower;
        self.voted_for = None;
        self.votes.clear();
        self.reset_election_deadline();
        if was_leader {
            out.push(Output::SteppedDown);
        }
    }

    fn start_election(&mut self, out: &mut Vec<Output>) {
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        self.votes.clear();
        self.votes.insert(self.id);
        self.reset_election_deadline();
        if self.votes.len() >= self.quorum() {
            // Single-node cluster.
            self.become_leader(out);
            return;
        }
        let msg = Message::RequestVote {
            term: self.term,
            last_log_index: self.last_log_index(),
            last_log_term: self.last_log_term(),
        };
        for &peer in &self.peers {
            out.push(Output::Send {
                to: peer,
                message: msg.clone(),
            });
        }
    }

    fn on_request_vote(
        &mut self,
        from: NodeId,
        term: u64,
        last_log_index: u64,
        last_log_term: u64,
        out: &mut Vec<Output>,
    ) {
        let up_to_date = last_log_term > self.last_log_term()
            || (last_log_term == self.last_log_term() && last_log_index >= self.last_log_index());
        let grant = term == self.term
            && up_to_date
            && (self.voted_for.is_none() || self.voted_for == Some(from));
        if grant {
            self.voted_for = Some(from);
            self.reset_election_deadline();
        }
        out.push(Output::Send {
            to: from,
            message: Message::RequestVoteResponse {
                term: self.term,
                granted: grant,
            },
        });
    }

    fn on_vote_response(&mut self, from: NodeId, term: u64, granted: bool, out: &mut Vec<Output>) {
        if self.role != Role::Candidate || term != self.term || !granted {
            return;
        }
        self.votes.insert(from);
        if self.votes.len() >= self.quorum() {
            self.become_leader(out);
        }
    }

    fn become_leader(&mut self, out: &mut Vec<Output>) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.id);
        self.next_index.clear();
        self.match_index.clear();
        let next = self.last_log_index() + 1;
        for &peer in &self.peers {
            self.next_index.insert(peer, next);
            self.match_index.insert(peer, 0);
        }
        self.ticks_since_heartbeat = 0;
        out.push(Output::BecameLeader);
        self.broadcast_append(out);
    }

    fn broadcast_append(&mut self, out: &mut Vec<Output>) {
        let peers = self.peers.clone();
        for peer in peers {
            self.send_append(peer, out);
        }
    }

    fn send_append(&mut self, peer: NodeId, out: &mut Vec<Output>) {
        // A follower below the compaction point cannot be repaired from
        // the log; resume from the boundary (the driver is responsible
        // for state-transferring such a follower — see `compact`).
        let next = (*self.next_index.get(&peer).unwrap_or(&1)).max(self.log_offset + 1);
        let prev_log_index = next - 1;
        let prev_log_term = self.term_at(prev_log_index);
        let from = (next - 1 - self.log_offset) as usize;
        let to = (from + self.config.max_batch).min(self.log.len());
        let entries = if from < self.log.len() {
            self.log[from..to].to_vec()
        } else {
            Vec::new()
        };
        out.push(Output::Send {
            to: peer,
            message: Message::AppendEntries {
                term: self.term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit: self.commit_index,
            },
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append_entries(
        &mut self,
        from: NodeId,
        term: u64,
        prev_log_index: u64,
        prev_log_term: u64,
        entries: Vec<LogEntry>,
        leader_commit: u64,
        out: &mut Vec<Output>,
    ) {
        if term < self.term {
            out.push(Output::Send {
                to: from,
                message: Message::AppendEntriesResponse {
                    term: self.term,
                    success: false,
                    match_index: 0,
                },
            });
            return;
        }
        // Valid leader for this term.
        if self.role != Role::Follower {
            self.role = Role::Follower;
            self.votes.clear();
        }
        self.leader_hint = Some(from);
        self.reset_election_deadline();

        // A prefix that ends inside our compacted region is committed and
        // identical cluster-wide: skip the already-compacted entries and
        // anchor the consistency check at the compaction boundary.
        let (prev_log_index, prev_log_term, entries) = if prev_log_index < self.log_offset {
            let skip = ((self.log_offset - prev_log_index) as usize).min(entries.len());
            (self.log_offset, self.snapshot_term, entries[skip..].to_vec())
        } else {
            (prev_log_index, prev_log_term, entries)
        };

        // Consistency check.
        if prev_log_index > self.last_log_index()
            || self.term_at(prev_log_index) != prev_log_term
        {
            out.push(Output::Send {
                to: from,
                message: Message::AppendEntriesResponse {
                    term: self.term,
                    success: false,
                    // Hint: retry from our log end (simple but effective
                    // conflict back-off).
                    match_index: self.last_log_index().min(prev_log_index.saturating_sub(1)),
                },
            });
            return;
        }
        // Append, truncating conflicts. Entries at or below the
        // compaction boundary are committed and identical; never touched.
        let mut index = prev_log_index;
        for entry in entries {
            index += 1;
            if index <= self.log_offset {
                continue;
            }
            if self.term_at(index) != entry.term {
                self.log.truncate((index - self.log_offset) as usize - 1);
                self.log.push(entry);
            }
        }
        if leader_commit > self.commit_index {
            self.commit_index = leader_commit.min(self.last_log_index());
            self.emit_applied(out);
        }
        out.push(Output::Send {
            to: from,
            message: Message::AppendEntriesResponse {
                term: self.term,
                success: true,
                match_index: index,
            },
        });
    }

    fn on_append_response(
        &mut self,
        from: NodeId,
        term: u64,
        success: bool,
        match_index: u64,
        out: &mut Vec<Output>,
    ) {
        if self.role != Role::Leader || term != self.term {
            return;
        }
        if success {
            self.match_index.insert(from, match_index);
            self.next_index.insert(from, match_index + 1);
            self.maybe_advance_commit(out);
            // Ship any remaining entries immediately.
            if *self.next_index.get(&from).unwrap_or(&1) <= self.last_log_index() {
                self.send_append(from, out);
            }
        } else {
            // Back off toward the follower's hint and retry, never moving
            // forward on failure.
            let current = *self.next_index.get(&from).unwrap_or(&1);
            let backed_off = (match_index + 1).min(current.saturating_sub(1)).max(1);
            self.next_index.insert(from, backed_off);
            self.send_append(from, out);
        }
    }

    fn maybe_advance_commit(&mut self, out: &mut Vec<Output>) {
        let last = self.last_log_index();
        for candidate in (self.commit_index + 1..=last).rev() {
            // Only entries from the current term commit by counting
            // (Raft §5.4.2).
            if self.term_at(candidate) != self.term {
                continue;
            }
            let replicas = 1 + self
                .match_index
                .values()
                .filter(|&&m| m >= candidate)
                .count();
            if replicas >= self.quorum() {
                self.commit_index = candidate;
                self.emit_applied(out);
                break;
            }
        }
    }

    fn emit_applied(&mut self, out: &mut Vec<Output>) {
        while self.last_applied < self.commit_index {
            self.last_applied += 1;
            // `compact` never discards above `last_applied`, so the entry
            // is always retained.
            let slot = (self.last_applied - self.log_offset) as usize - 1;
            let data = self.log[slot].data.clone();
            out.push(Output::Committed {
                index: self.last_applied,
                data,
            });
        }
    }
}
