//! Raft RPC messages and log entries.

/// Identifier of a Raft node within its cluster.
pub type NodeId = u64;

/// One replicated log entry: the term it was proposed in and an opaque
/// payload (the ordering service stores serialized envelopes here).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Term in which the leader appended this entry.
    pub term: u64,
    /// Opaque command payload.
    pub data: Vec<u8>,
}

/// Raft protocol messages (Ongaro & Ousterhout, "In Search of an
/// Understandable Consensus Algorithm", §5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Candidate solicits a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// Reply to `RequestVote`.
    RequestVoteResponse {
        /// Responder's current term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader replicates entries (empty = heartbeat).
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Index of the entry immediately preceding `entries`.
        prev_log_index: u64,
        /// Term of that preceding entry.
        prev_log_term: u64,
        /// Entries to append.
        entries: Vec<LogEntry>,
        /// Leader's commit index.
        leader_commit: u64,
    },
    /// Reply to `AppendEntries`.
    AppendEntriesResponse {
        /// Responder's current term.
        term: u64,
        /// Whether the append was consistent and applied.
        success: bool,
        /// Highest log index known replicated at the responder (valid when
        /// `success`); hint for next retry otherwise.
        match_index: u64,
    },
}

impl Message {
    /// The term carried by the message.
    pub fn term(&self) -> u64 {
        match self {
            Message::RequestVote { term, .. }
            | Message::RequestVoteResponse { term, .. }
            | Message::AppendEntries { term, .. }
            | Message::AppendEntriesResponse { term, .. } => *term,
        }
    }
}

/// Events a [`crate::RaftNode`] asks its driver to act on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Output {
    /// Send `message` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        message: Message,
    },
    /// The entry at `index` is committed; apply `data` to the state machine.
    Committed {
        /// Log index (1-based).
        index: u64,
        /// Entry payload.
        data: Vec<u8>,
    },
    /// This node won an election.
    BecameLeader,
    /// This node stepped down from leadership.
    SteppedDown,
}
