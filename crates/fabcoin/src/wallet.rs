//! Client wallets and central banks (paper Sec. 5.1).
//!
//! A [`Wallet`] locally stores cryptographic keys that allow the client to
//! spend coins, tracks the unspent coin states owned by those keys, and
//! signs spend requests. A [`CentralBank`] holds the authority keys whose
//! signatures authorize mint transactions.

use std::collections::HashMap;

use fabric_crypto::SigningKey;
use fabric_primitives::ids::TxId;

use crate::types::{CoinState, FabcoinRequest};

/// An unspent coin tracked by a wallet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedCoin {
    /// The coin's KVS key (`txid.j`).
    pub key: String,
    /// Amount.
    pub amount: u64,
    /// Currency label.
    pub label: String,
    /// The owner public key (one of the wallet's addresses).
    pub owner: Vec<u8>,
}

/// A client wallet: keys plus the coins they own.
#[derive(Default)]
pub struct Wallet {
    /// Keys by SEC1 public-key bytes.
    keys: HashMap<Vec<u8>, SigningKey>,
    /// Unspent coins by KVS key.
    coins: HashMap<String, OwnedCoin>,
}

impl Wallet {
    /// Creates an empty wallet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates a new address (deterministic from `seed`), returning its
    /// SEC1 public key.
    pub fn new_address(&mut self, seed: &[u8]) -> Vec<u8> {
        let key = SigningKey::from_seed(seed);
        let public = key.verifying_key().to_sec1().to_vec();
        self.keys.insert(public.clone(), key);
        public
    }

    /// Records a coin observed on the ledger if one of our keys owns it.
    pub fn note_coin(&mut self, key: &str, state: &CoinState) {
        if self.keys.contains_key(&state.owner) {
            self.coins.insert(
                key.to_string(),
                OwnedCoin {
                    key: key.to_string(),
                    amount: state.amount,
                    label: state.label.clone(),
                    owner: state.owner.clone(),
                },
            );
        }
    }

    /// Forgets a coin once its spend has committed.
    pub fn note_spent(&mut self, key: &str) {
        self.coins.remove(key);
    }

    /// Total unspent value held for `label`.
    pub fn balance(&self, label: &str) -> u64 {
        self.coins
            .values()
            .filter(|c| c.label == label)
            .map(|c| c.amount)
            .sum()
    }

    /// The unspent coins for `label`, in deterministic (key) order.
    pub fn coins(&self, label: &str) -> Vec<OwnedCoin> {
        let mut coins: Vec<OwnedCoin> = self
            .coins
            .values()
            .filter(|c| c.label == label)
            .cloned()
            .collect();
        coins.sort_by(|a, b| a.key.cmp(&b.key));
        coins
    }

    /// Builds and signs a spend request consuming `inputs` (keys of coins
    /// this wallet owns) and creating `outputs`, bound to `txid`.
    pub fn create_spend(
        &self,
        inputs: &[String],
        outputs: Vec<CoinState>,
        txid: &TxId,
    ) -> Result<FabcoinRequest, String> {
        let mut request = FabcoinRequest {
            inputs: inputs.to_vec(),
            outputs,
            sigs: Vec::with_capacity(inputs.len()),
        };
        let message = request.signing_bytes(txid);
        for input in inputs {
            let coin = self
                .coins
                .get(input)
                .ok_or_else(|| format!("wallet does not own coin {input}"))?;
            let key = self
                .keys
                .get(&coin.owner)
                .ok_or_else(|| format!("missing key for coin {input}"))?;
            request.sigs.push(key.sign(&message).to_bytes().to_vec());
        }
        Ok(request)
    }
}

/// The central-bank authority for minting.
pub struct CentralBank {
    keys: Vec<SigningKey>,
}

impl CentralBank {
    /// Creates a bank with `n` keys derived from `seed`.
    pub fn new(n: usize, seed: &[u8]) -> Self {
        let keys = (0..n)
            .map(|i| {
                let mut s = seed.to_vec();
                s.extend_from_slice(&(i as u32).to_le_bytes());
                SigningKey::from_seed(&s)
            })
            .collect();
        CentralBank { keys }
    }

    /// The banks' SEC1 public keys (configured into the Fabcoin VSCC).
    pub fn public_keys(&self) -> Vec<Vec<u8>> {
        self.keys
            .iter()
            .map(|k| k.verifying_key().to_sec1().to_vec())
            .collect()
    }

    /// Builds a mint request creating `outputs`, signed by the first
    /// `signers` bank keys, bound to `txid`.
    pub fn create_mint(
        &self,
        outputs: Vec<CoinState>,
        txid: &TxId,
        signers: usize,
    ) -> FabcoinRequest {
        let mut request = FabcoinRequest {
            inputs: Vec::new(),
            outputs,
            sigs: Vec::with_capacity(signers),
        };
        let message = request.signing_bytes(txid);
        for key in self.keys.iter().take(signers) {
            request.sigs.push(key.sign(&message).to_bytes().to_vec());
        }
        request
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coin(owner: &[u8], amount: u64) -> CoinState {
        CoinState {
            amount,
            owner: owner.to_vec(),
            label: "FBC".into(),
        }
    }

    #[test]
    fn tracks_owned_coins_only() {
        let mut wallet = Wallet::new();
        let mine = wallet.new_address(b"w1");
        let theirs = SigningKey::from_seed(b"other")
            .verifying_key()
            .to_sec1()
            .to_vec();
        wallet.note_coin("t1.0", &coin(&mine, 10));
        wallet.note_coin("t1.1", &coin(&theirs, 20));
        assert_eq!(wallet.balance("FBC"), 10);
        assert_eq!(wallet.coins("FBC").len(), 1);
        assert_eq!(wallet.balance("USD"), 0);
    }

    #[test]
    fn spend_signature_verifies() {
        let mut wallet = Wallet::new();
        let addr = wallet.new_address(b"w1");
        wallet.note_coin("t1.0", &coin(&addr, 10));
        let txid = TxId::derive(b"c", &[7; 32]);
        let request = wallet
            .create_spend(
                &["t1.0".into()],
                vec![coin(&addr, 10)],
                &txid,
            )
            .unwrap();
        assert_eq!(request.sigs.len(), 1);
        let key = fabric_crypto::VerifyingKey::from_sec1(&addr).unwrap();
        let sig = fabric_crypto::Signature::from_bytes(&request.sigs[0]).unwrap();
        key.verify(&request.signing_bytes(&txid), &sig).unwrap();
    }

    #[test]
    fn cannot_spend_unknown_coin() {
        let wallet = Wallet::new();
        let txid = TxId::derive(b"c", &[7; 32]);
        assert!(wallet
            .create_spend(&["ghost.0".into()], vec![], &txid)
            .is_err());
    }

    #[test]
    fn note_spent_updates_balance() {
        let mut wallet = Wallet::new();
        let addr = wallet.new_address(b"w1");
        wallet.note_coin("t1.0", &coin(&addr, 10));
        wallet.note_spent("t1.0");
        assert_eq!(wallet.balance("FBC"), 0);
    }

    #[test]
    fn central_bank_threshold_signatures() {
        let bank = CentralBank::new(3, b"cb");
        assert_eq!(bank.public_keys().len(), 3);
        let txid = TxId::derive(b"c", &[1; 32]);
        let request = bank.create_mint(vec![coin(&[4u8; 65], 100)], &txid, 2);
        assert_eq!(request.sigs.len(), 2);
        assert!(request.is_mint());
        // Each signature verifies under a distinct bank key.
        let message = request.signing_bytes(&txid);
        for (i, sig_bytes) in request.sigs.iter().enumerate() {
            let key =
                fabric_crypto::VerifyingKey::from_sec1(&bank.public_keys()[i]).unwrap();
            let sig = fabric_crypto::Signature::from_bytes(sig_bytes).unwrap();
            key.verify(&message, &sig).unwrap();
        }
    }
}
