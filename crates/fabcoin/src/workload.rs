//! A closed-loop Fabcoin workload driving the full gateway path:
//! client → [`GatewayFront`] → endorsement pipeline → [`Gateway`] mempool
//! → ordering → deliver-mux commit, with deliver credits reported back to
//! the gateway so backpressure reaches the submitters.
//!
//! The account space is large (the standing bench runs a million
//! accounts) but addresses are derived lazily and only a funded subset
//! holds coins at the start; a zipfian (YCSB theta 0.99) picks hot
//! accounts, so the working set concentrates exactly the way the paper's
//! Fabcoin evaluation assumes. Coins are reserved while a spend is in
//! flight and returned on invalidation, so the closed loop never
//! manufactures its own MVCC conflicts — committed value is conserved and
//! [`GatewayWorkload::total_on_ledger`] proves it against the state DB.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use fabric_client::{Client, GatewayOutcome, RetryPolicy};
use fabric_gateway::{FrontConfig, FrontSubmit, Gateway, GatewayConfig, GatewayFront, SimClock};
use fabric_msp::Role;
use fabric_ordering::testkit::TestNet;
use fabric_ordering::OrderingCluster;
use fabric_peer::{
    CommitEvent, Deliver, DeliverMux, EndorseOptions, EndorsePipeline, Peer, PeerConfig,
    PipelineOptions,
};
use fabric_primitives::config::{BatchConfig, ConsensusType};
use fabric_primitives::ids::{ChannelId, TxId};
use fabric_primitives::transaction::EnvelopeContent;
use fabric_primitives::wire::Wire;

use crate::chaincode::FabcoinChaincode;
use crate::types::{coin_key, CoinState, FabcoinRequest, FABCOIN_NAMESPACE};
use crate::vscc::FabcoinVscc;
use crate::wallet::{CentralBank, Wallet};

/// YCSB-style zipfian generator over `0..items` with theta 0.99.
/// Rank 0 is the hottest item.
pub struct Zipfian {
    items: u64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow: f64,
}

impl Zipfian {
    /// Precomputes the distribution over `items` ranks.
    pub fn new(items: u64) -> Zipfian {
        let items = items.max(2);
        let theta = 0.99f64;
        let zetan: f64 = (1..=items).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            items,
            alpha,
            zetan,
            eta,
            half_pow: 1.0 + 0.5f64.powf(theta),
        }
    }

    /// Draws a rank from `u`, a uniform sample in `[0, 1)`.
    pub fn rank(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.half_pow {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.items as f64 * spread) as u64).min(self.items - 1)
    }
}

/// Workload construction knobs.
pub struct WorkloadConfig {
    /// Total account (address) space; the zipfian draws from it.
    pub accounts: u64,
    /// Accounts pre-funded with one coin each (the initial UTXO set).
    pub funded: u64,
    /// Denomination of every coin.
    pub coin_amount: u64,
    /// Mint outputs packed per mint transaction during setup.
    pub mint_batch: usize,
    /// Ordering backend.
    pub consensus: ConsensusType,
    /// Ordering-service nodes.
    pub osn_count: usize,
    /// Block-cutting parameters.
    pub batch: BatchConfig,
    /// Ordering-side gateway knobs.
    pub gateway: GatewayConfig,
    /// Endorse-side gateway knobs.
    pub front: FrontConfig,
    /// Endorsement pipeline knobs.
    pub endorse: EndorseOptions,
    /// Commit-side deliver credits (the backpressure window).
    pub deliver_credits: usize,
    /// Commit-side park window for out-of-order deliveries.
    pub park_window: usize,
    /// Client retry policy for gateway submissions.
    pub retry: RetryPolicy,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            accounts: 10_000,
            funded: 256,
            coin_amount: 100,
            mint_batch: 64,
            consensus: ConsensusType::Solo,
            osn_count: 1,
            batch: BatchConfig {
                max_message_count: 16,
                absolute_max_bytes: 32 * 1024 * 1024,
                preferred_max_bytes: 8 * 1024 * 1024,
                batch_timeout_ms: 100,
            },
            gateway: GatewayConfig::default(),
            front: FrontConfig::default(),
            endorse: EndorseOptions {
                workers: 2,
                ..EndorseOptions::default()
            },
            deliver_credits: 8,
            park_window: 32,
            retry: RetryPolicy::default(),
        }
    }
}

/// Outcome of one closed-loop transfer attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferOutcome {
    /// Admitted into the gateway mempool (commitment pending).
    Submitted,
    /// The endorse-side front kept shedding it.
    ShedEndorse,
    /// The ordering-side gateway kept shedding it.
    ShedOrder,
    /// No funded account had a spendable coin (everything in flight).
    NoCoin,
}

/// A spend whose commit event has not been processed yet.
struct Pending {
    from: u64,
    coin: String,
    amount: u64,
    fee: u64,
    submitted_ms: u64,
}

/// Workload-level counters and samples.
#[derive(Clone, Debug, Default)]
pub struct WorkloadStats {
    /// Transfers committed valid.
    pub committed: u64,
    /// Transfers committed invalid (their coin went back in play).
    pub invalidated: u64,
    /// Transfers shed at the endorse front.
    pub shed_endorse: u64,
    /// Transfers shed at the ordering gateway.
    pub shed_order: u64,
    /// Transfer attempts that found no spendable coin.
    pub no_coin: u64,
    /// Balance queries served.
    pub queries: u64,
    /// Submit→commit latency (simulated ms) per committed transfer.
    pub latencies_ms: Vec<u64>,
    /// Fee of each committed transfer.
    pub committed_fees: Vec<u64>,
}

/// The closed-loop Fabcoin deployment behind both gateways.
pub struct GatewayWorkload {
    /// Test-network fixtures (CAs, genesis, channel).
    pub net: TestNet,
    /// The endorsing/committing peer.
    pub peer: Peer,
    /// Its endorsement pipeline.
    pub endorse: EndorsePipeline,
    /// The endorse-side gateway.
    pub front: GatewayFront,
    /// The ordering-side gateway.
    pub gateway: Gateway,
    /// The ordering cluster.
    pub ordering: OrderingCluster,
    /// The commit-side deliver mux (reports credits to the gateway).
    pub mux: DeliverMux,
    /// The simulated clock every component shares.
    pub clock: SimClock,
    events: crossbeam::channel::Receiver<CommitEvent>,
    client: Client,
    bank: CentralBank,
    wallet: Wallet,
    zipf: Zipfian,
    retry: RetryPolicy,
    /// Account → derived address (lazily populated).
    addresses: HashMap<u64, Vec<u8>>,
    /// Address → account (for crediting committed outputs).
    account_of: HashMap<Vec<u8>, u64>,
    /// Account → spendable (not in-flight) coins, deterministic order.
    available: BTreeMap<u64, Vec<(String, u64)>>,
    /// In-flight spends by transaction id.
    inflight: HashMap<TxId, Pending>,
    /// Next ordered block to hand to the mux.
    delivered_next: u64,
    accounts: u64,
    coin_label: String,
    stats: WorkloadStats,
}

impl GatewayWorkload {
    /// Stands the deployment up and funds the initial accounts (the mint
    /// prefix is deterministic, so two workloads built from the same
    /// config replay identical setup blocks).
    pub fn new(config: WorkloadConfig) -> Self {
        let net = TestNet::with_batch(
            &["Org1"],
            config.consensus,
            config.osn_count,
            config.batch,
        );
        let ordering = OrderingCluster::new(
            config.consensus,
            net.orderers(config.osn_count),
            vec![net.genesis.clone()],
        )
        .expect("genesis config is valid");
        let genesis = ordering.deliver(&net.channel, 0).expect("genesis exists");
        let bank = CentralBank::new(1, b"gateway-workload-cb");
        let identity = fabric_msp::issue_identity(
            &net.org_cas[0],
            "peer0.org1",
            Role::Peer,
            b"gateway-workload-peer",
        );
        let peer = Peer::join(
            identity,
            &genesis,
            Arc::new(fabric_kvstore::MemBackend::new()),
            PeerConfig {
                runtime: fabric_chaincode::RuntimeConfig {
                    exec_timeout: None,
                    ..Default::default()
                },
                sync_writes: false,
                ..Default::default()
            },
        )
        .expect("peer joins channel");
        peer.install_chaincode(FABCOIN_NAMESPACE, Arc::new(FabcoinChaincode));
        peer.register_vscc(
            FABCOIN_NAMESPACE,
            Arc::new(FabcoinVscc::new(bank.public_keys(), 1)),
        );
        let endorse = peer.endorse_pipeline(config.endorse);
        let mux = DeliverMux::new(2);
        mux.attach(
            net.channel.clone(),
            &peer,
            PipelineOptions {
                deliver_credits: config.deliver_credits,
                park_window: config.park_window,
                ..Default::default()
            },
        )
        .expect("attach commit pipeline");
        let events = mux.events(&net.channel).expect("channel attached");
        let client_identity = fabric_msp::issue_identity(
            &net.org_cas[0],
            "client.org1",
            Role::Client,
            b"gateway-workload-client",
        );
        let client = Client::new(client_identity, net.channel.clone());
        let delivered_next = peer.height();
        let mut workload = GatewayWorkload {
            front: GatewayFront::new(config.front),
            gateway: Gateway::new(config.gateway),
            clock: SimClock::new(),
            events,
            client,
            bank,
            wallet: Wallet::new(),
            zipf: Zipfian::new(config.accounts),
            retry: config.retry,
            addresses: HashMap::new(),
            account_of: HashMap::new(),
            available: BTreeMap::new(),
            inflight: HashMap::new(),
            delivered_next,
            accounts: config.accounts,
            coin_label: "FBC".to_string(),
            stats: WorkloadStats::default(),
            net,
            peer,
            endorse,
            ordering,
            mux,
        };
        workload.fund(config.funded, config.coin_amount, config.mint_batch);
        workload
    }

    /// The address of `account`, derived on first use.
    pub fn address(&mut self, account: u64) -> Vec<u8> {
        if let Some(addr) = self.addresses.get(&account) {
            return addr.clone();
        }
        let addr = self
            .wallet
            .new_address(format!("acct-{account}").as_bytes());
        self.addresses.insert(account, addr.clone());
        self.account_of.insert(addr.clone(), account);
        addr
    }

    /// Mints one coin per funded account, `mint_batch` outputs per
    /// transaction, and settles so every coin is committed and spendable.
    fn fund(&mut self, funded: u64, coin_amount: u64, mint_batch: usize) {
        let mint_batch = mint_batch.max(1);
        let mut account = 0u64;
        while account < funded {
            let batch_end = (account + mint_batch as u64).min(funded);
            let outputs: Vec<CoinState> = (account..batch_end)
                .map(|a| CoinState {
                    amount: coin_amount,
                    owner: self.address(a),
                    label: self.coin_label.clone(),
                })
                .collect();
            let nonce = self.client.next_nonce();
            let txid = TxId::derive(&self.client.identity().serialized().to_wire(), &nonce);
            let request = self.bank.create_mint(outputs, &txid, 1);
            let proposal = self.client.create_proposal_with_nonce(
                FABCOIN_NAMESPACE,
                "mint",
                vec![request.to_wire()],
                nonce,
            );
            // Setup path: endorse and broadcast directly (the measured
            // region is the transfer phase, not funding).
            let responses = self
                .client
                .collect_endorsements(&proposal, &[&self.peer])
                .expect("mint endorses");
            let envelope = self.client.assemble_transaction(&proposal, &responses);
            self.ordering.broadcast(envelope).expect("mint broadcasts");
            account = batch_end;
        }
        self.settle(10_000);
    }

    /// One zipfian-chosen closed-loop transfer: pick a hot sender with a
    /// spendable coin, a zipfian receiver anywhere in the account space,
    /// endorse through the front, and submit through the gateway (honoring
    /// `RetryAfter` with the client's backoff policy).
    pub fn transfer(&mut self, u_from: f64, u_to: f64, fee: u64) -> TransferOutcome {
        // Sender: a few zipfian draws, then the first account with a
        // spendable coin (deterministic BTreeMap order).
        let mut from = None;
        for spread in 0..8u64 {
            let candidate = (self.zipf.rank(u_from) + spread * 37) % self.accounts;
            if self.available.get(&candidate).is_some_and(|c| !c.is_empty()) {
                from = Some(candidate);
                break;
            }
        }
        let Some(from) = from.or_else(|| {
            self.available
                .iter()
                .find(|(_, coins)| !coins.is_empty())
                .map(|(&a, _)| a)
        }) else {
            self.stats.no_coin += 1;
            return TransferOutcome::NoCoin;
        };
        let to = self.zipf.rank(u_to);
        let to_addr = self.address(to);
        let (coin, amount) = self
            .available
            .get_mut(&from)
            .and_then(|coins| coins.pop())
            .expect("sender chosen with a coin");
        let nonce = self.client.next_nonce();
        let txid = TxId::derive(&self.client.identity().serialized().to_wire(), &nonce);
        let request = self
            .wallet
            .create_spend(
                std::slice::from_ref(&coin),
                vec![CoinState {
                    amount,
                    owner: to_addr,
                    label: self.coin_label.clone(),
                }],
                &txid,
            )
            .expect("wallet owns the reserved coin");
        let signed = self.client.create_proposal_with_nonce(
            FABCOIN_NAMESPACE,
            "spend",
            vec![request.to_wire()],
            nonce,
        );

        // Endorse through the front, honoring its retry hints (bounded).
        let mut attempt = signed.clone();
        let mut response = None;
        for _ in 0..self.retry.max_attempts.max(1) {
            match self.front.submit(&self.endorse, attempt, self.clock.now_ms()) {
                FrontSubmit::Admitted(ticket) => {
                    response = ticket.wait().ok();
                    break;
                }
                FrontSubmit::Duplicate => break,
                FrontSubmit::RetryAfter { after_ms, proposal: p, .. } => {
                    self.clock.advance(after_ms);
                    self.pump();
                    attempt = *p;
                }
            }
        }
        let Some(response) = response else {
            self.available.get_mut(&from).expect("entry exists").push((coin, amount));
            self.stats.shed_endorse += 1;
            return TransferOutcome::ShedEndorse;
        };
        let envelope = self
            .client
            .assemble_transaction(&signed, std::slice::from_ref(&response));

        // Submit through the ordering-side gateway with jittered backoff;
        // the pump keeps the rest of the system moving between attempts.
        let Self {
            ref client,
            ref mut gateway,
            ref mut clock,
            ref mut ordering,
            ref mut mux,
            ref mut delivered_next,
            ref net,
            ref retry,
            ..
        } = *self;
        let result = client.submit_via_gateway(
            gateway,
            clock,
            envelope,
            fee,
            *retry,
            |gw, _now| {
                Self::pump_inner(gw, ordering, mux, delivered_next, &net.channel);
            },
        );
        match result {
            Ok(GatewayOutcome::Admitted { .. }) | Ok(GatewayOutcome::AlreadySubmitted) => {
                self.inflight.insert(
                    txid,
                    Pending {
                        from,
                        coin,
                        amount,
                        fee,
                        submitted_ms: self.clock.now_ms(),
                    },
                );
                TransferOutcome::Submitted
            }
            Err(_) => {
                self.available.get_mut(&from).expect("entry exists").push((coin, amount));
                self.stats.shed_order += 1;
                TransferOutcome::ShedOrder
            }
        }
    }

    /// A read-only balance query through the endorse front (no ordering).
    pub fn query_balance(&mut self, u: f64) -> Option<u64> {
        let account = self.zipf.rank(u);
        let addr = self.address(account);
        let proposal = self.client.create_proposal(
            FABCOIN_NAMESPACE,
            "balance",
            vec![addr, self.coin_label.clone().into_bytes()],
        );
        let mut proposal = proposal;
        for _ in 0..4 {
            match self.front.submit(&self.endorse, proposal, self.clock.now_ms()) {
                FrontSubmit::Admitted(ticket) => {
                    let response = ticket.wait().ok()?;
                    self.stats.queries += 1;
                    let raw = &response.payload.response.payload;
                    return Some(u64::from_le_bytes(raw[..8].try_into().ok()?));
                }
                FrontSubmit::Duplicate => return None,
                FrontSubmit::RetryAfter { after_ms, proposal: p, .. } => {
                    self.clock.advance(after_ms);
                    self.pump();
                    proposal = *p;
                }
            }
        }
        None
    }

    /// Drains the gateway into ordering, ticks the orderers, delivers cut
    /// blocks into the mux, and reports remaining credits back to the
    /// gateway — one turn of the end-to-end loop.
    pub fn pump(&mut self) {
        let Self {
            ref mut gateway,
            ref mut ordering,
            ref mut mux,
            ref mut delivered_next,
            ref net,
            ..
        } = *self;
        Self::pump_inner(gateway, ordering, mux, delivered_next, &net.channel);
    }

    fn pump_inner(
        gateway: &mut Gateway,
        ordering: &mut OrderingCluster,
        mux: &mut DeliverMux,
        delivered_next: &mut u64,
        channel: &ChannelId,
    ) {
        gateway.drain_into(ordering);
        ordering.tick();
        while let Some(block) = ordering.deliver(channel, *delivered_next) {
            let payload = block.to_wire();
            match mux
                .deliver(channel, *delivered_next, &payload)
                .expect("well-formed delivery")
            {
                Deliver::Saturated => break,
                _ => *delivered_next += 1,
            }
        }
        let _ = mux.pump(channel);
        if let Some(credits) = mux.credits(channel) {
            gateway.report_downstream(credits);
        }
    }

    /// Processes every commit event that has arrived: updates wallets and
    /// spendable coins, releases in-flight reservations, and records
    /// latency/fee samples for committed transfers.
    pub fn collect_events(&mut self) {
        while let Ok(event) = self.events.try_recv() {
            let block = self
                .peer
                .get_block(event.block_num)
                .ok()
                .flatten()
                .expect("committed block readable");
            for (env, flag) in block.envelopes.iter().zip(&event.validity) {
                let EnvelopeContent::Transaction(tx) = &env.content else {
                    continue;
                };
                if tx.response_payload.chaincode.name != FABCOIN_NAMESPACE {
                    continue;
                }
                let txid = tx.tx_id();
                let pending = self.inflight.remove(&txid);
                if !flag.is_valid() {
                    if let Some(p) = pending {
                        // The coin was never spent: back in play.
                        self.available.entry(p.from).or_default().push((p.coin, p.amount));
                        self.stats.invalidated += 1;
                    }
                    continue;
                }
                let Some(raw) = tx.proposal_payload.args.first() else {
                    continue;
                };
                let Ok(request) = FabcoinRequest::from_wire(raw) else {
                    continue;
                };
                for input in &request.inputs {
                    self.wallet.note_spent(input);
                }
                for (j, output) in request.outputs.iter().enumerate() {
                    let key = coin_key(&txid, j as u32);
                    self.wallet.note_coin(&key, output);
                    if let Some(&account) = self.account_of.get(&output.owner) {
                        self.available
                            .entry(account)
                            .or_default()
                            .push((key, output.amount));
                    }
                }
                if let Some(p) = pending {
                    self.stats.committed += 1;
                    self.stats
                        .latencies_ms
                        .push(self.clock.now_ms().saturating_sub(p.submitted_ms));
                    self.stats.committed_fees.push(p.fee);
                }
            }
        }
    }

    /// Pumps and collects until the gateway mempool and the in-flight set
    /// are both empty (or `max_rounds` elapse). Returns whether it fully
    /// settled.
    pub fn settle(&mut self, max_rounds: u32) -> bool {
        for _ in 0..max_rounds {
            self.clock.advance(10);
            self.pump();
            // Let the commit pipeline catch up with everything delivered.
            if self.delivered_next > 0 {
                let _ = self.mux.wait_committed(&self.net.channel, self.delivered_next);
                self.pump();
            }
            self.collect_events();
            if self.gateway.mempool_len() == 0 && self.inflight.is_empty() {
                return true;
            }
        }
        false
    }

    /// Total committed coin value in the state DB — the conservation
    /// check: mint total in, transfers only move it.
    pub fn total_on_ledger(&self) -> u64 {
        self.peer
            .scan_state(FABCOIN_NAMESPACE, "", "")
            .expect("state scan")
            .iter()
            .filter_map(|(_, raw)| CoinState::from_wire(raw).ok())
            .filter(|c| c.label == self.coin_label)
            .map(|c| c.amount)
            .sum()
    }

    /// Total value the wallet believes it holds (all addresses).
    pub fn wallet_total(&self) -> u64 {
        self.wallet.balance(&self.coin_label)
    }

    /// Workload counters and samples.
    pub fn stats(&self) -> &WorkloadStats {
        &self.stats
    }

    /// Spends still awaiting their commit event.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Shuts the endorsement pipeline and commit mux down cleanly.
    pub fn shutdown(self) {
        self.endorse.close();
        let _ = self.mux.close();
    }
}
