//! Fabcoin data model (paper Sec. 5.1): the UTXO representation in the
//! key-value store.
//!
//! Each coin state is one KVS entry `(txid.j, (amount, owner, label))`,
//! created once (unspent) and destroyed once (spent); concurrent updates to
//! the same entry are double-spend attempts caught by the PTM's version
//! check.

use fabric_primitives::ids::TxId;
use fabric_primitives::wire::{Decoder, Encoder, Wire, WireError};

/// The Fabcoin chaincode / state namespace.
pub const FABCOIN_NAMESPACE: &str = "fabcoin";

/// A coin state: value, owner public key, and currency label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoinState {
    /// Amount of currency units.
    pub amount: u64,
    /// SEC1-encoded public key of the owner.
    pub owner: Vec<u8>,
    /// Currency label (e.g. `"USD"`, `"FBC"`).
    pub label: String,
}

impl Wire for CoinState {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.amount);
        enc.put_bytes(&self.owner);
        enc.put_string(&self.label);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(CoinState {
            amount: dec.get_u64()?,
            owner: dec.get_bytes()?,
            label: dec.get_string()?,
        })
    }
}

/// The KVS key of the `j`-th output of transaction `txid`: `"<txid>.<j>"`.
pub fn coin_key(txid: &TxId, j: u32) -> String {
    format!("{}.{j}", txid.to_hex())
}

/// A Fabcoin request: the operation a client wallet signs
/// (`(inputs, outputs, sigs)` in the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FabcoinRequest {
    /// Keys of the coin states being spent (empty for mint).
    pub inputs: Vec<String>,
    /// Coin states being created.
    pub outputs: Vec<CoinState>,
    /// Signatures: by each input's owner (spend) or by central banks
    /// (mint), over [`FabcoinRequest::signing_bytes`].
    pub sigs: Vec<Vec<u8>>,
}

impl FabcoinRequest {
    /// Returns `true` if this request mints new coins.
    pub fn is_mint(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The bytes wallet keys sign: the request core (inputs + outputs)
    /// concatenated with the transaction id, which binds the signature to
    /// this transaction's nonce (replay protection, paper Sec. 5.1).
    pub fn signing_bytes(&self, txid: &TxId) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_seq(&self.inputs, |e, i| e.put_string(i));
        enc.put_seq(&self.outputs, |e, o| o.encode(e));
        let mut bytes = enc.finish();
        bytes.extend_from_slice(&txid.0);
        bytes
    }
}

impl Wire for FabcoinRequest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_seq(&self.inputs, |e, i| e.put_string(i));
        enc.put_seq(&self.outputs, |e, o| o.encode(e));
        enc.put_seq(&self.sigs, |e, s| e.put_bytes(s));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(FabcoinRequest {
            inputs: dec.get_seq(|d| d.get_string())?,
            outputs: dec.get_seq(CoinState::decode)?,
            sigs: dec.get_seq(|d| d.get_bytes())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coin_state_round_trip() {
        let coin = CoinState {
            amount: 100,
            owner: vec![4u8; 65],
            label: "FBC".into(),
        };
        assert_eq!(CoinState::from_wire(&coin.to_wire()).unwrap(), coin);
    }

    #[test]
    fn coin_key_format() {
        let txid = TxId::derive(b"c", &[1; 32]);
        let key = coin_key(&txid, 3);
        assert!(key.ends_with(".3"));
        assert_eq!(key.len(), 64 + 2);
    }

    #[test]
    fn request_round_trip() {
        let req = FabcoinRequest {
            inputs: vec!["abc.0".into()],
            outputs: vec![CoinState {
                amount: 5,
                owner: vec![1; 65],
                label: "FBC".into(),
            }],
            sigs: vec![vec![9; 64]],
        };
        assert_eq!(FabcoinRequest::from_wire(&req.to_wire()).unwrap(), req);
        assert!(!req.is_mint());
    }

    #[test]
    fn signing_bytes_bind_txid_not_sigs() {
        let mut req = FabcoinRequest {
            inputs: vec![],
            outputs: vec![],
            sigs: vec![],
        };
        let t1 = TxId::derive(b"c", &[1; 32]);
        let t2 = TxId::derive(b"c", &[2; 32]);
        assert_ne!(req.signing_bytes(&t1), req.signing_bytes(&t2));
        let before = req.signing_bytes(&t1);
        req.sigs.push(vec![1; 64]);
        assert_eq!(req.signing_bytes(&t1), before, "sigs excluded from core");
    }
}
