//! The Fabcoin chaincode (paper Sec. 5.1).
//!
//! Simulation of a spend: `GetState(in)` for every input (recording it and
//! its version in the readset), `DelState(in)` (marking it spent), then
//! `PutState(txid.j, out)` for every output. Mint only creates outputs.
//!
//! The chaincode also runs the semantic checks of the Fabcoin VSCC
//! *without* cryptographic signature verification — not required for
//! safety (the real VSCC validates post-ordering), but it lets correct
//! peers filter malformed transactions before endorsing them, exactly as
//! the paper describes.

use fabric_chaincode::{Chaincode, Stub};
use fabric_primitives::wire::Wire;

use crate::types::{coin_key, CoinState, FabcoinRequest};

/// The Fabcoin chaincode.
pub struct FabcoinChaincode;

impl Chaincode for FabcoinChaincode {
    fn invoke(&self, stub: &mut Stub<'_>) -> Result<Vec<u8>, String> {
        match stub.function() {
            "mint" | "spend" => {
                let raw = stub.args().first().ok_or("missing request argument")?;
                let request =
                    FabcoinRequest::from_wire(raw).map_err(|e| format!("bad request: {e}"))?;
                if stub.function() == "mint" && !request.is_mint() {
                    return Err("mint request must not have inputs".into());
                }
                if stub.function() == "spend" && request.is_mint() {
                    return Err("spend request must have inputs".into());
                }
                execute_request(stub, &request)
            }
            "balance" => {
                // Read-only helper: total unspent value owned by a public
                // key (args[0] = SEC1 key, args[1] = label).
                let owner = stub.args().first().ok_or("missing owner argument")?.clone();
                let label = stub.arg_string(1)?;
                let mut total: u64 = 0;
                for (_, raw) in stub.get_state_range("", "")? {
                    let coin =
                        CoinState::from_wire(&raw).map_err(|e| format!("bad coin: {e}"))?;
                    if coin.owner == owner && coin.label == label {
                        total += coin.amount;
                    }
                }
                Ok(total.to_le_bytes().to_vec())
            }
            other => Err(format!("unknown Fabcoin function {other}")),
        }
    }
}

/// Common simulation for mint and spend.
fn execute_request(stub: &mut Stub<'_>, request: &FabcoinRequest) -> Result<Vec<u8>, String> {
    // Semantic pre-checks (signatures are NOT verified here; the custom
    // VSCC does that after ordering).
    if request.outputs.is_empty() {
        return Err("no outputs".into());
    }
    if request.outputs.iter().any(|o| o.amount == 0) {
        return Err("output amounts must be positive".into());
    }
    let mut input_sum: u64 = 0;
    let mut input_label: Option<String> = None;
    for input in &request.inputs {
        let raw = stub
            .get_state(input)?
            .ok_or_else(|| format!("input coin {input} does not exist"))?;
        let coin = CoinState::from_wire(&raw).map_err(|e| format!("bad coin state: {e}"))?;
        input_sum = input_sum
            .checked_add(coin.amount)
            .ok_or("input amount overflow")?;
        if let Some(label) = &input_label {
            if label != &coin.label {
                return Err("mixed input labels".into());
            }
        } else {
            input_label = Some(coin.label.clone());
        }
        // Destroy the input coin state ("spent").
        stub.del_state(input);
    }
    if !request.is_mint() {
        let output_sum: u64 = request
            .outputs
            .iter()
            .try_fold(0u64, |acc, o| acc.checked_add(o.amount))
            .ok_or("output amount overflow")?;
        if output_sum > input_sum {
            return Err(format!(
                "outputs ({output_sum}) exceed inputs ({input_sum})"
            ));
        }
        if let Some(label) = &input_label {
            if request.outputs.iter().any(|o| &o.label != label) {
                return Err("output label does not match inputs".into());
            }
        }
    }
    // Create the output coin states under this transaction's id.
    let txid = stub.tx_id();
    for (j, output) in request.outputs.iter().enumerate() {
        stub.put_state(&coin_key(&txid, j as u32), output.to_wire());
    }
    Ok(txid.0.to_vec())
}
