//! # fabric-fabcoin
//!
//! Fabcoin (paper Sec. 5.1): the Bitcoin-inspired, authority-minted UTXO
//! cryptocurrency the paper uses to evaluate Fabric — and to demonstrate a
//! *custom validation phase*: Fabcoin installs its own VSCC that verifies
//! wallet signatures and value conservation, while double spends are
//! caught by Fabric's standard read-write version check in the PTM.
//!
//! * [`types`] — coin states, the `txid.j` key scheme, signed requests.
//! * [`wallet`] — client wallets and the central bank.
//! * [`chaincode`] — the Fabcoin chaincode (simulation side).
//! * [`vscc`] — the custom validation system chaincode.
//! * [`network`] — a complete in-process deployment used by tests,
//!   examples, and the paper-evaluation benchmark harness.

pub mod chaincode;
pub mod network;
pub mod types;
pub mod vscc;
pub mod wallet;
pub mod workload;

pub use chaincode::FabcoinChaincode;
pub use network::{FabcoinNetwork, FabcoinNetworkConfig};
pub use types::{coin_key, CoinState, FabcoinRequest, FABCOIN_NAMESPACE};
pub use vscc::FabcoinVscc;
pub use wallet::{CentralBank, OwnedCoin, Wallet};
pub use workload::{GatewayWorkload, TransferOutcome, WorkloadConfig, WorkloadStats, Zipfian};

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_primitives::config::{BatchConfig, ConsensusType};
    use fabric_primitives::ids::TxValidationCode;

    fn single_block_batch() -> BatchConfig {
        BatchConfig {
            max_message_count: 1,
            absolute_max_bytes: 10 * 1024 * 1024,
            preferred_max_bytes: 2 * 1024 * 1024,
            batch_timeout_ms: 10_000,
        }
    }

    fn network() -> FabcoinNetwork {
        FabcoinNetwork::new(FabcoinNetworkConfig {
            batch: single_block_batch(),
            ..FabcoinNetworkConfig::default()
        })
    }

    #[test]
    fn mint_then_spend_end_to_end() {
        let mut net = network();
        let out = net.coin_for(0, 100, "FBC");
        let mint_tx = net.mint(0, vec![out]).unwrap();
        net.pump();
        assert_eq!(net.tx_flag(&mint_tx), Some(TxValidationCode::Valid));
        assert_eq!(net.wallets[0].balance("FBC"), 100);

        // Spend 100 -> 60 to org1's wallet + 40 back to org0.
        let coins = net.wallets[0].coins("FBC");
        let inputs: Vec<String> = coins.iter().map(|c| c.key.clone()).collect();
        let to_other = net.coin_for(1, 60, "FBC");
        let change = net.coin_for(0, 40, "FBC");
        let spend_tx = net.spend(0, &inputs, vec![to_other, change]).unwrap();
        net.pump();
        assert_eq!(net.tx_flag(&spend_tx), Some(TxValidationCode::Valid));
        assert_eq!(net.wallets[0].balance("FBC"), 40);
        assert_eq!(net.wallets[1].balance("FBC"), 60);

        // The spent coin state is gone from the world state.
        let spent_key = &inputs[0];
        assert_eq!(
            net.peers[0].get_state(FABCOIN_NAMESPACE, spent_key).unwrap(),
            None
        );
    }

    #[test]
    fn double_spend_caught_by_version_check() {
        // The paper's key layering demo: both spends pass the Fabcoin VSCC
        // (the coin still exists when the block's validation starts), and
        // the PTM's read-write check kills whichever is ordered second.
        // Both spends must land in the SAME block for this path.
        let mut net = FabcoinNetwork::new(FabcoinNetworkConfig {
            batch: BatchConfig {
                max_message_count: 2,
                absolute_max_bytes: 10 * 1024 * 1024,
                preferred_max_bytes: 2 * 1024 * 1024,
                batch_timeout_ms: 10_000,
            },
            ..FabcoinNetworkConfig::default()
        });
        // Two mints fill block 1 exactly.
        let c1 = net.coin_for(0, 50, "FBC");
        net.mint(0, vec![c1]).unwrap();
        let c2 = net.coin_for(0, 7, "FBC");
        net.mint(0, vec![c2]).unwrap();
        net.pump();
        let coins = net.wallets[0].coins("FBC");
        let target = coins.iter().find(|c| c.amount == 50).unwrap();
        let inputs = vec![target.key.clone()];

        // Two conflicting spends of the same coin, cut into one block.
        let pay_1 = net.coin_for(1, 50, "FBC");
        let tx_a = net.spend(0, &inputs, vec![pay_1]).unwrap();
        let pay_self = net.coin_for(0, 50, "FBC");
        let tx_b = net.spend(0, &inputs, vec![pay_self]).unwrap();
        net.pump();

        assert_eq!(net.tx_flag(&tx_a), Some(TxValidationCode::Valid));
        assert_eq!(
            net.tx_flag(&tx_b),
            Some(TxValidationCode::MvccReadConflict),
            "second spend of the same coin must fail the version check"
        );
        assert_eq!(net.wallets[1].balance("FBC"), 50);
    }

    #[test]
    fn cross_block_double_spend_caught_by_vscc() {
        // When the conflicting spend arrives after the first has committed,
        // the Fabcoin VSCC itself rejects it: the input coin state no
        // longer exists on the ledger.
        let mut net = network();
        let out = net.coin_for(0, 50, "FBC");
        net.mint(0, vec![out]).unwrap();
        net.pump();
        let inputs: Vec<String> = net.wallets[0]
            .coins("FBC")
            .iter()
            .map(|c| c.key.clone())
            .collect();
        // Build BOTH spends against the same pre-spend state (endorse
        // before either commits), then commit them in separate blocks.
        let pay_1 = net.coin_for(1, 50, "FBC");
        let tx_a = net.spend(0, &inputs, vec![pay_1]).unwrap();
        let pay_self = net.coin_for(0, 50, "FBC");
        let tx_b = net.spend(0, &inputs, vec![pay_self]).unwrap();
        net.pump();
        assert_eq!(net.tx_flag(&tx_a), Some(TxValidationCode::Valid));
        assert_eq!(
            net.tx_flag(&tx_b),
            Some(TxValidationCode::EndorsementPolicyFailure),
            "input gone from the ledger: custom VSCC rejects"
        );
    }

    #[test]
    fn forged_mint_rejected() {
        // A mint signed by a key that is not the central bank.
        let mut net = network();
        let nonce = net.clients[0].next_nonce();
        let txid = fabric_primitives::ids::TxId::derive(
            &fabric_primitives::wire::Wire::to_wire(&net.clients[0].identity().serialized()),
            &nonce,
        );
        let rogue_bank = CentralBank::new(1, b"rogue-bank");
        let out = net.coin_for(0, 1_000_000, "FBC");
        let request = rogue_bank.create_mint(vec![out], &txid, 1);
        let proposal = net.clients[0].create_proposal_with_nonce(
            FABCOIN_NAMESPACE,
            "mint",
            vec![fabric_primitives::wire::Wire::to_wire(&request)],
            nonce,
        );
        let responses = net.clients[0]
            .collect_endorsements(&proposal, &[&net.peers[0]])
            .unwrap();
        let envelope = net.clients[0].assemble_transaction(&proposal, &responses);
        net.ordering.broadcast(envelope).unwrap();
        net.pump();
        assert_eq!(
            net.tx_flag(&txid),
            Some(TxValidationCode::EndorsementPolicyFailure),
            "forged mint must fail the Fabcoin VSCC"
        );
        assert_eq!(net.wallets[0].balance("FBC"), 0);
    }

    #[test]
    fn value_creation_in_spend_rejected_at_endorsement() {
        // Outputs exceeding inputs are rejected by the chaincode during
        // simulation (and would also fail the VSCC).
        let mut net = network();
        let out = net.coin_for(0, 10, "FBC");
        net.mint(0, vec![out]).unwrap();
        net.pump();
        let inputs: Vec<String> = net.wallets[0]
            .coins("FBC")
            .iter()
            .map(|c| c.key.clone())
            .collect();
        let too_much = net.coin_for(0, 11, "FBC");
        let result = net.spend(0, &inputs, vec![too_much]);
        assert!(result.is_err(), "endorsement must fail");
    }

    #[test]
    fn label_mixing_rejected() {
        let mut net = network();
        let usd = net.coin_for(0, 10, "USD");
        net.mint(0, vec![usd]).unwrap();
        net.pump();
        let inputs: Vec<String> = net.wallets[0]
            .coins("USD")
            .iter()
            .map(|c| c.key.clone())
            .collect();
        let eur = net.coin_for(0, 10, "EUR");
        assert!(net.spend(0, &inputs, vec![eur]).is_err());
    }

    #[test]
    fn multi_coin_spend_merges_value() {
        let mut net = network();
        let a = net.coin_for(0, 30, "FBC");
        let b = net.coin_for(0, 20, "FBC");
        net.mint(0, vec![a, b]).unwrap();
        net.pump();
        assert_eq!(net.wallets[0].balance("FBC"), 50);
        let inputs: Vec<String> = net.wallets[0]
            .coins("FBC")
            .iter()
            .map(|c| c.key.clone())
            .collect();
        assert_eq!(inputs.len(), 2);
        let merged = net.coin_for(1, 50, "FBC");
        let tx = net.spend(0, &inputs, vec![merged]).unwrap();
        net.pump();
        assert_eq!(net.tx_flag(&tx), Some(TxValidationCode::Valid));
        assert_eq!(net.wallets[0].balance("FBC"), 0);
        assert_eq!(net.wallets[1].balance("FBC"), 50);
    }

    #[test]
    fn spending_others_coin_fails() {
        // Org 1 tries to spend org 0's coin: its wallet doesn't own it.
        let mut net = network();
        let out = net.coin_for(0, 10, "FBC");
        net.mint(0, vec![out]).unwrap();
        net.pump();
        let inputs: Vec<String> = net.wallets[0]
            .coins("FBC")
            .iter()
            .map(|c| c.key.clone())
            .collect();
        let steal = net.coin_for(1, 10, "FBC");
        assert!(net.spend(1, &inputs, vec![steal]).is_err());
    }

    #[test]
    fn cb_threshold_enforced() {
        // 3 CB keys, threshold 2: a mint with only 1 signature must fail
        // validation.
        let mut net = FabcoinNetwork::new(FabcoinNetworkConfig {
            cb_keys: 3,
            cb_threshold: 2,
            batch: single_block_batch(),
            ..FabcoinNetworkConfig::default()
        });
        let nonce = net.clients[0].next_nonce();
        let txid = fabric_primitives::ids::TxId::derive(
            &fabric_primitives::wire::Wire::to_wire(&net.clients[0].identity().serialized()),
            &nonce,
        );
        let out = net.coin_for(0, 10, "FBC");
        // Only one signature.
        let request = net.bank.create_mint(vec![out], &txid, 1);
        let proposal = net.clients[0].create_proposal_with_nonce(
            FABCOIN_NAMESPACE,
            "mint",
            vec![fabric_primitives::wire::Wire::to_wire(&request)],
            nonce,
        );
        let responses = net.clients[0]
            .collect_endorsements(&proposal, &[&net.peers[0]])
            .unwrap();
        let envelope = net.clients[0].assemble_transaction(&proposal, &responses);
        net.ordering.broadcast(envelope).unwrap();
        net.pump();
        assert_eq!(
            net.tx_flag(&txid),
            Some(TxValidationCode::EndorsementPolicyFailure)
        );

        // With all signatures (threshold met) it validates.
        let good = net.coin_for(0, 10, "FBC");
        let tx = net.mint(0, vec![good]).unwrap();
        net.pump();
        assert_eq!(net.tx_flag(&tx), Some(TxValidationCode::Valid));
    }

    #[test]
    fn balance_query_via_chaincode() {
        let mut net = network();
        let out = net.coin_for(0, 77, "FBC");
        net.mint(0, vec![out]).unwrap();
        net.pump();
        let owner = net.address(0);
        let result = net.clients[0]
            .query(
                &net.peers[0],
                FABCOIN_NAMESPACE,
                "balance",
                vec![owner, b"FBC".to_vec()],
            )
            .unwrap();
        assert_eq!(u64::from_le_bytes(result[..8].try_into().unwrap()), 77);
    }

    #[test]
    fn raft_backed_fabcoin() {
        let mut net = FabcoinNetwork::new(FabcoinNetworkConfig {
            consensus: ConsensusType::Raft,
            osn_count: 3,
            batch: single_block_batch(),
            ..FabcoinNetworkConfig::default()
        });
        let out = net.coin_for(0, 5, "FBC");
        let tx = net.mint(0, vec![out]).unwrap();
        for _ in 0..10 {
            net.tick();
        }
        net.pump();
        assert_eq!(net.tx_flag(&tx), Some(TxValidationCode::Valid));
        let channel = net.net.channel.clone();
        net.ordering.assert_identical_chains(&channel);
    }

    #[test]
    fn all_peers_converge() {
        let mut net = network();
        let out = net.coin_for(0, 9, "FBC");
        net.mint(0, vec![out]).unwrap();
        net.pump();
        assert_eq!(net.peers[0].height(), net.peers[1].height());
        let b0 = net.peers[0].get_block(1).unwrap().unwrap();
        let b1 = net.peers[1].get_block(1).unwrap().unwrap();
        assert_eq!(b0.metadata.validation, b1.metadata.validation);
    }
}
