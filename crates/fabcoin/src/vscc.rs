//! The custom Fabcoin VSCC (paper Sec. 5.1).
//!
//! Every peer validates Fabcoin transactions with this logic instead of
//! the default endorsement-policy VSCC — the paper's demonstration that
//! the validation phase is programmable. It verifies:
//!
//! * **mint**: enough central-bank signatures over the request (threshold
//!   configurable), outputs created under the matching transaction id,
//!   positive amounts;
//! * **spend**: a valid owner signature for every input coin (current
//!   values retrieved from the ledger), each input read-and-deleted in the
//!   rw-set, value conservation, matching labels, outputs under the
//!   matching transaction id.
//!
//! Double spends are deliberately *not* checked here: two spends of the
//! same coin both pass the VSCC, and the standard read-write version check
//! in the PTM invalidates whichever is ordered second.

use fabric_chaincode::Vscc;
use fabric_crypto::{Signature, VerifyingKey};
use fabric_ledger::Ledger;
use fabric_msp::MspRegistry;
use fabric_primitives::ids::TxValidationCode;
use fabric_primitives::transaction::Transaction;
use fabric_primitives::wire::Wire;

use crate::types::{coin_key, CoinState, FabcoinRequest, FABCOIN_NAMESPACE};

/// The Fabcoin validation system chaincode.
pub struct FabcoinVscc {
    /// SEC1-encoded central-bank public keys.
    cb_keys: Vec<Vec<u8>>,
    /// How many distinct CB signatures a mint needs.
    cb_threshold: usize,
}

impl FabcoinVscc {
    /// Creates the VSCC with the central-bank key set and mint threshold
    /// ("Fabcoin may be configured to use multiple CBs or specify a
    /// threshold number of signatures", paper Sec. 5.1).
    pub fn new(cb_keys: Vec<Vec<u8>>, cb_threshold: usize) -> Self {
        assert!(cb_threshold >= 1 && cb_threshold <= cb_keys.len());
        FabcoinVscc {
            cb_keys,
            cb_threshold,
        }
    }

    fn validate_inner(&self, tx: &Transaction, ledger: &Ledger) -> Result<(), TxValidationCode> {
        const INVALID: TxValidationCode = TxValidationCode::EndorsementPolicyFailure;
        let raw = tx
            .proposal_payload
            .args
            .first()
            .ok_or(TxValidationCode::BadPayload)?;
        let request =
            FabcoinRequest::from_wire(raw).map_err(|_| TxValidationCode::BadPayload)?;
        let txid = tx.tx_id();
        let message = request.signing_bytes(&txid);

        // Locate this transaction's writes in the Fabcoin namespace.
        let ns = tx
            .response_payload
            .rwset
            .ns_rwsets
            .iter()
            .find(|ns| ns.namespace == FABCOIN_NAMESPACE)
            .ok_or(TxValidationCode::BadPayload)?;

        // Outputs must be created under the matching transaction id, with
        // positive amounts, and be exactly the non-delete writes.
        if request.outputs.is_empty() || request.outputs.iter().any(|o| o.amount == 0) {
            return Err(INVALID);
        }
        for (j, output) in request.outputs.iter().enumerate() {
            let key = coin_key(&txid, j as u32);
            let write = ns
                .writes
                .iter()
                .find(|w| w.key == key)
                .ok_or(INVALID)?;
            match &write.value {
                Some(value) if *value == output.to_wire() => {}
                _ => return Err(INVALID),
            }
        }

        if request.is_mint() {
            // Threshold of distinct CB signatures.
            let mut used = vec![false; self.cb_keys.len()];
            let mut valid = 0usize;
            for sig_bytes in &request.sigs {
                let Ok(sig) = Signature::from_bytes(sig_bytes) else {
                    continue;
                };
                for (i, key_bytes) in self.cb_keys.iter().enumerate() {
                    if used[i] {
                        continue;
                    }
                    if let Ok(key) = VerifyingKey::from_sec1(key_bytes) {
                        if key.verify(&message, &sig).is_ok() {
                            used[i] = true;
                            valid += 1;
                            break;
                        }
                    }
                }
            }
            if valid < self.cb_threshold {
                return Err(INVALID);
            }
            return Ok(());
        }

        // Spend: every input must be read (version recorded) AND deleted.
        let mut input_sum: u64 = 0;
        let mut input_label: Option<String> = None;
        if request.sigs.len() != request.inputs.len() {
            return Err(INVALID);
        }
        for (input, sig_bytes) in request.inputs.iter().zip(&request.sigs) {
            let read = ns.reads.iter().find(|r| &r.key == input).ok_or(INVALID)?;
            if read.version.is_none() {
                return Err(INVALID); // read as missing: cannot spend
            }
            let deleted = ns
                .writes
                .iter()
                .any(|w| &w.key == input && w.is_delete());
            if !deleted {
                return Err(INVALID);
            }
            // Retrieve the input coin's current value from the ledger.
            let raw = ledger
                .get_state(FABCOIN_NAMESPACE, input)
                .map_err(|_| INVALID)?
                .ok_or(INVALID)?;
            let coin = CoinState::from_wire(&raw).map_err(|_| INVALID)?;
            // Owner signature over the request bound to this txid.
            let owner_key = VerifyingKey::from_sec1(&coin.owner).map_err(|_| INVALID)?;
            let sig = Signature::from_bytes(sig_bytes).map_err(|_| INVALID)?;
            owner_key.verify(&message, &sig).map_err(|_| INVALID)?;
            input_sum = input_sum.checked_add(coin.amount).ok_or(INVALID)?;
            match &input_label {
                Some(label) if label != &coin.label => return Err(INVALID),
                None => input_label = Some(coin.label.clone()),
                _ => {}
            }
        }
        // Value conservation and label match.
        let output_sum: u64 = request
            .outputs
            .iter()
            .try_fold(0u64, |acc, o| acc.checked_add(o.amount))
            .ok_or(INVALID)?;
        if output_sum > input_sum {
            return Err(INVALID);
        }
        if let Some(label) = input_label {
            if request.outputs.iter().any(|o| o.label != label) {
                return Err(INVALID);
            }
        }
        Ok(())
    }
}

impl Vscc for FabcoinVscc {
    fn validate(
        &self,
        tx: &Transaction,
        _msp: &MspRegistry,
        _channel_orgs: &[String],
        ledger: &Ledger,
    ) -> TxValidationCode {
        match self.validate_inner(tx, ledger) {
            Ok(()) => TxValidationCode::Valid,
            Err(code) => code,
        }
    }
}
