//! An in-process Fabcoin deployment: peers + ordering + clients + wallets
//! wired together.
//!
//! This is the driver used by the integration tests, the examples, and the
//! benchmark harness that regenerates the paper's evaluation (Sec. 5.2):
//! it stands up one endorsing peer per organization (plus optional extra
//! peers), an ordering cluster with the chosen consensus backend, a client
//! per org, and the central bank, then provides `mint` / `spend` round
//! trips and a `pump` step that delivers cut blocks to every peer.

use fabric_client::Client;
use fabric_msp::Role;
use fabric_ordering::testkit::TestNet;
use fabric_ordering::OrderingCluster;
use fabric_peer::{Peer, PeerConfig, ValidationTiming};
use fabric_primitives::block::Block;
use fabric_primitives::config::{BatchConfig, ConsensusType};
use fabric_primitives::ids::{TxId, TxValidationCode};
use fabric_primitives::transaction::EnvelopeContent;
use fabric_primitives::wire::Wire;
use std::sync::Arc;

use crate::chaincode::FabcoinChaincode;
use crate::types::{coin_key, CoinState, FabcoinRequest, FABCOIN_NAMESPACE};
use crate::vscc::FabcoinVscc;
use crate::wallet::{CentralBank, Wallet};

/// Configuration for a Fabcoin network.
pub struct FabcoinNetworkConfig {
    /// Number of organizations (one endorsing peer and one client each).
    pub orgs: usize,
    /// Consensus backend for the ordering service.
    pub consensus: ConsensusType,
    /// Number of ordering-service nodes.
    pub osn_count: usize,
    /// Block-cutting parameters.
    pub batch: BatchConfig,
    /// Central-bank keys and mint threshold.
    pub cb_keys: usize,
    /// Signatures required on a mint.
    pub cb_threshold: usize,
    /// VSCC parallelism at each peer.
    pub vscc_parallelism: usize,
}

impl Default for FabcoinNetworkConfig {
    fn default() -> Self {
        FabcoinNetworkConfig {
            orgs: 2,
            consensus: ConsensusType::Solo,
            osn_count: 1,
            batch: BatchConfig {
                max_message_count: 4,
                absolute_max_bytes: 10 * 1024 * 1024,
                preferred_max_bytes: 2 * 1024 * 1024,
                batch_timeout_ms: 200,
            },
            cb_keys: 1,
            cb_threshold: 1,
            vscc_parallelism: 2,
        }
    }
}

/// A complete in-process Fabcoin deployment.
pub struct FabcoinNetwork {
    /// Test-network fixtures (CAs, genesis).
    pub net: TestNet,
    /// One endorsing peer per org.
    pub peers: Vec<Peer>,
    /// The ordering cluster.
    pub ordering: OrderingCluster,
    /// One client per org.
    pub clients: Vec<Client>,
    /// One wallet per org.
    pub wallets: Vec<Wallet>,
    /// The central bank.
    pub bank: CentralBank,
    /// Per-stage validation timings collected from peer 0 during pumping.
    pub timings: Vec<ValidationTiming>,
}

impl FabcoinNetwork {
    /// Stands up the network.
    pub fn new(config: FabcoinNetworkConfig) -> Self {
        let org_names: Vec<String> = (1..=config.orgs).map(|i| format!("Org{i}")).collect();
        let org_refs: Vec<&str> = org_names.iter().map(|s| s.as_str()).collect();
        let net = TestNet::with_batch(&org_refs, config.consensus, config.osn_count, config.batch);
        let ordering = OrderingCluster::new(
            config.consensus,
            net.orderers(config.osn_count),
            vec![net.genesis.clone()],
        )
        .expect("genesis config is valid");
        let genesis = ordering
            .deliver(&net.channel, 0)
            .expect("genesis block exists");

        let bank = CentralBank::new(config.cb_keys, b"fabcoin-cb");
        let mut peers = Vec::with_capacity(config.orgs);
        for (i, _) in org_names.iter().enumerate() {
            let identity = fabric_msp::issue_identity(
                &net.org_cas[i],
                &format!("peer0.org{}", i + 1),
                Role::Peer,
                format!("fabcoin-peer-{i}").as_bytes(),
            );
            let peer = Peer::join(
                identity,
                &genesis,
                Arc::new(fabric_kvstore::MemBackend::new()),
                PeerConfig {
                    vscc_parallelism: config.vscc_parallelism,
                    runtime: fabric_chaincode::RuntimeConfig { exec_timeout: None, ..Default::default() },
                    sync_writes: false,
                    ..Default::default()
                },
            )
            .expect("peer joins channel");
            peer.install_chaincode(FABCOIN_NAMESPACE, Arc::new(FabcoinChaincode));
            peer.register_vscc(
                FABCOIN_NAMESPACE,
                Arc::new(FabcoinVscc::new(bank.public_keys(), config.cb_threshold)),
            );
            peers.push(peer);
        }
        let mut clients = Vec::with_capacity(config.orgs);
        let mut wallets = Vec::with_capacity(config.orgs);
        for i in 0..config.orgs {
            let identity = fabric_msp::issue_identity(
                &net.org_cas[i],
                &format!("client.org{}", i + 1),
                Role::Client,
                format!("fabcoin-client-{i}").as_bytes(),
            );
            clients.push(Client::new(identity, net.channel.clone()));
            let mut wallet = Wallet::new();
            wallet.new_address(format!("wallet-{i}").as_bytes());
            wallets.push(wallet);
        }
        FabcoinNetwork {
            net,
            peers,
            ordering,
            clients,
            wallets,
            bank,
            timings: Vec::new(),
        }
    }

    /// The wallet address of org `i`'s wallet (its only key).
    pub fn address(&mut self, org: usize) -> Vec<u8> {
        // Addresses are deterministic; re-deriving returns the same key.
        self.wallets[org].new_address(format!("wallet-{org}").as_bytes())
    }

    /// Submits a mint of `outputs` to org `org`'s client. Returns the tx id
    /// (commitment happens at the next [`FabcoinNetwork::pump`]).
    pub fn mint(
        &mut self,
        org: usize,
        outputs: Vec<CoinState>,
    ) -> Result<TxId, fabric_client::ClientError> {
        let client = &self.clients[org];
        let nonce = client.next_nonce();
        let txid = TxId::derive(&client.identity().serialized().to_wire(), &nonce);
        let request = self.bank.create_mint(outputs, &txid, self.bank.public_keys().len());
        self.submit(org, "mint", request, nonce)
    }

    /// Submits a spend from org `org`'s wallet.
    pub fn spend(
        &mut self,
        org: usize,
        inputs: &[String],
        outputs: Vec<CoinState>,
    ) -> Result<TxId, fabric_client::ClientError> {
        let client = &self.clients[org];
        let nonce = client.next_nonce();
        let txid = TxId::derive(&client.identity().serialized().to_wire(), &nonce);
        let request = self.wallets[org]
            .create_spend(inputs, outputs, &txid)
            .map_err(|e| fabric_client::ClientError::EndorsementFailed(vec![e]))?;
        self.submit(org, "spend", request, nonce)
    }

    fn submit(
        &mut self,
        org: usize,
        function: &str,
        request: FabcoinRequest,
        nonce: [u8; 32],
    ) -> Result<TxId, fabric_client::ClientError> {
        let client = &self.clients[org];
        let proposal = client.create_proposal_with_nonce(
            FABCOIN_NAMESPACE,
            function,
            vec![request.to_wire()],
            nonce,
        );
        let txid = proposal.proposal.tx_id();
        // Endorse at this org's peer (the Fabcoin VSCC checks wallet
        // signatures, not endorsement counts).
        let endorser = &self.peers[org];
        let responses = client.collect_endorsements(&proposal, &[endorser])?;
        let envelope = client.assemble_transaction(&proposal, &responses);
        self.ordering
            .broadcast(envelope)
            .map_err(|e| fabric_client::ClientError::BroadcastRejected(e.to_string()))?;
        Ok(txid)
    }

    /// Advances ordering timers (needed for timeout-based block cuts).
    pub fn tick(&mut self) {
        self.ordering.tick();
    }

    /// Delivers every cut-but-uncommitted block to all peers, updating
    /// wallets from the committed valid transactions. Returns the number
    /// of blocks committed.
    pub fn pump(&mut self) -> usize {
        let mut committed = 0;
        loop {
            let next = self.peers[0].height();
            let Some(block) = self.ordering.deliver(&self.net.channel, next) else {
                break;
            };
            let mut first_flags = None;
            for (i, peer) in self.peers.iter().enumerate() {
                let (flags, timing) = peer.commit_block(&block).expect("commit succeeds");
                if i == 0 {
                    self.timings.push(timing);
                    first_flags = Some(flags);
                }
            }
            if let Some(flags) = first_flags {
                self.update_wallets(&block, &flags);
            }
            committed += 1;
        }
        committed
    }

    /// Applies the effects of a committed block to every wallet.
    fn update_wallets(&mut self, block: &Block, flags: &[TxValidationCode]) {
        for (env, flag) in block.envelopes.iter().zip(flags) {
            if !flag.is_valid() {
                continue;
            }
            let EnvelopeContent::Transaction(tx) = &env.content else {
                continue;
            };
            if tx.response_payload.chaincode.name != FABCOIN_NAMESPACE {
                continue;
            }
            let Some(raw) = tx.proposal_payload.args.first() else {
                continue;
            };
            let Ok(request) = FabcoinRequest::from_wire(raw) else {
                continue;
            };
            let txid = tx.tx_id();
            for wallet in &mut self.wallets {
                for input in &request.inputs {
                    wallet.note_spent(input);
                }
                for (j, output) in request.outputs.iter().enumerate() {
                    wallet.note_coin(&coin_key(&txid, j as u32), output);
                }
            }
        }
    }

    /// Convenience: a coin state owned by org `org`'s wallet.
    pub fn coin_for(&mut self, org: usize, amount: u64, label: &str) -> CoinState {
        CoinState {
            amount,
            owner: self.address(org),
            label: label.to_string(),
        }
    }

    /// The validity flag a transaction got at peer 0, if committed.
    pub fn tx_flag(&self, txid: &TxId) -> Option<TxValidationCode> {
        self.peers[0]
            .get_transaction(txid)
            .ok()
            .flatten()
            .map(|(_, _, flag)| flag)
    }
}
