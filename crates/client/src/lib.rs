//! # fabric-client
//!
//! The client SDK (paper Sec. 3.2): building signed proposals, collecting
//! endorsements (and checking that all endorsers produced byte-identical
//! results), assembling transactions, and driving the full
//! execute-order-validate round trip against in-process peers and ordering
//! clusters.

use parking_lot::Mutex;

use fabric_msp::SigningIdentity;
use fabric_ordering::OrderingCluster;
use fabric_peer::Peer;
use fabric_primitives::ids::{ChaincodeId, ChannelId, TxId};
use fabric_primitives::transaction::{
    Envelope, EnvelopeContent, Proposal, ProposalPayload, ProposalResponse, SignedProposal,
    Transaction,
};
use fabric_primitives::wire::Wire;

/// Errors surfaced by client operations.
#[derive(Debug)]
pub enum ClientError {
    /// Not enough endorsements could be gathered; carries per-peer errors.
    EndorsementFailed(Vec<String>),
    /// Endorsers returned diverging simulation results (paper Sec. 3.2:
    /// the standard policy requires identical readset/writeset).
    DivergingResults,
    /// The ordering service rejected the broadcast.
    BroadcastRejected(String),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::EndorsementFailed(errors) => {
                write!(f, "endorsement failed: {}", errors.join("; "))
            }
            ClientError::DivergingResults => {
                write!(f, "endorsers produced diverging simulation results")
            }
            ClientError::BroadcastRejected(msg) => write!(f, "broadcast rejected: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A Fabric client bound to one identity and one channel.
pub struct Client {
    identity: SigningIdentity,
    channel: ChannelId,
    nonce_counter: Mutex<u64>,
}

impl Client {
    /// Creates a client.
    pub fn new(identity: SigningIdentity, channel: ChannelId) -> Self {
        Client {
            identity,
            channel,
            nonce_counter: Mutex::new(0),
        }
    }

    /// The client's identity.
    pub fn identity(&self) -> &SigningIdentity {
        &self.identity
    }

    /// Produces the next single-use nonce (paper Sec. 3.2: "a nonce to be
    /// used only once by each client, such as a counter").
    pub fn next_nonce(&self) -> [u8; 32] {
        let mut counter = self.nonce_counter.lock();
        *counter += 1;
        let mut h = fabric_crypto::sha256::Sha256::new();
        h.update(&self.identity.serialized().to_wire());
        h.update(&counter.to_le_bytes());
        h.finalize()
    }

    /// Builds and signs a proposal for `chaincode.function(args)`.
    pub fn create_proposal(
        &self,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> SignedProposal {
        self.create_proposal_with_nonce(chaincode, function, args, self.next_nonce())
    }

    /// Like [`Client::create_proposal`] with an explicit nonce — used when
    /// the arguments must bind to the transaction id (derived from the
    /// nonce), as Fabcoin's signed requests do.
    pub fn create_proposal_with_nonce(
        &self,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
        nonce: [u8; 32],
    ) -> SignedProposal {
        let proposal = Proposal {
            channel: self.channel.clone(),
            creator: self.identity.serialized(),
            nonce,
            payload: ProposalPayload {
                chaincode: ChaincodeId::new(chaincode, "1.0"),
                function: function.into(),
                args,
            },
        };
        let signature = self.identity.sign(&proposal.to_wire()).to_bytes().to_vec();
        SignedProposal {
            proposal,
            signature,
        }
    }

    /// Sends the proposal to each endorser and collects their responses.
    ///
    /// Fails if any endorser errors, or if the responses are not
    /// byte-identical (the standard endorsement policy requires identical
    /// rw-sets; under key contention this is where a client gets stuck,
    /// exactly as the paper discusses).
    pub fn collect_endorsements(
        &self,
        proposal: &SignedProposal,
        endorsers: &[&Peer],
    ) -> Result<Vec<ProposalResponse>, ClientError> {
        let mut responses = Vec::with_capacity(endorsers.len());
        let mut errors = Vec::new();
        for peer in endorsers {
            match peer.process_proposal(proposal) {
                Ok(response) => responses.push(response),
                Err(e) => errors.push(e.to_string()),
            }
        }
        if !errors.is_empty() {
            return Err(ClientError::EndorsementFailed(errors));
        }
        let reference = responses[0].payload.to_wire();
        if responses.iter().any(|r| r.payload.to_wire() != reference) {
            return Err(ClientError::DivergingResults);
        }
        Ok(responses)
    }

    /// Assembles a signed transaction envelope from a proposal and its
    /// endorsements.
    pub fn assemble_transaction(
        &self,
        proposal: &SignedProposal,
        responses: &[ProposalResponse],
    ) -> Envelope {
        let tx = Transaction {
            channel: proposal.proposal.channel.clone(),
            creator: proposal.proposal.creator.clone(),
            nonce: proposal.proposal.nonce,
            proposal_payload: proposal.proposal.payload.clone(),
            response_payload: responses[0].payload.clone(),
            endorsements: responses.iter().map(|r| r.endorsement.clone()).collect(),
        };
        let content = EnvelopeContent::Transaction(tx);
        let signature = self
            .identity
            .sign(&Envelope::signing_bytes(&content))
            .to_bytes()
            .to_vec();
        Envelope { content, signature }
    }

    /// Full invocation round trip: endorse at `endorsers`, assemble, and
    /// broadcast to the ordering cluster. Returns the transaction id
    /// (commitment happens when peers receive the cut block).
    pub fn invoke(
        &self,
        endorsers: &[&Peer],
        ordering: &mut OrderingCluster,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> Result<TxId, ClientError> {
        let proposal = self.create_proposal(chaincode, function, args);
        let responses = self.collect_endorsements(&proposal, endorsers)?;
        let tx_id = proposal.proposal.tx_id();
        let envelope = self.assemble_transaction(&proposal, &responses);
        ordering
            .broadcast(envelope)
            .map_err(|e| ClientError::BroadcastRejected(e.to_string()))?;
        Ok(tx_id)
    }

    /// Read-only query: simulate at one peer and return the chaincode's
    /// response payload without submitting anything for ordering.
    pub fn query(
        &self,
        peer: &Peer,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> Result<Vec<u8>, ClientError> {
        let proposal = self.create_proposal(chaincode, function, args);
        let responses = self.collect_endorsements(&proposal, &[peer])?;
        Ok(responses[0].payload.response.payload.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonces_are_unique() {
        let ca = fabric_msp::CertificateAuthority::new("ca", "OrgMSP", b"s");
        let identity = fabric_msp::issue_identity(&ca, "c", fabric_msp::Role::Client, b"k");
        let client = Client::new(identity, ChannelId::new("ch"));
        let n1 = client.next_nonce();
        let n2 = client.next_nonce();
        assert_ne!(n1, n2);
    }

    #[test]
    fn proposal_signature_valid() {
        let ca = fabric_msp::CertificateAuthority::new("ca", "OrgMSP", b"s");
        let identity = fabric_msp::issue_identity(&ca, "c", fabric_msp::Role::Client, b"k");
        let client = Client::new(identity.clone(), ChannelId::new("ch"));
        let sp = client.create_proposal("cc", "f", vec![b"a".to_vec()]);
        let mut msp = fabric_msp::MspRegistry::new();
        msp.add(fabric_msp::Msp::new("OrgMSP", ca.root_cert().clone()).unwrap());
        msp.validate_and_verify(
            &sp.proposal.creator,
            &sp.proposal.to_wire(),
            &sp.signature,
        )
        .unwrap();
    }
}
