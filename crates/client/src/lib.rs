//! # fabric-client
//!
//! The client SDK (paper Sec. 3.2): building signed proposals, collecting
//! endorsements (and checking that all endorsers produced byte-identical
//! results), assembling transactions, and driving the full
//! execute-order-validate round trip against in-process peers and ordering
//! clusters.

use parking_lot::Mutex;

use fabric_gateway::{Admit, Gateway, SimClock};
use fabric_msp::SigningIdentity;
use fabric_ordering::OrderingCluster;
use fabric_peer::Peer;
use fabric_primitives::ids::{ChaincodeId, ChannelId, TxId};
use fabric_primitives::transaction::{
    Envelope, EnvelopeContent, Proposal, ProposalPayload, ProposalResponse, SignedProposal,
    Transaction,
};
use fabric_primitives::wire::Wire;

/// Errors surfaced by client operations.
#[derive(Debug)]
pub enum ClientError {
    /// Not enough endorsements could be gathered; carries per-peer errors.
    EndorsementFailed(Vec<String>),
    /// Endorsers returned diverging simulation results (paper Sec. 3.2:
    /// the standard policy requires identical readset/writeset).
    DivergingResults,
    /// The ordering service rejected the broadcast.
    BroadcastRejected(String),
    /// The gateway kept shedding the submission until the retry budget
    /// ran out.
    GatewayOverloaded {
        /// Attempts made before giving up.
        attempts: u32,
        /// The gateway's last `RetryAfter` hint, in milliseconds.
        last_retry_ms: u64,
    },
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::EndorsementFailed(errors) => {
                write!(f, "endorsement failed: {}", errors.join("; "))
            }
            ClientError::DivergingResults => {
                write!(f, "endorsers produced diverging simulation results")
            }
            ClientError::BroadcastRejected(msg) => write!(f, "broadcast rejected: {msg}"),
            ClientError::GatewayOverloaded {
                attempts,
                last_retry_ms,
            } => write!(
                f,
                "gateway overloaded after {attempts} attempts (last retry-after {last_retry_ms} ms)"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

/// How [`Client::submit_via_gateway`] reacts to `RetryAfter` verdicts:
/// exponential backoff on the gateway's hint, plus deterministic jitter
/// so a herd of clients shed at the same instant does not return in
/// lockstep.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts before giving up with [`ClientError::GatewayOverloaded`].
    pub max_attempts: u32,
    /// Jitter span as a percentage of the backed-off delay (`50` adds up
    /// to +50%).
    pub jitter_pct: u64,
    /// Seed for the deterministic jitter (mixed with the transaction id
    /// and attempt number, so two clients or two transactions never share
    /// a jitter sequence).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            jitter_pct: 50,
            seed: 0,
        }
    }
}

/// What [`Client::submit_via_gateway`] accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatewayOutcome {
    /// Admitted into the gateway mempool.
    Admitted {
        /// Submission attempts made (1 = first try).
        attempts: u32,
        /// Total simulated milliseconds spent backing off.
        waited_ms: u64,
    },
    /// The gateway already has (or had) this transaction.
    AlreadySubmitted,
}

/// splitmix64 — the standard 64-bit finalizer; one step is enough to
/// decorrelate `seed ^ tx ^ attempt` into uniform jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A Fabric client bound to one identity and one channel.
pub struct Client {
    identity: SigningIdentity,
    channel: ChannelId,
    nonce_counter: Mutex<u64>,
}

impl Client {
    /// Creates a client.
    pub fn new(identity: SigningIdentity, channel: ChannelId) -> Self {
        Client {
            identity,
            channel,
            nonce_counter: Mutex::new(0),
        }
    }

    /// The client's identity.
    pub fn identity(&self) -> &SigningIdentity {
        &self.identity
    }

    /// Produces the next single-use nonce (paper Sec. 3.2: "a nonce to be
    /// used only once by each client, such as a counter").
    pub fn next_nonce(&self) -> [u8; 32] {
        let mut counter = self.nonce_counter.lock();
        *counter += 1;
        let mut h = fabric_crypto::sha256::Sha256::new();
        h.update(&self.identity.serialized().to_wire());
        h.update(&counter.to_le_bytes());
        h.finalize()
    }

    /// Builds and signs a proposal for `chaincode.function(args)`.
    pub fn create_proposal(
        &self,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> SignedProposal {
        self.create_proposal_with_nonce(chaincode, function, args, self.next_nonce())
    }

    /// Like [`Client::create_proposal`] with an explicit nonce — used when
    /// the arguments must bind to the transaction id (derived from the
    /// nonce), as Fabcoin's signed requests do.
    pub fn create_proposal_with_nonce(
        &self,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
        nonce: [u8; 32],
    ) -> SignedProposal {
        let proposal = Proposal {
            channel: self.channel.clone(),
            creator: self.identity.serialized(),
            nonce,
            payload: ProposalPayload {
                chaincode: ChaincodeId::new(chaincode, "1.0"),
                function: function.into(),
                args,
            },
        };
        let signature = self.identity.sign(&proposal.to_wire()).to_bytes().to_vec();
        SignedProposal {
            proposal,
            signature,
        }
    }

    /// Sends the proposal to each endorser and collects their responses.
    ///
    /// Fails if any endorser errors, or if the responses are not
    /// byte-identical (the standard endorsement policy requires identical
    /// rw-sets; under key contention this is where a client gets stuck,
    /// exactly as the paper discusses).
    pub fn collect_endorsements(
        &self,
        proposal: &SignedProposal,
        endorsers: &[&Peer],
    ) -> Result<Vec<ProposalResponse>, ClientError> {
        let mut responses = Vec::with_capacity(endorsers.len());
        let mut errors = Vec::new();
        for peer in endorsers {
            match peer.process_proposal(proposal) {
                Ok(response) => responses.push(response),
                Err(e) => errors.push(e.to_string()),
            }
        }
        if !errors.is_empty() {
            return Err(ClientError::EndorsementFailed(errors));
        }
        let reference = responses[0].payload.to_wire();
        if responses.iter().any(|r| r.payload.to_wire() != reference) {
            return Err(ClientError::DivergingResults);
        }
        Ok(responses)
    }

    /// Assembles a signed transaction envelope from a proposal and its
    /// endorsements.
    pub fn assemble_transaction(
        &self,
        proposal: &SignedProposal,
        responses: &[ProposalResponse],
    ) -> Envelope {
        let tx = Transaction {
            channel: proposal.proposal.channel.clone(),
            creator: proposal.proposal.creator.clone(),
            nonce: proposal.proposal.nonce,
            proposal_payload: proposal.proposal.payload.clone(),
            response_payload: responses[0].payload.clone(),
            endorsements: responses.iter().map(|r| r.endorsement.clone()).collect(),
        };
        let content = EnvelopeContent::Transaction(tx);
        let signature = self
            .identity
            .sign(&Envelope::signing_bytes(&content))
            .to_bytes()
            .to_vec();
        Envelope { content, signature }
    }

    /// Full invocation round trip: endorse at `endorsers`, assemble, and
    /// broadcast to the ordering cluster. Returns the transaction id
    /// (commitment happens when peers receive the cut block).
    pub fn invoke(
        &self,
        endorsers: &[&Peer],
        ordering: &mut OrderingCluster,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> Result<TxId, ClientError> {
        let proposal = self.create_proposal(chaincode, function, args);
        let responses = self.collect_endorsements(&proposal, endorsers)?;
        let tx_id = proposal.proposal.tx_id();
        let envelope = self.assemble_transaction(&proposal, &responses);
        ordering
            .broadcast(envelope)
            .map_err(|e| ClientError::BroadcastRejected(e.to_string()))?;
        Ok(tx_id)
    }

    /// Submits an assembled envelope through a [`Gateway`], honoring
    /// `RetryAfter` verdicts with jittered exponential backoff on the
    /// simulated clock.
    ///
    /// Between attempts the caller-supplied `pump` runs so the system can
    /// make progress (drain the mempool, commit blocks, report credits
    /// back) — without it an overloaded gateway would never clear and
    /// every retry would be futile. The backoff is fully deterministic:
    /// delay = hint × 2^min(attempt−1, 3) plus jitter derived from
    /// `policy.seed`, the transaction id, and the attempt number.
    pub fn submit_via_gateway<F>(
        &self,
        gateway: &mut Gateway,
        clock: &mut SimClock,
        envelope: Envelope,
        fee: u64,
        policy: RetryPolicy,
        mut pump: F,
    ) -> Result<GatewayOutcome, ClientError>
    where
        F: FnMut(&mut Gateway, u64),
    {
        let tx_id = envelope.tx_id();
        let tx_word = u64::from_le_bytes(tx_id.0[..8].try_into().expect("32-byte tx id"));
        let mut waited_ms = 0u64;
        let mut last_retry_ms = 0u64;
        for attempt in 1..=policy.max_attempts.max(1) {
            match gateway.submit(envelope.clone(), fee, clock.now_ms()) {
                Admit::Admitted => {
                    return Ok(GatewayOutcome::Admitted { attempts: attempt, waited_ms });
                }
                Admit::Duplicate => return Ok(GatewayOutcome::AlreadySubmitted),
                Admit::RetryAfter { after_ms, .. } => {
                    last_retry_ms = after_ms;
                    if attempt == policy.max_attempts.max(1) {
                        // No attempt left to back off for.
                        break;
                    }
                    let backoff = after_ms << (attempt - 1).min(3);
                    let span = backoff * policy.jitter_pct / 100;
                    let jitter = if span == 0 {
                        0
                    } else {
                        splitmix64(policy.seed ^ tx_word ^ attempt as u64) % (span + 1)
                    };
                    let delay = backoff + jitter;
                    clock.advance(delay);
                    waited_ms += delay;
                    pump(gateway, clock.now_ms());
                }
            }
        }
        Err(ClientError::GatewayOverloaded {
            attempts: policy.max_attempts.max(1),
            last_retry_ms,
        })
    }

    /// Read-only query: simulate at one peer and return the chaincode's
    /// response payload without submitting anything for ordering.
    pub fn query(
        &self,
        peer: &Peer,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> Result<Vec<u8>, ClientError> {
        let proposal = self.create_proposal(chaincode, function, args);
        let responses = self.collect_endorsements(&proposal, &[peer])?;
        Ok(responses[0].payload.response.payload.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonces_are_unique() {
        let ca = fabric_msp::CertificateAuthority::new("ca", "OrgMSP", b"s");
        let identity = fabric_msp::issue_identity(&ca, "c", fabric_msp::Role::Client, b"k");
        let client = Client::new(identity, ChannelId::new("ch"));
        let n1 = client.next_nonce();
        let n2 = client.next_nonce();
        assert_ne!(n1, n2);
    }

    #[test]
    fn proposal_signature_valid() {
        let ca = fabric_msp::CertificateAuthority::new("ca", "OrgMSP", b"s");
        let identity = fabric_msp::issue_identity(&ca, "c", fabric_msp::Role::Client, b"k");
        let client = Client::new(identity.clone(), ChannelId::new("ch"));
        let sp = client.create_proposal("cc", "f", vec![b"a".to_vec()]);
        let mut msp = fabric_msp::MspRegistry::new();
        msp.add(fabric_msp::Msp::new("OrgMSP", ca.root_cert().clone()).unwrap());
        msp.validate_and_verify(
            &sp.proposal.creator,
            &sp.proposal.to_wire(),
            &sp.signature,
        )
        .unwrap();
    }
}
