//! # fabric-gossip
//!
//! The peer-to-peer gossip layer (paper Sec. 4.3): epidemic dissemination
//! of ordered blocks from the ordering service to every peer, an
//! eventually-consistent membership view built from periodic heartbeats,
//! and per-organization leader election so that only one peer per org
//! pulls blocks from the ordering service and seeds its org.
//!
//! Fabric gossip uses two phases — **push** (forward a freshly learned
//! block to a random fanout of neighbours) and **pull** (periodically probe
//! a random peer for blocks we are missing) — because the combination is
//! what disseminates with high probability at near-optimal bandwidth
//! [Demers et al.; Karp et al.], and pull doubles as state transfer for
//! peers that reconnect after a crash or partition.
//!
//! Like the consensus crates, [`GossipNode`] is a deterministic state
//! machine: drivers feed ticks and messages, and act on the returned
//! [`GossipOutput`]s. Block payloads are opaque bytes here; signature
//! verification happens at the peer layer, which can authenticate blocks
//! independently because they are signed by the ordering service.

use std::collections::{BTreeMap, HashMap};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use fabric_primitives::ChannelId;

/// Identifier of a peer in the gossip overlay.
pub type PeerId = u64;

/// Gossip tuning parameters.
#[derive(Clone, Debug)]
pub struct GossipConfig {
    /// Number of random neighbours a new block is pushed to.
    pub fanout: usize,
    /// Ticks between pull probes.
    pub pull_interval: u64,
    /// Ticks between membership heartbeats.
    pub membership_interval: u64,
    /// Ticks after which a silent member is considered offline.
    pub member_timeout: u64,
    /// Maximum blocks returned by one pull response.
    pub max_pull_batch: usize,
    /// Whether push dissemination is enabled (disabled in some paper
    /// experiments where peers connect to the orderer directly).
    pub push_enabled: bool,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            fanout: 7, // the paper's WAN experiments use fanout 7
            pull_interval: 4,
            membership_interval: 2,
            member_timeout: 20,
            max_pull_batch: 16,
            push_enabled: true,
        }
    }
}

/// One peer's entry in a membership heartbeat: identity plus what the
/// peer is known to hold, so receivers can steer pushes, pulls, and
/// snapshot transfers without extra round trips.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerAdvert {
    /// The peer being described.
    pub peer: PeerId,
    /// The peer's organization.
    pub org: String,
    /// Monotonic heartbeat counter (freshness).
    pub heartbeat: u64,
    /// Highest contiguously delivered block per channel.
    pub delivered: Vec<(ChannelId, u64)>,
    /// Height of the latest state snapshot the peer can serve, per
    /// channel (provider advertisement for catch-up).
    pub snapshots: Vec<(ChannelId, u64)>,
    /// Remaining deliver credits per channel — how many more blocks the
    /// peer's validation intake can absorb right now (see the peer
    /// layer's `DeliverMux`). Zero marks a saturated channel: providers
    /// skip pushing its blocks there and let pull/backfill resume once
    /// credits reappear. Channels absent from the list are assumed to
    /// have headroom (older peers don't advertise credits).
    pub credits: Vec<(ChannelId, u64)>,
}

/// Gossip protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipMessage {
    /// A block payload pushed eagerly.
    BlockPush {
        /// Channel the block belongs to.
        channel: ChannelId,
        /// Block sequence number.
        block_num: u64,
        /// Serialized block.
        payload: Vec<u8>,
    },
    /// A pull probe: "send me blocks above `have`".
    PullRequest {
        /// Channel to probe.
        channel: ChannelId,
        /// Highest contiguous block the requester holds.
        have: u64,
    },
    /// Membership heartbeat: the sender's view of alive peers.
    Membership {
        /// Advertisements for the sender and every alive peer it knows.
        alive: Vec<PeerAdvert>,
    },
    /// An opaque state-transfer payload (a `fabric-statesync`
    /// `SyncMessage`); gossip only routes it.
    StateSync {
        /// Channel being synchronized.
        channel: ChannelId,
        /// Serialized `SyncMessage`.
        payload: Vec<u8>,
    },
}

/// Events a gossip driver must act on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipOutput {
    /// Send `message` to `to`.
    Send {
        /// Destination peer.
        to: PeerId,
        /// The message.
        message: GossipMessage,
    },
    /// A block is ready for the peer to validate and commit, in order.
    DeliverBlock {
        /// Channel.
        channel: ChannelId,
        /// Block number.
        block_num: u64,
        /// Serialized block.
        payload: Vec<u8>,
    },
    /// This node is its org's leader and should pull the next blocks from
    /// the ordering service (the driver owns the orderer connection).
    PullFromOrderer {
        /// Channel to pull.
        channel: ChannelId,
        /// Next block number needed.
        next: u64,
    },
    /// A state-transfer payload arrived; the driver hands it to its
    /// statesync component (snapshot store or catch-up consumer).
    DeliverStateSync {
        /// Peer the payload came from.
        from: PeerId,
        /// Channel being synchronized.
        channel: ChannelId,
        /// Serialized `SyncMessage`.
        payload: Vec<u8>,
    },
}

struct Member {
    org: String,
    heartbeat: u64,
    last_heard: u64,
    /// Highest block the peer is known to have delivered, per channel —
    /// learned from pull probes, pushes it sends, and membership adverts.
    delivered: HashMap<ChannelId, u64>,
    /// Snapshot heights the peer advertises as a provider, per channel.
    snapshots: HashMap<ChannelId, u64>,
    /// Deliver credits the peer last advertised, per channel. Unlike the
    /// heights this is *not* monotone, so it is only overwritten by a
    /// fresher heartbeat.
    credits: HashMap<ChannelId, u64>,
}

impl Member {
    fn new(org: String) -> Self {
        Member {
            org,
            heartbeat: 0,
            last_heard: 0,
            delivered: HashMap::new(),
            snapshots: HashMap::new(),
            credits: HashMap::new(),
        }
    }

    /// Raises the known delivered height (heights only move forward).
    fn observe_delivered(&mut self, channel: &ChannelId, height: u64) {
        let entry = self.delivered.entry(channel.clone()).or_insert(0);
        *entry = (*entry).max(height);
    }
}

/// One peer's gossip component.
pub struct GossipNode {
    id: PeerId,
    org: String,
    config: GossipConfig,
    rng: StdRng,
    now: u64,
    members: HashMap<PeerId, Member>,
    /// Per-channel store of received block payloads.
    store: HashMap<ChannelId, BTreeMap<u64, Vec<u8>>>,
    /// Highest block delivered contiguously per channel.
    delivered: HashMap<ChannelId, u64>,
    /// Snapshot heights this node itself can serve, per channel.
    my_snapshots: HashMap<ChannelId, u64>,
    /// Deliver credits this node's own intake currently has, per channel
    /// (driver-fed from `DeliverMux::credits`). Absent = unbounded.
    my_credits: HashMap<ChannelId, u64>,
    channels: Vec<ChannelId>,
}

impl GossipNode {
    /// Creates a gossip node. `bootstrap` seeds the membership view with
    /// `(peer, org)` pairs (the channel configuration provides these in a
    /// real deployment). `channels` lists the channels to track; the
    /// delivered watermark starts at 0 (the genesis block is obtained
    /// out-of-band when joining a channel).
    pub fn new(
        id: PeerId,
        org: impl Into<String>,
        bootstrap: &[(PeerId, String)],
        channels: Vec<ChannelId>,
        config: GossipConfig,
        seed: u64,
    ) -> Self {
        let org = org.into();
        let mut members = HashMap::new();
        for (peer, peer_org) in bootstrap {
            if *peer != id {
                members.insert(*peer, Member::new(peer_org.clone()));
            }
        }
        GossipNode {
            id,
            org,
            config,
            rng: StdRng::seed_from_u64(seed ^ id.wrapping_mul(0x5851_f42d_4c95_7f2d)),
            now: 0,
            members,
            store: HashMap::new(),
            delivered: HashMap::new(),
            my_snapshots: HashMap::new(),
            my_credits: HashMap::new(),
            channels,
        }
    }

    /// Updates this node's advertised deliver credits for `channel` (the
    /// driver reads them off its `DeliverMux` after each deliver/commit
    /// batch). Zero throttles the node's own pull traffic for the channel
    /// — pull probes and leader orderer-pulls are suppressed until
    /// credits return — and, once heartbeated out, steers providers'
    /// pushes elsewhere.
    pub fn set_deliver_credits(&mut self, channel: &ChannelId, credits: u64) {
        self.my_credits.insert(channel.clone(), credits);
    }

    /// The deliver credits `peer` last advertised for `channel` (`None`
    /// if unknown, which providers treat as headroom).
    pub fn peer_credits(&self, peer: PeerId, channel: &ChannelId) -> Option<u64> {
        self.members.get(&peer)?.credits.get(channel).copied()
    }

    /// Advertises this node as a snapshot provider for `channel` at
    /// `height`; carried in subsequent membership heartbeats. Call after
    /// each checkpoint.
    pub fn advertise_snapshot(&mut self, channel: &ChannelId, height: u64) {
        let entry = self.my_snapshots.entry(channel.clone()).or_insert(0);
        *entry = (*entry).max(height);
    }

    /// Alive peers advertising a snapshot for `channel`, as `(peer,
    /// snapshot height)` sorted by height descending (freshest snapshot
    /// first, peer id as tie-break for determinism).
    pub fn snapshot_providers(&self, channel: &ChannelId) -> Vec<(PeerId, u64)> {
        let mut providers: Vec<(PeerId, u64)> = self
            .members
            .iter()
            .filter(|(_, m)| self.now.saturating_sub(m.last_heard) < self.config.member_timeout)
            .filter_map(|(&id, m)| {
                m.snapshots
                    .get(channel)
                    .filter(|&&h| h > 0)
                    .map(|&h| (id, h))
            })
            .collect();
        providers.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        providers
    }

    /// This node's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Highest contiguously delivered block on `channel`.
    pub fn delivered_height(&self, channel: &ChannelId) -> u64 {
        self.delivered.get(channel).copied().unwrap_or(0)
    }

    /// Currently alive peers (heard from within the timeout).
    pub fn alive_peers(&self) -> Vec<PeerId> {
        self.members
            .iter()
            .filter(|(_, m)| self.now.saturating_sub(m.last_heard) < self.config.member_timeout)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Whether this node is currently its org's leader: the alive org
    /// member with the smallest id (deterministic election over the
    /// membership view; leader failure is healed by membership expiry).
    pub fn is_org_leader(&self) -> bool {
        !self
            .alive_peers()
            .into_iter()
            .any(|p| p < self.id && self.members[&p].org == self.org)
    }

    /// Ingests a block this node obtained directly from the ordering
    /// service (leaders call this).
    pub fn on_block_from_orderer(
        &mut self,
        channel: &ChannelId,
        block_num: u64,
        payload: Vec<u8>,
    ) -> Vec<GossipOutput> {
        let mut out = Vec::new();
        self.ingest_block(channel, block_num, payload, None, &mut out);
        out
    }

    /// Handles a gossip message from `from`.
    pub fn step(&mut self, from: PeerId, message: GossipMessage) -> Vec<GossipOutput> {
        let mut out = Vec::new();
        // Any direct message is a liveness signal.
        if let Some(m) = self.members.get_mut(&from) {
            m.last_heard = self.now;
        }
        match message {
            GossipMessage::BlockPush {
                channel,
                block_num,
                payload,
            } => {
                // The sender evidently holds this block; don't push it back.
                if let Some(m) = self.members.get_mut(&from) {
                    m.observe_delivered(&channel, block_num);
                }
                self.ingest_block(&channel, block_num, payload, Some(from), &mut out);
            }
            GossipMessage::PullRequest { channel, have } => {
                // `have` is the requester's own delivered watermark.
                if let Some(m) = self.members.get_mut(&from) {
                    m.observe_delivered(&channel, have);
                }
                if let Some(store) = self.store.get(&channel) {
                    for (&num, payload) in store.range(have + 1..) {
                        if (num - have) as usize > self.config.max_pull_batch {
                            break;
                        }
                        out.push(GossipOutput::Send {
                            to: from,
                            message: GossipMessage::BlockPush {
                                channel: channel.clone(),
                                block_num: num,
                                payload: payload.clone(),
                            },
                        });
                    }
                }
            }
            GossipMessage::Membership { alive } => {
                for advert in alive {
                    if advert.peer == self.id {
                        continue;
                    }
                    let entry = self
                        .members
                        .entry(advert.peer)
                        .or_insert_with(|| Member::new(advert.org));
                    if advert.heartbeat > entry.heartbeat {
                        entry.heartbeat = advert.heartbeat;
                        entry.last_heard = self.now;
                        // Credits go up *and down*; only a fresher
                        // heartbeat may overwrite them.
                        for (channel, credits) in advert.credits {
                            entry.credits.insert(channel, credits);
                        }
                    }
                    // Heights are monotone; merge regardless of freshness.
                    for (channel, height) in advert.delivered {
                        entry.observe_delivered(&channel, height);
                    }
                    for (channel, height) in advert.snapshots {
                        let slot = entry.snapshots.entry(channel).or_insert(0);
                        *slot = (*slot).max(height);
                    }
                }
            }
            GossipMessage::StateSync { channel, payload } => {
                out.push(GossipOutput::DeliverStateSync {
                    from,
                    channel,
                    payload,
                });
            }
        }
        out
    }

    /// Advances the clock: membership heartbeats, pull probes, and (for
    /// org leaders) orderer pulls.
    pub fn tick(&mut self) -> Vec<GossipOutput> {
        self.now += 1;
        let mut out = Vec::new();
        // Membership dissemination.
        if self.now.is_multiple_of(self.config.membership_interval) {
            let mut view = vec![PeerAdvert {
                peer: self.id,
                org: self.org.clone(),
                heartbeat: self.now,
                delivered: self.delivered.iter().map(|(c, &h)| (c.clone(), h)).collect(),
                snapshots: self
                    .my_snapshots
                    .iter()
                    .map(|(c, &h)| (c.clone(), h))
                    .collect(),
                credits: self.my_credits.iter().map(|(c, &n)| (c.clone(), n)).collect(),
            }];
            for (&peer, member) in &self.members {
                if self.now.saturating_sub(member.last_heard) < self.config.member_timeout {
                    view.push(PeerAdvert {
                        peer,
                        org: member.org.clone(),
                        heartbeat: member.heartbeat,
                        delivered: member.delivered.iter().map(|(c, &h)| (c.clone(), h)).collect(),
                        snapshots: member.snapshots.iter().map(|(c, &h)| (c.clone(), h)).collect(),
                        credits: member.credits.iter().map(|(c, &n)| (c.clone(), n)).collect(),
                    });
                }
            }
            for target in self.random_alive(self.config.fanout, None) {
                out.push(GossipOutput::Send {
                    to: target,
                    message: GossipMessage::Membership {
                        alive: view.clone(),
                    },
                });
            }
        }
        // Pull probes: prefer peers that can actually fill our gap —
        // known to be ahead of `have`, or of unknown height. Probing a
        // peer known to be at or behind our watermark cannot help.
        if self.now.is_multiple_of(self.config.pull_interval) {
            let channels = self.channels.clone();
            for channel in channels {
                // A saturated channel (zero deliver credits) must not
                // invite more blocks it cannot absorb.
                if self.my_credits.get(&channel) == Some(&0) {
                    continue;
                }
                let have = self.delivered_height(&channel);
                let useful = self.sample_peers(1, |_, m| {
                    m.delivered.get(&channel).is_none_or(|&h| h > have)
                });
                if let Some(target) = useful.first().copied() {
                    out.push(GossipOutput::Send {
                        to: target,
                        message: GossipMessage::PullRequest {
                            channel: channel.clone(),
                            have,
                        },
                    });
                }
            }
        }
        // Leader duty: ask the driver to pull from the ordering service —
        // except on channels whose own intake is saturated (backpressure
        // reaches all the way to the ordering service).
        if self.is_org_leader() {
            let channels = self.channels.clone();
            for channel in channels {
                if self.my_credits.get(&channel) == Some(&0) {
                    continue;
                }
                let next = self.delivered_height(&channel) + 1;
                out.push(GossipOutput::PullFromOrderer { channel, next });
            }
        }
        out
    }

    /// Stores a block if new, delivers contiguous blocks, and pushes to a
    /// random fanout (excluding the peer we got it from).
    fn ingest_block(
        &mut self,
        channel: &ChannelId,
        block_num: u64,
        payload: Vec<u8>,
        from: Option<PeerId>,
        out: &mut Vec<GossipOutput>,
    ) {
        let delivered_height = self.delivered_height(channel);
        let store = self.store.entry(channel.clone()).or_default();
        if store.contains_key(&block_num) || block_num <= delivered_height {
            return; // already known
        }
        store.insert(block_num, payload.clone());
        // Deliver contiguously.
        let mut delivered = self.delivered.get(channel).copied().unwrap_or(0);
        let store = self.store.get(channel).expect("just inserted");
        let mut deliveries = Vec::new();
        while let Some(p) = store.get(&(delivered + 1)) {
            delivered += 1;
            deliveries.push(GossipOutput::DeliverBlock {
                channel: channel.clone(),
                block_num: delivered,
                payload: p.clone(),
            });
        }
        self.delivered.insert(channel.clone(), delivered);
        out.extend(deliveries);
        // Push phase: skip the sender and any peer already known to hold
        // the block (its observed height reaches `block_num`) — pushing
        // there is guaranteed-wasted bandwidth. Sampling first and
        // filtering after would also bias the fanout: slots spent on
        // excluded peers would be lost instead of going to peers that
        // still need the block. Peers advertising zero deliver credits
        // for the channel are skipped too: their intake is saturated and
        // would refuse or park the block, so the fanout slot serves a
        // peer with headroom instead (they catch up by pull once their
        // credits return).
        if self.config.push_enabled {
            let targets = self.sample_peers(self.config.fanout, |id, m| {
                Some(id) != from
                    && m.delivered.get(channel).is_none_or(|&h| h < block_num)
                    && m.credits.get(channel).is_none_or(|&c| c > 0)
            });
            for target in targets {
                out.push(GossipOutput::Send {
                    to: target,
                    message: GossipMessage::BlockPush {
                        channel: channel.clone(),
                        block_num,
                        payload: payload.clone(),
                    },
                });
            }
        }
    }

    fn random_alive(&mut self, count: usize, exclude: Option<PeerId>) -> Vec<PeerId> {
        self.sample_peers(count, |id, _| Some(id) != exclude)
    }

    /// Uniform random sample of up to `count` alive peers satisfying
    /// `keep`; the filter runs before sampling so every returned slot is
    /// a useful target.
    fn sample_peers(
        &mut self,
        count: usize,
        keep: impl Fn(PeerId, &Member) -> bool,
    ) -> Vec<PeerId> {
        let now = self.now;
        let timeout = self.config.member_timeout;
        let mut alive: Vec<PeerId> = self
            .members
            .iter()
            .filter(|(&id, m)| now.saturating_sub(m.last_heard) < timeout && keep(id, m))
            .map(|(&id, _)| id)
            .collect();
        alive.sort_unstable(); // determinism before shuffling
        alive.shuffle(&mut self.rng);
        alive.truncate(count);
        alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn channel() -> ChannelId {
        ChannelId::new("ch")
    }

    /// In-memory overlay of gossip nodes with optional per-peer isolation.
    struct Overlay {
        nodes: Vec<GossipNode>,
        network: VecDeque<(PeerId, PeerId, GossipMessage)>,
        delivered: Vec<Vec<u64>>,
        isolated: Vec<PeerId>,
        /// Collected PullFromOrderer requests per node.
        orderer_pulls: Vec<Vec<u64>>,
    }

    impl Overlay {
        /// `orgs[i]` is the org of node `i`; ids are 1-based.
        fn new(orgs: &[&str], config: GossipConfig) -> Self {
            let bootstrap: Vec<(PeerId, String)> = orgs
                .iter()
                .enumerate()
                .map(|(i, org)| (i as u64 + 1, org.to_string()))
                .collect();
            let nodes = bootstrap
                .iter()
                .map(|(id, org)| {
                    GossipNode::new(
                        *id,
                        org.clone(),
                        &bootstrap,
                        vec![channel()],
                        config.clone(),
                        99,
                    )
                })
                .collect();
            Overlay {
                delivered: vec![Vec::new(); orgs.len()],
                orderer_pulls: vec![Vec::new(); orgs.len()],
                nodes,
                network: VecDeque::new(),
                isolated: Vec::new(),
            }
        }

        fn absorb(&mut self, from: PeerId, outputs: Vec<GossipOutput>) {
            for output in outputs {
                match output {
                    GossipOutput::Send { to, message } => {
                        self.network.push_back((from, to, message));
                    }
                    GossipOutput::DeliverBlock { block_num, .. } => {
                        self.delivered[from as usize - 1].push(block_num);
                    }
                    GossipOutput::PullFromOrderer { next, .. } => {
                        self.orderer_pulls[from as usize - 1].push(next);
                    }
                    GossipOutput::DeliverStateSync { .. } => {}
                }
            }
        }

        fn drain(&mut self) {
            let mut budget = 500_000;
            while let Some((from, to, msg)) = self.network.pop_front() {
                budget -= 1;
                assert!(budget > 0, "gossip network did not quiesce");
                if self.isolated.contains(&from) || self.isolated.contains(&to) {
                    continue;
                }
                let outputs = self.nodes[to as usize - 1].step(from, msg);
                self.absorb(to, outputs);
            }
        }

        fn tick(&mut self) {
            for i in 0..self.nodes.len() {
                if self.isolated.contains(&(i as u64 + 1)) {
                    continue;
                }
                let outputs = self.nodes[i].tick();
                self.absorb(i as u64 + 1, outputs);
            }
            self.drain();
        }

        fn inject_block(&mut self, node: usize, num: u64) {
            let payload = vec![num as u8; 64];
            let outputs = self.nodes[node].on_block_from_orderer(&channel(), num, payload);
            self.absorb(node as u64 + 1, outputs);
            self.drain();
        }
    }

    #[test]
    fn push_disseminates_to_all() {
        let mut overlay = Overlay::new(&["A", "A", "A", "A", "A", "A"], GossipConfig::default());
        // Warm the membership view.
        for _ in 0..3 {
            overlay.tick();
        }
        overlay.inject_block(0, 1);
        overlay.inject_block(0, 2);
        for _ in 0..3 {
            overlay.tick();
        }
        for (i, d) in overlay.delivered.iter().enumerate() {
            assert_eq!(d, &vec![1, 2], "peer {} delivered in order", i + 1);
        }
    }

    #[test]
    fn out_of_order_arrival_buffers() {
        let config = GossipConfig {
            push_enabled: false, // isolate the buffering logic
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[], vec![channel()], config, 1);
        let out = node.on_block_from_orderer(&channel(), 2, vec![2]);
        assert!(out
            .iter()
            .all(|o| !matches!(o, GossipOutput::DeliverBlock { .. })));
        let out = node.on_block_from_orderer(&channel(), 1, vec![1]);
        let delivered: Vec<u64> = out
            .iter()
            .filter_map(|o| match o {
                GossipOutput::DeliverBlock { block_num, .. } => Some(*block_num),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![1, 2]);
        assert_eq!(node.delivered_height(&channel()), 2);
    }

    #[test]
    fn duplicate_blocks_not_repushed() {
        let mut node = GossipNode::new(
            1,
            "A",
            &[(2, "A".into()), (3, "A".into())],
            vec![channel()],
            GossipConfig::default(),
            1,
        );
        let out1 = node.on_block_from_orderer(&channel(), 1, vec![1]);
        let pushes1 = out1
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    GossipOutput::Send {
                        message: GossipMessage::BlockPush { .. },
                        ..
                    }
                )
            })
            .count();
        assert!(pushes1 > 0);
        let out2 = node.on_block_from_orderer(&channel(), 1, vec![1]);
        assert!(out2.is_empty(), "duplicate ingestion is a no-op");
    }

    #[test]
    fn pull_repairs_isolated_peer() {
        let config = GossipConfig {
            pull_interval: 2,
            ..GossipConfig::default()
        };
        let mut overlay = Overlay::new(&["A", "A", "A", "A"], config);
        for _ in 0..3 {
            overlay.tick();
        }
        // Peer 4 misses the pushes.
        overlay.isolated = vec![4];
        overlay.inject_block(0, 1);
        overlay.inject_block(0, 2);
        assert!(overlay.delivered[3].is_empty());
        // Reconnect; pull probes must repair the gap.
        overlay.isolated = vec![];
        for _ in 0..10 {
            overlay.tick();
        }
        assert_eq!(overlay.delivered[3], vec![1, 2]);
    }

    #[test]
    fn one_leader_per_org() {
        let mut overlay = Overlay::new(&["A", "A", "B", "B"], GossipConfig::default());
        for _ in 0..5 {
            overlay.tick();
        }
        let leaders: Vec<bool> = overlay.nodes.iter().map(|n| n.is_org_leader()).collect();
        // Lowest id per org leads: node 1 (org A) and node 3 (org B).
        assert_eq!(leaders, vec![true, false, true, false]);
        // Leaders emit orderer pulls; followers don't.
        assert!(!overlay.orderer_pulls[0].is_empty());
        assert!(overlay.orderer_pulls[1].is_empty());
        assert!(!overlay.orderer_pulls[2].is_empty());
        assert!(overlay.orderer_pulls[3].is_empty());
    }

    #[test]
    fn leader_failover_within_org() {
        let config = GossipConfig {
            member_timeout: 6,
            membership_interval: 2,
            ..GossipConfig::default()
        };
        let mut overlay = Overlay::new(&["A", "A", "A"], config);
        for _ in 0..5 {
            overlay.tick();
        }
        assert!(overlay.nodes[0].is_org_leader());
        assert!(!overlay.nodes[1].is_org_leader());
        // Node 1 goes dark; after the timeout node 2 takes over.
        overlay.isolated = vec![1];
        for _ in 0..10 {
            overlay.tick();
        }
        assert!(overlay.nodes[1].is_org_leader(), "node 2 took over org A");
        // Node 1 heals and reclaims leadership (lowest id).
        overlay.isolated = vec![];
        for _ in 0..10 {
            overlay.tick();
        }
        assert!(overlay.nodes[0].is_org_leader());
        assert!(!overlay.nodes[1].is_org_leader());
    }

    #[test]
    fn membership_spreads_transitively() {
        // Node 3 only knows node 2; it must learn about node 1 via gossip.
        let config = GossipConfig {
            membership_interval: 1,
            ..GossipConfig::default()
        };
        let full: Vec<(PeerId, String)> = vec![(1, "A".into()), (2, "A".into()), (3, "A".into())];
        let partial: Vec<(PeerId, String)> = vec![(2, "A".into())];
        let mut overlay = Overlay::new(&["A", "A", "A"], config.clone());
        overlay.nodes[0] = GossipNode::new(1, "A", &full, vec![channel()], config.clone(), 1);
        overlay.nodes[1] = GossipNode::new(2, "A", &full, vec![channel()], config.clone(), 2);
        overlay.nodes[2] = GossipNode::new(3, "A", &partial, vec![channel()], config, 3);
        for _ in 0..10 {
            overlay.tick();
        }
        assert!(
            overlay.nodes[2].alive_peers().contains(&1),
            "node 3 learned about node 1 transitively"
        );
    }

    #[test]
    fn pull_respects_batch_limit() {
        let config = GossipConfig {
            max_pull_batch: 3,
            push_enabled: false,
            ..GossipConfig::default()
        };
        let mut holder = GossipNode::new(1, "A", &[(2, "A".into())], vec![channel()], config, 1);
        for num in 1..=10 {
            holder.on_block_from_orderer(&channel(), num, vec![num as u8]);
        }
        let out = holder.step(
            2,
            GossipMessage::PullRequest {
                channel: channel(),
                have: 0,
            },
        );
        let pushes = out
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    GossipOutput::Send {
                        message: GossipMessage::BlockPush { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(pushes, 3);
    }

    #[test]
    fn push_skips_peers_known_to_hold_the_block() {
        let config = GossipConfig {
            fanout: 10,
            ..GossipConfig::default()
        };
        let bootstrap: Vec<(PeerId, String)> =
            (2..=5).map(|id| (id, "A".to_string())).collect();
        let mut node = GossipNode::new(1, "A", &bootstrap, vec![channel()], config, 1);
        node.tick(); // liveness baseline so everyone samples as alive
        for peer in 2..=5 {
            node.step(peer, GossipMessage::Membership { alive: vec![] });
        }
        // Peers 2 and 3 are known to have delivered block 1 already
        // (learned from their pull probes).
        for peer in [2, 3] {
            node.step(
                peer,
                GossipMessage::PullRequest {
                    channel: channel(),
                    have: 1,
                },
            );
        }
        let out = node.on_block_from_orderer(&channel(), 1, vec![1]);
        let targets: Vec<PeerId> = out
            .iter()
            .filter_map(|o| match o {
                GossipOutput::Send {
                    to,
                    message: GossipMessage::BlockPush { .. },
                } => Some(*to),
                _ => None,
            })
            .collect();
        assert!(!targets.contains(&2) && !targets.contains(&3));
        // The fanout slots go to peers that still need the block.
        assert_eq!(
            {
                let mut t = targets.clone();
                t.sort_unstable();
                t
            },
            vec![4, 5]
        );
        // Block 2 is news to everyone: peers 2 and 3 are eligible again.
        let out = node.on_block_from_orderer(&channel(), 2, vec![2]);
        let targets: Vec<PeerId> = out
            .iter()
            .filter_map(|o| match o {
                GossipOutput::Send {
                    to,
                    message: GossipMessage::BlockPush { block_num: 2, .. },
                } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets.len(), 4);
    }

    #[test]
    fn snapshot_adverts_reach_the_overlay() {
        let mut overlay = Overlay::new(&["A", "A", "A"], GossipConfig::default());
        for _ in 0..3 {
            overlay.tick();
        }
        assert!(overlay.nodes[1].snapshot_providers(&channel()).is_empty());
        overlay.nodes[0].advertise_snapshot(&channel(), 16);
        for _ in 0..4 {
            overlay.tick();
        }
        for node in &overlay.nodes[1..] {
            assert_eq!(node.snapshot_providers(&channel()), vec![(1, 16)]);
        }
        // A fresher snapshot elsewhere sorts first.
        overlay.nodes[2].advertise_snapshot(&channel(), 24);
        for _ in 0..4 {
            overlay.tick();
        }
        assert_eq!(
            overlay.nodes[1].snapshot_providers(&channel()),
            vec![(3, 24), (1, 16)]
        );
    }

    #[test]
    fn zero_credit_channel_suppresses_own_pull_traffic() {
        let config = GossipConfig {
            pull_interval: 1,
            membership_interval: 1000, // isolate pull/orderer traffic
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[(2, "A".into())], vec![channel()], config, 1);
        node.tick();
        node.step(2, GossipMessage::Membership { alive: vec![] });
        assert!(node.is_org_leader());

        node.set_deliver_credits(&channel(), 0);
        for _ in 0..5 {
            for output in node.tick() {
                assert!(
                    !matches!(
                        output,
                        GossipOutput::Send {
                            message: GossipMessage::PullRequest { .. },
                            ..
                        } | GossipOutput::PullFromOrderer { .. }
                    ),
                    "saturated channel invited more blocks: {output:?}"
                );
            }
        }

        // Credits return: pull probes and leader orderer-pulls resume.
        node.set_deliver_credits(&channel(), 8);
        let (mut pulls, mut orderer) = (0, 0);
        for _ in 0..5 {
            for output in node.tick() {
                match output {
                    GossipOutput::Send {
                        message: GossipMessage::PullRequest { .. },
                        ..
                    } => pulls += 1,
                    GossipOutput::PullFromOrderer { .. } => orderer += 1,
                    _ => {}
                }
            }
        }
        assert!(pulls > 0 && orderer > 0);
    }

    #[test]
    fn push_skips_peers_advertising_zero_credits() {
        let config = GossipConfig {
            fanout: 10,
            ..GossipConfig::default()
        };
        let bootstrap: Vec<(PeerId, String)> =
            (2..=4).map(|id| (id, "A".to_string())).collect();
        let mut node = GossipNode::new(1, "A", &bootstrap, vec![channel()], config, 1);
        node.tick();
        for peer in 2..=4 {
            node.step(peer, GossipMessage::Membership { alive: vec![] });
        }
        let advert = |heartbeat, credits| PeerAdvert {
            peer: 2,
            org: "A".into(),
            heartbeat,
            delivered: vec![],
            snapshots: vec![],
            credits: vec![(channel(), credits)],
        };
        // Peer 2 heartbeats a saturated intake for the channel.
        node.step(
            3,
            GossipMessage::Membership {
                alive: vec![advert(5, 0)],
            },
        );
        assert_eq!(node.peer_credits(2, &channel()), Some(0));
        // A *stale* heartbeat claiming headroom must not win: credits are
        // non-monotone, freshness decides.
        node.step(
            3,
            GossipMessage::Membership {
                alive: vec![advert(4, 9)],
            },
        );
        assert_eq!(node.peer_credits(2, &channel()), Some(0));

        let push_targets = |out: &[GossipOutput]| -> Vec<PeerId> {
            let mut t: Vec<PeerId> = out
                .iter()
                .filter_map(|o| match o {
                    GossipOutput::Send {
                        to,
                        message: GossipMessage::BlockPush { .. },
                    } => Some(*to),
                    _ => None,
                })
                .collect();
            t.sort_unstable();
            t
        };
        let out = node.on_block_from_orderer(&channel(), 1, vec![1]);
        assert_eq!(
            push_targets(&out),
            vec![3, 4],
            "fanout slots went to peers with headroom"
        );
        // A fresher heartbeat restores peer 2's credits; pushes resume.
        node.step(
            3,
            GossipMessage::Membership {
                alive: vec![advert(6, 4)],
            },
        );
        let out = node.on_block_from_orderer(&channel(), 2, vec![2]);
        assert_eq!(push_targets(&out), vec![2, 3, 4]);
    }

    #[test]
    fn state_sync_payloads_are_routed_to_the_driver() {
        let mut node = GossipNode::new(
            1,
            "A",
            &[(2, "A".into())],
            vec![channel()],
            GossipConfig::default(),
            1,
        );
        let out = node.step(
            2,
            GossipMessage::StateSync {
                channel: channel(),
                payload: vec![0xab; 16],
            },
        );
        assert_eq!(
            out,
            vec![GossipOutput::DeliverStateSync {
                from: 2,
                channel: channel(),
                payload: vec![0xab; 16],
            }]
        );
    }

    #[test]
    fn pull_probes_avoid_peers_known_to_be_behind() {
        let config = GossipConfig {
            pull_interval: 1,
            membership_interval: 1000, // isolate pull traffic
            ..GossipConfig::default()
        };
        let bootstrap: Vec<(PeerId, String)> =
            (2..=4).map(|id| (id, "A".to_string())).collect();
        let mut node = GossipNode::new(1, "A", &bootstrap, vec![channel()], config, 1);
        node.tick();
        for peer in 2..=4 {
            node.step(peer, GossipMessage::Membership { alive: vec![] });
        }
        // We are at height 5. Peers 2 and 3 are known to be at 2 — a pull
        // probe to them cannot help. Peer 4's height is unknown.
        for _ in 0..5 {
            let n = node.delivered_height(&channel()) + 1;
            node.on_block_from_orderer(&channel(), n, vec![n as u8]);
        }
        for peer in [2, 3] {
            node.step(
                peer,
                GossipMessage::PullRequest {
                    channel: channel(),
                    have: 2,
                },
            );
        }
        for _ in 0..20 {
            for output in node.tick() {
                if let GossipOutput::Send {
                    to,
                    message: GossipMessage::PullRequest { .. },
                } = output
                {
                    assert_eq!(to, 4, "pull probe went to a peer known to be behind");
                }
            }
        }
    }

    #[test]
    fn convergence_at_scale_with_fanout() {
        // 30 peers, one seed; fanout-7 push + pull converge quickly.
        let orgs: Vec<&str> = (0..30).map(|_| "A").collect();
        let mut overlay = Overlay::new(&orgs, GossipConfig::default());
        for _ in 0..4 {
            overlay.tick();
        }
        for num in 1..=5 {
            overlay.inject_block(0, num);
        }
        for _ in 0..12 {
            overlay.tick();
        }
        for (i, d) in overlay.delivered.iter().enumerate() {
            assert_eq!(d.len(), 5, "peer {} got all blocks", i + 1);
        }
    }
}
