//! # fabric-gossip
//!
//! The peer-to-peer gossip layer (paper Sec. 4.3): epidemic dissemination
//! of ordered blocks from the ordering service to every peer, an
//! eventually-consistent membership view built from periodic heartbeats,
//! and per-organization leader election so that only one peer per org
//! pulls blocks from the ordering service and seeds its org.
//!
//! Fabric gossip uses two phases — **push** (forward a freshly learned
//! block to a random fanout of neighbours) and **pull** (periodically probe
//! a random peer for blocks we are missing) — because the combination is
//! what disseminates with high probability at near-optimal bandwidth
//! [Demers et al.; Karp et al.], and pull doubles as state transfer for
//! peers that reconnect after a crash or partition.
//!
//! # Priority lanes
//!
//! Dissemination is split into two classes (after Frey et al.,
//! "Differentiated Consistency for Worldwide Gossips"): blocks, pulls and
//! membership/credit adverts ride the **fast lane** and are emitted
//! immediately, while bulk `StateSync` payloads (snapshot segments) ride a
//! **throttled lane** — an egress queue drained by [`GossipNode::tick`]
//! under a per-tick byte budget — so a peer serving catch-up traffic can
//! never starve block delivery. Use [`GossipNode::send_state_sync`] to
//! enqueue on the bulk lane.
//!
//! # Hostile-scale hardening
//!
//! Ingress is defended in depth, in this order: **quarantine** (peers
//! whose payloads repeatedly failed driver verification are ignored until
//! parole — see [`GossipNode::report_verdict`]), **token-bucket rate
//! limits** (per-peer, lazily refilled per tick), and an **LRU dedup
//! cache** over block pushes (duplicate floods cost one hash lookup, not
//! a store probe). Memory is bounded: the block store retains a sliding
//! window below the delivered watermark, members silent for
//! `member_gc_factor × member_timeout` ticks are garbage-collected, and
//! membership heartbeats carry a bounded random subset of the view.
//! Laggards whose block deficit exceeds `catchup_threshold` are flipped
//! to snapshot catch-up ([`GossipOutput::SnapshotCatchup`]) instead of
//! replaying history block by block.
//!
//! Like the consensus crates, [`GossipNode`] is a deterministic state
//! machine: drivers feed ticks and messages, and act on the returned
//! [`GossipOutput`]s. Block payloads are opaque bytes here; signature
//! verification happens at the peer layer, which can authenticate blocks
//! independently because they are signed by the ordering service — the
//! peer layer reports the verdict back so gossip can score the provider.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use fabric_primitives::ChannelId;

/// Identifier of a peer in the gossip overlay.
pub type PeerId = u64;

/// Gossip tuning parameters.
#[derive(Clone, Debug)]
pub struct GossipConfig {
    /// Number of random neighbours a new block is pushed to.
    pub fanout: usize,
    /// Ticks between pull probes.
    pub pull_interval: u64,
    /// Ticks between membership heartbeats.
    pub membership_interval: u64,
    /// Ticks after which a silent member is considered offline.
    pub member_timeout: u64,
    /// Maximum blocks returned by one pull response.
    pub max_pull_batch: usize,
    /// Whether push dissemination is enabled (disabled in some paper
    /// experiments where peers connect to the orderer directly).
    pub push_enabled: bool,
    /// Maximum peer adverts carried in one membership heartbeat (self
    /// plus a random alive subset). Bounds heartbeat size at thousand-
    /// peer scale; the view still spreads transitively.
    pub max_adverts: usize,
    /// Byte budget the throttled bulk lane may emit per tick. At least
    /// one queued payload is sent per tick regardless, so oversized
    /// segments still make progress.
    pub bulk_budget_per_tick: usize,
    /// Byte cap on the queued bulk lane; beyond it the oldest queued
    /// payloads are dropped (statesync retries re-request them).
    pub bulk_queue_limit: usize,
    /// Token-bucket burst: messages a peer may send back-to-back before
    /// refill matters.
    pub rate_limit_burst: u64,
    /// Tokens refilled per tick of silence (lazy refill).
    pub rate_limit_refill: u64,
    /// Entries in the block-push dedup LRU (0 disables dedup).
    pub dedup_capacity: usize,
    /// Failed verification verdicts (net of successes) that quarantine a
    /// peer.
    pub quarantine_threshold: u32,
    /// Ticks a quarantined peer is ignored before parole.
    pub quarantine_ticks: u64,
    /// Delivered blocks retained below the watermark for serving pulls;
    /// older payloads are pruned (laggards past the window flip to
    /// snapshot catch-up).
    pub retention_window: u64,
    /// Members silent for this multiple of `member_timeout` are removed
    /// from the membership map entirely.
    pub member_gc_factor: u64,
    /// Block deficit (best known alive height minus own) beyond which a
    /// lagging node asks its driver to snapshot-catch-up instead of
    /// pulling history (matches the snapshot-vs-replay crossover measured
    /// in benches/catchup.rs).
    pub catchup_threshold: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            fanout: 7, // the paper's WAN experiments use fanout 7
            pull_interval: 4,
            membership_interval: 2,
            member_timeout: 20,
            max_pull_batch: 16,
            push_enabled: true,
            max_adverts: 32,
            bulk_budget_per_tick: 256 * 1024,
            bulk_queue_limit: 4 * 1024 * 1024,
            rate_limit_burst: 64,
            rate_limit_refill: 16,
            dedup_capacity: 8192,
            quarantine_threshold: 3,
            quarantine_ticks: 200,
            retention_window: 128,
            member_gc_factor: 8,
            catchup_threshold: 8,
        }
    }
}

/// One peer's entry in a membership heartbeat: identity plus what the
/// peer is known to hold, so receivers can steer pushes, pulls, and
/// snapshot transfers without extra round trips.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerAdvert {
    /// The peer being described.
    pub peer: PeerId,
    /// The peer's organization.
    pub org: String,
    /// Restart counter: freshness is the lexicographic pair
    /// `(incarnation, heartbeat)`, so a rejoining peer whose tick clock
    /// restarted at zero still beats its own pre-crash adverts.
    pub incarnation: u64,
    /// Monotonic heartbeat counter within one incarnation (freshness).
    pub heartbeat: u64,
    /// Ticks since the advertiser itself last heard from this peer
    /// (zero in a self-advert). Receivers discount the liveness lease
    /// they grant by this age: second-hand news about a peer that the
    /// advertiser has not heard from in a while must not make the peer
    /// look freshly alive, or a departed member's final heartbeat would
    /// echo from node to node — each first sighting granting a full
    /// lease — and keep a zombie entry alive long after the real peer
    /// left.
    pub age: u64,
    /// Highest contiguously delivered block per channel.
    pub delivered: Vec<(ChannelId, u64)>,
    /// Height of the latest state snapshot the peer can serve, per
    /// channel (provider advertisement for catch-up).
    pub snapshots: Vec<(ChannelId, u64)>,
    /// Remaining deliver credits per channel — how many more blocks the
    /// peer's validation intake can absorb right now (see the peer
    /// layer's `DeliverMux`). Zero marks a saturated channel: providers
    /// skip pushing its blocks there and let pull/backfill resume once
    /// credits reappear. Channels absent from the list are assumed to
    /// have headroom (older peers don't advertise credits).
    pub credits: Vec<(ChannelId, u64)>,
}

/// Gossip protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipMessage {
    /// A block payload pushed eagerly.
    BlockPush {
        /// Channel the block belongs to.
        channel: ChannelId,
        /// Block sequence number.
        block_num: u64,
        /// Serialized block.
        payload: Vec<u8>,
    },
    /// A pull probe: "send me blocks above `have`".
    PullRequest {
        /// Channel to probe.
        channel: ChannelId,
        /// Highest contiguous block the requester holds.
        have: u64,
    },
    /// Membership heartbeat: the sender's view of alive peers.
    Membership {
        /// Advertisements for the sender and a bounded subset of the
        /// alive peers it knows.
        alive: Vec<PeerAdvert>,
    },
    /// An opaque state-transfer payload (a `fabric-statesync`
    /// `SyncMessage`); gossip only routes it. Outbound, these ride the
    /// throttled bulk lane ([`GossipNode::send_state_sync`]).
    StateSync {
        /// Channel being synchronized.
        channel: ChannelId,
        /// Serialized `SyncMessage`.
        payload: Vec<u8>,
    },
}

/// Events a gossip driver must act on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipOutput {
    /// Send `message` to `to`.
    Send {
        /// Destination peer.
        to: PeerId,
        /// The message.
        message: GossipMessage,
    },
    /// A block is ready for the peer to validate and commit, in order.
    DeliverBlock {
        /// Channel.
        channel: ChannelId,
        /// Block number.
        block_num: u64,
        /// Serialized block.
        payload: Vec<u8>,
        /// Peer the payload was first received from (`None` if this node
        /// pulled it from the ordering service itself). The driver
        /// reports the verification verdict against this peer via
        /// [`GossipNode::report_verdict`].
        from: Option<PeerId>,
    },
    /// This node is its org's leader and should pull the next blocks from
    /// the ordering service (the driver owns the orderer connection).
    PullFromOrderer {
        /// Channel to pull.
        channel: ChannelId,
        /// Next block number needed.
        next: u64,
    },
    /// A state-transfer payload arrived; the driver hands it to its
    /// statesync component (snapshot store or catch-up consumer).
    DeliverStateSync {
        /// Peer the payload came from.
        from: PeerId,
        /// Channel being synchronized.
        channel: ChannelId,
        /// Serialized `SyncMessage`.
        payload: Vec<u8>,
    },
    /// This node has fallen more than `catchup_threshold` blocks behind
    /// the overlay and a snapshot provider is available: the driver
    /// should start a statesync catch-up from `provider` instead of
    /// replaying history, then call
    /// [`GossipNode::note_snapshot_installed`].
    SnapshotCatchup {
        /// Channel that is behind.
        channel: ChannelId,
        /// Best known provider (freshest snapshot, lowest id tie-break).
        provider: PeerId,
        /// Snapshot height the provider advertises.
        height: u64,
    },
}

/// Ingress/egress hardening counters (observability and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Messages dropped because the sender's token bucket was empty.
    pub rate_limited: u64,
    /// Block pushes dropped by the dedup LRU.
    pub deduped: u64,
    /// Messages dropped because the sender is quarantined.
    pub quarantine_drops: u64,
    /// Times a peer entered quarantine.
    pub quarantines: u64,
    /// Bulk payloads accepted onto the throttled lane.
    pub bulk_queued: u64,
    /// Bulk payloads emitted by ticks.
    pub bulk_sent: u64,
    /// Bulk payloads dropped (oldest-first) because the lane overflowed.
    pub bulk_dropped: u64,
    /// Members removed by silence GC.
    pub members_gc: u64,
    /// Block payloads pruned by retention GC.
    pub blocks_pruned: u64,
}

/// Lazily refilled token bucket: `tokens` accumulate with elapsed ticks,
/// capped at the burst size; each admitted message costs one.
#[derive(Clone, Copy, Debug)]
struct TokenBucket {
    tokens: u64,
    last: u64,
}

impl TokenBucket {
    fn new(burst: u64) -> Self {
        TokenBucket {
            tokens: burst,
            last: 0,
        }
    }

    fn try_take(&mut self, now: u64, burst: u64, refill: u64) -> bool {
        let elapsed = now.saturating_sub(self.last);
        self.last = now;
        self.tokens = self
            .tokens
            .saturating_add(elapsed.saturating_mul(refill))
            .min(burst);
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }
}

/// Fixed-capacity seen-set with FIFO eviction (the classic gossip dedup
/// cache: recent message ids stay, ancient ones age out).
struct LruSet {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl LruSet {
    fn new(capacity: usize) -> Self {
        LruSet {
            seen: HashSet::with_capacity(capacity.min(1 << 16)),
            order: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
        }
    }

    /// Inserts `key`; returns `false` if it was already present
    /// (a duplicate). Capacity 0 disables dedup (everything is "new").
    fn insert(&mut self, key: u64) -> bool {
        if self.capacity == 0 {
            return true;
        }
        if !self.seen.insert(key) {
            return false;
        }
        self.order.push_back(key);
        if self.order.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.seen.remove(&oldest);
            }
        }
        true
    }
}

/// Reputation standing of a member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Standing {
    /// Normal participation.
    Healthy,
    /// Ignored until the given tick, after which the peer is paroled
    /// with half its mismatch score (one more strike re-quarantines
    /// quickly).
    Quarantined { until: u64 },
}

struct Member {
    org: String,
    incarnation: u64,
    heartbeat: u64,
    last_heard: u64,
    /// Highest block the peer is known to have delivered, per channel —
    /// learned from pull probes, pushes it sends, and membership adverts.
    delivered: HashMap<ChannelId, u64>,
    /// Snapshot heights the peer advertises as a provider, per channel.
    snapshots: HashMap<ChannelId, u64>,
    /// Deliver credits the peer last advertised, per channel. Unlike the
    /// heights this is *not* monotone, so it is only overwritten by a
    /// fresher heartbeat.
    credits: HashMap<ChannelId, u64>,
    /// Ingress rate limiter for messages from this peer.
    bucket: TokenBucket,
    /// Net failed-verification score (driver verdicts).
    mismatches: u32,
    standing: Standing,
}

impl Member {
    fn new(org: String, burst: u64) -> Self {
        Member {
            org,
            incarnation: 0,
            heartbeat: 0,
            last_heard: 0,
            delivered: HashMap::new(),
            snapshots: HashMap::new(),
            credits: HashMap::new(),
            bucket: TokenBucket::new(burst),
            mismatches: 0,
            standing: Standing::Healthy,
        }
    }

    /// Raises the known delivered height (heights only move forward).
    fn observe_delivered(&mut self, channel: &ChannelId, height: u64) {
        let entry = self.delivered.entry(channel.clone()).or_insert(0);
        *entry = (*entry).max(height);
    }

    /// Lexicographic advert freshness within the incarnation ordering.
    fn freshness(&self) -> (u64, u64) {
        (self.incarnation, self.heartbeat)
    }

    /// Lazy parole: a quarantine that has expired reverts to healthy
    /// with half the mismatch score.
    fn refresh_standing(&mut self, now: u64, threshold: u32) {
        if let Standing::Quarantined { until } = self.standing {
            if now >= until {
                self.standing = Standing::Healthy;
                self.mismatches = threshold / 2;
            }
        }
    }

    fn quarantined(&self, now: u64) -> bool {
        matches!(self.standing, Standing::Quarantined { until } if now < until)
    }

    /// The peer restarted under a (possibly new) org: non-monotone and
    /// incarnation-scoped state is reset.
    fn restart(&mut self, org: String, incarnation: u64) {
        self.org = org;
        self.incarnation = incarnation;
        self.heartbeat = 0;
        self.delivered.clear();
        self.snapshots.clear();
        self.credits.clear();
    }
}

struct StoredBlock {
    payload: Vec<u8>,
    /// Peer the payload first arrived from (`None` = orderer).
    from: Option<PeerId>,
}

/// One peer's gossip component.
pub struct GossipNode {
    id: PeerId,
    org: String,
    config: GossipConfig,
    rng: StdRng,
    now: u64,
    /// This node's own restart counter (drivers persist it and bump on
    /// restart via [`GossipNode::with_incarnation`]).
    incarnation: u64,
    /// Sorted so iteration (and thus candidate order in `sample_peers`)
    /// is deterministic without a per-call sort.
    members: BTreeMap<PeerId, Member>,
    /// Rate-limit buckets for senders not (yet) in the membership view.
    /// Coarsely bounded: when the map outgrows its cap it is reset
    /// wholesale — strangers get no durable per-id state.
    stranger_buckets: HashMap<PeerId, TokenBucket>,
    /// Per-channel store of received block payloads (retention-pruned).
    store: HashMap<ChannelId, BTreeMap<u64, StoredBlock>>,
    /// Highest block delivered contiguously per channel.
    delivered: HashMap<ChannelId, u64>,
    /// Snapshot heights this node itself can serve, per channel.
    my_snapshots: HashMap<ChannelId, u64>,
    /// Deliver credits this node's own intake currently has, per channel
    /// (driver-fed from `DeliverMux::credits`). Absent = unbounded.
    my_credits: HashMap<ChannelId, u64>,
    channels: Vec<ChannelId>,
    /// Dedup cache over block pushes.
    dedup: LruSet,
    /// Throttled egress lane for bulk statesync payloads.
    bulk_queue: VecDeque<(PeerId, ChannelId, Vec<u8>)>,
    bulk_queued_bytes: usize,
    /// Per-channel tick before which no new SnapshotCatchup is emitted.
    catchup_backoff: HashMap<ChannelId, u64>,
    stats: GossipStats,
}

impl GossipNode {
    /// Creates a gossip node. `bootstrap` seeds the membership view with
    /// `(peer, org)` pairs (the channel configuration provides these in a
    /// real deployment). `channels` lists the channels to track; the
    /// delivered watermark starts at 0 (the genesis block is obtained
    /// out-of-band when joining a channel).
    pub fn new(
        id: PeerId,
        org: impl Into<String>,
        bootstrap: &[(PeerId, String)],
        channels: Vec<ChannelId>,
        config: GossipConfig,
        seed: u64,
    ) -> Self {
        let org = org.into();
        let mut members = BTreeMap::new();
        for (peer, peer_org) in bootstrap {
            if *peer != id {
                members.insert(
                    *peer,
                    Member::new(peer_org.clone(), config.rate_limit_burst),
                );
            }
        }
        let dedup = LruSet::new(config.dedup_capacity);
        GossipNode {
            id,
            org,
            rng: StdRng::seed_from_u64(seed ^ id.wrapping_mul(0x5851_f42d_4c95_7f2d)),
            now: 0,
            incarnation: 0,
            members,
            stranger_buckets: HashMap::new(),
            store: HashMap::new(),
            delivered: HashMap::new(),
            my_snapshots: HashMap::new(),
            my_credits: HashMap::new(),
            channels,
            dedup,
            bulk_queue: VecDeque::new(),
            bulk_queued_bytes: 0,
            catchup_backoff: HashMap::new(),
            stats: GossipStats::default(),
            config,
        }
    }

    /// Sets this node's incarnation number. Drivers persist the counter
    /// across restarts and bump it when rejoining, so the overlay
    /// recognizes the rejoin immediately instead of waiting for the
    /// restarted tick clock to outrun pre-crash heartbeats.
    pub fn with_incarnation(mut self, incarnation: u64) -> Self {
        self.incarnation = incarnation;
        self
    }

    /// This node's incarnation number.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Hardening counters.
    pub fn stats(&self) -> GossipStats {
        self.stats
    }

    /// Queued bulk-lane payloads and bytes.
    pub fn bulk_backlog(&self) -> (usize, usize) {
        (self.bulk_queue.len(), self.bulk_queued_bytes)
    }

    /// Updates this node's advertised deliver credits for `channel` (the
    /// driver reads them off its `DeliverMux` after each deliver/commit
    /// batch). Zero throttles the node's own pull traffic for the channel
    /// — pull probes and leader orderer-pulls are suppressed until
    /// credits return — and, once heartbeated out, steers providers'
    /// pushes elsewhere.
    pub fn set_deliver_credits(&mut self, channel: &ChannelId, credits: u64) {
        self.my_credits.insert(channel.clone(), credits);
    }

    /// The deliver credits `peer` last advertised for `channel` (`None`
    /// if unknown, which providers treat as headroom).
    pub fn peer_credits(&self, peer: PeerId, channel: &ChannelId) -> Option<u64> {
        self.members.get(&peer)?.credits.get(channel).copied()
    }

    /// Advertises this node as a snapshot provider for `channel` at
    /// `height`; carried in subsequent membership heartbeats. Call after
    /// each checkpoint.
    pub fn advertise_snapshot(&mut self, channel: &ChannelId, height: u64) {
        let entry = self.my_snapshots.entry(channel.clone()).or_insert(0);
        *entry = (*entry).max(height);
    }

    /// Alive, non-quarantined peers advertising a snapshot for `channel`,
    /// as `(peer, snapshot height)` sorted by height descending (freshest
    /// snapshot first, peer id as tie-break for determinism).
    pub fn snapshot_providers(&self, channel: &ChannelId) -> Vec<(PeerId, u64)> {
        let mut providers: Vec<(PeerId, u64)> = self
            .members
            .iter()
            .filter(|(_, m)| {
                self.now.saturating_sub(m.last_heard) < self.config.member_timeout
                    && !m.quarantined(self.now)
            })
            .filter_map(|(&id, m)| {
                m.snapshots
                    .get(channel)
                    .filter(|&&h| h > 0)
                    .map(|&h| (id, h))
            })
            .collect();
        providers.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        providers
    }

    /// This node's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Highest contiguously delivered block on `channel`.
    pub fn delivered_height(&self, channel: &ChannelId) -> u64 {
        self.delivered.get(channel).copied().unwrap_or(0)
    }

    /// Currently alive, non-quarantined peers (heard from within the
    /// timeout).
    pub fn alive_peers(&self) -> Vec<PeerId> {
        self.members
            .iter()
            .filter(|(_, m)| {
                self.now.saturating_sub(m.last_heard) < self.config.member_timeout
                    && !m.quarantined(self.now)
            })
            .map(|(&id, _)| id)
            .collect()
    }

    /// Number of peers currently in the membership map (alive or not);
    /// bounded by silence GC.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Block payloads currently retained on `channel`.
    pub fn stored_blocks(&self, channel: &ChannelId) -> usize {
        self.store.get(channel).map_or(0, BTreeMap::len)
    }

    /// Whether `peer` is currently quarantined by reputation scoring.
    pub fn is_quarantined(&self, peer: PeerId) -> bool {
        self.members
            .get(&peer)
            .is_some_and(|m| m.quarantined(self.now))
    }

    /// Records the driver's verification verdict for a payload received
    /// from `peer` (the `from` of a [`GossipOutput::DeliverBlock`], or
    /// the statesync consumer's chunk-verification outcome). Repeated
    /// failures quarantine the peer: its messages are dropped on ingress
    /// and it is excluded from sampling, leadership, and provider
    /// selection until parole.
    pub fn report_verdict(&mut self, peer: PeerId, ok: bool) {
        let threshold = self.config.quarantine_threshold;
        let until = self.now + self.config.quarantine_ticks;
        let Some(member) = self.members.get_mut(&peer) else {
            return;
        };
        member.refresh_standing(self.now, threshold);
        if ok {
            member.mismatches = member.mismatches.saturating_sub(1);
            return;
        }
        member.mismatches = member.mismatches.saturating_add(1);
        if member.mismatches >= threshold && !member.quarantined(self.now) {
            member.standing = Standing::Quarantined { until };
            self.stats.quarantines += 1;
        }
    }

    /// Whether this node is currently its org's leader: the alive org
    /// member with the smallest id (deterministic election over the
    /// membership view; leader failure is healed by membership expiry).
    pub fn is_org_leader(&self) -> bool {
        // The map is id-sorted, so scan only ids below our own and stop
        // at the first alive org-mate — for a healthy org this exits
        // within a handful of entries (this runs every tick on every
        // node; a full alive-set materialization here dominated
        // thousand-peer runs).
        !self.members.range(..self.id).any(|(_, m)| {
            self.now.saturating_sub(m.last_heard) < self.config.member_timeout
                && !m.quarantined(self.now)
                && m.org == self.org
        })
    }

    /// Ingests a block this node obtained directly from the ordering
    /// service (leaders call this).
    pub fn on_block_from_orderer(
        &mut self,
        channel: &ChannelId,
        block_num: u64,
        payload: Vec<u8>,
    ) -> Vec<GossipOutput> {
        let mut out = Vec::new();
        self.ingest_block(channel, block_num, payload, None, &mut out);
        out
    }

    /// Enqueues an outbound state-transfer payload on the throttled bulk
    /// lane; [`GossipNode::tick`] drains the lane under
    /// `bulk_budget_per_tick`. If the lane overflows
    /// `bulk_queue_limit` bytes, the *oldest* queued payloads are dropped
    /// — the statesync protocol re-requests anything lost.
    pub fn send_state_sync(&mut self, to: PeerId, channel: ChannelId, payload: Vec<u8>) {
        let size = payload.len();
        while self.bulk_queued_bytes + size > self.config.bulk_queue_limit {
            let Some((_, _, dropped)) = self.bulk_queue.pop_front() else {
                break; // single oversized payload: queue it alone
            };
            self.bulk_queued_bytes -= dropped.len();
            self.stats.bulk_dropped += 1;
        }
        self.bulk_queued_bytes += size;
        self.bulk_queue.push_back((to, channel, payload));
        self.stats.bulk_queued += 1;
    }

    /// The driver installed a snapshot at `height` on `channel` (after a
    /// [`GossipOutput::SnapshotCatchup`]): jump the delivered watermark,
    /// drop obsolete stored payloads, and deliver any buffered blocks
    /// that are now contiguous.
    pub fn note_snapshot_installed(
        &mut self,
        channel: &ChannelId,
        height: u64,
    ) -> Vec<GossipOutput> {
        let mut out = Vec::new();
        if height <= self.delivered_height(channel) {
            return out;
        }
        self.delivered.insert(channel.clone(), height);
        if let Some(store) = self.store.get_mut(channel) {
            *store = store.split_off(&(height + 1));
        }
        self.deliver_contiguous(channel, &mut out);
        self.catchup_backoff.remove(channel);
        out
    }

    /// Handles a gossip message from `from`.
    ///
    /// Ingress guards run in order: quarantine, liveness bookkeeping,
    /// token-bucket rate limit, dedup (block pushes only), then the
    /// protocol itself.
    pub fn step(&mut self, from: PeerId, message: GossipMessage) -> Vec<GossipOutput> {
        let mut out = Vec::new();
        let threshold = self.config.quarantine_threshold;
        let (burst, refill) = (self.config.rate_limit_burst, self.config.rate_limit_refill);
        if let Some(m) = self.members.get_mut(&from) {
            m.refresh_standing(self.now, threshold);
            if m.quarantined(self.now) {
                self.stats.quarantine_drops += 1;
                return out;
            }
            // Any direct message is a liveness signal.
            m.last_heard = self.now;
            if !m.bucket.try_take(self.now, burst, refill) {
                self.stats.rate_limited += 1;
                return out;
            }
        } else {
            // Unknown sender: a shared, coarsely bounded bucket map. A
            // many-id flood gets no durable state — the map is reset
            // wholesale at its cap.
            if self.stranger_buckets.len() > 1024 {
                self.stranger_buckets.clear();
            }
            let bucket = self
                .stranger_buckets
                .entry(from)
                .or_insert_with(|| TokenBucket::new(burst));
            if !bucket.try_take(self.now, burst, refill) {
                self.stats.rate_limited += 1;
                return out;
            }
        }
        match message {
            GossipMessage::BlockPush {
                channel,
                block_num,
                payload,
            } => {
                if !self.dedup.insert(push_key(&channel, block_num, &payload)) {
                    self.stats.deduped += 1;
                    return out;
                }
                // The sender evidently holds this block; don't push it back.
                if let Some(m) = self.members.get_mut(&from) {
                    m.observe_delivered(&channel, block_num);
                }
                self.ingest_block(&channel, block_num, payload, Some(from), &mut out);
            }
            GossipMessage::PullRequest { channel, have } => {
                // `have` is the requester's own delivered watermark.
                if let Some(m) = self.members.get_mut(&from) {
                    m.observe_delivered(&channel, have);
                }
                // Serve only the *contiguous* run above `have`: with a
                // retention-pruned store a gap means the requester is
                // better served by snapshot catch-up, and blocks beyond a
                // gap would sit undeliverable in its reorder buffer.
                // `saturating_add` defuses the hostile `have: u64::MAX`
                // probe that used to overflow `have + 1` in debug builds.
                let mut next = have.saturating_add(1);
                if let Some(store) = self.store.get(&channel) {
                    for (served, (&num, stored)) in store.range(next..).enumerate() {
                        if num != next || served >= self.config.max_pull_batch {
                            break;
                        }
                        out.push(GossipOutput::Send {
                            to: from,
                            message: GossipMessage::BlockPush {
                                channel: channel.clone(),
                                block_num: num,
                                payload: stored.payload.clone(),
                            },
                        });
                        next = next.saturating_add(1);
                    }
                }
            }
            GossipMessage::Membership { alive } => {
                for advert in alive {
                    self.absorb_advert(advert);
                }
            }
            GossipMessage::StateSync { channel, payload } => {
                out.push(GossipOutput::DeliverStateSync {
                    from,
                    channel,
                    payload,
                });
            }
        }
        out
    }

    fn absorb_advert(&mut self, advert: PeerAdvert) {
        if advert.peer == self.id {
            return;
        }
        let burst = self.config.rate_limit_burst;
        let entry = self
            .members
            .entry(advert.peer)
            .or_insert_with(|| Member::new(advert.org.clone(), burst));
        let fresh = (advert.incarnation, advert.heartbeat);
        if advert.incarnation > entry.incarnation {
            // The peer restarted: recognize it immediately and drop
            // incarnation-scoped state (its credits/snapshots are stale,
            // and it may have re-registered under a new org).
            entry.restart(advert.org.clone(), advert.incarnation);
        }
        if fresh > entry.freshness() {
            entry.heartbeat = advert.heartbeat;
            // Age-discounted lease: the peer is only as fresh to us as it
            // was to the advertiser (never rolling our own lease back).
            entry.last_heard = entry
                .last_heard
                .max(self.now.saturating_sub(advert.age));
            // A fresher heartbeat is authoritative for the peer's org —
            // re-registration under a new org must not leave a stale org
            // corrupting leader election.
            entry.org = advert.org;
            // Credits go up *and down*; only a fresher heartbeat may
            // overwrite them.
            for (channel, credits) in advert.credits {
                entry.credits.insert(channel, credits);
            }
        }
        if advert.incarnation == entry.incarnation {
            // Heights are monotone within an incarnation; merge
            // regardless of heartbeat freshness.
            for (channel, height) in advert.delivered {
                entry.observe_delivered(&channel, height);
            }
            for (channel, height) in advert.snapshots {
                let slot = entry.snapshots.entry(channel).or_insert(0);
                *slot = (*slot).max(height);
            }
        }
    }

    /// Advances the clock: membership heartbeats, pull probes, catch-up
    /// flips, (for org leaders) orderer pulls, periodic GC, and finally
    /// the throttled bulk lane.
    pub fn tick(&mut self) -> Vec<GossipOutput> {
        self.now += 1;
        let mut out = Vec::new();
        if self.now.is_multiple_of(self.config.member_timeout.max(1)) {
            self.collect_garbage();
        }
        // Membership dissemination: self plus a bounded random subset of
        // the alive view (the full view would be O(members) bytes per
        // heartbeat — unusable at thousand-peer scale).
        if self.now.is_multiple_of(self.config.membership_interval) {
            let mut view = vec![PeerAdvert {
                peer: self.id,
                org: self.org.clone(),
                incarnation: self.incarnation,
                heartbeat: self.now,
                age: 0,
                delivered: self.delivered.iter().map(|(c, &h)| (c.clone(), h)).collect(),
                snapshots: self
                    .my_snapshots
                    .iter()
                    .map(|(c, &h)| (c.clone(), h))
                    .collect(),
                credits: self.my_credits.iter().map(|(c, &n)| (c.clone(), n)).collect(),
            }];
            let advertised = self.random_alive(self.config.max_adverts.saturating_sub(1), None);
            for peer in advertised {
                let member = &self.members[&peer];
                view.push(PeerAdvert {
                    peer,
                    org: member.org.clone(),
                    incarnation: member.incarnation,
                    heartbeat: member.heartbeat,
                    age: self.now.saturating_sub(member.last_heard),
                    delivered: member.delivered.iter().map(|(c, &h)| (c.clone(), h)).collect(),
                    snapshots: member.snapshots.iter().map(|(c, &h)| (c.clone(), h)).collect(),
                    credits: member.credits.iter().map(|(c, &n)| (c.clone(), n)).collect(),
                });
            }
            for target in self.random_alive(self.config.fanout, None) {
                out.push(GossipOutput::Send {
                    to: target,
                    message: GossipMessage::Membership {
                        alive: view.clone(),
                    },
                });
            }
        }
        // Pull probes: prefer peers that can actually fill our gap —
        // known to be ahead of `have`, or of unknown height. Probing a
        // peer known to be at or behind our watermark cannot help.
        if self.now.is_multiple_of(self.config.pull_interval) {
            let channels = self.channels.clone();
            for channel in channels {
                // A saturated channel (zero deliver credits) must not
                // invite more blocks it cannot absorb.
                if self.my_credits.get(&channel) == Some(&0) {
                    continue;
                }
                let have = self.delivered_height(&channel);
                let useful = self.sample_peers(1, |_, m| {
                    m.delivered.get(&channel).is_none_or(|&h| h > have)
                });
                if let Some(target) = useful.first().copied() {
                    out.push(GossipOutput::Send {
                        to: target,
                        message: GossipMessage::PullRequest {
                            channel: channel.clone(),
                            have,
                        },
                    });
                }
            }
        }
        // Catch-up flip: a node that has fallen far behind the overlay
        // stops grinding through pulls and asks the driver for a snapshot
        // transfer (backoff so one deficit emits one request per window).
        // Checked on the pull cadence — the decision is only actionable
        // when pulls run, and the deficit scan is O(members).
        let channels = self.channels.clone();
        if self.now.is_multiple_of(self.config.pull_interval) {
            for channel in &channels {
                let own = self.delivered_height(channel);
                let best_known = self
                    .members
                    .values()
                    .filter(|m| {
                        self.now.saturating_sub(m.last_heard) < self.config.member_timeout
                            && !m.quarantined(self.now)
                    })
                    .filter_map(|m| m.delivered.get(channel).copied())
                    .max()
                    .unwrap_or(0);
                if best_known.saturating_sub(own) <= self.config.catchup_threshold {
                    continue;
                }
                if self.catchup_backoff.get(channel).copied().unwrap_or(0) > self.now {
                    continue;
                }
                if let Some(&(provider, height)) = self
                    .snapshot_providers(channel)
                    .iter()
                    .find(|&&(_, h)| h > own)
                {
                    self.catchup_backoff
                        .insert(channel.clone(), self.now + self.config.member_timeout);
                    out.push(GossipOutput::SnapshotCatchup {
                        channel: channel.clone(),
                        provider,
                        height,
                    });
                }
            }
        }
        // Leader duty: ask the driver to pull from the ordering service —
        // except on channels whose own intake is saturated (backpressure
        // reaches all the way to the ordering service).
        if self.is_org_leader() {
            for channel in channels {
                if self.my_credits.get(&channel) == Some(&0) {
                    continue;
                }
                let next = self.delivered_height(&channel) + 1;
                out.push(GossipOutput::PullFromOrderer { channel, next });
            }
        }
        // Bulk lane last: fast-path outputs above are never delayed by
        // catch-up traffic. At least one payload per tick, then as many
        // as the byte budget covers.
        let mut spent = 0usize;
        while let Some(front) = self.bulk_queue.front() {
            let size = front.2.len();
            if spent > 0 && spent + size > self.config.bulk_budget_per_tick {
                break;
            }
            spent += size;
            let (to, channel, payload) = self.bulk_queue.pop_front().expect("front checked");
            self.bulk_queued_bytes -= payload.len();
            self.stats.bulk_sent += 1;
            out.push(GossipOutput::Send {
                to,
                message: GossipMessage::StateSync { channel, payload },
            });
        }
        out
    }

    /// Periodic memory bounds: drop members silent past the GC horizon
    /// and prune block payloads below the retention floor.
    fn collect_garbage(&mut self) {
        let horizon = self
            .config
            .member_gc_factor
            .saturating_mul(self.config.member_timeout);
        let now = self.now;
        let before = self.members.len();
        self.members
            .retain(|_, m| now.saturating_sub(m.last_heard) < horizon);
        self.stats.members_gc += (before - self.members.len()) as u64;

        let channels = self.channels.clone();
        for channel in &channels {
            let floor = self.retention_floor(channel);
            if let Some(store) = self.store.get_mut(channel) {
                let keep = store.split_off(&(floor + 1));
                self.stats.blocks_pruned += store.len() as u64;
                *store = keep;
            }
        }
    }

    /// Highest block number that may be pruned on `channel`: everything
    /// at or below it is retained by nobody's need. The floor is the
    /// delivered watermark minus the retention window — raised to the
    /// minimum alive peer height when every alive peer is already past
    /// the window (then the window serves no one). Blocks *above* the
    /// watermark (the out-of-order buffer) are never pruned.
    fn retention_floor(&self, channel: &ChannelId) -> u64 {
        let own = self.delivered_height(channel);
        let hard = own.saturating_sub(self.config.retention_window);
        let mut min_alive = u64::MAX;
        let mut any_alive = false;
        for m in self.members.values() {
            if self.now.saturating_sub(m.last_heard) < self.config.member_timeout
                && !m.quarantined(self.now)
            {
                any_alive = true;
                min_alive = min_alive.min(m.delivered.get(channel).copied().unwrap_or(0));
            }
        }
        let soft = if any_alive { min_alive.min(own) } else { own };
        hard.max(soft)
    }

    /// Stores a block if new, delivers contiguous blocks, and pushes to a
    /// random fanout (excluding the peer we got it from).
    fn ingest_block(
        &mut self,
        channel: &ChannelId,
        block_num: u64,
        payload: Vec<u8>,
        from: Option<PeerId>,
        out: &mut Vec<GossipOutput>,
    ) {
        let delivered_height = self.delivered_height(channel);
        let store = self.store.entry(channel.clone()).or_default();
        if store.contains_key(&block_num) || block_num <= delivered_height {
            return; // already known
        }
        store.insert(
            block_num,
            StoredBlock {
                payload: payload.clone(),
                from,
            },
        );
        self.deliver_contiguous(channel, out);
        // Push phase: skip the sender and any peer already known to hold
        // the block (its observed height reaches `block_num`) — pushing
        // there is guaranteed-wasted bandwidth. Sampling first and
        // filtering after would also bias the fanout: slots spent on
        // excluded peers would be lost instead of going to peers that
        // still need the block. Peers advertising zero deliver credits
        // for the channel are skipped too: their intake is saturated and
        // would refuse or park the block, so the fanout slot serves a
        // peer with headroom instead (they catch up by pull once their
        // credits return).
        if self.config.push_enabled {
            let targets = self.sample_peers(self.config.fanout, |id, m| {
                Some(id) != from
                    && m.delivered.get(channel).is_none_or(|&h| h < block_num)
                    && m.credits.get(channel).is_none_or(|&c| c > 0)
            });
            for target in targets {
                out.push(GossipOutput::Send {
                    to: target,
                    message: GossipMessage::BlockPush {
                        channel: channel.clone(),
                        block_num,
                        payload: payload.clone(),
                    },
                });
            }
        }
    }

    /// Emits `DeliverBlock`s for the contiguous run above the watermark.
    fn deliver_contiguous(&mut self, channel: &ChannelId, out: &mut Vec<GossipOutput>) {
        let mut delivered = self.delivered.get(channel).copied().unwrap_or(0);
        let Some(store) = self.store.get(channel) else {
            return;
        };
        while let Some(stored) = store.get(&(delivered + 1)) {
            delivered += 1;
            out.push(GossipOutput::DeliverBlock {
                channel: channel.clone(),
                block_num: delivered,
                payload: stored.payload.clone(),
                from: stored.from,
            });
        }
        self.delivered.insert(channel.clone(), delivered);
    }

    fn random_alive(&mut self, count: usize, exclude: Option<PeerId>) -> Vec<PeerId> {
        self.sample_peers(count, |id, _| Some(id) != exclude)
    }

    /// Uniform random sample of up to `count` alive, non-quarantined
    /// peers satisfying `keep`; the filter runs before sampling so every
    /// returned slot is a useful target.
    fn sample_peers(
        &mut self,
        count: usize,
        keep: impl Fn(PeerId, &Member) -> bool,
    ) -> Vec<PeerId> {
        let now = self.now;
        let timeout = self.config.member_timeout;
        let mut alive: Vec<PeerId> = self
            .members
            .iter()
            .filter(|(&id, m)| {
                now.saturating_sub(m.last_heard) < timeout
                    && !m.quarantined(now)
                    && keep(id, m)
            })
            .map(|(&id, _)| id)
            .collect();
        // BTreeMap iteration is already sorted, so the candidate order is
        // deterministic; a partial shuffle then picks `count` of them in
        // O(count) instead of shuffling the whole (possibly 1000-peer)
        // alive set.
        let picked = count.min(alive.len());
        alive.partial_shuffle(&mut self.rng, picked);
        alive.truncate(picked);
        alive
    }
}

/// Dedup key for a block push: channel, number, and payload hash, so a
/// re-push of the same block is recognized while a conflicting payload
/// for the same number still reaches verification (and dings the
/// forger's reputation).
fn push_key(channel: &ChannelId, block_num: u64, payload: &[u8]) -> u64 {
    let mut hasher = DefaultHasher::new();
    channel.hash(&mut hasher);
    block_num.hash(&mut hasher);
    payload.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn channel() -> ChannelId {
        ChannelId::new("ch")
    }

    /// In-memory overlay of gossip nodes with optional per-peer isolation.
    struct Overlay {
        nodes: Vec<GossipNode>,
        network: VecDeque<(PeerId, PeerId, GossipMessage)>,
        delivered: Vec<Vec<u64>>,
        isolated: Vec<PeerId>,
        /// Collected PullFromOrderer requests per node.
        orderer_pulls: Vec<Vec<u64>>,
        /// Collected SnapshotCatchup outputs per node.
        catchups: Vec<Vec<(PeerId, u64)>>,
    }

    impl Overlay {
        /// `orgs[i]` is the org of node `i`; ids are 1-based.
        fn new(orgs: &[&str], config: GossipConfig) -> Self {
            let bootstrap: Vec<(PeerId, String)> = orgs
                .iter()
                .enumerate()
                .map(|(i, org)| (i as u64 + 1, org.to_string()))
                .collect();
            let nodes = bootstrap
                .iter()
                .map(|(id, org)| {
                    GossipNode::new(
                        *id,
                        org.clone(),
                        &bootstrap,
                        vec![channel()],
                        config.clone(),
                        99,
                    )
                })
                .collect();
            Overlay {
                delivered: vec![Vec::new(); orgs.len()],
                orderer_pulls: vec![Vec::new(); orgs.len()],
                catchups: vec![Vec::new(); orgs.len()],
                nodes,
                network: VecDeque::new(),
                isolated: Vec::new(),
            }
        }

        fn absorb(&mut self, from: PeerId, outputs: Vec<GossipOutput>) {
            for output in outputs {
                match output {
                    GossipOutput::Send { to, message } => {
                        self.network.push_back((from, to, message));
                    }
                    GossipOutput::DeliverBlock { block_num, .. } => {
                        self.delivered[from as usize - 1].push(block_num);
                    }
                    GossipOutput::PullFromOrderer { next, .. } => {
                        self.orderer_pulls[from as usize - 1].push(next);
                    }
                    GossipOutput::SnapshotCatchup {
                        provider, height, ..
                    } => {
                        self.catchups[from as usize - 1].push((provider, height));
                    }
                    GossipOutput::DeliverStateSync { .. } => {}
                }
            }
        }

        fn drain(&mut self) {
            let mut budget = 500_000;
            while let Some((from, to, msg)) = self.network.pop_front() {
                budget -= 1;
                assert!(budget > 0, "gossip network did not quiesce");
                if self.isolated.contains(&from) || self.isolated.contains(&to) {
                    continue;
                }
                let outputs = self.nodes[to as usize - 1].step(from, msg);
                self.absorb(to, outputs);
            }
        }

        fn tick(&mut self) {
            for i in 0..self.nodes.len() {
                if self.isolated.contains(&(i as u64 + 1)) {
                    continue;
                }
                let outputs = self.nodes[i].tick();
                self.absorb(i as u64 + 1, outputs);
            }
            self.drain();
        }

        fn inject_block(&mut self, node: usize, num: u64) {
            let payload = vec![num as u8; 64];
            let outputs = self.nodes[node].on_block_from_orderer(&channel(), num, payload);
            self.absorb(node as u64 + 1, outputs);
            self.drain();
        }
    }

    #[test]
    fn push_disseminates_to_all() {
        let mut overlay = Overlay::new(&["A", "A", "A", "A", "A", "A"], GossipConfig::default());
        // Warm the membership view.
        for _ in 0..3 {
            overlay.tick();
        }
        overlay.inject_block(0, 1);
        overlay.inject_block(0, 2);
        for _ in 0..3 {
            overlay.tick();
        }
        for (i, d) in overlay.delivered.iter().enumerate() {
            assert_eq!(d, &vec![1, 2], "peer {} delivered in order", i + 1);
        }
    }

    #[test]
    fn out_of_order_arrival_buffers() {
        let config = GossipConfig {
            push_enabled: false, // isolate the buffering logic
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[], vec![channel()], config, 1);
        let out = node.on_block_from_orderer(&channel(), 2, vec![2]);
        assert!(out
            .iter()
            .all(|o| !matches!(o, GossipOutput::DeliverBlock { .. })));
        let out = node.on_block_from_orderer(&channel(), 1, vec![1]);
        let delivered: Vec<u64> = out
            .iter()
            .filter_map(|o| match o {
                GossipOutput::DeliverBlock { block_num, .. } => Some(*block_num),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![1, 2]);
        assert_eq!(node.delivered_height(&channel()), 2);
    }

    #[test]
    fn duplicate_blocks_not_repushed() {
        let mut node = GossipNode::new(
            1,
            "A",
            &[(2, "A".into()), (3, "A".into())],
            vec![channel()],
            GossipConfig::default(),
            1,
        );
        let out1 = node.on_block_from_orderer(&channel(), 1, vec![1]);
        let pushes1 = out1
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    GossipOutput::Send {
                        message: GossipMessage::BlockPush { .. },
                        ..
                    }
                )
            })
            .count();
        assert!(pushes1 > 0);
        let out2 = node.on_block_from_orderer(&channel(), 1, vec![1]);
        assert!(out2.is_empty(), "duplicate ingestion is a no-op");
    }

    #[test]
    fn pull_repairs_isolated_peer() {
        let config = GossipConfig {
            pull_interval: 2,
            ..GossipConfig::default()
        };
        let mut overlay = Overlay::new(&["A", "A", "A", "A"], config);
        for _ in 0..3 {
            overlay.tick();
        }
        // Peer 4 misses the pushes.
        overlay.isolated = vec![4];
        overlay.inject_block(0, 1);
        overlay.inject_block(0, 2);
        assert!(overlay.delivered[3].is_empty());
        // Reconnect; pull probes must repair the gap.
        overlay.isolated = vec![];
        for _ in 0..10 {
            overlay.tick();
        }
        assert_eq!(overlay.delivered[3], vec![1, 2]);
    }

    #[test]
    fn one_leader_per_org() {
        let mut overlay = Overlay::new(&["A", "A", "B", "B"], GossipConfig::default());
        for _ in 0..5 {
            overlay.tick();
        }
        let leaders: Vec<bool> = overlay.nodes.iter().map(|n| n.is_org_leader()).collect();
        // Lowest id per org leads: node 1 (org A) and node 3 (org B).
        assert_eq!(leaders, vec![true, false, true, false]);
        // Leaders emit orderer pulls; followers don't.
        assert!(!overlay.orderer_pulls[0].is_empty());
        assert!(overlay.orderer_pulls[1].is_empty());
        assert!(!overlay.orderer_pulls[2].is_empty());
        assert!(overlay.orderer_pulls[3].is_empty());
    }

    #[test]
    fn leader_failover_within_org() {
        let config = GossipConfig {
            member_timeout: 6,
            membership_interval: 2,
            ..GossipConfig::default()
        };
        let mut overlay = Overlay::new(&["A", "A", "A"], config);
        for _ in 0..5 {
            overlay.tick();
        }
        assert!(overlay.nodes[0].is_org_leader());
        assert!(!overlay.nodes[1].is_org_leader());
        // Node 1 goes dark; after the timeout node 2 takes over.
        overlay.isolated = vec![1];
        for _ in 0..10 {
            overlay.tick();
        }
        assert!(overlay.nodes[1].is_org_leader(), "node 2 took over org A");
        // Node 1 heals and reclaims leadership (lowest id).
        overlay.isolated = vec![];
        for _ in 0..10 {
            overlay.tick();
        }
        assert!(overlay.nodes[0].is_org_leader());
        assert!(!overlay.nodes[1].is_org_leader());
    }

    #[test]
    fn membership_spreads_transitively() {
        // Node 3 only knows node 2; it must learn about node 1 via gossip.
        let config = GossipConfig {
            membership_interval: 1,
            ..GossipConfig::default()
        };
        let full: Vec<(PeerId, String)> = vec![(1, "A".into()), (2, "A".into()), (3, "A".into())];
        let partial: Vec<(PeerId, String)> = vec![(2, "A".into())];
        let mut overlay = Overlay::new(&["A", "A", "A"], config.clone());
        overlay.nodes[0] = GossipNode::new(1, "A", &full, vec![channel()], config.clone(), 1);
        overlay.nodes[1] = GossipNode::new(2, "A", &full, vec![channel()], config.clone(), 2);
        overlay.nodes[2] = GossipNode::new(3, "A", &partial, vec![channel()], config, 3);
        for _ in 0..10 {
            overlay.tick();
        }
        assert!(
            overlay.nodes[2].alive_peers().contains(&1),
            "node 3 learned about node 1 transitively"
        );
    }

    #[test]
    fn pull_respects_batch_limit() {
        let config = GossipConfig {
            max_pull_batch: 3,
            push_enabled: false,
            ..GossipConfig::default()
        };
        let mut holder = GossipNode::new(1, "A", &[(2, "A".into())], vec![channel()], config, 1);
        for num in 1..=10 {
            holder.on_block_from_orderer(&channel(), num, vec![num as u8]);
        }
        let out = holder.step(
            2,
            GossipMessage::PullRequest {
                channel: channel(),
                have: 0,
            },
        );
        let pushes = out
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    GossipOutput::Send {
                        message: GossipMessage::BlockPush { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(pushes, 3);
    }

    #[test]
    fn push_skips_peers_known_to_hold_the_block() {
        let config = GossipConfig {
            fanout: 10,
            ..GossipConfig::default()
        };
        let bootstrap: Vec<(PeerId, String)> =
            (2..=5).map(|id| (id, "A".to_string())).collect();
        let mut node = GossipNode::new(1, "A", &bootstrap, vec![channel()], config, 1);
        node.tick(); // liveness baseline so everyone samples as alive
        for peer in 2..=5 {
            node.step(peer, GossipMessage::Membership { alive: vec![] });
        }
        // Peers 2 and 3 are known to have delivered block 1 already
        // (learned from their pull probes).
        for peer in [2, 3] {
            node.step(
                peer,
                GossipMessage::PullRequest {
                    channel: channel(),
                    have: 1,
                },
            );
        }
        let out = node.on_block_from_orderer(&channel(), 1, vec![1]);
        let targets: Vec<PeerId> = out
            .iter()
            .filter_map(|o| match o {
                GossipOutput::Send {
                    to,
                    message: GossipMessage::BlockPush { .. },
                } => Some(*to),
                _ => None,
            })
            .collect();
        assert!(!targets.contains(&2) && !targets.contains(&3));
        // The fanout slots go to peers that still need the block.
        assert_eq!(
            {
                let mut t = targets.clone();
                t.sort_unstable();
                t
            },
            vec![4, 5]
        );
        // Block 2 is news to everyone: peers 2 and 3 are eligible again.
        let out = node.on_block_from_orderer(&channel(), 2, vec![2]);
        let targets: Vec<PeerId> = out
            .iter()
            .filter_map(|o| match o {
                GossipOutput::Send {
                    to,
                    message: GossipMessage::BlockPush { block_num: 2, .. },
                } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets.len(), 4);
    }

    #[test]
    fn snapshot_adverts_reach_the_overlay() {
        let mut overlay = Overlay::new(&["A", "A", "A"], GossipConfig::default());
        for _ in 0..3 {
            overlay.tick();
        }
        assert!(overlay.nodes[1].snapshot_providers(&channel()).is_empty());
        overlay.nodes[0].advertise_snapshot(&channel(), 16);
        for _ in 0..4 {
            overlay.tick();
        }
        for node in &overlay.nodes[1..] {
            assert_eq!(node.snapshot_providers(&channel()), vec![(1, 16)]);
        }
        // A fresher snapshot elsewhere sorts first.
        overlay.nodes[2].advertise_snapshot(&channel(), 24);
        for _ in 0..4 {
            overlay.tick();
        }
        assert_eq!(
            overlay.nodes[1].snapshot_providers(&channel()),
            vec![(3, 24), (1, 16)]
        );
    }

    #[test]
    fn zero_credit_channel_suppresses_own_pull_traffic() {
        let config = GossipConfig {
            pull_interval: 1,
            membership_interval: 1000, // isolate pull/orderer traffic
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[(2, "A".into())], vec![channel()], config, 1);
        node.tick();
        node.step(2, GossipMessage::Membership { alive: vec![] });
        assert!(node.is_org_leader());

        node.set_deliver_credits(&channel(), 0);
        for _ in 0..5 {
            for output in node.tick() {
                assert!(
                    !matches!(
                        output,
                        GossipOutput::Send {
                            message: GossipMessage::PullRequest { .. },
                            ..
                        } | GossipOutput::PullFromOrderer { .. }
                    ),
                    "saturated channel invited more blocks: {output:?}"
                );
            }
        }

        // Credits return: pull probes and leader orderer-pulls resume.
        node.set_deliver_credits(&channel(), 8);
        let (mut pulls, mut orderer) = (0, 0);
        for _ in 0..5 {
            for output in node.tick() {
                match output {
                    GossipOutput::Send {
                        message: GossipMessage::PullRequest { .. },
                        ..
                    } => pulls += 1,
                    GossipOutput::PullFromOrderer { .. } => orderer += 1,
                    _ => {}
                }
            }
        }
        assert!(pulls > 0 && orderer > 0);
    }

    #[test]
    fn push_skips_peers_advertising_zero_credits() {
        let config = GossipConfig {
            fanout: 10,
            ..GossipConfig::default()
        };
        let bootstrap: Vec<(PeerId, String)> =
            (2..=4).map(|id| (id, "A".to_string())).collect();
        let mut node = GossipNode::new(1, "A", &bootstrap, vec![channel()], config, 1);
        node.tick();
        for peer in 2..=4 {
            node.step(peer, GossipMessage::Membership { alive: vec![] });
        }
        let advert = |heartbeat, credits| PeerAdvert {
            peer: 2,
            org: "A".into(),
            incarnation: 0,
            heartbeat,
            age: 0,
            delivered: vec![],
            snapshots: vec![],
            credits: vec![(channel(), credits)],
        };
        // Peer 2 heartbeats a saturated intake for the channel.
        node.step(
            3,
            GossipMessage::Membership {
                alive: vec![advert(5, 0)],
            },
        );
        assert_eq!(node.peer_credits(2, &channel()), Some(0));
        // A *stale* heartbeat claiming headroom must not win: credits are
        // non-monotone, freshness decides.
        node.step(
            3,
            GossipMessage::Membership {
                alive: vec![advert(4, 9)],
            },
        );
        assert_eq!(node.peer_credits(2, &channel()), Some(0));

        let push_targets = |out: &[GossipOutput]| -> Vec<PeerId> {
            let mut t: Vec<PeerId> = out
                .iter()
                .filter_map(|o| match o {
                    GossipOutput::Send {
                        to,
                        message: GossipMessage::BlockPush { .. },
                    } => Some(*to),
                    _ => None,
                })
                .collect();
            t.sort_unstable();
            t
        };
        let out = node.on_block_from_orderer(&channel(), 1, vec![1]);
        assert_eq!(
            push_targets(&out),
            vec![3, 4],
            "fanout slots went to peers with headroom"
        );
        // A fresher heartbeat restores peer 2's credits; pushes resume.
        node.step(
            3,
            GossipMessage::Membership {
                alive: vec![advert(6, 4)],
            },
        );
        let out = node.on_block_from_orderer(&channel(), 2, vec![2]);
        assert_eq!(push_targets(&out), vec![2, 3, 4]);
    }

    #[test]
    fn state_sync_payloads_are_routed_to_the_driver() {
        let mut node = GossipNode::new(
            1,
            "A",
            &[(2, "A".into())],
            vec![channel()],
            GossipConfig::default(),
            1,
        );
        let out = node.step(
            2,
            GossipMessage::StateSync {
                channel: channel(),
                payload: vec![0xab; 16],
            },
        );
        assert_eq!(
            out,
            vec![GossipOutput::DeliverStateSync {
                from: 2,
                channel: channel(),
                payload: vec![0xab; 16],
            }]
        );
    }

    #[test]
    fn pull_probes_avoid_peers_known_to_be_behind() {
        let config = GossipConfig {
            pull_interval: 1,
            membership_interval: 1000, // isolate pull traffic
            ..GossipConfig::default()
        };
        let bootstrap: Vec<(PeerId, String)> =
            (2..=4).map(|id| (id, "A".to_string())).collect();
        let mut node = GossipNode::new(1, "A", &bootstrap, vec![channel()], config, 1);
        node.tick();
        for peer in 2..=4 {
            node.step(peer, GossipMessage::Membership { alive: vec![] });
        }
        // We are at height 5. Peers 2 and 3 are known to be at 2 — a pull
        // probe to them cannot help. Peer 4's height is unknown.
        for _ in 0..5 {
            let n = node.delivered_height(&channel()) + 1;
            node.on_block_from_orderer(&channel(), n, vec![n as u8]);
        }
        for peer in [2, 3] {
            node.step(
                peer,
                GossipMessage::PullRequest {
                    channel: channel(),
                    have: 2,
                },
            );
        }
        for _ in 0..20 {
            for output in node.tick() {
                if let GossipOutput::Send {
                    to,
                    message: GossipMessage::PullRequest { .. },
                } = output
                {
                    assert_eq!(to, 4, "pull probe went to a peer known to be behind");
                }
            }
        }
    }

    #[test]
    fn convergence_at_scale_with_fanout() {
        // 30 peers, one seed; fanout-7 push + pull converge quickly.
        let orgs: Vec<&str> = (0..30).map(|_| "A").collect();
        let mut overlay = Overlay::new(&orgs, GossipConfig::default());
        for _ in 0..4 {
            overlay.tick();
        }
        for num in 1..=5 {
            overlay.inject_block(0, num);
        }
        for _ in 0..12 {
            overlay.tick();
        }
        for (i, d) in overlay.delivered.iter().enumerate() {
            assert_eq!(d.len(), 5, "peer {} got all blocks", i + 1);
        }
    }

    // ------------------------------------------------------------------
    // Bugfix regressions
    // ------------------------------------------------------------------

    #[test]
    fn restarted_peer_recognized_immediately_via_incarnation() {
        // Node 2 runs long enough that its heartbeat counter is large,
        // crashes, and rejoins with a fresh clock but a bumped
        // incarnation. Without incarnations its post-restart adverts
        // (heartbeat 1, 2, ...) lose to its own pre-crash heartbeat and
        // the overlay ignores it until the clock catches up.
        let config = GossipConfig {
            membership_interval: 1,
            member_timeout: 10,
            ..GossipConfig::default()
        };
        let bootstrap: Vec<(PeerId, String)> = vec![(1, "A".into()), (2, "A".into())];
        let mut observer =
            GossipNode::new(1, "A", &bootstrap, vec![channel()], config.clone(), 1);
        // Observer's clock runs far ahead; peer 2 heartbeats at 500.
        for _ in 0..600 {
            observer.tick();
        }
        let old_advert = PeerAdvert {
            peer: 2,
            org: "A".into(),
            incarnation: 0,
            heartbeat: 500,
            age: 0,
            delivered: vec![(channel(), 40)],
            snapshots: vec![],
            credits: vec![(channel(), 0)],
        };
        observer.step(2, GossipMessage::Membership { alive: vec![old_advert] });
        assert_eq!(observer.peer_credits(2, &channel()), Some(0));

        // Peer 2 restarts: incarnation 1, heartbeat restarts at 3.
        let restarted = GossipNode::new(2, "A", &bootstrap, vec![channel()], config, 2)
            .with_incarnation(1);
        assert_eq!(restarted.incarnation(), 1);
        let new_advert = PeerAdvert {
            peer: 2,
            org: "A".into(),
            incarnation: 1,
            heartbeat: 3,
            age: 0,
            delivered: vec![],
            snapshots: vec![],
            credits: vec![(channel(), 7)],
        };
        observer.step(
            2,
            GossipMessage::Membership {
                alive: vec![new_advert],
            },
        );
        // (incarnation 1, heartbeat 3) beats (0, 500): the restart is
        // recognized immediately and incarnation-scoped state was reset.
        assert_eq!(observer.peer_credits(2, &channel()), Some(7));
        assert!(observer.alive_peers().contains(&2));
    }

    #[test]
    fn crash_restart_overlay_heals_without_waiting_out_the_old_heartbeat() {
        let config = GossipConfig {
            membership_interval: 1,
            member_timeout: 8,
            ..GossipConfig::default()
        };
        let mut overlay = Overlay::new(&["A", "A", "A"], config.clone());
        // Long steady state: heartbeats grow large.
        for _ in 0..60 {
            overlay.tick();
        }
        // Node 3 crashes and stays dark past the timeout.
        overlay.isolated = vec![3];
        for _ in 0..12 {
            overlay.tick();
        }
        assert!(!overlay.nodes[0].alive_peers().contains(&3));
        // Restart with a fresh clock but bumped incarnation.
        let bootstrap: Vec<(PeerId, String)> =
            vec![(1, "A".into()), (2, "A".into()), (3, "A".into())];
        overlay.nodes[2] =
            GossipNode::new(3, "A", &bootstrap, vec![channel()], config, 7).with_incarnation(1);
        overlay.isolated = vec![];
        for _ in 0..4 {
            overlay.tick();
        }
        assert!(
            overlay.nodes[0].alive_peers().contains(&3),
            "restarted peer rejoined without waiting out its old heartbeat"
        );
    }

    #[test]
    fn hostile_pull_request_at_u64_max_is_harmless() {
        let mut node = GossipNode::new(
            1,
            "A",
            &[(2, "A".into())],
            vec![channel()],
            GossipConfig::default(),
            1,
        );
        for num in 1..=4 {
            node.on_block_from_orderer(&channel(), num, vec![num as u8]);
        }
        // Used to overflow `have + 1` in debug builds.
        let out = node.step(
            2,
            GossipMessage::PullRequest {
                channel: channel(),
                have: u64::MAX,
            },
        );
        assert!(
            out.iter().all(|o| !matches!(
                o,
                GossipOutput::Send {
                    message: GossipMessage::BlockPush { .. },
                    ..
                }
            )),
            "nothing exists above u64::MAX"
        );
        // Near-MAX values behave too.
        let out = node.step(
            2,
            GossipMessage::PullRequest {
                channel: channel(),
                have: u64::MAX - 1,
            },
        );
        drop(out);
    }

    #[test]
    fn block_store_is_retention_bounded() {
        let config = GossipConfig {
            retention_window: 16,
            member_timeout: 4, // GC cadence
            push_enabled: false,
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[], vec![channel()], config, 1);
        for num in 1..=500 {
            node.on_block_from_orderer(&channel(), num, vec![0; 32]);
            if num % 10 == 0 {
                node.tick();
            }
        }
        for _ in 0..8 {
            node.tick();
        }
        assert_eq!(node.delivered_height(&channel()), 500);
        assert!(
            node.stored_blocks(&channel()) <= 16,
            "store kept {} blocks, window is 16",
            node.stored_blocks(&channel())
        );
        assert!(node.stats().blocks_pruned > 0);
    }

    #[test]
    fn retention_keeps_blocks_a_live_laggard_still_needs() {
        let config = GossipConfig {
            retention_window: 64,
            member_timeout: 4,
            push_enabled: false,
            membership_interval: 1000,
            pull_interval: 1000,
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[(2, "A".into())], vec![channel()], config, 1);
        // Peer 2 is alive and known to be at height 10.
        node.tick();
        node.step(
            2,
            GossipMessage::PullRequest {
                channel: channel(),
                have: 10,
            },
        );
        for num in 1..=40 {
            node.on_block_from_orderer(&channel(), num, vec![0; 16]);
        }
        for _ in 0..4 {
            node.tick();
            // Keep peer 2 alive (still at height 10).
            node.step(2, GossipMessage::Membership { alive: vec![] });
        }
        // Everything above the laggard's height must still be servable.
        let out = node.step(
            2,
            GossipMessage::PullRequest {
                channel: channel(),
                have: 10,
            },
        );
        let first_served = out.iter().find_map(|o| match o {
            GossipOutput::Send {
                message: GossipMessage::BlockPush { block_num, .. },
                ..
            } => Some(*block_num),
            _ => None,
        });
        assert_eq!(first_served, Some(11), "laggard's next block was pruned");
    }

    #[test]
    fn silent_members_are_garbage_collected() {
        let config = GossipConfig {
            member_timeout: 4,
            member_gc_factor: 3,
            membership_interval: 1000,
            pull_interval: 1000,
            ..GossipConfig::default()
        };
        let bootstrap: Vec<(PeerId, String)> =
            (2..=20).map(|id| (id, "A".to_string())).collect();
        let mut node = GossipNode::new(1, "A", &bootstrap, vec![channel()], config, 1);
        assert_eq!(node.member_count(), 19);
        // Peer 2 keeps talking; the rest stay silent forever.
        for _ in 0..20 {
            node.tick();
            node.step(2, GossipMessage::Membership { alive: vec![] });
        }
        assert_eq!(node.member_count(), 1, "silent members were GCed");
        assert!(node.alive_peers().contains(&2));
        assert_eq!(node.stats().members_gc, 18);
    }

    #[test]
    fn fresher_heartbeat_updates_member_org() {
        let config = GossipConfig::default();
        let mut node = GossipNode::new(
            1,
            "B",
            &[(2, "A".into()), (3, "B".into())],
            vec![channel()],
            config,
            1,
        );
        node.tick();
        // Peer 3 (org B, id 3 > 1) exists; node 1 leads org B.
        node.step(3, GossipMessage::Membership { alive: vec![] });
        assert!(node.is_org_leader());
        // Peer 2 re-registers under org B with a fresher heartbeat —
        // *without* an incarnation bump (same process, new org config).
        node.step(
            3,
            GossipMessage::Membership {
                alive: vec![PeerAdvert {
                    peer: 2,
                    org: "B".into(),
                    incarnation: 0,
                    heartbeat: 5,
                    age: 0,
                    delivered: vec![],
                    snapshots: vec![],
                    credits: vec![],
                }],
            },
        );
        // Leader election now sees peer 2 in org B: id 1 no longer lowest?
        // It still is (1 < 2), but the org view must reflect B for peer 2.
        assert!(node.is_org_leader());
        // The reverse case corrupts election without the fix: observer is
        // id 3's twin. Build a node with id 5 in org B that previously
        // believed peer 2 was in org A.
        let mut high = GossipNode::new(
            5,
            "B",
            &[(2, "A".into())],
            vec![channel()],
            GossipConfig::default(),
            1,
        );
        high.tick();
        high.step(2, GossipMessage::Membership { alive: vec![] });
        assert!(high.is_org_leader(), "org A peer 2 does not contest org B");
        high.step(
            2,
            GossipMessage::Membership {
                alive: vec![PeerAdvert {
                    peer: 2,
                    org: "B".into(),
                    incarnation: 0,
                    heartbeat: 9,
                    age: 0,
                    delivered: vec![],
                    snapshots: vec![],
                    credits: vec![],
                }],
            },
        );
        assert!(
            !high.is_org_leader(),
            "peer 2's org B re-registration must be visible to election"
        );
    }

    // ------------------------------------------------------------------
    // Adversarial-input coverage
    // ------------------------------------------------------------------

    #[test]
    fn duplicate_flood_is_absorbed_by_the_dedup_lru() {
        let config = GossipConfig {
            rate_limit_burst: 10_000, // isolate dedup from rate limiting
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(
            1,
            "A",
            &[(2, "A".into()), (3, "A".into())],
            vec![channel()],
            config,
            1,
        );
        node.tick();
        for p in [2, 3] {
            node.step(p, GossipMessage::Membership { alive: vec![] });
        }
        let push = GossipMessage::BlockPush {
            channel: channel(),
            block_num: 1,
            payload: vec![0xaa; 64],
        };
        let out = node.step(2, push.clone());
        assert!(out
            .iter()
            .any(|o| matches!(o, GossipOutput::DeliverBlock { .. })));
        // 500 replays of the same push: every one is dropped at the
        // dedup cache without touching the store or re-pushing.
        for _ in 0..500 {
            let out = node.step(2, push.clone());
            assert!(out.is_empty());
        }
        assert_eq!(node.stats().deduped, 500);
        // A *different* payload for the same number is NOT deduped — it
        // must reach verification so the forger can be scored.
        let forged = GossipMessage::BlockPush {
            channel: channel(),
            block_num: 1,
            payload: vec![0xbb; 64],
        };
        let before = node.stats().deduped;
        node.step(3, forged);
        assert_eq!(node.stats().deduped, before);
    }

    #[test]
    fn rate_limit_bucket_exhausts_and_refills() {
        let config = GossipConfig {
            rate_limit_burst: 5,
            rate_limit_refill: 2,
            dedup_capacity: 0, // isolate rate limiting from dedup
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[(2, "A".into())], vec![channel()], config, 1);
        node.tick();
        // 5 tokens: messages 6..10 are dropped.
        for i in 0..10u64 {
            node.step(
                2,
                GossipMessage::PullRequest {
                    channel: channel(),
                    have: i,
                },
            );
        }
        assert_eq!(node.stats().rate_limited, 5);
        // The member's observed height only advanced while tokens lasted
        // (message 5 carried have=4).
        // One tick refills 2 tokens; the third message is dropped again.
        node.tick();
        for i in 0..3u64 {
            node.step(
                2,
                GossipMessage::PullRequest {
                    channel: channel(),
                    have: 20 + i,
                },
            );
        }
        assert_eq!(node.stats().rate_limited, 6);
    }

    #[test]
    fn unknown_sender_flood_is_rate_limited_too() {
        let config = GossipConfig {
            rate_limit_burst: 3,
            rate_limit_refill: 1,
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[], vec![channel()], config, 1);
        node.tick();
        for _ in 0..10 {
            node.step(
                999, // never bootstrapped, never advertised
                GossipMessage::StateSync {
                    channel: channel(),
                    payload: vec![0; 8],
                },
            );
        }
        assert_eq!(node.stats().rate_limited, 7);
    }

    #[test]
    fn repeated_mismatches_quarantine_and_parole_restores() {
        let config = GossipConfig {
            quarantine_threshold: 3,
            quarantine_ticks: 10,
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(
            1,
            "A",
            &[(2, "A".into()), (3, "A".into())],
            vec![channel()],
            config,
            1,
        );
        node.tick();
        for p in [2, 3] {
            node.step(p, GossipMessage::Membership { alive: vec![] });
        }
        // Peer 2's payloads keep failing verification.
        node.report_verdict(2, false);
        node.report_verdict(2, false);
        assert!(!node.is_quarantined(2));
        node.report_verdict(2, false);
        assert!(node.is_quarantined(2));
        assert_eq!(node.stats().quarantines, 1);
        // Quarantined: ingress dropped, excluded from sampling/providers.
        let out = node.step(
            2,
            GossipMessage::BlockPush {
                channel: channel(),
                block_num: 1,
                payload: vec![1; 8],
            },
        );
        assert!(out.is_empty());
        assert_eq!(node.stats().quarantine_drops, 1);
        assert!(!node.alive_peers().contains(&2));
        assert!(node.alive_peers().contains(&3));
        // Parole after the quarantine window: the peer participates
        // again...
        for _ in 0..11 {
            node.tick();
        }
        assert!(!node.is_quarantined(2));
        node.step(2, GossipMessage::Membership { alive: vec![] });
        assert!(node.alive_peers().contains(&2));
        // ...but on thin ice: the halved score re-quarantines after
        // threshold/2 + 1 = 2 strikes, not 3.
        node.report_verdict(2, false);
        node.report_verdict(2, false);
        assert!(node.is_quarantined(2));
        assert_eq!(node.stats().quarantines, 2);
    }

    #[test]
    fn good_verdicts_repair_reputation() {
        let mut node = GossipNode::new(
            1,
            "A",
            &[(2, "A".into())],
            vec![channel()],
            GossipConfig::default(), // threshold 3
            1,
        );
        node.step(2, GossipMessage::Membership { alive: vec![] });
        node.report_verdict(2, false);
        node.report_verdict(2, false);
        node.report_verdict(2, true); // score back to 1
        node.report_verdict(2, false); // 2 < 3
        assert!(!node.is_quarantined(2));
        node.report_verdict(2, false);
        assert!(node.is_quarantined(2));
    }

    #[test]
    fn forged_phantom_adverts_age_out_of_the_member_map() {
        let config = GossipConfig {
            member_timeout: 4,
            member_gc_factor: 2,
            membership_interval: 1000,
            pull_interval: 1000,
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[(2, "A".into())], vec![channel()], config, 1);
        node.tick();
        // Peer 2 forges adverts for 200 phantom peers.
        let phantoms: Vec<PeerAdvert> = (1000..1200)
            .map(|id| PeerAdvert {
                peer: id,
                org: "A".into(),
                incarnation: 0,
                heartbeat: 1,
                age: 0,
                delivered: vec![],
                snapshots: vec![],
                credits: vec![],
            })
            .collect();
        node.step(2, GossipMessage::Membership { alive: phantoms });
        assert_eq!(node.member_count(), 201);
        // The phantoms never speak; GC reclaims them, the real peer stays.
        for _ in 0..12 {
            node.tick();
            node.step(2, GossipMessage::Membership { alive: vec![] });
        }
        assert_eq!(node.member_count(), 1);
        assert!(node.alive_peers().contains(&2));
    }

    // ------------------------------------------------------------------
    // Priority lanes and catch-up flip
    // ------------------------------------------------------------------

    #[test]
    fn bulk_lane_respects_per_tick_budget_and_never_blocks_fast_path() {
        let config = GossipConfig {
            bulk_budget_per_tick: 100,
            membership_interval: 1,
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[(2, "A".into())], vec![channel()], config, 1);
        node.tick();
        node.step(2, GossipMessage::Membership { alive: vec![] });
        // Queue 6 payloads of 60 bytes: budget 100 → one full + one
        // started? No: 1 fits (60), the 2nd would exceed → 1 per tick
        // after the first (which always sends at least one).
        for _ in 0..6 {
            node.send_state_sync(2, channel(), vec![0; 60]);
        }
        assert_eq!(node.bulk_backlog(), (6, 360));
        let mut ticks = 0;
        while node.bulk_backlog().0 > 0 {
            ticks += 1;
            assert!(ticks < 20, "bulk lane never drained");
            let out = node.tick();
            let bulk_sends = out
                .iter()
                .filter(|o| {
                    matches!(
                        o,
                        GossipOutput::Send {
                            message: GossipMessage::StateSync { .. },
                            ..
                        }
                    )
                })
                .count();
            assert!(bulk_sends <= 1, "60+60 > 100: at most one per tick");
            // Fast-path membership traffic is emitted before bulk sends.
            let first_bulk = out.iter().position(|o| {
                matches!(
                    o,
                    GossipOutput::Send {
                        message: GossipMessage::StateSync { .. },
                        ..
                    }
                )
            });
            let last_fast = out
                .iter()
                .rposition(|o| {
                    matches!(
                        o,
                        GossipOutput::Send {
                            message: GossipMessage::Membership { .. },
                            ..
                        }
                    )
                });
            if let (Some(b), Some(f)) = (first_bulk, last_fast) {
                assert!(f < b, "bulk sends must come after fast-path sends");
            }
        }
        assert_eq!(ticks, 6);
        assert_eq!(node.stats().bulk_sent, 6);
    }

    #[test]
    fn oversized_bulk_payload_still_makes_progress() {
        let config = GossipConfig {
            bulk_budget_per_tick: 100,
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[(2, "A".into())], vec![channel()], config, 1);
        node.send_state_sync(2, channel(), vec![0; 5000]); // 50x the budget
        let out = node.tick();
        assert!(
            out.iter().any(|o| matches!(
                o,
                GossipOutput::Send {
                    message: GossipMessage::StateSync { .. },
                    ..
                }
            )),
            "at least one bulk payload per tick, even oversized"
        );
        assert_eq!(node.bulk_backlog(), (0, 0));
    }

    #[test]
    fn bulk_lane_overflow_drops_oldest() {
        let config = GossipConfig {
            bulk_queue_limit: 250,
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[(2, "A".into())], vec![channel()], config, 1);
        for i in 0..5u8 {
            node.send_state_sync(2, channel(), vec![i; 100]);
        }
        // Only 2 payloads (200 bytes) fit under the 250-byte cap.
        let (queued, bytes) = node.bulk_backlog();
        assert_eq!((queued, bytes), (2, 200));
        assert_eq!(node.stats().bulk_dropped, 3);
        // The survivors are the *newest* payloads.
        let mut out = Vec::new();
        while node.bulk_backlog().0 > 0 {
            out.extend(node.tick());
        }
        let tags: Vec<u8> = out
            .iter()
            .filter_map(|o| match o {
                GossipOutput::Send {
                    message: GossipMessage::StateSync { payload, .. },
                    ..
                } => Some(payload[0]),
                _ => None,
            })
            .collect();
        assert_eq!(tags, vec![3, 4]);
    }

    #[test]
    fn deep_deficit_flips_to_snapshot_catchup() {
        let config = GossipConfig {
            catchup_threshold: 8,
            membership_interval: 1000,
            // The flip check runs on the pull cadence (it replaces
            // pulling); probe every tick so each tick is a flip chance.
            pull_interval: 1,
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(
            1,
            "A",
            &[(2, "A".into()), (3, "A".into())],
            vec![channel()],
            config,
            1,
        );
        node.tick();
        for p in [2, 3] {
            node.step(p, GossipMessage::Membership { alive: vec![] });
        }
        // Peer 2 advertises height 100 and a snapshot at 96.
        node.step(
            3,
            GossipMessage::Membership {
                alive: vec![PeerAdvert {
                    peer: 2,
                    org: "A".into(),
                    incarnation: 0,
                    heartbeat: 50,
                    age: 0,
                    delivered: vec![(channel(), 100)],
                    snapshots: vec![(channel(), 96)],
                    credits: vec![],
                }],
            },
        );
        let out = node.tick();
        let catchups: Vec<(PeerId, u64)> = out
            .iter()
            .filter_map(|o| match o {
                GossipOutput::SnapshotCatchup {
                    provider, height, ..
                } => Some((*provider, *height)),
                _ => None,
            })
            .collect();
        assert_eq!(catchups, vec![(2, 96)]);
        // Backed off: the next tick does not re-emit.
        let out = node.tick();
        assert!(out
            .iter()
            .all(|o| !matches!(o, GossipOutput::SnapshotCatchup { .. })));
        // Driver installs the snapshot: watermark jumps, backoff clears.
        let deliveries = node.note_snapshot_installed(&channel(), 96);
        assert!(deliveries.is_empty());
        assert_eq!(node.delivered_height(&channel()), 96);
        // Deficit is now 4 < 8: no more catch-up requests.
        let out = node.tick();
        assert!(out
            .iter()
            .all(|o| !matches!(o, GossipOutput::SnapshotCatchup { .. })));
    }

    #[test]
    fn snapshot_install_releases_buffered_blocks() {
        let config = GossipConfig {
            push_enabled: false,
            ..GossipConfig::default()
        };
        let mut node = GossipNode::new(1, "A", &[(2, "A".into())], vec![channel()], config, 1);
        node.tick();
        // Blocks 97..=99 arrive while the node is at 0 — buffered.
        for num in 97..=99 {
            let out = node.step(
                2,
                GossipMessage::BlockPush {
                    channel: channel(),
                    block_num: num,
                    payload: vec![num as u8],
                },
            );
            assert!(out
                .iter()
                .all(|o| !matches!(o, GossipOutput::DeliverBlock { .. })));
        }
        let out = node.note_snapshot_installed(&channel(), 96);
        let delivered: Vec<(u64, Option<PeerId>)> = out
            .iter()
            .filter_map(|o| match o {
                GossipOutput::DeliverBlock {
                    block_num, from, ..
                } => Some((*block_num, *from)),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![(97, Some(2)), (98, Some(2)), (99, Some(2))]);
        assert_eq!(node.delivered_height(&channel()), 99);
    }

    #[test]
    fn delivered_blocks_carry_their_provider_for_verdicts() {
        let mut node = GossipNode::new(
            1,
            "A",
            &[(2, "A".into())],
            vec![channel()],
            GossipConfig::default(),
            1,
        );
        node.tick();
        let out = node.step(
            2,
            GossipMessage::BlockPush {
                channel: channel(),
                block_num: 1,
                payload: vec![1],
            },
        );
        assert!(out.iter().any(|o| matches!(
            o,
            GossipOutput::DeliverBlock { from: Some(2), .. }
        )));
        // Orderer-sourced blocks have no provider to score.
        let out = node.on_block_from_orderer(&channel(), 2, vec![2]);
        assert!(out.iter().any(|o| matches!(
            o,
            GossipOutput::DeliverBlock { from: None, .. }
        )));
    }

    #[test]
    fn membership_heartbeats_are_bounded() {
        let config = GossipConfig {
            max_adverts: 8,
            membership_interval: 1,
            ..GossipConfig::default()
        };
        let bootstrap: Vec<(PeerId, String)> =
            (2..=100).map(|id| (id, "A".to_string())).collect();
        let mut node = GossipNode::new(1, "A", &bootstrap, vec![channel()], config, 1);
        node.tick();
        for p in 2..=100 {
            node.step(p, GossipMessage::Membership { alive: vec![] });
        }
        let out = node.tick();
        for o in out {
            if let GossipOutput::Send {
                message: GossipMessage::Membership { alive },
                ..
            } = o
            {
                assert!(alive.len() <= 8, "heartbeat carried {} adverts", alive.len());
                assert_eq!(alive[0].peer, 1, "self advert always included first");
            }
        }
    }
}
