//! # fabric-policy
//!
//! The endorsement-policy language (paper Sec. 3.1, 3.4): monotone logical
//! expressions over organization principals, with a text syntax, an AST,
//! and an evaluator used by the default VSCC and by channel access policies.
//!
//! ## Syntax
//!
//! ```text
//! expr      := AND(expr, expr, ...)
//!            | OR(expr, expr, ...)
//!            | OutOf(k, expr, expr, ...)
//!            | ANY(members) | ALL(members) | ANY(admins) | MAJORITY(admins)
//!            | principal
//! principal := MspId | MspId.role      role ∈ {member, client, peer, admin, orderer}
//! ```
//!
//! Examples: `"AND(Org1MSP, OR(Org2MSP, Org3MSP))"`, `"OutOf(3, A, B, C, D, E)"`
//! ("three out of five"), `"MAJORITY(admins)"`.
//!
//! ## Semantics
//!
//! Evaluation is over a set of *signers* (validated identities reduced to
//! `(msp_id, role)` pairs). Like Fabric, distinct principal slots must be
//! covered by **distinct** signers: `OutOf(2, Org1MSP, Org1MSP)` needs two
//! different Org1 signatures, not one counted twice. The meta forms
//! (`ANY(members)`, `MAJORITY(admins)`, …) expand against the channel's
//! organization list before evaluation.

mod eval;
mod parser;

pub use eval::{Signer, MAX_REQUIREMENT_SETS};
pub use parser::parse;

use fabric_primitives::wire::{Decoder, Encoder, Wire, WireError};

/// Which certificate roles a principal matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoleMatch {
    /// Any role in the organization.
    Member,
    /// Only clients.
    Client,
    /// Only peers.
    Peer,
    /// Only admins.
    Admin,
    /// Only orderers.
    Orderer,
}

impl RoleMatch {
    /// Returns `true` if a certificate role string satisfies this matcher.
    pub fn matches(&self, role: &str) -> bool {
        match self {
            RoleMatch::Member => true,
            RoleMatch::Client => role == "client",
            RoleMatch::Peer => role == "peer",
            RoleMatch::Admin => role == "admin",
            RoleMatch::Orderer => role == "orderer",
        }
    }

    /// The textual suffix used in policy strings.
    pub fn as_str(&self) -> &'static str {
        match self {
            RoleMatch::Member => "member",
            RoleMatch::Client => "client",
            RoleMatch::Peer => "peer",
            RoleMatch::Admin => "admin",
            RoleMatch::Orderer => "orderer",
        }
    }
}

/// A principal: an organization plus a role matcher.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Principal {
    /// The organization's MSP id.
    pub msp_id: String,
    /// Which roles within the org satisfy this principal.
    pub role: RoleMatch,
}

/// The policy expression AST.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolicyExpr {
    /// A single principal.
    Principal(Principal),
    /// All sub-expressions must be satisfied (by distinct signers).
    And(Vec<PolicyExpr>),
    /// At least one sub-expression must be satisfied.
    Or(Vec<PolicyExpr>),
    /// At least `k` of the sub-expressions must be satisfied.
    OutOf(u32, Vec<PolicyExpr>),
    /// Any one member of any channel organization.
    AnyMember,
    /// One member from *every* channel organization.
    AllMembers,
    /// Any one admin of any channel organization.
    AnyAdmin,
    /// Admins of a strict majority of channel organizations.
    MajorityAdmins,
}

/// Errors from parsing or evaluating policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// The policy text failed to parse; the message describes where.
    Parse(String),
    /// `OutOf` threshold exceeds its operand count or is zero.
    BadThreshold,
    /// Expansion/evaluation exceeded the complexity cap.
    TooComplex,
}

impl core::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PolicyError::Parse(msg) => write!(f, "policy parse error: {msg}"),
            PolicyError::BadThreshold => write!(f, "OutOf threshold out of range"),
            PolicyError::TooComplex => write!(f, "policy too complex to evaluate"),
        }
    }
}

impl std::error::Error for PolicyError {}

impl PolicyExpr {
    /// Parses a policy from its textual form.
    pub fn parse(text: &str) -> Result<PolicyExpr, PolicyError> {
        parser::parse(text)
    }

    /// Expands meta forms (`ANY(members)`, …) against the channel's
    /// organization list, yielding an expression with only principals and
    /// combinators.
    pub fn expand(&self, org_msp_ids: &[String]) -> Result<PolicyExpr, PolicyError> {
        let principal = |msp_id: &String, role| {
            PolicyExpr::Principal(Principal {
                msp_id: msp_id.clone(),
                role,
            })
        };
        Ok(match self {
            PolicyExpr::Principal(p) => PolicyExpr::Principal(p.clone()),
            PolicyExpr::And(subs) => PolicyExpr::And(
                subs.iter()
                    .map(|s| s.expand(org_msp_ids))
                    .collect::<Result<_, _>>()?,
            ),
            PolicyExpr::Or(subs) => PolicyExpr::Or(
                subs.iter()
                    .map(|s| s.expand(org_msp_ids))
                    .collect::<Result<_, _>>()?,
            ),
            PolicyExpr::OutOf(k, subs) => PolicyExpr::OutOf(
                *k,
                subs.iter()
                    .map(|s| s.expand(org_msp_ids))
                    .collect::<Result<_, _>>()?,
            ),
            PolicyExpr::AnyMember => PolicyExpr::Or(
                org_msp_ids
                    .iter()
                    .map(|m| principal(m, RoleMatch::Member))
                    .collect(),
            ),
            PolicyExpr::AllMembers => PolicyExpr::And(
                org_msp_ids
                    .iter()
                    .map(|m| principal(m, RoleMatch::Member))
                    .collect(),
            ),
            PolicyExpr::AnyAdmin => PolicyExpr::Or(
                org_msp_ids
                    .iter()
                    .map(|m| principal(m, RoleMatch::Admin))
                    .collect(),
            ),
            PolicyExpr::MajorityAdmins => {
                let n = org_msp_ids.len() as u32;
                let k = n / 2 + 1;
                PolicyExpr::OutOf(
                    k,
                    org_msp_ids
                        .iter()
                        .map(|m| principal(m, RoleMatch::Admin))
                        .collect(),
                )
            }
        })
    }

    /// Evaluates the (already expanded) policy against a set of signers.
    ///
    /// Returns an error if the expression still contains meta forms or is
    /// too complex; use [`PolicyExpr::expand`] first.
    pub fn is_satisfied(&self, signers: &[Signer]) -> Result<bool, PolicyError> {
        eval::is_satisfied(self, signers)
    }

    /// Convenience: expand against `orgs` and evaluate.
    pub fn evaluate(&self, orgs: &[String], signers: &[Signer]) -> Result<bool, PolicyError> {
        self.expand(orgs)?.is_satisfied(signers)
    }

    /// Collects every distinct organization mentioned by the expression
    /// (after expansion). Used by clients to decide which peers to ask for
    /// endorsements.
    pub fn mentioned_orgs(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_orgs(&mut out);
        out.dedup();
        out
    }

    fn collect_orgs(&self, out: &mut Vec<String>) {
        match self {
            PolicyExpr::Principal(p) if !out.contains(&p.msp_id) => {
                out.push(p.msp_id.clone());
            }
            PolicyExpr::And(subs) | PolicyExpr::Or(subs) | PolicyExpr::OutOf(_, subs) => {
                for s in subs {
                    s.collect_orgs(out);
                }
            }
            _ => {}
        }
    }
}

impl Wire for PolicyExpr {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            PolicyExpr::Principal(p) => {
                enc.put_u8(0);
                enc.put_string(&p.msp_id);
                enc.put_string(p.role.as_str());
            }
            PolicyExpr::And(subs) => {
                enc.put_u8(1);
                enc.put_seq(subs, |e, s| s.encode(e));
            }
            PolicyExpr::Or(subs) => {
                enc.put_u8(2);
                enc.put_seq(subs, |e, s| s.encode(e));
            }
            PolicyExpr::OutOf(k, subs) => {
                enc.put_u8(3);
                enc.put_u32(*k);
                enc.put_seq(subs, |e, s| s.encode(e));
            }
            PolicyExpr::AnyMember => enc.put_u8(4),
            PolicyExpr::AllMembers => enc.put_u8(5),
            PolicyExpr::AnyAdmin => enc.put_u8(6),
            PolicyExpr::MajorityAdmins => enc.put_u8(7),
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match dec.get_u8()? {
            0 => {
                let msp_id = dec.get_string()?;
                let role = match dec.get_string()?.as_str() {
                    "member" => RoleMatch::Member,
                    "client" => RoleMatch::Client,
                    "peer" => RoleMatch::Peer,
                    "admin" => RoleMatch::Admin,
                    "orderer" => RoleMatch::Orderer,
                    _ => return Err(WireError::BadTag(0)),
                };
                PolicyExpr::Principal(Principal { msp_id, role })
            }
            1 => PolicyExpr::And(dec.get_seq(PolicyExpr::decode)?),
            2 => PolicyExpr::Or(dec.get_seq(PolicyExpr::decode)?),
            3 => {
                let k = dec.get_u32()?;
                PolicyExpr::OutOf(k, dec.get_seq(PolicyExpr::decode)?)
            }
            4 => PolicyExpr::AnyMember,
            5 => PolicyExpr::AllMembers,
            6 => PolicyExpr::AnyAdmin,
            7 => PolicyExpr::MajorityAdmins,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signer(msp: &str, role: &str) -> Signer {
        Signer {
            msp_id: msp.into(),
            role: role.into(),
        }
    }

    fn orgs(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn single_principal() {
        let p = PolicyExpr::parse("Org1MSP").unwrap();
        assert!(p.is_satisfied(&[signer("Org1MSP", "peer")]).unwrap());
        assert!(!p.is_satisfied(&[signer("Org2MSP", "peer")]).unwrap());
        assert!(!p.is_satisfied(&[]).unwrap());
    }

    #[test]
    fn role_qualified_principal() {
        let p = PolicyExpr::parse("Org1MSP.admin").unwrap();
        assert!(p.is_satisfied(&[signer("Org1MSP", "admin")]).unwrap());
        assert!(!p.is_satisfied(&[signer("Org1MSP", "peer")]).unwrap());
    }

    #[test]
    fn and_or_combination() {
        // The paper's example: "(A ∧ B) ∨ C".
        let p = PolicyExpr::parse("OR(AND(A, B), C)").unwrap();
        assert!(p
            .is_satisfied(&[signer("A", "peer"), signer("B", "peer")])
            .unwrap());
        assert!(p.is_satisfied(&[signer("C", "peer")]).unwrap());
        assert!(!p.is_satisfied(&[signer("A", "peer")]).unwrap());
    }

    #[test]
    fn three_out_of_five() {
        // The paper's example: "three out of five".
        let p = PolicyExpr::parse("OutOf(3, P1, P2, P3, P4, P5)").unwrap();
        let three = [signer("P1", "peer"), signer("P3", "peer"), signer("P5", "peer")];
        let two = [signer("P1", "peer"), signer("P3", "peer")];
        assert!(p.is_satisfied(&three).unwrap());
        assert!(!p.is_satisfied(&two).unwrap());
    }

    #[test]
    fn distinct_signers_required() {
        // Two slots of the same org need two signatures.
        let p = PolicyExpr::parse("OutOf(2, Org1MSP, Org1MSP)").unwrap();
        assert!(!p.is_satisfied(&[signer("Org1MSP", "peer")]).unwrap());
        assert!(p
            .is_satisfied(&[signer("Org1MSP", "peer"), signer("Org1MSP", "peer")])
            .unwrap());
    }

    #[test]
    fn meta_any_member() {
        let p = PolicyExpr::parse("ANY(members)").unwrap();
        let orgs = orgs(&["A", "B"]);
        assert!(p.evaluate(&orgs, &[signer("B", "client")]).unwrap());
        assert!(!p.evaluate(&orgs, &[signer("C", "client")]).unwrap());
    }

    #[test]
    fn meta_majority_admins() {
        let p = PolicyExpr::parse("MAJORITY(admins)").unwrap();
        let orgs = orgs(&["A", "B", "C"]);
        // Majority of 3 orgs = 2 distinct org admins.
        assert!(p
            .evaluate(&orgs, &[signer("A", "admin"), signer("C", "admin")])
            .unwrap());
        assert!(!p.evaluate(&orgs, &[signer("A", "admin")]).unwrap());
        // Peers don't count.
        assert!(!p
            .evaluate(&orgs, &[signer("A", "peer"), signer("C", "peer")])
            .unwrap());
    }

    #[test]
    fn meta_all_members() {
        let p = PolicyExpr::parse("ALL(members)").unwrap();
        let orgs = orgs(&["A", "B"]);
        assert!(p
            .evaluate(&orgs, &[signer("A", "peer"), signer("B", "client")])
            .unwrap());
        assert!(!p.evaluate(&orgs, &[signer("A", "peer")]).unwrap());
    }

    #[test]
    fn mentioned_orgs_collects() {
        let p = PolicyExpr::parse("OR(AND(A, B), OutOf(1, C, A))").unwrap();
        assert_eq!(p.mentioned_orgs(), vec!["A", "B", "C"]);
    }

    #[test]
    fn wire_round_trip() {
        for text in [
            "Org1MSP",
            "Org1MSP.peer",
            "AND(A, B)",
            "OR(A.client, OutOf(2, B, C, D))",
            "ANY(members)",
            "ALL(members)",
            "ANY(admins)",
            "MAJORITY(admins)",
        ] {
            let p = PolicyExpr::parse(text).unwrap();
            assert_eq!(PolicyExpr::from_wire(&p.to_wire()).unwrap(), p, "{text}");
        }
    }

    #[test]
    fn evaluate_meta_without_expand_fails() {
        let p = PolicyExpr::AnyMember;
        assert!(p.is_satisfied(&[signer("A", "peer")]).is_err());
    }
}
