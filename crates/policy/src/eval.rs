//! Policy evaluation with distinct-signer semantics.
//!
//! The expression is lowered to disjunctive normal form: a list of
//! *requirement sets*, each a multiset of principals any one of which, if
//! fully covered, satisfies the policy. A requirement set is covered when
//! each of its principal slots can be assigned a **distinct** signer, which
//! is a bipartite matching problem solved with the classic augmenting-path
//! algorithm (policies and signer sets are small).

use crate::{PolicyError, PolicyExpr, Principal};

/// A signer extracted from a validated identity: organization and role.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Signer {
    /// The signer's MSP id.
    pub msp_id: String,
    /// The signer's certificate role (`"peer"`, `"admin"`, …).
    pub role: String,
}

/// Cap on the number of requirement sets produced by lowering, protecting
/// against combinatorial blow-up from adversarial policies.
pub const MAX_REQUIREMENT_SETS: usize = 65_536;

/// Evaluates an expanded policy against a set of signers.
pub fn is_satisfied(expr: &PolicyExpr, signers: &[Signer]) -> Result<bool, PolicyError> {
    let sets = requirement_sets(expr)?;
    Ok(sets.iter().any(|set| matchable(set, signers)))
}

/// Lowers the expression to DNF over principals.
fn requirement_sets(expr: &PolicyExpr) -> Result<Vec<Vec<Principal>>, PolicyError> {
    match expr {
        PolicyExpr::Principal(p) => Ok(vec![vec![p.clone()]]),
        PolicyExpr::Or(subs) => {
            let mut out = Vec::new();
            for sub in subs {
                out.extend(requirement_sets(sub)?);
                if out.len() > MAX_REQUIREMENT_SETS {
                    return Err(PolicyError::TooComplex);
                }
            }
            Ok(out)
        }
        PolicyExpr::And(subs) => cross_product(subs),
        PolicyExpr::OutOf(k, subs) => {
            let k = *k as usize;
            if k == 0 || k > subs.len() {
                return Err(PolicyError::BadThreshold);
            }
            // Union over all k-subsets of the operands.
            let mut out = Vec::new();
            let mut indices: Vec<usize> = (0..k).collect();
            loop {
                let chosen: Vec<PolicyExpr> =
                    indices.iter().map(|&i| subs[i].clone()).collect();
                out.extend(cross_product(&chosen)?);
                if out.len() > MAX_REQUIREMENT_SETS {
                    return Err(PolicyError::TooComplex);
                }
                // Next combination in lexicographic order.
                let mut i = k;
                loop {
                    if i == 0 {
                        return Ok(out);
                    }
                    i -= 1;
                    if indices[i] != i + subs.len() - k {
                        break;
                    }
                }
                indices[i] += 1;
                for j in i + 1..k {
                    indices[j] = indices[j - 1] + 1;
                }
            }
        }
        PolicyExpr::AnyMember
        | PolicyExpr::AllMembers
        | PolicyExpr::AnyAdmin
        | PolicyExpr::MajorityAdmins => Err(PolicyError::Parse(
            "meta policy must be expanded against the channel orgs before evaluation".into(),
        )),
    }
}

/// DNF of a conjunction: the cross product of the operands' DNFs.
fn cross_product(subs: &[PolicyExpr]) -> Result<Vec<Vec<Principal>>, PolicyError> {
    let mut acc: Vec<Vec<Principal>> = vec![Vec::new()];
    for sub in subs {
        let sub_sets = requirement_sets(sub)?;
        let mut next = Vec::with_capacity(acc.len() * sub_sets.len());
        for left in &acc {
            for right in &sub_sets {
                let mut combined = left.clone();
                combined.extend(right.iter().cloned());
                next.push(combined);
            }
            if next.len() > MAX_REQUIREMENT_SETS {
                return Err(PolicyError::TooComplex);
            }
        }
        acc = next;
    }
    Ok(acc)
}

/// Checks whether every principal slot can be matched to a distinct signer.
fn matchable(principals: &[Principal], signers: &[Signer]) -> bool {
    if principals.len() > signers.len() {
        return false;
    }
    // match_of[s] = index of the principal currently assigned to signer s.
    let mut match_of: Vec<Option<usize>> = vec![None; signers.len()];
    for (pi, principal) in principals.iter().enumerate() {
        let mut visited = vec![false; signers.len()];
        if !augment(pi, principal, principals, signers, &mut match_of, &mut visited) {
            return false;
        }
    }
    true
}

fn augment(
    pi: usize,
    principal: &Principal,
    principals: &[Principal],
    signers: &[Signer],
    match_of: &mut Vec<Option<usize>>,
    visited: &mut Vec<bool>,
) -> bool {
    for (si, signer) in signers.iter().enumerate() {
        if visited[si] || !satisfies(signer, principal) {
            continue;
        }
        visited[si] = true;
        match match_of[si] {
            None => {
                match_of[si] = Some(pi);
                return true;
            }
            Some(other) => {
                if augment(other, &principals[other], principals, signers, match_of, visited) {
                    match_of[si] = Some(pi);
                    return true;
                }
            }
        }
    }
    false
}

fn satisfies(signer: &Signer, principal: &Principal) -> bool {
    signer.msp_id == principal.msp_id && principal.role.matches(&signer.role)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoleMatch;

    fn p(msp: &str, role: RoleMatch) -> Principal {
        Principal {
            msp_id: msp.into(),
            role,
        }
    }

    fn s(msp: &str, role: &str) -> Signer {
        Signer {
            msp_id: msp.into(),
            role: role.into(),
        }
    }

    #[test]
    fn matching_requires_distinct_signers() {
        let principals = vec![p("A", RoleMatch::Member), p("A", RoleMatch::Member)];
        assert!(!matchable(&principals, &[s("A", "peer")]));
        assert!(matchable(&principals, &[s("A", "peer"), s("A", "peer")]));
    }

    #[test]
    fn matching_backtracks() {
        // Signer 0 satisfies both principals; signer 1 only the first.
        // A greedy assignment of signer 0 to principal 0 must be undone.
        let principals = vec![p("A", RoleMatch::Member), p("A", RoleMatch::Admin)];
        let signers = [s("A", "admin"), s("A", "peer")];
        assert!(matchable(&principals, &signers));
    }

    #[test]
    fn matching_impossible() {
        let principals = vec![p("A", RoleMatch::Admin), p("A", RoleMatch::Admin)];
        let signers = [s("A", "admin"), s("A", "peer")];
        assert!(!matchable(&principals, &signers));
    }

    #[test]
    fn outof_generates_combinations() {
        let expr = PolicyExpr::OutOf(
            2,
            vec![
                PolicyExpr::Principal(p("A", RoleMatch::Member)),
                PolicyExpr::Principal(p("B", RoleMatch::Member)),
                PolicyExpr::Principal(p("C", RoleMatch::Member)),
            ],
        );
        let sets = requirement_sets(&expr).unwrap();
        assert_eq!(sets.len(), 3); // {A,B}, {A,C}, {B,C}
    }

    #[test]
    fn nested_and_or_dnf() {
        // AND(A, OR(B, C)) -> {A,B}, {A,C}.
        let expr = PolicyExpr::And(vec![
            PolicyExpr::Principal(p("A", RoleMatch::Member)),
            PolicyExpr::Or(vec![
                PolicyExpr::Principal(p("B", RoleMatch::Member)),
                PolicyExpr::Principal(p("C", RoleMatch::Member)),
            ]),
        ]);
        let sets = requirement_sets(&expr).unwrap();
        assert_eq!(sets.len(), 2);
    }

    #[test]
    fn complexity_cap_enforced() {
        // OR of ORs … exponential AND: AND of 20 ORs of 2 = 2^20 sets > cap.
        let two_way = PolicyExpr::Or(vec![
            PolicyExpr::Principal(p("A", RoleMatch::Member)),
            PolicyExpr::Principal(p("B", RoleMatch::Member)),
        ]);
        let expr = PolicyExpr::And(vec![two_way; 20]);
        assert_eq!(
            requirement_sets(&expr).unwrap_err(),
            PolicyError::TooComplex
        );
    }

    #[test]
    fn empty_signers_never_satisfy_principal() {
        let expr = PolicyExpr::Principal(p("A", RoleMatch::Member));
        assert!(!is_satisfied(&expr, &[]).unwrap());
    }
}
