//! Recursive-descent parser for the policy text syntax.

use crate::{PolicyError, PolicyExpr, Principal, RoleMatch};

/// Parses a policy expression from text.
///
/// See the crate-level documentation for the grammar.
pub fn parse(text: &str) -> Result<PolicyExpr, PolicyError> {
    let tokens = tokenize(text)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(PolicyError::Parse(format!(
            "unexpected trailing token {:?}",
            parser.tokens[parser.pos]
        )));
    }
    Ok(expr)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(u32),
    LParen,
    RParen,
    Comma,
    Dot,
}

fn tokenize(text: &str) -> Result<Vec<Token>, PolicyError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '.' => {
                chars.next();
                tokens.push(Token::Dot);
            }
            '0'..='9' => {
                let mut n: u32 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(v))
                            .ok_or_else(|| PolicyError::Parse("number too large".into()))?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Number(n));
            }
            c if c.is_alphanumeric() || c == '_' || c == '-' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '-' {
                        ident.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(ident));
            }
            other => {
                return Err(PolicyError::Parse(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<&Token, PolicyError> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| PolicyError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, token: Token) -> Result<(), PolicyError> {
        let t = self.next()?;
        if *t == token {
            Ok(())
        } else {
            Err(PolicyError::Parse(format!("expected {token:?}, found {t:?}")))
        }
    }

    fn expr(&mut self) -> Result<PolicyExpr, PolicyError> {
        let ident = match self.next()? {
            Token::Ident(s) => s.clone(),
            other => {
                return Err(PolicyError::Parse(format!(
                    "expected identifier, found {other:?}"
                )))
            }
        };
        // Combinator or meta form if followed by '('.
        if self.peek() == Some(&Token::LParen) {
            let upper = ident.to_ascii_uppercase();
            match upper.as_str() {
                "AND" => {
                    let subs = self.args()?;
                    if subs.is_empty() {
                        return Err(PolicyError::Parse("AND needs at least one operand".into()));
                    }
                    return Ok(PolicyExpr::And(subs));
                }
                "OR" => {
                    let subs = self.args()?;
                    if subs.is_empty() {
                        return Err(PolicyError::Parse("OR needs at least one operand".into()));
                    }
                    return Ok(PolicyExpr::Or(subs));
                }
                "OUTOF" | "NOUTOF" => {
                    self.expect(Token::LParen)?;
                    let k = match self.next()? {
                        Token::Number(n) => *n,
                        other => {
                            return Err(PolicyError::Parse(format!(
                                "OutOf threshold must be a number, found {other:?}"
                            )))
                        }
                    };
                    let mut subs = Vec::new();
                    while self.peek() == Some(&Token::Comma) {
                        self.next()?;
                        subs.push(self.expr()?);
                    }
                    self.expect(Token::RParen)?;
                    if k == 0 || k as usize > subs.len() {
                        return Err(PolicyError::BadThreshold);
                    }
                    return Ok(PolicyExpr::OutOf(k, subs));
                }
                "ANY" | "ALL" | "MAJORITY" => {
                    self.expect(Token::LParen)?;
                    let group = match self.next()? {
                        Token::Ident(s) => s.to_ascii_lowercase(),
                        other => {
                            return Err(PolicyError::Parse(format!(
                                "expected group name, found {other:?}"
                            )))
                        }
                    };
                    self.expect(Token::RParen)?;
                    return match (upper.as_str(), group.as_str()) {
                        ("ANY", "members") => Ok(PolicyExpr::AnyMember),
                        ("ALL", "members") => Ok(PolicyExpr::AllMembers),
                        ("ANY", "admins") => Ok(PolicyExpr::AnyAdmin),
                        ("MAJORITY", "admins") => Ok(PolicyExpr::MajorityAdmins),
                        (f, g) => Err(PolicyError::Parse(format!(
                            "unsupported meta policy {f}({g})"
                        ))),
                    };
                }
                _ => {
                    return Err(PolicyError::Parse(format!(
                        "unknown combinator {ident:?}"
                    )))
                }
            }
        }
        // Otherwise a principal, optionally role-qualified.
        let role = if self.peek() == Some(&Token::Dot) {
            self.next()?;
            let role_name = match self.next()? {
                Token::Ident(s) => s.to_ascii_lowercase(),
                other => {
                    return Err(PolicyError::Parse(format!(
                        "expected role after '.', found {other:?}"
                    )))
                }
            };
            match role_name.as_str() {
                "member" => RoleMatch::Member,
                "client" => RoleMatch::Client,
                "peer" => RoleMatch::Peer,
                "admin" => RoleMatch::Admin,
                "orderer" => RoleMatch::Orderer,
                other => {
                    return Err(PolicyError::Parse(format!("unknown role {other:?}")));
                }
            }
        } else {
            RoleMatch::Member
        };
        Ok(PolicyExpr::Principal(Principal {
            msp_id: ident,
            role,
        }))
    }

    fn args(&mut self) -> Result<Vec<PolicyExpr>, PolicyError> {
        self.expect(Token::LParen)?;
        let mut subs = Vec::new();
        if self.peek() == Some(&Token::RParen) {
            self.next()?;
            return Ok(subs);
        }
        loop {
            subs.push(self.expr()?);
            match self.next()? {
                Token::Comma => continue,
                Token::RParen => break,
                other => {
                    return Err(PolicyError::Parse(format!(
                        "expected ',' or ')', found {other:?}"
                    )))
                }
            }
        }
        Ok(subs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested() {
        let p = parse("AND(Org1MSP.peer, OR(Org2MSP, OutOf(2, A, B, C)))").unwrap();
        match p {
            PolicyExpr::And(subs) => {
                assert_eq!(subs.len(), 2);
                assert!(matches!(subs[0], PolicyExpr::Principal(_)));
                assert!(matches!(subs[1], PolicyExpr::Or(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse("and(A, B)").is_ok());
        assert!(parse("Or(A, B)").is_ok());
        assert!(parse("outof(1, A)").is_ok());
        assert!(parse("NOutOf(1, A)").is_ok());
        assert!(parse("majority(ADMINS)").is_ok());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(parse(" AND( A , B ) ").unwrap(), parse("AND(A,B)").unwrap());
    }

    #[test]
    fn bad_threshold_rejected() {
        assert_eq!(parse("OutOf(0, A)").unwrap_err(), PolicyError::BadThreshold);
        assert_eq!(
            parse("OutOf(3, A, B)").unwrap_err(),
            PolicyError::BadThreshold
        );
    }

    #[test]
    fn syntax_errors_rejected() {
        for bad in [
            "",
            "AND(",
            "AND()",
            "OR()",
            "A.",
            "A.superuser",
            "AND(A,)",
            "A B",
            "OutOf(x, A)",
            "FOO(A)",
            "ANY(peers)",
            "(A)",
            "A!",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn identifiers_with_dashes_and_digits() {
        let p = parse("Org-1_MSP2").unwrap();
        assert_eq!(
            p,
            PolicyExpr::Principal(Principal {
                msp_id: "Org-1_MSP2".into(),
                role: RoleMatch::Member
            })
        );
    }

    #[test]
    fn number_overflow_rejected() {
        assert!(parse("OutOf(99999999999, A)").is_err());
    }
}
