//! Storage-engine scale bench: baseline vs memory vs sharded LSM at 1M+
//! keys.
//!
//! Loads `FABRIC_BENCH_KEYS` keys (default 1,000,000) into each engine on
//! a RAM-disk backend, then measures, per engine:
//!
//!   * bulk-load throughput and the post-load checkpoint latency,
//!   * concurrent point-read throughput under a zipfian (theta 0.99,
//!     YCSB-style) and a uniform key distribution,
//!   * a read-heavy mixed phase (95% get / 5% put, zipfian) interleaved
//!     with periodic checkpoints — the stop-the-world story: the baseline
//!     rewrites the entire state per checkpoint while the LSM flushes
//!     only the dirty delta,
//!   * a write-heavy phase (50% get / 50% put, zipfian).
//!
//! `FABRIC_BENCH_SMOKE=1` shrinks everything to a few-second sanity run.
//! `FABRIC_BENCH_JSON=<path>` additionally writes the results as JSON
//! (committed as `BENCH_storage.json`).

use std::sync::Arc;
use std::time::Instant;

use fabric::kvstore::{open_state_store, EngineKind, MemBackend, StateStore, WriteBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// YCSB-style zipfian generator over `0..items` with theta 0.99.
struct Zipfian {
    items: u64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow: f64,
}

impl Zipfian {
    fn new(items: u64) -> Zipfian {
        let theta = 0.99f64;
        let zetan: f64 = (1..=items).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            items,
            alpha,
            zetan,
            eta,
            half_pow: 1.0 + 0.5f64.powf(theta),
        }
    }

    fn next(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.half_pow {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.items as f64 * spread) as u64).min(self.items - 1)
    }
}

fn key_of(i: u64) -> Vec<u8> {
    format!("key-{i:08}").into_bytes()
}

fn value_of(i: u64, round: u64) -> Vec<u8> {
    let mut v = format!("value-{i}-{round}-").into_bytes();
    v.resize(96, b'x');
    v
}

struct PhaseResult {
    ops: u64,
    secs: f64,
}

impl PhaseResult {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.secs
    }
}

/// Runs `threads` workers against `store`, each performing `ops_each`
/// operations with `write_pct` percent single-key puts (rest are gets).
fn run_phase(
    store: &Arc<dyn StateStore>,
    threads: usize,
    ops_each: u64,
    write_pct: u64,
    zipf: Option<&Arc<Zipfian>>,
    keys: u64,
    seed: u64,
) -> PhaseResult {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = Arc::clone(store);
            let zipf = zipf.map(Arc::clone);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9e37));
                for op in 0..ops_each {
                    let i = match &zipf {
                        Some(z) => z.next(&mut rng),
                        None => rng.gen_range(0..keys),
                    };
                    if write_pct > 0 && rng.gen_range(0..100u64) < write_pct {
                        let mut batch = WriteBatch::new();
                        batch.put(key_of(i), value_of(i, op));
                        store.write(batch).expect("bench write");
                    } else {
                        std::hint::black_box(store.get(&key_of(i)));
                    }
                }
            });
        }
    });
    PhaseResult {
        ops: threads as u64 * ops_each,
        secs: start.elapsed().as_secs_f64(),
    }
}

struct EngineReport {
    name: &'static str,
    load_tps: f64,
    load_checkpoint_ms: f64,
    read_zipf: f64,
    read_uniform: f64,
    mixed_zipf: f64,
    mixed_checkpoint_ms: f64,
    write_heavy: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_engine(
    name: &'static str,
    engine: EngineKind,
    keys: u64,
    read_ops: u64,
    mixed_ops: u64,
    write_ops: u64,
    threads: usize,
    zipf: &Arc<Zipfian>,
) -> EngineReport {
    let store = open_state_store(Arc::new(MemBackend::new()), false, &engine).expect("open");

    // Bulk load in batches of 1024.
    let start = Instant::now();
    let mut i = 0u64;
    while i < keys {
        let mut batch = WriteBatch::new();
        let end = (i + 1024).min(keys);
        for k in i..end {
            batch.put(key_of(k), value_of(k, 0));
        }
        store.write(batch).expect("load write");
        i = end;
    }
    store.flush().expect("drain");
    let load_tps = keys as f64 / start.elapsed().as_secs_f64();

    let start = Instant::now();
    store.checkpoint().expect("post-load checkpoint");
    let load_checkpoint_ms = start.elapsed().as_secs_f64() * 1000.0;

    // Fold the freshly loaded segments into steady-state read layout
    // (one segment per shard for the LSM; a no-op for the others) before
    // any timed read phase — the read benchmarks measure serving, not
    // the tail of bulk ingest.
    store.compact().expect("post-load compaction");

    // Untimed warmup: populate block caches and fault the hot paths in
    // before any timed read phase (every engine gets the same treatment).
    run_phase(&store, threads, read_ops / 5, 0, Some(zipf), keys, 7);
    run_phase(&store, threads, read_ops / 5, 0, None, keys, 9);

    let read_zipf = run_phase(&store, threads, read_ops, 0, Some(zipf), keys, 11);
    let read_uniform = run_phase(&store, threads, read_ops, 0, None, keys, 13);

    // Read-heavy mixed phase in 4 rounds with a checkpoint between each:
    // wall clock includes the checkpoints, so stop-the-world engines pay
    // for their full-state rewrites right where the paper's VSCC-style
    // read-hot workload hurts most.
    let mut ck_ms = 0.0;
    let rounds = 4u64;
    let start = Instant::now();
    let mut mixed_ops_done = 0u64;
    for round in 0..rounds {
        let r = run_phase(
            &store,
            threads,
            mixed_ops / rounds,
            5,
            Some(zipf),
            keys,
            17 + round,
        );
        mixed_ops_done += r.ops;
        let ck = Instant::now();
        store.checkpoint().expect("periodic checkpoint");
        ck_ms += ck.elapsed().as_secs_f64() * 1000.0;
    }
    let mixed_secs = start.elapsed().as_secs_f64();
    let mixed_zipf = mixed_ops_done as f64 / mixed_secs;

    let write_heavy = run_phase(&store, threads, write_ops, 50, Some(zipf), keys, 29);

    EngineReport {
        name,
        load_tps,
        load_checkpoint_ms,
        read_zipf: read_zipf.ops_per_sec(),
        read_uniform: read_uniform.ops_per_sec(),
        mixed_zipf,
        mixed_checkpoint_ms: ck_ms,
        write_heavy: write_heavy.ops_per_sec(),
    }
}

fn main() {
    let smoke = std::env::var("FABRIC_BENCH_SMOKE").is_ok();
    let keys: u64 = std::env::var("FABRIC_BENCH_KEYS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 20_000 } else { 1_000_000 });
    let threads: usize = std::env::var("FABRIC_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(4)
        });
    let read_ops: u64 = if smoke { 5_000 } else { 150_000 };
    let mixed_ops: u64 = if smoke { 4_000 } else { 100_000 };
    let write_ops: u64 = if smoke { 2_000 } else { 50_000 };

    println!("== storage engines at scale: {keys} keys, {threads} reader threads ==");
    println!("   zipfian theta 0.99 (YCSB); values 96 B; RAM-disk backend\n");

    let zipf = Arc::new(Zipfian::new(keys));
    let engines: Vec<(&'static str, EngineKind)> = vec![
        ("baseline", EngineKind::Baseline),
        ("memory", EngineKind::Memory),
        ("lsm", EngineKind::parse("lsm").unwrap()),
    ];

    let mut reports = Vec::new();
    for (name, engine) in engines {
        let r = run_engine(
            name, engine, keys, read_ops, mixed_ops, write_ops, threads, &zipf,
        );
        println!(
            "{:>8}: load {:>9.0} tps | ck {:>7.1} ms | read zipf {:>9.0} op/s | uniform {:>9.0} op/s | mixed 95/5 {:>9.0} op/s (cks {:>7.1} ms) | write 50/50 {:>9.0} op/s",
            r.name,
            r.load_tps,
            r.load_checkpoint_ms,
            r.read_zipf,
            r.read_uniform,
            r.mixed_zipf,
            r.mixed_checkpoint_ms,
            r.write_heavy,
        );
        reports.push(r);
    }

    let base = reports
        .iter()
        .find(|r| r.name == "baseline")
        .expect("baseline ran");
    let lsm = reports.iter().find(|r| r.name == "lsm").expect("lsm ran");
    println!(
        "\nlsm vs baseline: read zipf {:+.1}% | mixed 95/5 {:+.1}% | checkpoint {:.1}x faster",
        (lsm.read_zipf / base.read_zipf - 1.0) * 100.0,
        (lsm.mixed_zipf / base.mixed_zipf - 1.0) * 100.0,
        base.mixed_checkpoint_ms / lsm.mixed_checkpoint_ms.max(0.001),
    );

    if let Ok(path) = std::env::var("FABRIC_BENCH_JSON") {
        let rows: Vec<String> = reports
            .iter()
            .map(|r| {
                format!(
                    r#"{{"engine":"{}","load_tps":{:.0},"load_checkpoint_ms":{:.1},"read_zipf_ops":{:.0},"read_uniform_ops":{:.0},"mixed_95_5_ops":{:.0},"mixed_checkpoint_ms":{:.1},"write_50_50_ops":{:.0}}}"#,
                    r.name,
                    r.load_tps,
                    r.load_checkpoint_ms,
                    r.read_zipf,
                    r.read_uniform,
                    r.mixed_zipf,
                    r.mixed_checkpoint_ms,
                    r.write_heavy,
                )
            })
            .collect();
        let json = format!(
            r#"{{"bench":"storage_scale","keys":{},"value_bytes":96,"threads":{},"zipf_theta":0.99,"engines":[{}]}}"#,
            keys,
            threads,
            rows.join(",")
        );
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote {path}");
    }
}
