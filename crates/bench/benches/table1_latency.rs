//! **Table 1**: latency staging — endorsement, ordering, VSCC, read-write
//! check, ledger, validation, end-to-end — for mint and spend transactions
//! at a near-saturated peer with 2 MB blocks (paper Sec. 5.2).
//!
//! The paper's numbers (ms, mint / spend): endorsement 5.6/7.5, ordering
//! 248/365, VSCC 31.0/35.3, rw-check 34.8/61.5, ledger 50.6/72.2,
//! validation 116/169, end-to-end 371/542. Absolute values here depend on
//! this host; the reproduced *shape* is: ordering dominates end-to-end,
//! sub-second tails, VSCC < rw+ledger at high parallelism.

use fabric_bench::pipeline::{run_pipeline, PipelineConfig, PipelineResult, Storage, TxKind};
use fabric_bench::stats::{LatencyStats, Table};

struct PaperRow {
    stage: &'static str,
    mint: [f64; 4],
    spend: [f64; 4],
}

const PAPER: [PaperRow; 7] = [
    PaperRow { stage: "(1) endorsement", mint: [5.6, 2.4, 15.0, 19.0], spend: [7.5, 4.2, 21.0, 26.0] },
    PaperRow { stage: "(2) ordering", mint: [248.0, 60.0, 484.0, 523.0], spend: [365.0, 92.0, 624.0, 636.0] },
    PaperRow { stage: "(3) VSCC val.", mint: [31.0, 10.2, 72.7, 113.0], spend: [35.3, 9.0, 57.0, 108.4] },
    PaperRow { stage: "(4) R/W check", mint: [34.8, 3.9, 47.0, 59.0], spend: [61.5, 9.3, 88.5, 93.3] },
    PaperRow { stage: "(5) ledger", mint: [50.6, 6.2, 70.1, 72.5], spend: [72.2, 8.8, 97.5, 105.0] },
    PaperRow { stage: "(6) validation", mint: [116.0, 12.8, 156.0, 199.0], spend: [169.0, 17.8, 216.0, 230.0] },
    PaperRow { stage: "(7) end-to-end", mint: [371.0, 63.0, 612.0, 646.0], spend: [542.0, 94.0, 805.0, 813.0] },
];

fn stats_of(result: &PipelineResult, idx: usize) -> LatencyStats {
    match idx {
        0 => result.endorse,
        1 => result.ordering,
        2 => result.vscc,
        3 => result.rw_check,
        4 => result.ledger,
        5 => result.validation,
        _ => result.e2e,
    }
}

fn fmt(s: &LatencyStats) -> String {
    format!(
        "{:.1} / {:.1} / {:.0} / {:.0}",
        s.avg_ms, s.stdev_ms, s.p99_ms, s.p999_ms
    )
}

fn main() {
    let n_tx: usize = std::env::var("FABRIC_BENCH_TXS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let vcpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("== Table 1: latency staging (ms: avg / st.dev / 99% / 99.9%) ==");
    println!("   2 MB blocks, near-saturation load, {vcpus} VSCC workers\n");

    // Find saturation, then pace at 90% like the paper's "just below
    // saturation" methodology.
    let run = |kind: TxKind| {
        let sat = run_pipeline(&PipelineConfig {
            n_tx: n_tx / 2,
            kind,
            preferred_block_bytes: 2 * 1024 * 1024,
            vscc_parallelism: vcpus,
            storage: Storage::Mem,
            paced_tps: None,
        });
        run_pipeline(&PipelineConfig {
            n_tx,
            kind,
            preferred_block_bytes: 2 * 1024 * 1024,
            vscc_parallelism: vcpus,
            storage: Storage::Mem,
            paced_tps: Some(sat.tps * 0.9),
        })
    };
    let mint = run(TxKind::Mint);
    let spend = run(TxKind::Spend);

    let mut table = Table::new(&[
        "stage",
        "paper mint",
        "measured mint",
        "paper spend",
        "measured spend",
    ]);
    for (idx, row) in PAPER.iter().enumerate() {
        let fmt_paper = |v: &[f64; 4]| {
            format!("{:.1} / {:.1} / {:.0} / {:.0}", v[0], v[1], v[2], v[3])
        };
        table.row(vec![
            row.stage.to_string(),
            fmt_paper(&row.mint),
            fmt(&stats_of(&mint, idx)),
            fmt_paper(&row.spend),
            fmt(&stats_of(&spend, idx)),
        ]);
    }
    table.print();
    println!(
        "\nthroughput during the paced runs: mint {:.0} tps, spend {:.0} tps",
        mint.tps, spend.tps
    );

    // Pipelined-committer internals: per-stage histograms as observed by
    // the cross-block pipeline, plus its queue-depth gauges.
    println!("\n== pipelined committer stages (ms: avg / 99% / 99.9%) ==");
    let mut stages = Table::new(&["stage", "mint", "spend"]);
    let fmt_stage = |s: &fabric::peer::StageHistogram| {
        let sum = s.summary();
        format!(
            "{:.1} / {:.1} / {:.1}",
            sum.avg.as_secs_f64() * 1e3,
            sum.p99.as_secs_f64() * 1e3,
            sum.p999.as_secs_f64() * 1e3
        )
    };
    for (name, pick) in [
        ("VSCC (queued+run)", 0usize),
        ("R/W check", 1),
        ("ledger append", 2),
        ("total", 3),
    ] {
        let of = |r: &PipelineResult| match pick {
            0 => fmt_stage(&r.pipeline.vscc),
            1 => fmt_stage(&r.pipeline.rw_check),
            2 => fmt_stage(&r.pipeline.ledger),
            _ => fmt_stage(&r.pipeline.total),
        };
        stages.row(vec![name.to_string(), of(&mint), of(&spend)]);
    }
    stages.print();
    for (name, r) in [("mint", &mint), ("spend", &spend)] {
        let q = r.pipeline.queues;
        println!(
            "{name} queues: intake peak {}, vscc tasks peak {}, reorder peak {}, dependency stalls {}",
            q.intake_peak, q.vscc_tasks_peak, q.reorder_peak, q.dependency_stalls
        );
    }
    println!("\nexpected shape: ordering dominates e2e; all averages sub-second.");
}
