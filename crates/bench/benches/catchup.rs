//! Catch-up benchmark: state snapshot transfer vs full block replay for
//! a peer joining (or rejoining) a channel late.
//!
//! Full replay costs grow with chain length — every historical block is
//! re-validated and re-applied — while snapshot catch-up costs grow with
//! *state size* plus the short tail of blocks above the checkpoint. The
//! table sweeps chain length at a fixed write profile and reports both
//! paths, the snapshot's wire size, and where the crossover lands.
//!
//! `FABRIC_BENCH_SMOKE=1` shrinks the sweep to a few-second sanity run
//! (used by ci.sh).

use std::sync::Arc;
use std::time::{Duration, Instant};

use fabric::chaincode::{ChaincodeDefinition, Stub, LSCC_NAMESPACE};
use fabric::client::Client;
use fabric::kvstore::MemBackend;
use fabric::msp::Role;
use fabric::ordering::testkit::TestNet;
use fabric::ordering::OrderingCluster;
use fabric::peer::{Peer, PeerConfig};
use fabric::primitives::block::Block;
use fabric::primitives::config::ConsensusType;
use fabric::primitives::wire::Wire;
use fabric::statesync::{build_snapshot, decode_entries, Snapshot, SnapshotConfig};
use fabric_bench::stats::Table;

const TXS_PER_BLOCK: usize = 10;
const VALUE_BYTES: usize = 100;
/// Blocks above the checkpoint the joiner still replays.
const TAIL_BLOCKS: usize = 2;

fn kv_chaincode(stub: &mut Stub<'_>) -> Result<Vec<u8>, String> {
    match stub.function() {
        "put" => {
            let key = stub.arg_string(0)?;
            stub.put_state(&key, stub.args()[1].clone());
            Ok(vec![])
        }
        other => Err(format!("unknown {other}")),
    }
}

fn make_peer(net: &TestNet, genesis: &Block, name: &str) -> Peer {
    let identity =
        fabric::msp::issue_identity(&net.org_cas[0], name, Role::Peer, name.as_bytes());
    let peer = Peer::join(
        identity,
        genesis,
        Arc::new(MemBackend::new()),
        PeerConfig {
            vscc_parallelism: 2,
            runtime: fabric::chaincode::RuntimeConfig { exec_timeout: None, ..Default::default() },
            sync_writes: false,
            engine: Default::default(),
        },
    )
    .expect("peer joins");
    peer.install_chaincode("kv", Arc::new(kv_chaincode));
    peer
}

/// Builds deploy + `n_blocks` put blocks (disjoint keys) on a builder
/// peer, returning the blocks in delivery order.
fn build_chain(net: &TestNet, genesis: &Block, n_blocks: usize) -> Vec<Block> {
    let builder = make_peer(net, genesis, "builder.org1");
    let admin = fabric::msp::issue_identity(&net.org_cas[0], "admin", Role::Admin, b"cb-a");
    let admin_client = Client::new(admin, net.channel.clone());
    let client = Client::new(
        fabric::msp::issue_identity(&net.org_cas[0], "client", Role::Client, b"cb-c"),
        net.channel.clone(),
    );

    let def = ChaincodeDefinition {
        name: "kv".into(),
        version: "1.0".into(),
        endorsement_policy: "Org1MSP".into(),
    };
    let proposal = admin_client.create_proposal(LSCC_NAMESPACE, "deploy", vec![def.to_wire()]);
    let responses = admin_client
        .collect_endorsements(&proposal, &[&builder])
        .expect("deploy endorses");
    let deploy = admin_client.assemble_transaction(&proposal, &responses);

    let mut blocks = vec![Block::new(1, genesis.hash(), vec![deploy])];
    builder.commit_block(&blocks[0]).expect("deploy commits");
    for b in 0..n_blocks {
        let envelopes = (0..TXS_PER_BLOCK)
            .map(|i| {
                let proposal = client.create_proposal(
                    "kv",
                    "put",
                    vec![
                        format!("b{b:05}k{i:03}").into_bytes(),
                        vec![(b % 251) as u8; VALUE_BYTES],
                    ],
                );
                let responses = client
                    .collect_endorsements(&proposal, &[&builder])
                    .expect("put endorses");
                client.assemble_transaction(&proposal, &responses)
            })
            .collect();
        let block = Block::new(
            builder.height(),
            blocks.last().unwrap().hash(),
            envelopes,
        );
        builder.commit_block(&block).expect("put block commits");
        blocks.push(block);
    }
    blocks
}

/// The consumer-side cost of snapshot catch-up: verify every chunk
/// against the manifest, decode, install, replay the tail.
fn snapshot_catchup(
    net: &TestNet,
    genesis: &Block,
    snapshot: &Snapshot,
    blocks: &[Block],
) -> (Duration, Peer) {
    let identity = fabric::msp::issue_identity(
        &net.org_cas[0],
        "snap-join.org1",
        Role::Peer,
        b"cb-snap",
    );
    let t0 = Instant::now();
    let manifest = &snapshot.manifest.manifest;
    for (info, chunks) in manifest.segments.iter().zip(&snapshot.segments) {
        assert!(info.verify(chunks), "segment verifies");
    }
    let entries = decode_entries(manifest, &snapshot.segments).expect("snapshot decodes");
    let peer = Peer::join_from_snapshot(
        identity,
        genesis,
        &snapshot.manifest,
        &entries,
        Arc::new(MemBackend::new()),
        PeerConfig {
            vscc_parallelism: 2,
            runtime: fabric::chaincode::RuntimeConfig { exec_timeout: None, ..Default::default() },
            sync_writes: false,
            engine: Default::default(),
        },
    )
    .expect("snapshot install");
    peer.install_chaincode("kv", Arc::new(kv_chaincode));
    for block in blocks {
        if block.header.number >= manifest.height {
            peer.commit_block(block).expect("tail replays");
        }
    }
    (t0.elapsed(), peer)
}

fn main() {
    let smoke = std::env::var("FABRIC_BENCH_SMOKE").is_ok();
    let chain_lengths: &[usize] = if smoke { &[8, 16] } else { &[8, 16, 32, 64, 128] };

    println!(
        "== snapshot catch-up vs full replay ({} txs/block, {}-block tail) ==",
        TXS_PER_BLOCK, TAIL_BLOCKS
    );

    let net = TestNet::new(&["Org1"], ConsensusType::Solo, 1);
    let ordering =
        OrderingCluster::new(ConsensusType::Solo, net.orderers(1), vec![net.genesis.clone()])
            .expect("valid genesis");
    let genesis = ordering.deliver(&net.channel, 0).expect("genesis");

    let mut table = Table::new(&[
        "chain blocks",
        "state keys",
        "replay ms",
        "snapshot ms",
        "snapshot KiB",
        "speedup",
    ]);
    let mut crossover: Option<usize> = None;
    for &n_blocks in chain_lengths {
        let blocks = build_chain(&net, &genesis, n_blocks);
        let full_height = blocks.last().unwrap().header.number + 1;

        // Source peer replays everything and checkpoints near the tip.
        let source = make_peer(&net, &genesis, "source.org1");
        for block in &blocks {
            source.commit_block(block).expect("source commits");
        }
        let snap_height = full_height - TAIL_BLOCKS as u64;
        let snapshot = {
            let provider = make_peer(&net, &genesis, "provider.org1");
            for block in &blocks[..(snap_height - 1) as usize] {
                provider.commit_block(block).expect("provider commits");
            }
            build_snapshot(
                provider.ledger(),
                &net.channel,
                provider.identity(),
                &SnapshotConfig::default(),
            )
            .expect("snapshot builds")
        };
        let snapshot_bytes = snapshot.manifest.manifest.total_bytes();

        // Path A: full block replay from genesis.
        let replay_peer = make_peer(&net, &genesis, "replay.org1");
        let t0 = Instant::now();
        for block in &blocks {
            replay_peer.commit_block(block).expect("replay commits");
        }
        let replay = t0.elapsed();

        // Path B: verified snapshot install + tail replay.
        let (snap_time, snap_peer) = snapshot_catchup(&net, &genesis, &snapshot, &blocks);

        // Both paths end at the same chain tip and state.
        assert_eq!(snap_peer.height(), replay_peer.height());
        assert_eq!(
            snap_peer.ledger().last_hash(),
            replay_peer.ledger().last_hash()
        );
        assert_eq!(
            snap_peer.ledger().state_entries(),
            replay_peer.ledger().state_entries()
        );

        let speedup = replay.as_secs_f64() / snap_time.as_secs_f64();
        if speedup > 1.0 && crossover.is_none() {
            crossover = Some(n_blocks);
        }
        table.row(vec![
            format!("{n_blocks}"),
            format!("{}", n_blocks * TXS_PER_BLOCK),
            format!("{:.1}", replay.as_secs_f64() * 1e3),
            format!("{:.1}", snap_time.as_secs_f64() * 1e3),
            format!("{:.1}", snapshot_bytes as f64 / 1024.0),
            format!("{speedup:.2}x"),
        ]);
    }
    table.print();
    match crossover {
        Some(n) => println!(
            "\ncrossover: snapshot catch-up beats full replay from ~{n} blocks \
             (replay cost grows with chain length, snapshot cost with state size)"
        ),
        None => println!(
            "\nno crossover in this sweep: replay stayed cheaper (short chains \
             amortize nothing — expected only for tiny chains)"
        ),
    }
}
