//! Experiment 1 / **Fig. 6**: impact of block size on throughput and
//! end-to-end latency (paper Sec. 5.2).
//!
//! The paper varies the block size from 0.5 MB to 4 MB under a Fabcoin
//! spend workload and observes that throughput stops improving beyond
//! 2 MB while latency keeps growing; it adopts 2 MB for the remaining
//! experiments. This harness also reports the measured transaction sizes
//! next to the paper's (3.06 kB spend / 4.33 kB mint).

use fabric_bench::pipeline::{run_pipeline, PipelineConfig, Storage, TxKind};
use fabric_bench::stats::Table;

fn main() {
    // Keep runs short under `cargo bench` while still filling several
    // blocks at every size; override with FABRIC_BENCH_TXS.
    let n_tx: usize = std::env::var("FABRIC_BENCH_TXS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let vcpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("== Fig. 6: block size vs throughput and e2e latency (spend workload) ==");
    println!("   paper: throughput plateaus ~3500 tps at 2 MB; latency grows with size");
    println!("   ({} measured txs per point, {} VSCC workers)\n", n_tx, vcpus);

    let mut table = Table::new(&[
        "block size",
        "tps (meas)",
        "e2e avg ms (meas)",
        "txs/block",
        "blocks",
    ]);
    let mut spend_bytes = 0.0;
    for mb_x2 in [1u32, 2, 4, 8] {
        let block_bytes = mb_x2 * 512 * 1024; // 0.5, 1, 2, 4 MB
        // Throughput at saturation.
        let sat = run_pipeline(&PipelineConfig {
            n_tx,
            kind: TxKind::Spend,
            preferred_block_bytes: block_bytes,
            vscc_parallelism: vcpus,
            storage: Storage::Mem,
            paced_tps: None,
        });
        // Latency just below saturation (80% load), as the paper does.
        let paced = run_pipeline(&PipelineConfig {
            n_tx: (n_tx / 2).max(200),
            kind: TxKind::Spend,
            preferred_block_bytes: block_bytes,
            vscc_parallelism: vcpus,
            storage: Storage::Mem,
            paced_tps: Some(sat.tps * 0.8),
        });
        spend_bytes = sat.avg_tx_bytes;
        table.row(vec![
            format!("{:.1} MB", mb_x2 as f64 / 2.0),
            format!("{:.0}", sat.tps),
            format!("{:.1}", paced.e2e.avg_ms),
            format!("{:.0}", sat.txs_per_block),
            format!("{}", sat.blocks),
        ]);
    }
    table.print();

    println!("\n-- transaction sizes --");
    let mint = run_pipeline(&PipelineConfig {
        n_tx: 200,
        kind: TxKind::Mint,
        preferred_block_bytes: 2 * 1024 * 1024,
        vscc_parallelism: vcpus,
        storage: Storage::Mem,
        paced_tps: None,
    });
    println!(
        "spend: paper 3.06 kB, measured {:.2} kB; mint: paper 4.33 kB, measured {:.2} kB",
        spend_bytes / 1024.0,
        mint.avg_tx_bytes / 1024.0
    );
    println!(
        "(paper txs are larger because they carry full X.509 chains; ours carry\n compact certificates — the shape that matters is spend/mint asymmetry\n and kB-scale size, both reproduced)"
    );
}
