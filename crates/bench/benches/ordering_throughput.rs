//! Ordering-service throughput over a simulated WAN: tps as a function of
//! replication mode (lockstep vs pipelined), client submit-batch size, and
//! cluster size, for both consensus backends.
//!
//! The ordering nodes are the *real* [`fabric::ordering::OrderingNode`]s —
//! signature verification, block cutting, orderer block signatures and all —
//! driven over the discrete-event simulator from the paper's WAN
//! experiments (Sec. 5.2). OSNs are spread round robin across three data
//! centers: intra-DC links run at 0.5 ms / 1 Gbps, inter-DC links at
//! 50 ms / 54 Mbps (the paper's worst single-TCP-connection path,
//! TK <-> OS). Clients co-locate with the leader; submission transit is
//! not modeled — the bench isolates the *replication* path.
//!
//! Expected shape: lockstep replication stalls one full cross-DC round
//! trip per consensus slot, so its throughput is bounded by
//! `slots_per_RTT * submit_batch`; pipelined replication keeps
//! `max_inflight` windows on the wire and is bounded by bandwidth
//! instead. Batched submission multiplies both (one slot carries many
//! envelopes), which is why the paper runs ordering on batches of
//! transactions rather than individual ones.
//!
//! `FABRIC_BENCH_SMOKE=1` shrinks the grid to one cluster size and batch
//! point for CI. `FABRIC_BENCH_JSON=<path>` additionally writes the
//! results as JSON. Simulated time is decoupled from host speed, so the
//! tps figures are stable across machines; only the calibration-free
//! network model moves them.

use fabric::msp::SigningIdentity;
use fabric::ordering::testkit::{make_envelope, TestNet};
use fabric::ordering::{ConsensusBackend, OrderingNode, OsnConfig, OsnMessage, OsnOutput};
use fabric::pbft::{PbftConfig, PbftMessage};
use fabric::primitives::config::{BatchConfig, ConsensusType};
use fabric::primitives::rwset::TxReadWriteSet;
use fabric::primitives::transaction::Envelope;
use fabric::raft::{Message as RaftMessage, RaftConfig, ReplicationMode};
use fabric::simnet::{SimEvent, Simulator, GBPS, MBPS, MS};
use fabric_bench::stats::Table;

/// One OSN driver tick, in simulated milliseconds.
const TICK_MS: u64 = 100;
/// Intra-data-center link: 0.5 ms, 1 Gbps.
const INTRA_LAT: u64 = MS / 2;
/// Inter-data-center link: 50 ms at the paper's worst single-TCP path.
const INTER_LAT: u64 = 50 * MS;
const INTER_BW: u64 = 54 * MBPS;
/// Number of simulated data centers OSNs are spread across.
const DCS: usize = 3;

enum Ev {
    /// Advance one OSN's driver clock.
    Tick,
    /// Submit pre-built envelope batch `i` at the leader.
    Submit(usize),
    /// An OSN-to-OSN protocol message.
    Osn(OsnMessage),
}

/// Approximate wire size of an OSN message: payload bytes plus framing.
fn message_size(message: &OsnMessage) -> u64 {
    const HDR: u64 = 48;
    match message {
        OsnMessage::Raft(m) => {
            HDR + match m {
                RaftMessage::AppendEntries { entries, .. } => {
                    32 + entries
                        .iter()
                        .map(|e| 16 + e.data.len() as u64)
                        .sum::<u64>()
                }
                _ => 24,
            }
        }
        OsnMessage::Pbft(m) => {
            HDR + match m {
                PbftMessage::Request { payload } => payload.len() as u64,
                PbftMessage::PrePrepare { payload, .. } => 48 + payload.len() as u64,
                PbftMessage::Prepare { .. } | PbftMessage::Commit { .. } => 48,
                PbftMessage::ViewChange { prepared, .. } => prepared
                    .iter()
                    .map(|c| 56 + c.payload.len() as u64)
                    .sum::<u64>(),
                PbftMessage::NewView { pre_prepares, .. } => pre_prepares
                    .iter()
                    .map(|(_, p)| 8 + p.len() as u64)
                    .sum::<u64>(),
            }
        }
        OsnMessage::Forward(bytes) => HDR + bytes.len() as u64,
    }
}

struct RunResult {
    tps: f64,
    sim_secs: f64,
    blocks: u64,
    spec_hits: u64,
    spec_misses: u64,
    wire_mb: f64,
}

struct Driver {
    sim: Simulator<Ev>,
    delivered: Vec<usize>,
    blocks: Vec<u64>,
    wire_bytes: u64,
}

impl Driver {
    fn absorb(&mut self, from: usize, outputs: Vec<OsnOutput>) {
        for output in outputs {
            match output {
                OsnOutput::Send { to, message } => {
                    let size = message_size(&message);
                    self.wire_bytes += size;
                    self.sim.send(from, to as usize, size, Ev::Osn(message));
                }
                OsnOutput::BlockCut { block, .. } => {
                    self.delivered[from] += block.envelopes.len();
                    self.blocks[from] += 1;
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    net: &TestNet,
    batch: BatchConfig,
    consensus: ConsensusType,
    raft: RaftConfig,
    pbft: PbftConfig,
    n: usize,
    envelopes: &[Envelope],
    submit_batch: usize,
) -> RunResult {
    let mut genesis = net.genesis.clone();
    genesis.orderer.batch = batch;
    let identities: Vec<SigningIdentity> = net.orderers(n);
    let mut nodes: Vec<OrderingNode> = identities
        .into_iter()
        .enumerate()
        .map(|(i, identity)| {
            let backend = match consensus {
                ConsensusType::Solo => ConsensusBackend::Solo,
                ConsensusType::Raft => {
                    let peers: Vec<u64> =
                        (1..=n as u64).filter(|&p| p != i as u64 + 1).collect();
                    ConsensusBackend::Raft(fabric::raft::RaftNode::new(
                        i as u64 + 1,
                        peers,
                        raft,
                        0xfab,
                    ))
                }
                ConsensusType::Pbft => {
                    ConsensusBackend::Pbft(fabric::pbft::PbftNode::new(i as u64, n, pbft))
                }
            };
            OrderingNode::new(
                i as u64,
                identity,
                backend,
                OsnConfig::default(),
                vec![genesis.clone()],
            )
            .expect("OSN bootstraps")
        })
        .collect();

    let mut sim: Simulator<Ev> = Simulator::new(n);
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            if a % DCS == b % DCS {
                sim.set_link(a, b, INTRA_LAT, GBPS);
            } else {
                sim.set_link(a, b, INTER_LAT, INTER_BW);
            }
        }
    }
    for i in 0..n {
        sim.schedule_in(TICK_MS * MS, i, Ev::Tick);
    }

    let total = envelopes.len();
    let mut driver = Driver {
        sim,
        delivered: vec![0; n],
        blocks: vec![0; n],
        wire_bytes: 0,
    };
    let mut batches: Vec<Option<Vec<Envelope>>> = Vec::new();
    let mut leader: Option<usize> = None;
    let mut t_start = 0u64;
    let t_done;

    loop {
        let (now, event) = driver.sim.next().expect("ticks keep the queue alive");
        assert!(
            now < 3_600_000 * MS,
            "ordering bench did not converge within an hour of simulated time"
        );
        match event {
            SimEvent::Message {
                from,
                to,
                msg: Ev::Osn(message),
            } => {
                let outputs = nodes[to].step(from as u64, message);
                driver.absorb(to, outputs);
            }
            SimEvent::Timer { node, msg: Ev::Tick } => {
                let outputs = nodes[node].tick();
                driver.absorb(node, outputs);
                driver.sim.schedule_in(TICK_MS * MS, node, Ev::Tick);
            }
            SimEvent::Timer {
                node,
                msg: Ev::Submit(i),
            } => {
                let envs = batches[i].take().expect("each batch submits once");
                let (verdicts, outputs) = nodes[node].broadcast_batch(envs);
                for verdict in verdicts {
                    verdict.expect("pre-verified envelope accepted");
                }
                driver.absorb(node, outputs);
            }
            _ => unreachable!("tick/submit payloads only arrive as timers"),
        }
        // Once consensus has a leader, mount the client load next to it:
        // every `submit_batch` envelopes become one broadcast_batch call,
        // spaced 1 ms apart (offered load far above the service rate).
        if leader.is_none() {
            if let Some(l) = nodes
                .iter()
                .position(|node| node.consensus_leader() == Some(node.id()))
            {
                leader = Some(l);
                t_start = driver.sim.now();
                for (i, chunk) in envelopes.chunks(submit_batch.max(1)).enumerate() {
                    batches.push(Some(chunk.to_vec()));
                    driver.sim.schedule_in(1 + i as u64 * MS, l, Ev::Submit(i));
                }
            }
        }
        // Throughput is measured at the leader: the run ends when the
        // leader's chain holds every envelope (followers trail by one
        // commit-index propagation, identically in every configuration).
        if let Some(l) = leader {
            if driver.delivered[l] >= total {
                t_done = now;
                break;
            }
        }
    }

    let leader = leader.expect("a leader was elected");
    let sim_secs = (t_done - t_start) as f64 / 1e9;
    let (spec_hits, spec_misses) = nodes[leader].spec_stats();
    RunResult {
        tps: total as f64 / sim_secs,
        sim_secs,
        blocks: driver.blocks[leader],
        spec_hits,
        spec_misses,
        wire_mb: driver.wire_bytes as f64 / (1024.0 * 1024.0),
    }
}

fn nonce(i: u64) -> [u8; 32] {
    let mut n = [0u8; 32];
    n[..8].copy_from_slice(&i.to_le_bytes());
    n
}

fn main() {
    let smoke = std::env::var("FABRIC_BENCH_SMOKE").is_ok();
    let n_env: usize = std::env::var("FABRIC_BENCH_TXS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 160 } else { 480 });
    let batch = BatchConfig {
        max_message_count: 40,
        absolute_max_bytes: 10 << 20,
        preferred_max_bytes: 2 << 20,
        batch_timeout_ms: 500,
    };
    let cluster_sizes: &[usize] = if smoke { &[3] } else { &[3, 5, 7] };
    let submit_batches: &[usize] = if smoke { &[16] } else { &[1, 16, 64] };

    println!("== Ordering throughput over a simulated WAN ==");
    println!(
        "   ({n_env} envelopes; OSNs round robin over {DCS} DCs; intra 0.5ms/1Gbps, \
         inter 50ms/54Mbps;"
    );
    println!(
        "   blocks cut at {} messages or {} ms; real OSNs, simulated clock)\n",
        batch.max_message_count, batch.batch_timeout_ms
    );

    let mut table = Table::new(&[
        "consensus",
        "osns",
        "replication",
        "submit batch",
        "tps",
        "sim s",
        "blocks",
        "spec hit",
        "wire MB",
    ]);
    let mut json_points = Vec::new();
    let mut record = |table: &mut Table,
                      consensus: &str,
                      n: usize,
                      mode: &str,
                      k: usize,
                      r: &RunResult| {
        let spec = if r.spec_hits + r.spec_misses > 0 {
            format!("{}/{}", r.spec_hits, r.spec_hits + r.spec_misses)
        } else {
            "-".into()
        };
        table.row(vec![
            consensus.into(),
            format!("{n}"),
            mode.into(),
            format!("{k}"),
            format!("{:.0}", r.tps),
            format!("{:.2}", r.sim_secs),
            format!("{}", r.blocks),
            spec,
            format!("{:.2}", r.wire_mb),
        ]);
        json_points.push(format!(
            "{{\"consensus\":\"{consensus}\",\"osns\":{n},\"mode\":\"{mode}\",\
             \"submit_batch\":{k},\"tps\":{:.1},\"sim_seconds\":{:.3},\"blocks\":{},\
             \"spec_hits\":{},\"spec_misses\":{},\"wire_mb\":{:.2}}}",
            r.tps, r.sim_secs, r.blocks, r.spec_hits, r.spec_misses, r.wire_mb
        ));
    };

    // Raft grid: cluster size x replication mode x submit batch.
    for &n in cluster_sizes {
        let net = TestNet::with_batch(&["Org1"], ConsensusType::Raft, n, batch);
        let client = net.client(0, "c1");
        let envelopes: Vec<Envelope> = (0..n_env as u64)
            .map(|i| make_envelope(&client, &net.channel, nonce(i), TxReadWriteSet::default()))
            .collect();
        for &k in submit_batches {
            let mut results = Vec::new();
            for (mode, mode_name) in [
                (ReplicationMode::Lockstep, "lockstep"),
                (ReplicationMode::Pipelined, "pipelined"),
            ] {
                // Cap entries per AppendEntries to a realistic WAN message
                // budget (identically in both modes): this is what makes
                // the serialization cost of lockstep visible — one bounded
                // message per cross-DC round trip versus a full window.
                let raft = RaftConfig {
                    mode,
                    max_batch: 4,
                    ..RaftConfig::default()
                };
                let r = run(
                    &net,
                    batch,
                    ConsensusType::Raft,
                    raft,
                    PbftConfig::default(),
                    n,
                    &envelopes,
                    k,
                );
                record(&mut table, "raft", n, mode_name, k, &r);
                results.push(r.tps);
            }
            assert!(
                results[1] > results[0],
                "pipelined ({:.0} tps) must beat lockstep ({:.0} tps) on the WAN \
                 (n={n}, submit_batch={k})",
                results[1],
                results[0]
            );
        }
    }

    // PBFT point: 4 replicas, conservative (one pre-prepare at a time,
    // one payload per batch) vs the batched, windowed default.
    {
        let n = 4;
        let net = TestNet::with_batch(&["Org1"], ConsensusType::Pbft, n, batch);
        let client = net.client(0, "c1");
        let envelopes: Vec<Envelope> = (0..n_env as u64)
            .map(|i| make_envelope(&client, &net.channel, nonce(i), TxReadWriteSet::default()))
            .collect();
        let k = if smoke { 16 } else { 64 };
        let conservative = PbftConfig {
            max_batch: 1,
            max_inflight: 1,
            ..PbftConfig::default()
        };
        let mut results = Vec::new();
        for (pbft, mode_name) in [(conservative, "lockstep"), (PbftConfig::default(), "pipelined")]
        {
            let r = run(
                &net,
                batch,
                ConsensusType::Pbft,
                RaftConfig::default(),
                pbft,
                n,
                &envelopes,
                k,
            );
            record(&mut table, "pbft", n, mode_name, k, &r);
            results.push(r.tps);
        }
        assert!(
            results[1] > results[0],
            "batched, windowed PBFT must beat one-at-a-time pre-prepares"
        );
    }

    table.print();
    println!("\nexpected: lockstep stalls one cross-DC round trip per consensus slot, so");
    println!("its tps tracks submit-batch size times slots-per-RTT; pipelined replication");
    println!("keeps the in-flight window full and is bandwidth-bound instead. The spec");
    println!("column shows leader-side speculative block signatures (hits/total).");

    if let Ok(path) = std::env::var("FABRIC_BENCH_JSON") {
        let json = format!(
            "{{\"bench\":\"ordering_throughput\",\"n_envelopes\":{n_env},\
             \"topology\":{{\"dcs\":{DCS},\"intra_ms\":0.5,\"inter_ms\":50,\
             \"inter_mbps\":54}},\"block_cut\":{{\"max_messages\":{},\"timeout_ms\":{}}},\
             \"points\":[{}]}}\n",
            batch.max_message_count,
            batch.batch_timeout_ms,
            json_points.join(",")
        );
        std::fs::write(&path, json).expect("write bench JSON");
        println!("\nwrote {path}");
    }
}
