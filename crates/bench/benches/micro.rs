//! Criterion microbenchmarks: the primitive operation costs underneath
//! the paper-level experiments (not in the paper; used for calibration
//! sanity and performance regression tracking).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fabric::crypto::{digest, SigningKey};
use fabric::kvstore::{KvStore, StoreConfig, WriteBatch};
use fabric::policy::{PolicyExpr, Signer};
use fabric::primitives::wire::Wire;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data = vec![0xabu8; 1024];
    group.bench_function("sha256_1k", |b| b.iter(|| digest(black_box(&data))));

    let key = SigningKey::from_seed(b"bench");
    group.bench_function("ecdsa_sign", |b| {
        b.iter(|| key.sign(black_box(b"benchmark message")))
    });

    let sig = key.sign(b"benchmark message");
    group.bench_function("ecdsa_verify", |b| {
        b.iter(|| {
            key.verifying_key()
                .verify(black_box(b"benchmark message"), &sig)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<Vec<u8>> = (0..670).map(|i: u32| i.to_le_bytes().to_vec()).collect();
    c.bench_function("merkle_root_670", |b| {
        b.iter(|| fabric::crypto::merkle::root(black_box(&leaves)))
    });
}

fn bench_kvstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvstore");
    let store = KvStore::open(StoreConfig::in_memory()).unwrap();
    for i in 0..10_000u32 {
        store.put(i.to_le_bytes().to_vec(), vec![0u8; 64]).unwrap();
    }
    group.bench_function("get_hit", |b| {
        b.iter(|| store.get(black_box(&42u32.to_le_bytes())))
    });
    group.bench_function("batch_put_100", |b| {
        let mut n = 0u32;
        b.iter(|| {
            let mut batch = WriteBatch::new();
            for i in 0..100u32 {
                n = n.wrapping_add(1);
                batch.put((1_000_000 + n + i).to_le_bytes().to_vec(), vec![0u8; 64]);
            }
            store.write(batch).unwrap()
        })
    });
    group.bench_function("scan_100", |b| {
        b.iter(|| store.scan(black_box(&100u32.to_le_bytes()), &200u32.to_le_bytes()))
    });
    group.finish();
}

fn bench_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy");
    let text = "OutOf(3, Org1MSP, Org2MSP, Org3MSP, Org4MSP, Org5MSP)";
    group.bench_function("parse", |b| b.iter(|| PolicyExpr::parse(black_box(text))));
    let policy = PolicyExpr::parse(text).unwrap();
    let signers: Vec<Signer> = (1..=3)
        .map(|i| Signer {
            msp_id: format!("Org{i}MSP"),
            role: "peer".into(),
        })
        .collect();
    group.bench_function("evaluate_3_of_5", |b| {
        b.iter(|| policy.is_satisfied(black_box(&signers)).unwrap())
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    use fabric::primitives::ids::{ChaincodeId, ChannelId, SerializedIdentity, TxId};
    use fabric::primitives::rwset::{KeyWrite, NsReadWriteSet, TxReadWriteSet};
    use fabric::primitives::transaction::*;
    let creator = SerializedIdentity::new("Org1MSP", vec![0xaa; 400]);
    let tx = Transaction {
        channel: ChannelId::new("ch"),
        creator: creator.clone(),
        nonce: [7; 32],
        proposal_payload: ProposalPayload {
            chaincode: ChaincodeId::new("fabcoin", "1.0"),
            function: "spend".into(),
            args: vec![vec![0u8; 300]],
        },
        response_payload: ProposalResponsePayload {
            tx_id: TxId::derive(b"c", &[7; 32]),
            chaincode: ChaincodeId::new("fabcoin", "1.0"),
            rwset: TxReadWriteSet::single(NsReadWriteSet {
                namespace: "fabcoin".into(),
                reads: vec![],
                range_queries: vec![],
                writes: vec![KeyWrite {
                    key: "k".into(),
                    value: Some(vec![0u8; 100]),
                }],
            }),
            response: ChaincodeResponse::ok(vec![]),
        },
        endorsements: vec![Endorsement {
            endorser: creator,
            signature: vec![0x55; 64],
        }],
    };
    let bytes = tx.to_wire();
    let mut group = c.benchmark_group("wire");
    group.bench_function("encode_tx", |b| b.iter(|| black_box(&tx).to_wire()));
    group.bench_function("decode_tx", |b| {
        b.iter(|| Transaction::from_wire(black_box(&bytes)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_crypto, bench_merkle, bench_kvstore, bench_policy, bench_wire
}
criterion_main!(benches);
