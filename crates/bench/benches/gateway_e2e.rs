//! The standing gateway macro-bench: a closed-loop million-account
//! Fabcoin workload driven through the full path — client → endorse
//! front → endorsement pipeline → ordering gateway mempool → ordering →
//! deliver-mux commit — with and without admission control, at and
//! beyond the sustainable intake rate.
//!
//! The gateway's dispatch capacity is fixed by `drain_max` per pump step
//! (one step = `STEP_MS` simulated milliseconds), so the sustainable
//! ceiling is known exactly and "2x overload" means offered transfer
//! load at twice that. Four scenarios:
//!
//! * **ceiling** — gateway, offered load exactly at capacity: the
//!   unloaded throughput/latency reference.
//! * **gw-2x** — gateway, transfer-heavy 2x overload: the bounded
//!   mempool sheds the excess (`FeeTooLow` at uniform fees), so the
//!   queue — and with it commit latency — stays capped while dispatch
//!   runs at full capacity.
//! * **gw-2x-read** — the same 2x transfer overload plus a heavy
//!   balance-query stream: reads ride the endorse front only and must
//!   keep being served while the write path sheds.
//! * **baseline-2x** — no admission control (an effectively unbounded
//!   mempool, nothing shed): every submission queues, the backlog grows
//!   to the whole circulating coin supply, and commit latency degrades
//!   to queue-depth ÷ drain-rate.
//!
//! Every transfer is conserved end to end: after each scenario settles,
//! the state database must hold exactly the minted value.
//!
//! `FABRIC_BENCH_SMOKE=1` shrinks the run for CI.
//! `FABRIC_BENCH_JSON=<path>` writes the results as JSON. All latencies
//! are simulated-clock milliseconds; results are host-independent.

use fabric::client::RetryPolicy;
use fabric::fabcoin::{GatewayWorkload, WorkloadConfig};
use fabric::gateway::GatewayConfig;
use fabric::peer::EndorseOptions;
use fabric_bench::stats::{LatencyStats, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated milliseconds per pump step.
const STEP_MS: u64 = 10;

struct Scale {
    accounts: u64,
    funded: u64,
    steps: u64,
    /// Dispatch capacity per step (the gateway's `drain_max`).
    drain_max: usize,
    /// Gateway mempool bound (the latency cap under overload).
    mempool: usize,
}

struct Scenario {
    name: &'static str,
    /// Transfer attempts per step.
    offered: usize,
    /// Balance queries per step.
    queries: usize,
    /// Admission control on (gateway) or off (baseline).
    gated: bool,
}

struct Outcome {
    name: &'static str,
    offered_per_s: f64,
    tput_per_s: f64,
    committed: u64,
    shed: u64,
    no_coin: u64,
    queries: u64,
    p50_ms: f64,
    stats: LatencyStats,
    peak_mempool: usize,
}

fn p50(samples: &[u64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s: Vec<u64> = samples.to_vec();
    s.sort_unstable();
    s[s.len() / 2] as f64
}

fn run(scale: &Scale, scenario: &Scenario) -> Outcome {
    let coin_amount = 100u64;
    let gateway = if scenario.gated {
        GatewayConfig {
            mempool_capacity: scale.mempool,
            drain_max: scale.drain_max,
            dedup_capacity: scale.mempool * 4,
            retry_after_ms: STEP_MS,
            ..GatewayConfig::default()
        }
    } else {
        // "No gateway": same dispatch capacity, but admission never says
        // no — the mempool is effectively unbounded, nothing is shed.
        GatewayConfig {
            mempool_capacity: 1 << 20,
            drain_max: scale.drain_max,
            dedup_capacity: scale.mempool * 4,
            retry_after_ms: STEP_MS,
            ..GatewayConfig::default()
        }
    };
    let mut workload = GatewayWorkload::new(WorkloadConfig {
        accounts: scale.accounts,
        funded: scale.funded,
        coin_amount,
        endorse: EndorseOptions { workers: 4, ..EndorseOptions::default() },
        // The step loop IS the retry loop (a shed coin re-enters the
        // closed loop next step), so a single attempt per submission
        // keeps the offered rate exact.
        retry: RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
        gateway,
        ..WorkloadConfig::default()
    });
    let minted = scale.funded * coin_amount;
    assert_eq!(workload.total_on_ledger(), minted, "funding committed");

    let mut rng = StdRng::seed_from_u64(0x6a7e_0000 ^ scenario.offered as u64);
    let start_ms = workload.clock.now_ms();
    let mut peak_mempool = 0usize;
    for step in 0..scale.steps {
        workload.clock.advance(STEP_MS);
        for _ in 0..scenario.offered {
            // Uniform fees: under overflow the newcomer never beats the
            // victim, so the bounded mempool sheds instead of churning.
            let _ = workload.transfer(rng.gen::<f64>(), rng.gen::<f64>(), 1);
        }
        for _ in 0..scenario.queries {
            let _ = workload.query_balance(rng.gen::<f64>());
        }
        // Exactly one pump per step: `drain_max` per step IS the
        // dispatch ceiling. Commit capacity is not the variable under
        // test, so the committer catches up inside the step and credits
        // never starve either configuration.
        workload.pump();
        let height = workload.ordering.height(&workload.net.channel);
        workload
            .mux
            .wait_committed(&workload.net.channel, height)
            .expect("commit path alive");
        workload.collect_events();
        peak_mempool = peak_mempool.max(workload.gateway.mempool_len());
        if step == scale.steps / 4 {
            // Past warm-up the queue must have reached steady state.
            assert!(
                workload.gateway.mempool_len() <= workload.gateway.config().mempool_capacity,
                "mempool bound holds"
            );
        }
    }
    let window_ms = workload.clock.now_ms() - start_ms;
    let stats = workload.stats().clone();
    let samples_ms: Vec<f64> = stats.latencies_ms.iter().map(|&l| l as f64).collect();

    // Drain the tail so conservation can be checked against the ledger.
    assert!(workload.settle(100_000), "scenario settles completely");
    assert_eq!(workload.total_on_ledger(), minted, "coin conservation");
    assert_eq!(workload.inflight_len(), 0);
    let gstats = workload.gateway.stats();
    assert_eq!(gstats.broadcast_rejected, 0, "ordering accepted every dispatch");
    assert_eq!(gstats.evicted, 0, "uniform fees never evict");

    let outcome = Outcome {
        name: scenario.name,
        offered_per_s: scenario.offered as f64 * 1000.0 / STEP_MS as f64,
        tput_per_s: stats.committed as f64 * 1000.0 / window_ms as f64,
        committed: stats.committed,
        shed: stats.shed_order + stats.shed_endorse,
        no_coin: stats.no_coin,
        queries: stats.queries,
        p50_ms: p50(&stats.latencies_ms),
        stats: LatencyStats::from_ms(&samples_ms),
        peak_mempool,
    };
    workload.shutdown();
    outcome
}

fn main() {
    let smoke = std::env::var("FABRIC_BENCH_SMOKE").is_ok();
    let scale = if smoke {
        Scale { accounts: 10_000, funded: 768, steps: 100, drain_max: 16, mempool: 128 }
    } else {
        Scale { accounts: 1_000_000, funded: 2048, steps: 300, drain_max: 32, mempool: 256 }
    };
    let cap = scale.drain_max;
    let scenarios = [
        Scenario { name: "ceiling", offered: cap, queries: cap / 8, gated: true },
        Scenario { name: "gw-2x", offered: cap * 2, queries: cap / 8, gated: true },
        Scenario { name: "gw-2x-read", offered: cap * 2, queries: cap, gated: true },
        Scenario { name: "baseline-2x", offered: cap * 2, queries: cap / 8, gated: false },
    ];

    println!(
        "gateway end-to-end: {} accounts ({} funded), {} tx/s dispatch capacity, \
         mempool bound {}, {} steps of {} ms\n",
        scale.accounts,
        scale.funded,
        cap as u64 * 1000 / STEP_MS,
        scale.mempool,
        scale.steps,
        STEP_MS,
    );

    let mut table = Table::new(&[
        "scenario", "offered/s", "tput/s", "committed", "shed", "queries", "p50 ms", "p99 ms",
        "peak queue",
    ]);
    let mut json_points = Vec::new();
    let mut outcomes = Vec::new();
    for scenario in &scenarios {
        let o = run(&scale, scenario);
        table.row(vec![
            o.name.to_string(),
            format!("{:.0}", o.offered_per_s),
            format!("{:.0}", o.tput_per_s),
            o.committed.to_string(),
            o.shed.to_string(),
            o.queries.to_string(),
            format!("{:.1}", o.p50_ms),
            format!("{:.1}", o.stats.p99_ms),
            o.peak_mempool.to_string(),
        ]);
        json_points.push(format!(
            "{{\"scenario\":\"{}\",\"offered_per_s\":{:.0},\"tput_per_s\":{:.1},\
             \"committed\":{},\"shed\":{},\"no_coin\":{},\"queries\":{},\
             \"p50_ms\":{:.2},\"p99_ms\":{:.2},\"avg_ms\":{:.2},\"peak_queue\":{}}}",
            o.name,
            o.offered_per_s,
            o.tput_per_s,
            o.committed,
            o.shed,
            o.no_coin,
            o.queries,
            o.p50_ms,
            o.stats.p99_ms,
            o.stats.avg_ms,
            o.peak_mempool,
        ));
        outcomes.push(o);
    }
    table.print();

    let ceiling = &outcomes[0];
    let gw2x = &outcomes[1];
    let read2x = &outcomes[2];
    let baseline = &outcomes[3];
    // The acceptance bar: under 2x overload the gateway holds throughput
    // within 10% of the unloaded ceiling…
    assert!(
        gw2x.tput_per_s >= 0.9 * ceiling.tput_per_s,
        "gateway at 2x must stay within 10% of the ceiling \
         ({:.0}/s vs {:.0}/s)",
        gw2x.tput_per_s,
        ceiling.tput_per_s,
    );
    // …and commit p99 stays bounded by the mempool cap over the drain
    // rate (plus batching slack), while the baseline's queue — and so its
    // p99 — grows past any such bound.
    let drain_per_ms = scale.drain_max as f64 / STEP_MS as f64;
    let bound_ms = 2.0 * scale.mempool as f64 / drain_per_ms + 20.0 * STEP_MS as f64;
    assert!(
        gw2x.stats.p99_ms <= bound_ms,
        "gateway p99 {:.0} ms exceeds the queue-bound cap {bound_ms:.0} ms",
        gw2x.stats.p99_ms,
    );
    assert!(
        baseline.stats.p99_ms >= 2.5 * gw2x.stats.p99_ms,
        "the unbounded baseline must degrade vs the gateway \
         (baseline p99 {:.0} ms vs gateway p99 {:.0} ms)",
        baseline.stats.p99_ms,
        gw2x.stats.p99_ms,
    );
    assert!(
        read2x.queries > 0 && read2x.tput_per_s >= 0.9 * ceiling.tput_per_s,
        "the read-heavy mix must keep serving both paths"
    );

    println!("\nexpected: the bounded mempool turns a 2x overload into shed submissions");
    println!("(explicit RetryAfter back to the closed loop) while dispatch runs at the");
    println!("ceiling, so committed-tx p99 is capped by queue-bound/drain-rate; the");
    println!("no-admission baseline queues the entire coin supply and its p99 grows to");
    println!("backlog/drain-rate — an order of magnitude past the gateway's cap.");

    if let Ok(path) = std::env::var("FABRIC_BENCH_JSON") {
        let json = format!(
            "{{\"bench\":\"gateway_e2e\",\"accounts\":{},\"funded\":{},\"steps\":{},\
             \"step_ms\":{STEP_MS},\"drain_max\":{},\"mempool\":{},\
             \"points\":[{}]}}\n",
            scale.accounts,
            scale.funded,
            scale.steps,
            scale.drain_max,
            scale.mempool,
            json_points.join(",")
        );
        std::fs::write(&path, json).expect("write bench JSON");
        println!("\nwrote {path}");
    }
}
