//! Gossip dissemination at internet scale: priority lanes vs flat.
//!
//! A steady overlay (orgs of 10, one leader each, every NIC capped at
//! 100 Mbps) disseminates a stream of blocks while a tenth of the peers
//! continuously draw bulk snapshot traffic from the org leaders — the
//! worst case for block propagation, because the leaders are both the
//! block injection points and the snapshot providers.
//!
//! Two dissemination modes are compared:
//!
//! * **priority** — the gossip layer's two-class scheme: blocks and
//!   membership ride the fast lane; bulk statesync drains through the
//!   budgeted bulk lane (`bulk_budget_per_tick`) behind them, and the
//!   bulk queue is bounded (drop-oldest beyond `bulk_queue_limit`).
//! * **flat** — no differentiation: the bulk lane budget and queue bound
//!   are unlimited, so every snapshot chunk goes straight to the NIC.
//!   Demand is ~2x NIC capacity, so the leaders' egress queues grow
//!   without bound and every block push behind them arrives late.
//!
//! Reported per (peers, mode): dissemination latency p50/p99 across all
//! `(block, node)` deliveries, converged node count, fast-path wire
//! bytes per delivered block, and bulk megabytes delivered vs dropped.
//!
//! `FABRIC_BENCH_SMOKE=1` shrinks to one small overlay for CI.
//! `FABRIC_BENCH_JSON=<path>` writes the results as JSON. All timing is
//! simulated; results are host-independent.

use fabric::gossip::{GossipConfig, GossipMessage, GossipNode, GossipOutput, PeerId};
use fabric::primitives::ids::ChannelId;
use fabric::simnet::{SimEvent, Simulator, MBPS, MS};
use fabric_bench::stats::{LatencyStats, Table};

/// One gossip tick of simulated time.
const TICK: u64 = 50 * MS;
/// The ordering service cuts one block every this many ticks.
const BLOCK_EVERY: u64 = 2;
/// Serialized block size.
const BLOCK_BYTES: usize = 4096;
/// One bulk snapshot chunk (rides the bulk lane).
const SNAP_BYTES: usize = 512 * 1024;
/// A sync client requests one chunk every this many ticks.
const SNAP_EVERY: u64 = 2;
/// Minimum number of sync clients (keeps per-provider bulk demand above
/// NIC capacity even on small smoke overlays).
const MIN_CLIENTS: usize = 50;
/// Every peer NIC: 100 Mbps (internet-scale links, not a data center).
const NIC_BPS: u64 = 100 * MBPS;
/// Orgs; ids `0..ORGS` are seeds/leaders/snapshot providers.
const ORGS: usize = 10;

#[derive(Clone, Debug)]
enum Wire {
    Gossip(GossipMessage),
    /// A sync client asking a provider for one snapshot chunk.
    SnapRequest,
    Tick,
}

fn org_of(id: usize) -> String {
    format!("org{}", id % ORGS)
}

fn block_payload(block_num: u64) -> Vec<u8> {
    let mut payload = vec![0u8; BLOCK_BYTES];
    payload[..8].copy_from_slice(&block_num.to_le_bytes());
    payload
}

/// Approximate wire size of a control message (sent latency-only, but
/// accounted in the byte totals).
fn control_size(message: &GossipMessage) -> u64 {
    match message {
        GossipMessage::Membership { alive } => 48 + 96 * alive.len() as u64,
        _ => 64,
    }
}

struct RunResult {
    samples_ms: Vec<f64>,
    delivered: u64,
    converged: usize,
    fast_bytes: u64,
    bulk_delivered: u64,
    bulk_dropped: u64,
}

struct Run {
    sim: Simulator<Wire>,
    nodes: Vec<GossipNode>,
    channel: ChannelId,
    chain_height: u64,
    /// Simulated time each block first entered the overlay (at a leader).
    injected: Vec<Option<u64>>,
    samples_ms: Vec<f64>,
    delivered: u64,
    fast_bytes: u64,
    bulk_delivered: u64,
}

impl Run {
    fn new(n: usize, chain_height: u64, flat: bool) -> Run {
        let config = GossipConfig {
            bulk_budget_per_tick: if flat { usize::MAX } else { 256 * 1024 },
            bulk_queue_limit: if flat { usize::MAX } else { 4 * 1024 * 1024 },
            max_adverts: 16,
            ..GossipConfig::default()
        };
        let bootstrap: Vec<(PeerId, String)> =
            (0..ORGS).map(|s| (s as PeerId, org_of(s))).collect();
        let mut sim = Simulator::new(n);
        for id in 0..n {
            sim.set_egress(id, NIC_BPS);
            sim.schedule((id as u64 % 50) * (TICK / 50), id, Wire::Tick);
        }
        Run {
            sim,
            nodes: (0..n)
                .map(|id| {
                    GossipNode::new(
                        id as PeerId,
                        org_of(id),
                        &bootstrap,
                        vec![ChannelId::new("bench")],
                        config.clone(),
                        0xBEEF ^ id as u64,
                    )
                })
                .collect(),
            channel: ChannelId::new("bench"),
            chain_height,
            injected: vec![None; chain_height as usize + 1],
            samples_ms: Vec::new(),
            delivered: 0,
            fast_bytes: 0,
            bulk_delivered: 0,
        }
    }

    fn process(&mut self, node: usize, outputs: Vec<GossipOutput>) {
        let mut work: Vec<(usize, GossipOutput)> =
            outputs.into_iter().map(|o| (node, o)).collect();
        while !work.is_empty() {
            let batch: Vec<(usize, GossipOutput)> = std::mem::take(&mut work);
            for (at, output) in batch {
                match output {
                    GossipOutput::Send { to, message } => match &message {
                        GossipMessage::BlockPush { payload, .. }
                        | GossipMessage::StateSync { payload, .. } => {
                            let bulk = matches!(&message, GossipMessage::StateSync { .. });
                            let size = payload.len() as u64 + 64;
                            if !bulk {
                                self.fast_bytes += size;
                            }
                            self.sim.send(at, to as usize, size, Wire::Gossip(message));
                        }
                        _ => {
                            self.fast_bytes += control_size(&message);
                            self.sim.send_control(at, to as usize, Wire::Gossip(message));
                        }
                    },
                    GossipOutput::DeliverBlock {
                        block_num, from, ..
                    } => {
                        if let Some(provider) = from {
                            self.nodes[at].report_verdict(provider, true);
                        }
                        self.delivered += 1;
                        if let Some(Some(injected)) = self.injected.get(block_num as usize) {
                            let lat = self.sim.now().saturating_sub(*injected);
                            self.samples_ms.push(lat as f64 / MS as f64);
                        }
                    }
                    GossipOutput::PullFromOrderer { next, .. } => {
                        let tip =
                            (self.sim.now() / (BLOCK_EVERY * TICK)).min(self.chain_height);
                        let channel = self.channel.clone();
                        for num in next..=tip.min(next.saturating_add(3)) {
                            self.injected[num as usize].get_or_insert(self.sim.now());
                            let outs = self.nodes[at].on_block_from_orderer(
                                &channel,
                                num,
                                block_payload(num),
                            );
                            work.extend(outs.into_iter().map(|o| (at, o)));
                        }
                    }
                    GossipOutput::DeliverStateSync { payload, .. } => {
                        self.bulk_delivered += payload.len() as u64;
                    }
                    // No node falls behind the snapshot-flip threshold in
                    // this steady-state load.
                    GossipOutput::SnapshotCatchup { .. } => {}
                }
            }
        }
    }

    fn run(mut self, end_tick: u64) -> RunResult {
        let n = self.nodes.len();
        // The last tenth of the overlay (at least MIN_CLIENTS) draws bulk
        // snapshot chunks from the leaders for the whole run.
        let first_client = n - (n / 10).max(MIN_CLIENTS).min(n - ORGS);
        let deadline = end_tick * TICK;
        while let Some((now, event)) = self.sim.next() {
            if now > deadline {
                break;
            }
            match event {
                SimEvent::Timer { node, .. } => {
                    self.sim.schedule_in(TICK, node, Wire::Tick);
                    let tick = now / TICK;
                    if tick >= 2
                        && (tick + node as u64).is_multiple_of(SNAP_EVERY)
                        && node >= first_client
                    {
                        let provider = node % ORGS;
                        self.sim.send_control(node, provider, Wire::SnapRequest);
                    }
                    let outs = self.nodes[node].tick();
                    self.process(node, outs);
                }
                SimEvent::Message { from, to, msg } => match msg {
                    Wire::Gossip(message) => {
                        let outs = self.nodes[to].step(from as PeerId, message);
                        self.process(to, outs);
                    }
                    Wire::SnapRequest => {
                        let channel = self.channel.clone();
                        self.nodes[to].send_state_sync(
                            from as PeerId,
                            channel,
                            vec![0u8; SNAP_BYTES],
                        );
                    }
                    Wire::Tick => unreachable!("ticks are timers"),
                },
            }
        }
        let channel = self.channel.clone();
        let converged = self
            .nodes
            .iter()
            .filter(|node| node.delivered_height(&channel) == self.chain_height)
            .count();
        let bulk_dropped = self.nodes.iter().map(|n| n.stats().bulk_dropped).sum();
        let quarantines: u64 = self.nodes.iter().map(|n| n.stats().quarantines).sum();
        assert_eq!(quarantines, 0, "honest run must not quarantine");
        RunResult {
            samples_ms: self.samples_ms,
            delivered: self.delivered,
            converged,
            fast_bytes: self.fast_bytes,
            bulk_delivered: self.bulk_delivered,
            bulk_dropped,
        }
    }
}

fn main() {
    let smoke = std::env::var("FABRIC_BENCH_SMOKE").is_ok();
    let (sizes, chain_height): (&[usize], u64) =
        if smoke { (&[120], 20) } else { (&[250, 1000], 60) };
    let end_tick = chain_height * BLOCK_EVERY + 40;

    println!(
        "gossip dissemination under bulk load: {} blocks of {} KiB, {} KiB snapshot \
         chunks every {} ticks to 10% of peers, {} Mbps NICs\n",
        chain_height,
        BLOCK_BYTES / 1024,
        SNAP_BYTES / 1024,
        SNAP_EVERY,
        NIC_BPS / MBPS,
    );

    let mut table = Table::new(&[
        "peers", "mode", "p50 ms", "p99 ms", "converged", "KB/block", "bulk MB", "dropped",
    ]);
    let mut json_points = Vec::new();
    for &n in sizes {
        let mut p99 = [0f64; 2];
        let mut converged_priority = 0;
        for (i, (mode, flat)) in [("priority", false), ("flat", true)].iter().enumerate() {
            let result = Run::new(n, chain_height, *flat).run(end_tick);
            if !*flat {
                converged_priority = result.converged;
            }
            let stats = LatencyStats::from_ms(&result.samples_ms);
            let p50 = {
                let mut s = result.samples_ms.clone();
                s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
                if s.is_empty() { 0.0 } else { s[s.len() / 2] }
            };
            p99[i] = stats.p99_ms;
            let kb_per_block = result.fast_bytes as f64 / 1024.0 / result.delivered.max(1) as f64;
            table.row(vec![
                n.to_string(),
                mode.to_string(),
                format!("{p50:.1}"),
                format!("{:.1}", stats.p99_ms),
                format!("{}/{n}", result.converged),
                format!("{kb_per_block:.1}"),
                format!("{:.1}", result.bulk_delivered as f64 / (1024.0 * 1024.0)),
                result.bulk_dropped.to_string(),
            ]);
            json_points.push(format!(
                "{{\"peers\":{n},\"mode\":\"{mode}\",\"p50_ms\":{p50:.2},\
                 \"p99_ms\":{:.2},\"avg_ms\":{:.2},\"delivered\":{},\"converged\":{},\
                 \"fast_kb_per_block\":{kb_per_block:.2},\"bulk_mb\":{:.2},\
                 \"bulk_dropped\":{}}}",
                stats.p99_ms,
                stats.avg_ms,
                result.delivered,
                result.converged,
                result.bulk_delivered as f64 / (1024.0 * 1024.0),
                result.bulk_dropped,
            ));
        }
        assert!(
            p99[0] < p99[1],
            "priority lanes must beat flat dissemination under bulk load \
             (priority p99 {:.1} ms vs flat p99 {:.1} ms at {n} peers)",
            p99[0],
            p99[1],
        );
        assert_eq!(
            converged_priority, n,
            "the priority run must fully converge despite the bulk load"
        );
    }

    table.print();
    println!("\nexpected: with flat dissemination the snapshot chunks (~2x NIC demand at");
    println!("the leaders) queue ahead of block pushes on the leader NICs, so tail");
    println!("latency explodes and stragglers miss convergence; the priority lanes cap");
    println!("bulk egress per tick and drop-oldest beyond the queue bound, keeping the");
    println!("fast path flat-latency at the cost of slower (but bounded) bulk transfer.");

    if let Ok(path) = std::env::var("FABRIC_BENCH_JSON") {
        let json = format!(
            "{{\"bench\":\"gossip_scale\",\"tick_ms\":{},\"blocks\":{chain_height},\
             \"block_bytes\":{BLOCK_BYTES},\"snap_chunk_bytes\":{SNAP_BYTES},\
             \"snap_every_ticks\":{SNAP_EVERY},\"nic_mbps\":{},\"orgs\":{ORGS},\
             \"points\":[{}]}}\n",
            TICK / MS,
            NIC_BPS / MBPS,
            json_points.join(",")
        );
        std::fs::write(&path, json).expect("write bench JSON");
        println!("\nwrote {path}");
    }
}
