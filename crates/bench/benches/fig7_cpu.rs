//! Experiment 2 / **Fig. 7**: impact of peer CPU on end-to-end throughput,
//! validation throughput, and block validation latency (paper Sec. 5.2).
//!
//! The paper runs peers with 4/8/16/32 vCPUs and finds that VSCC
//! validation ("embarrassingly parallel") scales quasi-linearly while the
//! sequential read-write-check and ledger stages become dominant at higher
//! core counts. Here the knob is the committer's VSCC worker-pool width.
//! Because this host has a fixed core count, the harness reports both the
//! real measurement and a calibrated-model extrapolation (same service
//! times on an ideal machine with that many cores).

use fabric_bench::calibrate::calibrate;
use fabric_bench::model::{simulate_wan, LinkSpec, ValidationModel, WanExperiment};
use fabric_bench::pipeline::{run_pipeline, PipelineConfig, Storage, TxKind};
use fabric_bench::stats::Table;
use fabric::simnet::{GBPS, MS};

fn modeled_tps(vcpus: usize, vscc_ns: u64, seq_ns: u64, block_txs: usize) -> f64 {
    // One LAN peer with an unconstrained network: pure validation bound.
    let exp = WanExperiment {
        regions: vec!["DC".into()],
        links: vec![vec![LinkSpec {
            latency_ns: MS / 2,
            bandwidth_bps: 40 * GBPS,
        }]],
        osn_region: 0,
        osn_count: 1,
        osn_egress_bps: 40 * GBPS,
        peer_egress_bps: 40 * GBPS,
        peer_regions: vec![0],
        gossip_orgs: None,
        block_txs,
        block_bytes: 2 * 1024 * 1024,
        blocks: 40,
        validation: ValidationModel {
            vcpus,
            vscc_ns_per_tx: vscc_ns,
            seq_ns_per_tx: seq_ns,
        },
    };
    simulate_wan(&exp).avg_tps
}

fn main() {
    let n_tx: usize = std::env::var("FABRIC_BENCH_TXS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("== Fig. 7: peer vCPUs vs throughput and validation latency ==");
    println!("   paper (32 vCPU): >3560 tps spend, >3420 tps mint e2e;");
    println!("   VSCC scales quasi-linearly, sequential stages dominate at high core counts");
    println!("   (host has {host_cores} cores; modeled column extrapolates beyond that)\n");

    println!("calibrating host service times...");
    let cal = calibrate(600);
    println!(
        "  ECDSA verify {:.1} µs; per-spend VSCC {:.2} ms, sequential {:.3} ms\n",
        cal.verify_ns as f64 / 1e3,
        cal.vscc_ns_per_tx as f64 / 1e6,
        cal.seq_ns_per_tx as f64 / 1e6
    );

    for (kind, name, block_txs) in [
        (TxKind::Mint, "mint (Fig. 7a)", fabric_bench::PAPER_MINT_PER_2MB),
        (TxKind::Spend, "spend (Fig. 7b)", fabric_bench::PAPER_SPEND_PER_2MB),
    ] {
        println!("-- {name} --");
        let mut table = Table::new(&[
            "vCPUs",
            "e2e tps (meas)",
            "val tps (meas)",
            "block val ms (meas)",
            "val tps (model)",
        ]);
        for vcpus in [4usize, 8, 16, 32] {
            let result = run_pipeline(&PipelineConfig {
                n_tx,
                kind,
                preferred_block_bytes: 2 * 1024 * 1024,
                vscc_parallelism: vcpus,
                storage: Storage::Mem,
                paced_tps: None,
            });
            let model =
                modeled_tps(vcpus, cal.vscc_ns_per_tx, cal.seq_ns_per_tx, block_txs);
            table.row(vec![
                format!("{vcpus}"),
                format!("{:.0}", result.tps),
                format!("{:.0}", result.validation_tps),
                format!("{:.1}", result.validation.avg_ms),
                format!("{:.0}", model),
            ]);
        }
        table.print();
        println!();
    }
    println!("expected shape: validation throughput grows with vCPUs but sub-linearly at");
    println!("32 (sequential rw-check + ledger stages bound it), matching the paper.");
}
