//! Experiment 6 / **Table 2**: 100 peers across five data centers, with
//! and without gossip (paper Sec. 5.2).
//!
//! Topology: ordering service and clients in Tokyo; 20 peers in each of
//! TK, HK, ML, SD, OS. The paper's own netperf single-TCP measurements to
//! TK parameterize the model: HK 240 Mbps, ML 98, SD 108, OS 54.
//!
//! Paper results (mint/spend tps): without gossip HK/ML/SD 1914/2048 and
//! OS 1389/1838; with gossip HK 2553/2762, ML 2558/2763, SD 2271/2409,
//! OS 1484/2013. Shape to reproduce: gossip helps every DC; OS stays
//! TCP-limited (54 Mbps single connection) with only a modest gain.

use fabric_bench::calibrate::calibrate;
use fabric_bench::model::{simulate_wan, ValidationModel};
use fabric_bench::stats::Table;
use fabric_bench::{table2_experiment, PAPER_MINT_PER_2MB, PAPER_SPEND_PER_2MB};

const PAPER_NO_GOSSIP: [(&str, u64, u64); 4] = [
    ("HK", 1914, 2048),
    ("ML", 1914, 2048),
    ("SD", 1914, 2048),
    ("OS", 1389, 1838),
];
const PAPER_GOSSIP: [(&str, u64, u64); 4] = [
    ("HK", 2553, 2762),
    ("ML", 2558, 2763),
    ("SD", 2271, 2409),
    ("OS", 1484, 2013),
];

fn main() {
    println!("== Table 2: 100 peers across 5 data centers (calibrated WAN model) ==\n");
    println!("calibrating host validation costs...");
    let cal = calibrate(600);
    let validation = ValidationModel {
        vcpus: 16,
        vscc_ns_per_tx: cal.vscc_ns_per_tx,
        seq_ns_per_tx: cal.seq_ns_per_tx,
    };
    let block_bytes: u64 = 2 * 1024 * 1024;
    // Paper transaction sizes govern bandwidth-per-tx (see fig8 harness).
    let spend_per_block = PAPER_SPEND_PER_2MB;
    let mint_per_block = PAPER_MINT_PER_2MB;
    println!(
        "  per-spend VSCC {:.2} ms, sequential {:.3} ms (paper tx sizes for bandwidth)\n",
        cal.vscc_ns_per_tx as f64 / 1e6,
        cal.seq_ns_per_tx as f64 / 1e6,
    );

    for (gossip, label, paper) in [
        (false, "without gossip", &PAPER_NO_GOSSIP),
        (true, "with gossip (2 orgs x 10 peers per DC)", &PAPER_GOSSIP),
    ] {
        println!("-- {label} --");
        let mint = simulate_wan(&table2_experiment(
            gossip,
            validation,
            mint_per_block,
            block_bytes,
        ));
        let spend = simulate_wan(&table2_experiment(
            gossip,
            validation,
            spend_per_block,
            block_bytes,
        ));
        let mut table = Table::new(&[
            "DC",
            "paper mint/spend",
            "model mint/spend",
        ]);
        for (dc, p_mint, p_spend) in paper.iter() {
            let m = mint.region_tps.get(*dc).copied().unwrap_or(0.0);
            let s = spend.region_tps.get(*dc).copied().unwrap_or(0.0);
            table.row(vec![
                dc.to_string(),
                format!("{p_mint} / {p_spend}"),
                format!("{m:.0} / {s:.0}"),
            ]);
        }
        table.print();
        println!();
    }
    println!("expected shape: gossip lifts HK/ML/SD; OS stays limited by its 54 Mbps");
    println!("single-TCP path to TK in both configurations — matching Table 2.");
}
