//! Micro-benchmark: sequential endorser vs the sharded endorsement
//! pipeline ([`fabric::peer::Peer::endorse_pipeline`]) on a Fabcoin spend
//! workload.
//!
//! The paper's Sec. 3.2 argument is that endorsement is embarrassingly
//! parallel — simulation touches only a state snapshot and signing is a
//! pure function of the simulation result. The sequential path processes
//! one proposal end to end at a time; the pipeline overlaps client
//! authentication + simulation across a worker pool and drains the ECDSA
//! signing stage in batches. Every spend consumes a distinct pre-minted
//! coin, so all proposals simulate against one committed state and the
//! workloads are identical across paths.
//!
//! Expected shape: near-linear scaling while simulation (two ECDSA
//! verifies + chaincode execution per spend) dominates, flattening as the
//! single batching signer becomes the serial bottleneck (Amdahl).
//!
//! `FABRIC_BENCH_SMOKE=1` shrinks the run to a few hundred proposals and a
//! single worker point for CI. `FABRIC_BENCH_JSON=<path>` additionally
//! writes the results as JSON.

use std::sync::Arc;
use std::time::Instant;

use fabric::client::Client;
use fabric::fabcoin::{
    coin_key, CentralBank, CoinState, FabcoinChaincode, FabcoinVscc, Wallet, FABCOIN_NAMESPACE,
};
use fabric::kvstore::MemBackend;
use fabric::msp::Role;
use fabric::ordering::testkit::TestNet;
use fabric::ordering::OrderingCluster;
use fabric::peer::{EndorseOptions, Peer, PeerConfig};
use fabric::primitives::block::Block;
use fabric::primitives::config::ConsensusType;
use fabric::primitives::ids::TxId;
use fabric::primitives::transaction::SignedProposal;
use fabric::primitives::wire::Wire;
use fabric_bench::stats::Table;

fn main() {
    let smoke = std::env::var("FABRIC_BENCH_SMOKE").is_ok();
    let n_tx: usize = std::env::var("FABRIC_BENCH_TXS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 200 } else { 2000 });
    let sweep: &[usize] = if smoke { &[2] } else { &[1, 2, 4, 8] };

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== Endorsement pipeline vs sequential endorser (Fabcoin spends) ==");
    println!("   ({n_tx} single-coin spend proposals; inline chaincode execution; {cpus} host cpu(s))");
    if cpus < 4 {
        println!("   NOTE: endorsement is CPU-bound; on a {cpus}-core host the worker sweep");
        println!("   measures overhead, not scaling — interpret speedups accordingly.");
    }
    println!();

    // One org, one endorsing peer; ordering is only used to obtain the
    // genesis block — the bench never orders anything.
    let net = TestNet::new(&["Org1"], ConsensusType::Solo, 1);
    let ordering = OrderingCluster::new(
        ConsensusType::Solo,
        net.orderers(1),
        vec![net.genesis.clone()],
    )
    .expect("ordering bootstraps");
    let genesis = ordering.deliver(&net.channel, 0).expect("genesis block");
    let bank = CentralBank::new(1, b"endorse-bench-cb");
    let identity = fabric::msp::issue_identity(
        &net.org_cas[0],
        "endorser.org1",
        Role::Peer,
        b"endorse-bench-peer",
    );
    let peer = Peer::join(
        identity,
        &genesis,
        Arc::new(MemBackend::new()),
        PeerConfig {
            vscc_parallelism: 1,
            runtime: fabric::chaincode::RuntimeConfig {
                exec_timeout: None,
                ..Default::default()
            },
            sync_writes: false,
            engine: Default::default(),
        },
    )
    .expect("peer joins");
    peer.install_chaincode(FABCOIN_NAMESPACE, Arc::new(FabcoinChaincode));
    peer.register_vscc(
        FABCOIN_NAMESPACE,
        Arc::new(FabcoinVscc::new(bank.public_keys(), 1)),
    );

    let client = Client::new(
        fabric::msp::issue_identity(
            &net.org_cas[0],
            "client.org1",
            Role::Client,
            b"endorse-bench-client",
        ),
        net.channel.clone(),
    );
    let mut wallet = Wallet::new();
    let address = wallet.new_address(b"endorse-bench-wallet");

    // Setup: mint one coin per spend (200 outputs per mint tx) and commit
    // the mint block, so every spend simulates against the same state.
    let mut mint_envelopes = Vec::new();
    let mut minted = 0usize;
    while minted < n_tx {
        let count = 200.min(n_tx - minted);
        let outputs: Vec<CoinState> = (0..count)
            .map(|_| CoinState {
                amount: 10,
                owner: address.clone(),
                label: "FBC".into(),
            })
            .collect();
        let nonce = client.next_nonce();
        let txid = TxId::derive(&client.identity().serialized().to_wire(), &nonce);
        let request = bank.create_mint(outputs.clone(), &txid, 1);
        let proposal = client.create_proposal_with_nonce(
            FABCOIN_NAMESPACE,
            "mint",
            vec![request.to_wire()],
            nonce,
        );
        let responses = client
            .collect_endorsements(&proposal, &[&peer])
            .expect("mint endorses");
        mint_envelopes.push(client.assemble_transaction(&proposal, &responses));
        for (j, output) in outputs.iter().enumerate() {
            wallet.note_coin(&coin_key(&txid, j as u32), output);
        }
        minted += count;
    }
    let mint_block = Block::new(1, genesis.hash(), mint_envelopes);
    peer.commit_block(&mint_block).expect("mint block commits");

    // Build every spend proposal up front (proposal construction and
    // wallet signing are client-side work, outside the measured window).
    let coins = wallet.coins("FBC");
    assert!(coins.len() >= n_tx, "not enough coins minted");
    let proposals: Vec<SignedProposal> = coins
        .iter()
        .take(n_tx)
        .map(|coin| {
            let nonce = client.next_nonce();
            let txid = TxId::derive(&client.identity().serialized().to_wire(), &nonce);
            let request = wallet
                .create_spend(
                    std::slice::from_ref(&coin.key),
                    vec![CoinState {
                        amount: coin.amount,
                        owner: address.clone(),
                        label: "FBC".into(),
                    }],
                    &txid,
                )
                .expect("wallet owns coin");
            client.create_proposal_with_nonce(
                FABCOIN_NAMESPACE,
                "spend",
                vec![request.to_wire()],
                nonce,
            )
        })
        .collect();

    // Baseline: the sequential endorser, one proposal end to end at a time.
    let start = Instant::now();
    for sp in &proposals {
        peer.process_proposal(sp).expect("spend endorses");
    }
    let seq_elapsed = start.elapsed();
    let seq_tps = n_tx as f64 / seq_elapsed.as_secs_f64();

    let mut table = Table::new(&[
        "path",
        "workers",
        "endorse tps",
        "speedup",
        "sign batches",
        "max batch",
    ]);
    table.row(vec![
        "sequential".into(),
        "1".into(),
        format!("{seq_tps:.0}"),
        "1.00x".into(),
        "-".into(),
        "-".into(),
    ]);

    let mut json_points = Vec::new();
    for &workers in sweep {
        let pipeline = peer.endorse_pipeline(EndorseOptions {
            workers,
            // The bench submits the whole workload before draining any
            // tickets; size the intake to the burst.
            intake_capacity: n_tx,
            ..EndorseOptions::default()
        });
        let start = Instant::now();
        let tickets: Vec<_> = proposals
            .iter()
            .map(|sp| pipeline.submit(sp.clone()).expect("intake admits"))
            .collect();
        for ticket in tickets {
            ticket.wait().expect("spend endorses");
        }
        let elapsed = start.elapsed();
        let stats = pipeline.stats();
        pipeline.close();
        assert_eq!(stats.endorsed as usize, n_tx, "every proposal endorsed");
        let tps = n_tx as f64 / elapsed.as_secs_f64();
        let speedup = tps / seq_tps;
        table.row(vec![
            "pipeline".into(),
            format!("{workers}"),
            format!("{tps:.0}"),
            format!("{speedup:.2}x"),
            format!("{}", stats.sign_batches),
            format!("{}", stats.max_batch),
        ]);
        json_points.push(format!(
            "{{\"workers\":{workers},\"tps\":{tps:.1},\"speedup\":{speedup:.3},\
             \"sign_batches\":{},\"max_batch\":{}}}",
            stats.sign_batches, stats.max_batch
        ));
    }
    table.print();
    println!("\nexpected: throughput scales with workers while the two ECDSA verifies +");
    println!("simulation per spend dominate, flattening once the single batching signer");
    println!("is the remaining serial stage; sign batches shrink (batches grow) under load.");

    if let Ok(path) = std::env::var("FABRIC_BENCH_JSON") {
        let json = format!(
            "{{\"bench\":\"endorsement_overlap\",\"workload\":\"fabcoin-spend\",\
             \"host_cpus\":{cpus},\"n_tx\":{n_tx},\"sequential_tps\":{seq_tps:.1},\
             \"pipeline\":[{}]}}\n",
            json_points.join(",")
        );
        std::fs::write(&path, json).expect("write bench JSON");
        println!("\nwrote {path}");
    }
}
