//! Experiment 3: SSD vs RAM disk (paper Sec. 5.2).
//!
//! The paper repeats the CPU experiment with tmpfs mounted as the peers'
//! stable storage and measures 3870 spend tps vs 3560 on SSD — roughly a
//! 9% improvement, limited because only the ledger stage of validation
//! touches stable storage. Here the comparison is the file-system backend
//! (with fsync) against the in-memory backend.

use fabric_bench::pipeline::{run_pipeline, PipelineConfig, Storage, TxKind};
use fabric_bench::stats::Table;

fn main() {
    let n_tx: usize = std::env::var("FABRIC_BENCH_TXS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let vcpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("== Experiment 3: stable storage (disk+fsync vs RAM) ==");
    println!("   paper: 3560 tps (SSD) -> 3870 tps (tmpfs), ~9% gain\n");

    let dir = std::env::temp_dir().join("fabric-bench-exp3");
    let disk = run_pipeline(&PipelineConfig {
        n_tx,
        kind: TxKind::Spend,
        preferred_block_bytes: 2 * 1024 * 1024,
        vscc_parallelism: vcpus,
        storage: Storage::Fs(dir.clone()),
        paced_tps: None,
    });
    let ram = run_pipeline(&PipelineConfig {
        n_tx,
        kind: TxKind::Spend,
        preferred_block_bytes: 2 * 1024 * 1024,
        vscc_parallelism: vcpus,
        storage: Storage::Mem,
        paced_tps: None,
    });
    std::fs::remove_dir_all(&dir).ok();

    let mut table = Table::new(&["storage", "spend tps", "ledger stage ms/block"]);
    table.row(vec![
        "disk + fsync".into(),
        format!("{:.0}", disk.tps),
        format!("{:.1}", disk.ledger.avg_ms),
    ]);
    table.row(vec![
        "RAM".into(),
        format!("{:.0}", ram.tps),
        format!("{:.1}", ram.ledger.avg_ms),
    ]);
    table.print();
    println!(
        "\nmeasured gain: {:+.1}% (paper: ~+9%); only the ledger stage is storage-bound",
        (ram.tps / disk.tps - 1.0) * 100.0
    );
}
