//! Multi-channel pipeline benchmark: per-channel validation pipelines
//! sharing one global VSCC worker pool ([`fabric::peer::PipelineManager`]).
//!
//! Two scenarios:
//!
//! 1. **Pool sharing under a barrier-stalled channel.** Channel A commits
//!    a chain of lifecycle (LSCC-writing) blocks — every one a dependency
//!    barrier, so A's pipeline spends most of its life stalled waiting for
//!    its own in-flight work to drain. Channel B pushes key-disjoint
//!    Fabcoin spends through the same pool. Because a stalled admitter
//!    holds no pool workers, B's throughput next to A must stay within a
//!    few percent of B running alone.
//!
//! 2. **Key-level vs block-level dependency stalls.** Fabcoin's custom
//!    VSCC reads committed coin state, so the conservative block-level
//!    rule serializes every block behind its predecessor. The key-level
//!    conflict index sees that the spends touch disjoint coins and lets
//!    them overlap — the pipelining win on exactly the workload the paper
//!    optimizes (Sec. 4.2, Fabcoin).
//!
//! 3. **Starved channel: FIFO vs DRR task scheduling.** Channel A dumps a
//!    deep backlog of cheap VSCC chunks into the shared pool while
//!    channel B trickles sparse single-transaction blocks. Under the old
//!    global FIFO task queue B's probes wait behind A's entire standing
//!    queue (p99 grows with backlog depth — unbounded); under the DRR
//!    scheduler a freshly woken channel is served within about one chunk,
//!    so B's p99 must stay within 2x of its solo run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fabric::chaincode::{Vscc, LSCC_NAMESPACE};
use fabric::client::Client;
use fabric::fabcoin::{
    coin_key, CentralBank, CoinState, FabcoinChaincode, FabcoinVscc, Wallet, FABCOIN_NAMESPACE,
};
use fabric::kvstore::MemBackend;
use fabric::ledger::Ledger;
use fabric::msp::{MspRegistry, Role};
use fabric::ordering::testkit::{make_envelope, TestNet};
use fabric::ordering::OrderingCluster;
use fabric::peer::{
    DependencyMode, Peer, PeerConfig, PipelineHandle, PipelineManager, PipelineOptions,
    SchedulerPolicy,
};
use fabric::primitives::block::Block;
use fabric::primitives::config::ConsensusType;
use fabric::primitives::ids::{TxId, TxValidationCode};
use fabric::primitives::rwset::{KeyWrite, NsReadWriteSet, TxReadWriteSet};
use fabric::primitives::transaction::Transaction;
use fabric::primitives::wire::Wire;
use fabric_bench::stats::Table;

/// Stands in for a lifecycle check with real latency, so the barrier
/// channel's transactions are not free.
struct SlowLifecycleVscc(Duration);

impl Vscc for SlowLifecycleVscc {
    fn validate(
        &self,
        _tx: &Transaction,
        _msp: &MspRegistry,
        _channel_orgs: &[String],
        _ledger: &Ledger,
    ) -> TxValidationCode {
        std::thread::sleep(self.0);
        TxValidationCode::Valid
    }
}

fn make_fabcoin_peer(
    net: &TestNet,
    genesis: &Block,
    bank: &CentralBank,
    name: &str,
    vscc_parallelism: usize,
) -> Peer {
    make_fabcoin_peer_on(
        net,
        genesis,
        bank,
        name,
        vscc_parallelism,
        Arc::new(MemBackend::new()),
        false,
    )
}

#[allow(clippy::too_many_arguments)]
fn make_fabcoin_peer_on(
    net: &TestNet,
    genesis: &Block,
    bank: &CentralBank,
    name: &str,
    vscc_parallelism: usize,
    backend: Arc<dyn fabric::kvstore::Backend>,
    sync_writes: bool,
) -> Peer {
    let identity =
        fabric::msp::issue_identity(&net.org_cas[0], name, Role::Peer, name.as_bytes());
    let peer = Peer::join(
        identity,
        genesis,
        backend,
        PeerConfig {
            vscc_parallelism,
            runtime: fabric::chaincode::RuntimeConfig { exec_timeout: None, ..Default::default() },
            sync_writes,
            engine: Default::default(),
        },
    )
    .expect("peer joins");
    peer.install_chaincode(FABCOIN_NAMESPACE, Arc::new(FabcoinChaincode));
    peer.register_vscc(
        FABCOIN_NAMESPACE,
        Arc::new(FabcoinVscc::new(bank.public_keys(), 1)),
    );
    peer
}

/// Builds the spend chain once: a mint block (setup) plus `n_blocks`
/// blocks of `txs_per_block` key-disjoint single-coin spends.
fn build_spend_chain(
    net: &TestNet,
    genesis: &Block,
    bank: &CentralBank,
    n_blocks: usize,
    txs_per_block: usize,
) -> (Vec<Block>, Vec<Block>) {
    let builder = make_fabcoin_peer(net, genesis, bank, "builder.org1", 2);
    let client_identity = fabric::msp::issue_identity(
        &net.org_cas[0],
        "client.org1",
        Role::Client,
        b"mc-overlap-client",
    );
    let client = Client::new(client_identity, net.channel.clone());
    let mut wallet = Wallet::new();
    let address = wallet.new_address(b"mc-overlap-wallet");

    let n_tx = n_blocks * txs_per_block;
    let mut mint_envelopes = Vec::new();
    let mut minted = 0usize;
    while minted < n_tx {
        let count = 200.min(n_tx - minted);
        let outputs: Vec<CoinState> = (0..count)
            .map(|_| CoinState {
                amount: 10,
                owner: address.clone(),
                label: "FBC".into(),
            })
            .collect();
        let nonce = client.next_nonce();
        let txid = TxId::derive(&client.identity().serialized().to_wire(), &nonce);
        let request = bank.create_mint(outputs.clone(), &txid, 1);
        let proposal = client.create_proposal_with_nonce(
            FABCOIN_NAMESPACE,
            "mint",
            vec![request.to_wire()],
            nonce,
        );
        let responses = client
            .collect_endorsements(&proposal, &[&builder])
            .expect("mint endorses");
        mint_envelopes.push(client.assemble_transaction(&proposal, &responses));
        for (j, output) in outputs.iter().enumerate() {
            wallet.note_coin(&coin_key(&txid, j as u32), output);
        }
        minted += count;
    }
    let mint_block = Block::new(1, genesis.hash(), mint_envelopes);
    builder
        .commit_block(&mint_block)
        .expect("mint block commits");
    let setup = vec![mint_block];

    let coins = wallet.coins("FBC");
    assert!(coins.len() >= n_tx, "not enough coins minted");
    let mut measured = Vec::with_capacity(n_blocks);
    let mut prev = setup[0].hash();
    let first_number = builder.height();
    for (next_number, chunk) in
        (first_number..).zip(coins.chunks(txs_per_block).take(n_blocks))
    {
        let envelopes = chunk
            .iter()
            .map(|coin| {
                let nonce = client.next_nonce();
                let txid =
                    TxId::derive(&client.identity().serialized().to_wire(), &nonce);
                let request = wallet
                    .create_spend(
                        std::slice::from_ref(&coin.key),
                        vec![CoinState {
                            amount: coin.amount,
                            owner: address.clone(),
                            label: "FBC".into(),
                        }],
                        &txid,
                    )
                    .expect("wallet owns coin");
                let proposal = client.create_proposal_with_nonce(
                    FABCOIN_NAMESPACE,
                    "spend",
                    vec![request.to_wire()],
                    nonce,
                );
                let responses = client
                    .collect_endorsements(&proposal, &[&builder])
                    .expect("spend endorses");
                client.assemble_transaction(&proposal, &responses)
            })
            .collect();
        let block = Block::new(next_number, prev, envelopes);
        prev = block.hash();
        measured.push(block);
    }
    (setup, measured)
}

/// Builds `n_blocks` one-transaction blocks that each write into the
/// LSCC namespace: every one is a dependency barrier for its pipeline.
fn build_barrier_chain(net: &TestNet, genesis: &Block, n_blocks: usize) -> Vec<Block> {
    let client = net.client(0, "barrier-client");
    let mut blocks = Vec::with_capacity(n_blocks);
    let mut prev = genesis.hash();
    for i in 0..n_blocks {
        let mut nonce = [0u8; 32];
        nonce[..8].copy_from_slice(&(i as u64).to_le_bytes());
        let rwset = TxReadWriteSet::single(NsReadWriteSet {
            namespace: LSCC_NAMESPACE.into(),
            reads: vec![],
            range_queries: vec![],
            writes: vec![KeyWrite {
                key: format!("bench-cc-{i}"),
                value: Some(vec![1]),
            }],
        });
        let envelope = make_envelope(&client, &net.channel, nonce, rwset);
        let block = Block::new((i + 1) as u64, prev, vec![envelope]);
        prev = block.hash();
        blocks.push(block);
    }
    blocks
}

/// Builds `n_blocks` blocks of `txs_per_block` plain "testcc"
/// transactions chained onto `genesis`, reusing one set of signed
/// envelopes across blocks: the committer never re-verifies envelope
/// signatures and duplicate tx-ids are simply invalidated at rw-check,
/// neither of which matters to the scheduling cost being measured.
fn build_sleep_chain(
    net: &TestNet,
    genesis: &Block,
    n_blocks: usize,
    txs_per_block: usize,
    salt: u64,
) -> Vec<Block> {
    let client = net.client(0, "sleep-client");
    let envelopes: Vec<_> = (0..txs_per_block)
        .map(|i| {
            let mut nonce = [0u8; 32];
            nonce[..8].copy_from_slice(&(salt * 10_007 + i as u64).to_le_bytes());
            make_envelope(&client, &net.channel, nonce, TxReadWriteSet::default())
        })
        .collect();
    let mut prev = genesis.hash();
    (0..n_blocks)
        .map(|b| {
            let block = Block::new((b + 1) as u64, prev, envelopes.clone());
            prev = block.hash();
            block
        })
        .collect()
}

/// A bare peer whose "testcc" VSCC sleeps for a fixed per-transaction
/// cost — the starved-channel scenario's unit of pool work.
fn make_sleep_peer(net: &TestNet, genesis: &Block, name: &str, vscc_sleep: Duration) -> Peer {
    let identity =
        fabric::msp::issue_identity(&net.org_cas[0], name, Role::Peer, name.as_bytes());
    let peer = Peer::join(
        identity,
        genesis,
        Arc::new(MemBackend::new()),
        PeerConfig::default(),
    )
    .expect("peer joins");
    peer.register_vscc("testcc", Arc::new(SlowLifecycleVscc(vscc_sleep)));
    peer
}

/// Submits each probe alone and measures its submit-to-commit latency,
/// with a breather between probes (the sparse-channel traffic pattern).
fn probe_latencies(handle: &PipelineHandle, probes: &[Block]) -> Vec<Duration> {
    let mut out = Vec::with_capacity(probes.len());
    for block in probes {
        let started = Instant::now();
        handle.submit(block.clone()).expect("probe submits");
        handle
            .wait_committed(block.header.number + 1)
            .expect("probe commits");
        out.push(started.elapsed());
        std::thread::sleep(Duration::from_millis(5));
    }
    out
}

fn p99(latencies: &mut [Duration]) -> Duration {
    latencies.sort();
    let idx = (latencies.len() * 99).div_ceil(100).saturating_sub(1);
    latencies[idx]
}

/// Drains `measured` through `handle`, returning transactions per second.
fn drive(handle: &fabric::peer::PipelineHandle, measured: &[Block], total_txs: usize) -> f64 {
    let final_height = measured.last().unwrap().header.number + 1;
    let t0 = Instant::now();
    for block in measured {
        handle.submit(block.clone()).expect("pipeline accepts");
    }
    handle.wait_committed(final_height).expect("pipeline drains");
    total_txs as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let smoke = std::env::var("FABRIC_BENCH_SMOKE").is_ok();
    let n_tx: usize = std::env::var("FABRIC_BENCH_TXS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 80 } else { 1_200 });
    let txs_per_block = if smoke { 20 } else { 100 };
    let n_blocks = (n_tx / txs_per_block).max(2);
    let workers = std::env::var("FABRIC_BENCH_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(4)
        });
    let reps = if smoke { 1 } else { 3 };

    let net = TestNet::new(&["Org1"], ConsensusType::Solo, 1);
    let ordering =
        OrderingCluster::new(ConsensusType::Solo, net.orderers(1), vec![net.genesis.clone()])
            .expect("valid genesis");
    let genesis = ordering.deliver(&net.channel, 0).expect("genesis");
    let bank = CentralBank::new(1, b"mc-overlap-cb");
    let (setup, measured) = build_spend_chain(&net, &genesis, &bank, n_blocks, txs_per_block);
    let total_txs: usize = measured.iter().map(|b| b.envelopes.len()).sum();
    let barrier_blocks = build_barrier_chain(&net, &genesis, (n_blocks * 2).max(16));

    println!(
        "== multi-channel pipelines on a shared {workers}-worker VSCC pool \
         ({n_blocks} blocks x {txs_per_block} spends) =="
    );

    // Warm caches and allocator before anything is timed: the first trip
    // through the chain is consistently 10-20% colder than the rest.
    {
        let peer = make_fabcoin_peer(&net, &genesis, &bank, "warmup.org1", workers);
        for block in &setup {
            peer.commit_block(block).expect("setup commits");
        }
        let handle = peer.pipeline_with(PipelineOptions {
            vscc_workers: workers,
            intake_capacity: 64,
            ..PipelineOptions::default()
        });
        drive(&handle, &measured, total_txs);
        handle.close().expect("warmup closes");
    }

    // Scenario 1: channel B alone vs channel B next to barrier-stalled
    // channel A, both on one shared pool. Best of `reps` runs each.
    let opts = PipelineOptions {
        intake_capacity: 64,
        ..PipelineOptions::default()
    };
    let run_alone = || {
        let pool = PipelineManager::new(workers);
        let peer_b = make_fabcoin_peer(&net, &genesis, &bank, "alone.org1", workers);
        for block in &setup {
            peer_b.commit_block(block).expect("setup commits");
        }
        let handle = peer_b.pipeline_shared(&pool, opts);
        let tps = drive(&handle, &measured, total_txs);
        handle.close().expect("pipeline closes");
        pool.close();
        tps
    };
    let run_concurrent = || {
        let pool = PipelineManager::new(workers);
        let peer_b = make_fabcoin_peer(&net, &genesis, &bank, "shared.org1", workers);
        for block in &setup {
            peer_b.commit_block(block).expect("setup commits");
        }
        let peer_a = {
            let identity = fabric::msp::issue_identity(
                &net.org_cas[0],
                "barrier.org1",
                Role::Peer,
                b"barrier-peer",
            );
            Peer::join(
                identity,
                &genesis,
                Arc::new(MemBackend::new()),
                PeerConfig::default(),
            )
            .expect("peer joins")
        };
        // The barrier transactions cost real VSCC time, but the channel
        // spends most of its life stalled, holding no pool workers.
        peer_a.register_vscc("testcc", Arc::new(SlowLifecycleVscc(Duration::from_micros(300))));
        let handle_a = peer_a.pipeline_shared(&pool, opts);
        let handle_b = peer_b.pipeline_shared(&pool, opts);
        let mut tps = 0.0;
        std::thread::scope(|s| {
            s.spawn(|| {
                for block in &barrier_blocks {
                    if handle_a.submit(block.clone()).is_err() {
                        break;
                    }
                }
            });
            tps = drive(&handle_b, &measured, total_txs);
        });
        let b_stats = handle_b.close().expect("channel B closes");
        assert_eq!(b_stats.blocks, measured.len() as u64);
        let a_stats = handle_a.stats();
        // Channel A may still have barriers queued; discard the tail.
        handle_a.abort();
        pool.close();
        (tps, a_stats.queues.dependency_stalls, a_stats.blocks)
    };
    // Interleave the two configurations so machine drift hits both alike.
    let mut alone_tps = 0.0f64;
    let mut concurrent = (0.0f64, 0usize, 0u64);
    for _ in 0..reps {
        alone_tps = alone_tps.max(run_alone());
        let run = run_concurrent();
        if run.0 > concurrent.0 {
            concurrent = run;
        }
    }
    let (concurrent_tps, a_stalls, a_committed) = concurrent;
    let degradation = 100.0 * (1.0 - concurrent_tps / alone_tps);
    let mut table = Table::new(&[
        "channel B workload",
        "tps",
        "vs alone",
        "barrier blocks beside it",
    ]);
    table.row(vec![
        "alone".into(),
        format!("{alone_tps:.0}"),
        "-".into(),
        "0".into(),
    ]);
    table.row(vec![
        "beside barrier channel".into(),
        format!("{concurrent_tps:.0}"),
        format!("{degradation:+.1}%"),
        format!("{a_committed} committed, {a_stalls} barrier stalls"),
    ]);
    table.print();
    if !smoke {
        assert!(
            degradation <= 10.0,
            "a barrier-stalled channel must not steal more than 10% of a \
             busy channel's throughput (got {degradation:.1}%)"
        );
    }

    // Scenario 2: block-level vs key-level dependency stalls on the
    // key-disjoint spend workload (Fabcoin's VSCC reads committed state,
    // so block-level serializes every block). The peer persists durably
    // (FsBackend + synced appends), as a production committer would: the
    // fsync is the sequential stage the block-level rule exposes on every
    // block and the key-level rule hides behind the next blocks' VSCC.
    let fine_per_block = if smoke { 5 } else { 10 };
    let fine_blocks = (n_tx / fine_per_block).max(4);
    let (fine_setup, fine_measured) =
        build_spend_chain(&net, &genesis, &bank, fine_blocks, fine_per_block);
    let fine_txs: usize = fine_measured.iter().map(|b| b.envelopes.len()).sum();
    let bench_dir = std::env::temp_dir().join(format!("fabric-mc-overlap-{}", std::process::id()));
    let mut run_seq = 0u32;
    let mut run_mode = |mode: DependencyMode| {
        run_seq += 1;
        let dir = bench_dir.join(format!("run-{run_seq}"));
        let backend = Arc::new(
            fabric::kvstore::FsBackend::new(&dir).expect("bench scratch dir"),
        );
        let peer =
            make_fabcoin_peer_on(&net, &genesis, &bank, "mode.org1", workers, backend, true);
        for block in &fine_setup {
            peer.commit_block(block).expect("setup commits");
        }
        let handle = peer.pipeline_with(PipelineOptions {
            vscc_workers: workers,
            intake_capacity: 64,
            dependency_mode: mode,
            ..PipelineOptions::default()
        });
        let tps = drive(&handle, &fine_measured, fine_txs);
        let stats = handle.close().expect("pipeline closes");
        assert_eq!(stats.blocks, fine_measured.len() as u64);
        if std::env::var("FABRIC_BENCH_DEBUG").is_ok() {
            eprintln!(
                "[{mode:?}] vscc avg {}us, rw-check avg {}us, append avg {}us, total avg {}us",
                stats.vscc.avg().as_micros(),
                stats.rw_check.avg().as_micros(),
                stats.ledger.avg().as_micros(),
                stats.total.avg().as_micros(),
            );
        }
        drop(peer);
        let _ = std::fs::remove_dir_all(&dir);
        (tps, stats.queues.dependency_stalls, stats.queues.spec_hits)
    };
    let modes = [
        ("block-level", DependencyMode::BlockLevel),
        ("key-level", DependencyMode::KeyLevel),
    ];
    let mut best = [(0.0f64, 0usize, 0usize); 2];
    for _ in 0..reps {
        for (i, &(_, mode)) in modes.iter().enumerate() {
            let run = run_mode(mode);
            if run.0 > best[i].0 {
                best[i] = run;
            }
        }
    }
    let mut mode_table = Table::new(&["dependency mode", "tps", "dep stalls", "spec hits"]);
    for (i, (label, _)) in modes.iter().enumerate() {
        let (tps, stalls, spec_hits) = best[i];
        mode_table.row(vec![
            (*label).into(),
            format!("{tps:.0}"),
            format!("{stalls}"),
            format!("{spec_hits}"),
        ]);
    }
    let tps_by_mode = [best[0].0, best[1].0];
    println!(
        "\n-- dependency stalls on {fine_blocks} blocks x {fine_per_block} \
         key-disjoint spends --"
    );
    mode_table.print();
    if !smoke {
        assert!(
            tps_by_mode[1] > tps_by_mode[0],
            "key-level stalls must beat block-level on key-disjoint spends \
             ({:.0} vs {:.0} tps)",
            tps_by_mode[1],
            tps_by_mode[0]
        );
    }
    // Scenario 3: starved channel — sparse single-tx probes on channel B
    // beside a deep backlog of cheap chunks on channel A, FIFO vs DRR
    // task scheduling in the shared pool. The probe's VSCC cost is kept
    // well above the backlog chunk cost so its latency is dominated by
    // pool service order (what the scheduler controls) rather than OS
    // thread-scheduling noise from the backlog's sequencer on small
    // hosts.
    let probe_vscc = Duration::from_millis(10);
    let backlog_vscc = Duration::from_micros(500);
    let (backlog_blocks, backlog_txs, probe_count) =
        if smoke { (24, 8, 6) } else { (128, 32, 20) };
    let backlog = build_sleep_chain(&net, &genesis, backlog_blocks, backlog_txs, 31);
    let probes = build_sleep_chain(&net, &genesis, probe_count, 1, 37);
    let starved_run = |policy: SchedulerPolicy, with_backlog: bool| -> Duration {
        let pool = PipelineManager::with_policy(workers, policy);
        let peer_b = make_sleep_peer(&net, &genesis, "sparse.org1", probe_vscc);
        let handle_b = peer_b.pipeline_shared(&pool, opts);
        let mut latencies = if with_backlog {
            let peer_a = make_sleep_peer(&net, &genesis, "flood.org1", backlog_vscc);
            let handle_a = peer_a.pipeline_shared(&pool, opts);
            let latencies = std::thread::scope(|s| {
                s.spawn(|| {
                    for block in &backlog {
                        if handle_a.submit(block.clone()).is_err() {
                            break;
                        }
                    }
                });
                // Let the backlog pile up in A's queue before probing.
                std::thread::sleep(Duration::from_millis(30));
                probe_latencies(&handle_b, &probes)
            });
            handle_b.close().expect("sparse channel closes");
            // The backlog's tail is irrelevant; drop it.
            handle_a.abort();
            latencies
        } else {
            let latencies = probe_latencies(&handle_b, &probes);
            handle_b.close().expect("sparse channel closes");
            latencies
        };
        pool.close();
        p99(&mut latencies)
    };
    let mut solo_p99 = Duration::MAX;
    let mut drr_p99 = Duration::MAX;
    for _ in 0..reps {
        solo_p99 = solo_p99.min(starved_run(SchedulerPolicy::default(), false));
        drr_p99 = drr_p99.min(starved_run(SchedulerPolicy::default(), true));
    }
    // FIFO is the pathological baseline; one rep tells the story.
    let fifo_p99 = starved_run(SchedulerPolicy::Fifo, true);
    let ms = |d: Duration| format!("{:.2} ms", d.as_secs_f64() * 1e3);
    println!(
        "\n-- starved channel: {probe_count} sparse probes beside a \
         {backlog_blocks}-block x {backlog_txs}-tx backlog --"
    );
    let mut starved_table = Table::new(&["sparse channel B", "p99 commit latency"]);
    starved_table.row(vec!["solo".into(), ms(solo_p99)]);
    starved_table.row(vec!["beside backlog, DRR".into(), ms(drr_p99)]);
    starved_table.row(vec!["beside backlog, FIFO".into(), ms(fifo_p99)]);
    starved_table.print();
    if !smoke {
        assert!(
            drr_p99 <= solo_p99 * 2,
            "DRR must bound the sparse channel's p99 within 2x of solo \
             ({} vs {} solo)",
            ms(drr_p99),
            ms(solo_p99)
        );
        assert!(
            fifo_p99 > drr_p99,
            "FIFO baseline should starve the sparse channel ({} vs {} DRR) — \
             if not, the backlog never queued",
            ms(fifo_p99),
            ms(drr_p99)
        );
    }

    println!(
        "\nexpected shape: channel B within 10% of alone despite the barrier \
         channel; key-level tps above block-level (disjoint coins never \
         stall); sparse-channel p99 within 2x of solo under DRR, far beyond \
         it under FIFO."
    );
}
