//! Micro-benchmark: sequential committer vs cross-block pipelined
//! committer ([`fabric::peer::Peer::pipeline`]) on a pre-built chain of
//! Fabcoin spend blocks.
//!
//! The sequential path validates one block at a time (VSCC → rw-check →
//! append); the pipeline overlaps block *n+1*'s VSCC with block *n*'s
//! rw-check and append. Every spend consumes a coin minted before the
//! measured window, so there are no cross-block VSCC read dependencies and
//! the overlap is maximal — this isolates the pipelining win itself.
//!
//! Expected shape: at 1 worker the two paths are within noise (VSCC is the
//! only stage with parallelism to exploit); at ≥4 workers the pipelined
//! committer wins because the sequential stages of block *n* no longer
//! idle the VSCC pool.

use std::sync::Arc;
use std::time::Instant;

use fabric::client::Client;
use fabric::fabcoin::{
    coin_key, CentralBank, CoinState, FabcoinChaincode, FabcoinVscc, Wallet, FABCOIN_NAMESPACE,
};
use fabric::kvstore::MemBackend;
use fabric::msp::Role;
use fabric::ordering::testkit::TestNet;
use fabric::ordering::OrderingCluster;
use fabric::peer::{Peer, PeerConfig, PipelineOptions};
use fabric::primitives::block::Block;
use fabric::primitives::config::ConsensusType;
use fabric::primitives::ids::TxId;
use fabric::primitives::wire::Wire;
use fabric_bench::stats::Table;

fn make_peer(
    net: &TestNet,
    genesis: &Block,
    bank: &CentralBank,
    name: &str,
    vscc_parallelism: usize,
) -> Peer {
    let identity =
        fabric::msp::issue_identity(&net.org_cas[0], name, Role::Peer, name.as_bytes());
    let peer = Peer::join(
        identity,
        genesis,
        Arc::new(MemBackend::new()),
        PeerConfig {
            vscc_parallelism,
            runtime: fabric::chaincode::RuntimeConfig { exec_timeout: None, ..Default::default() },
            sync_writes: false,
            engine: Default::default(),
        },
    )
    .expect("peer joins");
    peer.install_chaincode(FABCOIN_NAMESPACE, Arc::new(FabcoinChaincode));
    peer.register_vscc(
        FABCOIN_NAMESPACE,
        Arc::new(FabcoinVscc::new(bank.public_keys(), 1)),
    );
    peer
}

/// Builds the measured chain once: mint blocks (setup) followed by
/// `n_blocks` blocks of `txs_per_block` single-coin spends.
fn build_chain(
    net: &TestNet,
    genesis: &Block,
    bank: &CentralBank,
    n_blocks: usize,
    txs_per_block: usize,
) -> (Vec<Block>, Vec<Block>) {
    let builder = make_peer(net, genesis, bank, "builder.org1", 2);
    let client_identity = fabric::msp::issue_identity(
        &net.org_cas[0],
        "client.org1",
        Role::Client,
        b"overlap-client",
    );
    let client = Client::new(client_identity, net.channel.clone());
    let mut wallet = Wallet::new();
    let address = wallet.new_address(b"overlap-wallet");

    // Setup: mint every coin the spends will consume, 200 per mint tx.
    let n_tx = n_blocks * txs_per_block;
    let mut mint_envelopes = Vec::new();
    let mut minted = 0usize;
    while minted < n_tx {
        let count = 200.min(n_tx - minted);
        let outputs: Vec<CoinState> = (0..count)
            .map(|_| CoinState {
                amount: 10,
                owner: address.clone(),
                label: "FBC".into(),
            })
            .collect();
        let nonce = client.next_nonce();
        let txid = TxId::derive(&client.identity().serialized().to_wire(), &nonce);
        let request = bank.create_mint(outputs.clone(), &txid, 1);
        let proposal = client.create_proposal_with_nonce(
            FABCOIN_NAMESPACE,
            "mint",
            vec![request.to_wire()],
            nonce,
        );
        let responses = client
            .collect_endorsements(&proposal, &[&builder])
            .expect("mint endorses");
        mint_envelopes.push(client.assemble_transaction(&proposal, &responses));
        for (j, output) in outputs.iter().enumerate() {
            wallet.note_coin(&coin_key(&txid, j as u32), output);
        }
        minted += count;
    }
    let mint_block = Block::new(1, genesis.hash(), mint_envelopes);
    builder
        .commit_block(&mint_block)
        .expect("mint block commits");
    let setup = vec![mint_block];

    // Measured blocks: each spend consumes a distinct minted coin, so the
    // endorsements need only the post-mint state.
    let coins = wallet.coins("FBC");
    assert!(coins.len() >= n_tx, "not enough coins minted");
    let mut measured = Vec::with_capacity(n_blocks);
    let mut prev = setup[0].hash();
    let first_number = builder.height();
    for (next_number, chunk) in
        (first_number..).zip(coins.chunks(txs_per_block).take(n_blocks))
    {
        let envelopes = chunk
            .iter()
            .map(|coin| {
                let nonce = client.next_nonce();
                let txid =
                    TxId::derive(&client.identity().serialized().to_wire(), &nonce);
                let request = wallet
                    .create_spend(
                        std::slice::from_ref(&coin.key),
                        vec![CoinState {
                            amount: coin.amount,
                            owner: address.clone(),
                            label: "FBC".into(),
                        }],
                        &txid,
                    )
                    .expect("wallet owns coin");
                let proposal = client.create_proposal_with_nonce(
                    FABCOIN_NAMESPACE,
                    "spend",
                    vec![request.to_wire()],
                    nonce,
                );
                let responses = client
                    .collect_endorsements(&proposal, &[&builder])
                    .expect("spend endorses");
                client.assemble_transaction(&proposal, &responses)
            })
            .collect();
        let block = Block::new(next_number, prev, envelopes);
        prev = block.hash();
        measured.push(block);
    }
    (setup, measured)
}

fn main() {
    let n_tx: usize = std::env::var("FABRIC_BENCH_TXS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_200);
    let txs_per_block = 100;
    let n_blocks = (n_tx / txs_per_block).max(2);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("== pipelined vs sequential committer ({} blocks × {} spends) ==", n_blocks, txs_per_block);

    let net = TestNet::new(&["Org1"], ConsensusType::Solo, 1);
    let ordering =
        OrderingCluster::new(ConsensusType::Solo, net.orderers(1), vec![net.genesis.clone()])
            .expect("valid genesis");
    let genesis = ordering.deliver(&net.channel, 0).expect("genesis");
    let bank = CentralBank::new(1, b"overlap-cb");
    let (setup, measured) = build_chain(&net, &genesis, &bank, n_blocks, txs_per_block);
    let total_txs: usize = measured.iter().map(|b| b.envelopes.len()).sum();

    let mut workers: Vec<usize> = vec![1, 2, 4, host_cores];
    workers.sort_unstable();
    workers.dedup();
    workers.retain(|&w| w <= host_cores.max(4));

    let mut table = Table::new(&[
        "VSCC workers",
        "sequential tps",
        "pipelined tps",
        "speedup",
        "dep stalls",
    ]);
    for &w in &workers {
        // Sequential: one block at a time through Peer::commit_block.
        let seq_peer = make_peer(&net, &genesis, &bank, "seq.org1", w);
        for block in &setup {
            seq_peer.commit_block(block).expect("setup commits");
        }
        let t0 = Instant::now();
        for block in &measured {
            let (flags, _) = seq_peer.commit_block(block).expect("commit");
            assert!(flags.iter().all(|f| f.is_valid()));
        }
        let seq_tps = total_txs as f64 / t0.elapsed().as_secs_f64();

        // Pipelined: same blocks through the cross-block pipeline.
        let pipe_peer = make_peer(&net, &genesis, &bank, "pipe.org1", w);
        for block in &setup {
            pipe_peer.commit_block(block).expect("setup commits");
        }
        let handle = pipe_peer.pipeline_with(PipelineOptions {
            vscc_workers: w,
            intake_capacity: 64,
            ..PipelineOptions::default()
        });
        let final_height = measured.last().unwrap().header.number + 1;
        let t0 = Instant::now();
        for block in &measured {
            handle.submit(block.clone()).expect("pipeline accepts");
        }
        handle.wait_committed(final_height).expect("pipeline drains");
        let pipe_tps = total_txs as f64 / t0.elapsed().as_secs_f64();
        let stats = handle.close().expect("pipeline closes");
        assert_eq!(stats.blocks, measured.len() as u64);

        table.row(vec![
            format!("{w}"),
            format!("{seq_tps:.0}"),
            format!("{pipe_tps:.0}"),
            format!("{:.2}x", pipe_tps / seq_tps),
            format!("{}", stats.queues.dependency_stalls),
        ]);
    }
    table.print();
    println!("\nexpected shape: speedup > 1.0x at ≥4 workers (VSCC of block n+1");
    println!("overlaps the sequential rw-check + append of block n).");
}
