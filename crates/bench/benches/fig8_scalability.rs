//! Experiments 4–5 / **Fig. 8**: throughput at non-endorsing peers as the
//! peer count grows, on a LAN, across two data centers, and with gossip
//! (paper Sec. 5.2).
//!
//! These are bandwidth-bound multi-VM experiments; per the methodology in
//! `DESIGN.md` they run on the calibrated discrete-event model: validation
//! service times are measured on this host, network parameters are the
//! paper's own netperf numbers (5–6.5 Gbps LAN, 240 Mbps TK→HK single
//! TCP).
//!
//! Paper shape to reproduce: the LAN series stays flat out to 100 peers;
//! the 2DC series matches the LAN at 30 peers but drops as the 3 OSN
//! uplinks saturate (2190 tps spend at 90 peers); reconfiguring the 80 HK
//! peers into 8 orgs with gossip recovers most of it (2753 tps spend).

use fabric_bench::calibrate::calibrate;
use fabric_bench::model::{simulate_wan, ValidationModel};
use fabric_bench::stats::Table;
use fabric_bench::{fig8_experiment, PAPER_MINT_PER_2MB, PAPER_SPEND_PER_2MB};

fn main() {
    println!("== Fig. 8: peer scalability (calibrated WAN model) ==\n");
    println!("calibrating host validation costs...");
    let cal = calibrate(600);
    let validation = ValidationModel {
        vcpus: 16, // the paper's peers are 16-vCPU VMs
        vscc_ns_per_tx: cal.vscc_ns_per_tx,
        seq_ns_per_tx: cal.seq_ns_per_tx,
    };
    let block_bytes: u64 = 2 * 1024 * 1024;
    // Bandwidth-per-transaction uses the PAPER's transaction sizes (673/473
    // per 2 MB block): the WAN tables are properties of the paper's
    // workload bytes, while CPU costs are calibrated on this host.
    let spend_per_block = PAPER_SPEND_PER_2MB;
    let mint_per_block = PAPER_MINT_PER_2MB;
    println!(
        "  per-spend VSCC {:.2} ms, sequential {:.3} ms (paper tx sizes for bandwidth)\n",
        cal.vscc_ns_per_tx as f64 / 1e6,
        cal.seq_ns_per_tx as f64 / 1e6,
    );
    let run = |peers: usize, two_dc: bool, gossip: bool, block_txs: usize| {
        simulate_wan(&fig8_experiment(
            peers,
            two_dc,
            gossip,
            validation,
            block_txs,
            block_bytes,
        ))
        .avg_tps
    };

    println!("-- LAN series (single DC, peers pull directly; paper: flat) --");
    let mut table = Table::new(&["peers", "mint tps", "spend tps"]);
    for peers in [20usize, 40, 60, 80, 100] {
        table.row(vec![
            format!("{peers}"),
            format!("{:.0}", run(peers, false, false, mint_per_block)),
            format!("{:.0}", run(peers, false, false, spend_per_block)),
        ]);
    }
    table.print();

    println!("\n-- 2DC series (orderer in TK, peers in HK; paper: drops to 1910/2190 at 90) --");
    let mut table = Table::new(&["HK peers", "mint tps", "spend tps"]);
    for peers in [20usize, 40, 60, 80] {
        table.row(vec![
            format!("{peers}"),
            format!("{:.0}", run(peers, true, false, mint_per_block)),
            format!("{:.0}", run(peers, true, false, spend_per_block)),
        ]);
    }
    table.print();

    println!("\n-- 2DC with gossip (8 orgs x 10 peers, fanout 7; paper: 2544/2753) --");
    let mint = run(80, true, true, mint_per_block);
    let spend = run(80, true, true, spend_per_block);
    println!("80 HK peers with gossip: mint {mint:.0} tps, spend {spend:.0} tps");
    println!("\nexpected shape: LAN flat; 2DC decreasing with peer count; gossip");
    println!("recovering most of the LAN throughput — matching Fig. 8.");
}
