//! Ablation: cost of the endorsement-policy fan-out.
//!
//! Not a paper figure — an ablation of the execute-order-validate design
//! choice the paper motivates in Sec. 2/3: endorsement policies buy
//! application-level trust at the price of one simulation + one signature
//! per endorser at execution time and one signature verification per
//! endorsement at validation time. This harness measures both sides as the
//! policy widens from 1-of-1 to 4-of-4, using the default VSCC (not
//! Fabcoin's custom one, which ignores endorsement counts).

use std::sync::Arc;

use fabric::chaincode::{ChaincodeDefinition, Stub, LSCC_NAMESPACE};
use fabric::client::Client;
use fabric::kvstore::MemBackend;
use fabric::msp::Role;
use fabric::ordering::testkit::TestNet;
use fabric::ordering::OrderingCluster;
use fabric::peer::{Peer, PeerConfig};
use fabric::primitives::config::{BatchConfig, ConsensusType};
use fabric::primitives::wire::Wire;
use fabric_bench::stats::Table;

fn kv_put(stub: &mut Stub<'_>) -> Result<Vec<u8>, String> {
    let key = stub.arg_string(0)?;
    stub.put_state(&key, stub.args()[1].clone());
    Ok(vec![])
}

fn main() {
    let n_tx: usize = std::env::var("FABRIC_BENCH_TXS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!("== Ablation: endorsement fan-out (1..4 orgs, AND policy) ==");
    println!("   ({n_tx} txs per point; default VSCC verifies one signature per endorsement)\n");

    let mut table = Table::new(&[
        "endorsers",
        "endorse ms/tx",
        "commit tps",
        "tx bytes",
    ]);
    for orgs in 1..=4usize {
        let org_names: Vec<String> = (1..=orgs).map(|i| format!("Org{i}")).collect();
        let org_refs: Vec<&str> = org_names.iter().map(|s| s.as_str()).collect();
        let net = TestNet::with_batch(
            &org_refs,
            ConsensusType::Solo,
            1,
            BatchConfig {
                max_message_count: 100,
                absolute_max_bytes: 16 << 20,
                preferred_max_bytes: 8 << 20,
                batch_timeout_ms: 300,
            },
        );
        let mut ordering = OrderingCluster::new(
            ConsensusType::Solo,
            net.orderers(1),
            vec![net.genesis.clone()],
        )
        .expect("ordering");
        let genesis = ordering.deliver(&net.channel, 0).expect("genesis");
        let peers: Vec<Peer> = (0..orgs)
            .map(|i| {
                let identity = fabric::msp::issue_identity(
                    &net.org_cas[i],
                    &format!("p{i}"),
                    Role::Peer,
                    format!("ab-p{i}").as_bytes(),
                );
                let peer = Peer::join(
                    identity,
                    &genesis,
                    Arc::new(MemBackend::new()),
                    PeerConfig {
                        vscc_parallelism: 1,
                        runtime: fabric::chaincode::RuntimeConfig { exec_timeout: None, ..Default::default() },
                        sync_writes: false,
                        engine: Default::default(),
                    },
                )
                .expect("join");
                peer.install_chaincode("kv", Arc::new(kv_put));
                peer
            })
            .collect();
        let endorsers: Vec<&Peer> = peers.iter().collect();
        let policy = format!(
            "AND({})",
            org_names
                .iter()
                .map(|o| format!("{o}MSP"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let admin = Client::new(
            fabric::msp::issue_identity(&net.org_cas[0], "a", Role::Admin, b"ab-admin"),
            net.channel.clone(),
        );
        let def = ChaincodeDefinition {
            name: "kv".into(),
            version: "1".into(),
            endorsement_policy: policy,
        };
        let proposal = admin.create_proposal(LSCC_NAMESPACE, "deploy", vec![def.to_wire()]);
        let responses = admin.collect_endorsements(&proposal, &endorsers).unwrap();
        ordering
            .broadcast(admin.assemble_transaction(&proposal, &responses))
            .unwrap();
        for _ in 0..5 {
            ordering.tick();
        }
        while let Some(block) = ordering.deliver(&net.channel, peers[0].height()) {
            for p in &peers {
                p.commit_block(&block).unwrap();
            }
        }

        // Endorse + submit n_tx puts.
        let client = Client::new(
            fabric::msp::issue_identity(&net.org_cas[0], "c", Role::Client, b"ab-client"),
            net.channel.clone(),
        );
        let mut endorse_total = std::time::Duration::ZERO;
        let mut tx_bytes = 0usize;
        let mut envelopes = Vec::with_capacity(n_tx);
        for i in 0..n_tx {
            let proposal = client.create_proposal(
                "kv",
                "put",
                vec![format!("k{i}").into_bytes(), vec![0u8; 64]],
            );
            let start = std::time::Instant::now();
            let responses = client.collect_endorsements(&proposal, &endorsers).unwrap();
            endorse_total += start.elapsed();
            let env = client.assemble_transaction(&proposal, &responses);
            tx_bytes += env.wire_size();
            envelopes.push(env);
        }
        // Commit (validation at peer 0) under the clock.
        let start = std::time::Instant::now();
        for env in envelopes {
            ordering.broadcast(env).unwrap();
            while let Some(block) = ordering.deliver(&net.channel, peers[0].height()) {
                peers[0].commit_block(&block).unwrap();
            }
        }
        for _ in 0..5 {
            ordering.tick();
        }
        while let Some(block) = ordering.deliver(&net.channel, peers[0].height()) {
            peers[0].commit_block(&block).unwrap();
        }
        let elapsed = start.elapsed();
        table.row(vec![
            format!("{orgs}"),
            format!("{:.2}", endorse_total.as_secs_f64() * 1e3 / n_tx as f64),
            format!("{:.0}", n_tx as f64 / elapsed.as_secs_f64()),
            format!("{:.0}", tx_bytes as f64 / n_tx as f64),
        ]);
    }
    table.print();
    println!("\nexpected: endorsement latency grows linearly with fan-out (one simulation +");
    println!("signature per endorser); commit throughput decreases as the default VSCC");
    println!("verifies one more endorsement signature per added org; tx size grows by one");
    println!("endorsement (certificate + signature) per org.");
}
