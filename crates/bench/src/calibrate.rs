//! Host calibration: measures the real CPU costs that parameterize the
//! WAN model (see `DESIGN.md`, "Calibration methodology").

use std::time::Instant;

use fabric::crypto::SigningKey;

use crate::pipeline::{run_pipeline, PipelineConfig, Storage, TxKind};

/// Measured per-operation costs on this host.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// One ECDSA P-256 verification, nanoseconds.
    pub verify_ns: u64,
    /// Parallelizable VSCC work per spend transaction, nanoseconds.
    pub vscc_ns_per_tx: u64,
    /// Sequential (rw-check + ledger) work per spend transaction, ns.
    pub seq_ns_per_tx: u64,
    /// Average serialized spend transaction size, bytes.
    pub spend_tx_bytes: u64,
    /// Average serialized mint transaction size, bytes.
    pub mint_tx_bytes: u64,
}

/// Measures ECDSA verification cost.
pub fn measure_verify_ns(iterations: u32) -> u64 {
    let key = SigningKey::from_seed(b"calibration");
    let sig = key.sign(b"calibration message");
    let start = Instant::now();
    for _ in 0..iterations {
        key.verifying_key()
            .verify(b"calibration message", &sig)
            .expect("valid signature");
    }
    (start.elapsed().as_nanos() / iterations.max(1) as u128) as u64
}

/// Runs the full calibration: a crypto microbench plus a small real
/// pipeline run with VSCC parallelism 1 to extract per-transaction stage
/// costs.
pub fn calibrate(sample_txs: usize) -> Calibration {
    let verify_ns = measure_verify_ns(200);
    let spend = run_pipeline(&PipelineConfig {
        n_tx: sample_txs,
        kind: TxKind::Spend,
        preferred_block_bytes: 512 * 1024,
        vscc_parallelism: 1,
        storage: Storage::Mem,
        paced_tps: None,
    });
    let mint = run_pipeline(&PipelineConfig {
        n_tx: (sample_txs / 4).max(50),
        kind: TxKind::Mint,
        preferred_block_bytes: 512 * 1024,
        vscc_parallelism: 1,
        storage: Storage::Mem,
        paced_tps: None,
    });
    let per_tx = |stage_avg_ms: f64, txs_per_block: f64| {
        ((stage_avg_ms * 1e6) / txs_per_block.max(1.0)) as u64
    };
    Calibration {
        verify_ns,
        vscc_ns_per_tx: per_tx(spend.vscc.avg_ms, spend.txs_per_block).max(1),
        seq_ns_per_tx: per_tx(spend.rw_check.avg_ms + spend.ledger.avg_ms, spend.txs_per_block)
            .max(1),
        spend_tx_bytes: spend.avg_tx_bytes as u64,
        mint_tx_bytes: mint.avg_tx_bytes as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_cost_is_plausible() {
        let ns = measure_verify_ns(20);
        // Anywhere from 10 µs (optimized native) to 50 ms (debug) is
        // plausible; just check it's nonzero and finite.
        assert!(ns > 1_000, "verify measured at {ns} ns");
        assert!(ns < 500_000_000);
    }

    #[test]
    fn calibration_produces_positive_costs() {
        let cal = calibrate(60);
        assert!(cal.vscc_ns_per_tx > 0);
        assert!(cal.seq_ns_per_tx > 0);
        assert!(cal.spend_tx_bytes > 300);
        assert!(cal.mint_tx_bytes > 300);
    }
}
