//! The calibrated WAN model for Fig. 8 and Table 2.
//!
//! The cluster experiments (Fig. 6/7, Table 1) are CPU-bound and run for
//! real on this host; the scalability experiments (Fig. 8, Table 2) are
//! bandwidth-bound across 100 VMs in five data centers, which no single
//! machine can reproduce directly. Per the substitution methodology in
//! `DESIGN.md`, the harness measures the *CPU* costs for real (see
//! [`crate::calibrate`]) and simulates the *network* with the paper's own
//! netperf numbers, using the `fabric-simnet` discrete-event engine.
//!
//! Model shape: OSNs stream 2 MB blocks to their directly connected peers
//! (every peer, or only per-org gossip leaders); leaders forward blocks to
//! their org members; each peer validates with a parallel VSCC stage and a
//! sequential rw-check+ledger stage. A peer's throughput is
//! `committed transactions / time of last commit`.

use std::collections::HashMap;

use fabric::simnet::{CpuServer, SequentialResource, SimEvent, Simulator};

/// Calibrated per-transaction validation costs.
#[derive(Clone, Copy, Debug)]
pub struct ValidationModel {
    /// VSCC worker width (vCPUs).
    pub vcpus: usize,
    /// Parallelizable VSCC nanoseconds per transaction.
    pub vscc_ns_per_tx: u64,
    /// Sequential (rw-check + ledger) nanoseconds per transaction.
    pub seq_ns_per_tx: u64,
}

/// One region-to-region link: latency and single-connection bandwidth.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// One-way propagation latency in nanoseconds.
    pub latency_ns: u64,
    /// Single-TCP-connection bandwidth in bits/second.
    pub bandwidth_bps: u64,
}

/// A WAN experiment description.
pub struct WanExperiment {
    /// Region names (index = region id).
    pub regions: Vec<String>,
    /// `links[a][b]`: the path from region `a` to region `b`.
    pub links: Vec<Vec<LinkSpec>>,
    /// Region hosting the ordering service.
    pub osn_region: usize,
    /// Number of OSNs.
    pub osn_count: usize,
    /// OSN NIC egress rate (bits/second).
    pub osn_egress_bps: u64,
    /// Peer NIC egress rate.
    pub peer_egress_bps: u64,
    /// Region of each peer.
    pub peer_regions: Vec<usize>,
    /// `Some(orgs)`: gossip mode; each inner vec lists the peer indices of
    /// one org, whose first entry is the leader pulling from the OSNs.
    /// `None`: every peer connects to an OSN directly.
    pub gossip_orgs: Option<Vec<Vec<usize>>>,
    /// Transactions per block.
    pub block_txs: usize,
    /// Serialized block size in bytes.
    pub block_bytes: u64,
    /// Number of blocks to stream (steady-state length).
    pub blocks: usize,
    /// Calibrated validation costs.
    pub validation: ValidationModel,
}

/// Per-peer and per-region simulated throughput.
pub struct WanResult {
    /// Committed tx/s at each peer.
    pub per_peer_tps: Vec<f64>,
    /// Average tx/s over the peers of each region.
    pub region_tps: HashMap<String, f64>,
    /// Average tx/s across all peers.
    pub avg_tps: f64,
}

#[derive(Clone, Copy)]
struct BlockMsg {
    /// Block sequence number (diagnostics; delivery order is by sim time).
    #[allow(dead_code)]
    number: usize,
}

/// Runs the model.
pub fn simulate_wan(exp: &WanExperiment) -> WanResult {
    let n_peers = exp.peer_regions.len();
    let n_nodes = exp.osn_count + n_peers;
    let mut sim: Simulator<BlockMsg> = Simulator::new(n_nodes);

    // Node layout: [0, osn_count) OSNs, then peers.
    let peer_node = |p: usize| exp.osn_count + p;
    let node_region = |node: usize| -> usize {
        if node < exp.osn_count {
            exp.osn_region
        } else {
            exp.peer_regions[node - exp.osn_count]
        }
    };
    for a in 0..n_nodes {
        let egress = if a < exp.osn_count {
            exp.osn_egress_bps
        } else {
            exp.peer_egress_bps
        };
        sim.set_egress(a, egress);
        for b in 0..n_nodes {
            if a == b {
                continue;
            }
            let link = exp.links[node_region(a)][node_region(b)];
            sim.set_link(a, b, link.latency_ns, link.bandwidth_bps);
        }
    }

    // Who pulls directly from the ordering service?
    let direct: Vec<usize> = match &exp.gossip_orgs {
        Some(orgs) => orgs.iter().map(|org| org[0]).collect(),
        None => (0..n_peers).collect(),
    };
    // Leader -> members map for the gossip forwarding hop.
    let mut forward_to: HashMap<usize, Vec<usize>> = HashMap::new();
    if let Some(orgs) = &exp.gossip_orgs {
        for org in orgs {
            forward_to.insert(org[0], org[1..].to_vec());
        }
    }

    // The OSNs stream every block to every direct puller, round-robin
    // across blocks so the egress queue interleaves connections fairly.
    for number in 0..exp.blocks {
        for (i, &p) in direct.iter().enumerate() {
            let osn = i % exp.osn_count;
            sim.send(osn, peer_node(p), exp.block_bytes, BlockMsg { number });
        }
    }

    // Per-peer validation pipelines.
    let mut vscc: Vec<CpuServer> = (0..n_peers)
        .map(|_| CpuServer::new(exp.validation.vcpus))
        .collect();
    let mut seq: Vec<SequentialResource> =
        (0..n_peers).map(|_| SequentialResource::new()).collect();
    let mut committed: Vec<usize> = vec![0; n_peers];
    let mut last_commit: Vec<u64> = vec![0; n_peers];

    while let Some((now, event)) = sim.next() {
        let SimEvent::Message { to, msg, .. } = event else {
            continue;
        };
        let p = to - exp.osn_count;
        // Forward first (gossip leaders), so network and CPU overlap.
        if let Some(members) = forward_to.get(&p) {
            for &m in members {
                sim.send(to, peer_node(m), exp.block_bytes, msg);
            }
        }
        // Validate: parallel VSCC then sequential stages.
        let vscc_done = vscc[p].run_parallel(now, exp.block_txs, exp.validation.vscc_ns_per_tx);
        let commit_done = seq[p].run(
            vscc_done,
            exp.block_txs as u64 * exp.validation.seq_ns_per_tx,
        );
        committed[p] += exp.block_txs;
        last_commit[p] = last_commit[p].max(commit_done);
    }

    let per_peer_tps: Vec<f64> = committed
        .iter()
        .zip(&last_commit)
        .map(|(&txs, &t)| {
            if t == 0 {
                0.0
            } else {
                txs as f64 / (t as f64 / 1e9)
            }
        })
        .collect();
    let mut region_sum: HashMap<String, (f64, usize)> = HashMap::new();
    for (p, tps) in per_peer_tps.iter().enumerate() {
        let name = exp.regions[exp.peer_regions[p]].clone();
        let entry = region_sum.entry(name).or_insert((0.0, 0));
        entry.0 += tps;
        entry.1 += 1;
    }
    let region_tps = region_sum
        .into_iter()
        .map(|(name, (sum, count))| (name, sum / count as f64))
        .collect();
    let avg_tps = per_peer_tps.iter().sum::<f64>() / per_peer_tps.len().max(1) as f64;
    WanResult {
        per_peer_tps,
        region_tps,
        avg_tps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::simnet::{GBPS, MBPS, MS};

    fn lan_experiment(peers: usize, gossip: bool) -> WanExperiment {
        let regions = vec!["DC".to_string()];
        let links = vec![vec![LinkSpec {
            latency_ns: MS / 2,
            bandwidth_bps: 5 * GBPS,
        }]];
        let gossip_orgs = gossip.then(|| {
            (0..peers / 10)
                .map(|o| (o * 10..(o + 1) * 10).collect())
                .collect()
        });
        WanExperiment {
            regions,
            links,
            osn_region: 0,
            osn_count: 3,
            osn_egress_bps: 5 * GBPS,
            peer_egress_bps: 5 * GBPS,
            peer_regions: vec![0; peers],
            gossip_orgs,
            block_txs: 670,
            block_bytes: 2 * 1024 * 1024,
            blocks: 30,
            // Paper-scale validation (~3 ktps bound) so the LAN network
            // never binds, as in Fig. 8's flat LAN series.
            validation: ValidationModel {
                vcpus: 16,
                vscc_ns_per_tx: 2_000_000, // 2 ms parallel work per tx
                seq_ns_per_tx: 300_000,
            },
        }
    }

    #[test]
    fn lan_throughput_flat_with_peers() {
        let t20 = simulate_wan(&lan_experiment(20, false)).avg_tps;
        let t100 = simulate_wan(&lan_experiment(100, false)).avg_tps;
        assert!(t20 > 1000.0, "LAN throughput {t20}");
        // Within 15%: the LAN series in Fig. 8 is flat.
        assert!(
            (t20 - t100).abs() / t20 < 0.15,
            "LAN scales flat: {t20} vs {t100}"
        );
    }

    #[test]
    fn wan_bottleneck_reduces_throughput_and_gossip_recovers() {
        // Two regions: orderer in TK, peers in HK at 240 Mbps per stream.
        let mk = |peers: usize, gossip: bool| {
            let regions = vec!["TK".to_string(), "HK".to_string()];
            let wan = LinkSpec {
                latency_ns: 30 * MS,
                bandwidth_bps: 240 * MBPS,
            };
            let lan = LinkSpec {
                latency_ns: MS / 2,
                bandwidth_bps: 5 * GBPS,
            };
            let gossip_orgs = gossip.then(|| {
                (0..peers / 10)
                    .map(|o| (o * 10..(o + 1) * 10).collect())
                    .collect()
            });
            WanExperiment {
                regions,
                links: vec![vec![lan, wan], vec![wan, lan]],
                osn_region: 0,
                osn_count: 3,
                osn_egress_bps: 2 * GBPS,
                peer_egress_bps: 5 * GBPS,
                peer_regions: vec![1; peers],
                gossip_orgs,
                block_txs: 670,
                block_bytes: 2 * 1024 * 1024,
                blocks: 30,
                validation: ValidationModel {
                    vcpus: 16,
                    vscc_ns_per_tx: 300_000,
                    seq_ns_per_tx: 60_000,
                },
            }
        };
        let few = simulate_wan(&mk(20, false)).avg_tps;
        let many = simulate_wan(&mk(80, false)).avg_tps;
        assert!(
            many < few * 0.75,
            "OSN egress saturates with more peers: {few} -> {many}"
        );
        let with_gossip = simulate_wan(&mk(80, true)).avg_tps;
        assert!(
            with_gossip > many * 1.2,
            "gossip recovers throughput: {many} -> {with_gossip}"
        );
    }

    #[test]
    fn slow_single_connection_caps_region() {
        // One distant peer behind a 54 Mbps single-TCP path (the paper's
        // OS data center) cannot exceed ~54 Mbps of block flow.
        let regions = vec!["TK".to_string(), "OS".to_string()];
        let wan = LinkSpec {
            latency_ns: 120 * MS,
            bandwidth_bps: 54 * MBPS,
        };
        let lan = LinkSpec {
            latency_ns: MS / 2,
            bandwidth_bps: 5 * GBPS,
        };
        let exp = WanExperiment {
            regions,
            links: vec![vec![lan, wan], vec![wan, lan]],
            osn_region: 0,
            osn_count: 3,
            osn_egress_bps: 5 * GBPS,
            peer_egress_bps: 5 * GBPS,
            peer_regions: vec![1],
            gossip_orgs: None,
            block_txs: 670,
            block_bytes: 2 * 1024 * 1024,
            blocks: 30,
            validation: ValidationModel {
                vcpus: 16,
                vscc_ns_per_tx: 100_000,
                seq_ns_per_tx: 20_000,
            },
        };
        let result = simulate_wan(&exp);
        // 54 Mbps / (2 MiB per 670 tx) ≈ 2150 tps ceiling.
        let ceiling = 54.0e6 / (2.0 * 1024.0 * 1024.0 * 8.0) * 670.0;
        assert!(
            result.avg_tps < ceiling * 1.05,
            "tps {} exceeds TCP ceiling {}",
            result.avg_tps,
            ceiling
        );
        assert!(result.avg_tps > ceiling * 0.7);
    }
}
