//! Latency statistics and table formatting for the benchmark reports.

use std::time::Duration;

/// Summary statistics over a latency sample (all in milliseconds), in the
/// shape of the paper's Table 1 columns: avg, st.dev, 99%, 99.9%.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Mean.
    pub avg_ms: f64,
    /// Standard deviation.
    pub stdev_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
}

impl LatencyStats {
    /// Computes stats from raw durations.
    pub fn from_durations(samples: &[Duration]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        Self::from_ms(&ms)
    }

    /// Computes stats from millisecond samples.
    pub fn from_ms(samples: &[f64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let n = samples.len() as f64;
        let avg = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - avg) * (x - avg)).sum::<f64>() / n;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let pct = |p: f64| {
            let idx = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        LatencyStats {
            avg_ms: avg,
            stdev_ms: var.sqrt(),
            p99_ms: pct(99.0),
            p999_ms: pct(99.9),
        }
    }
}

/// Renders a simple aligned table to stdout.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Prints the table.
    pub fn print(&self) {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::from("| ");
            for (i, cell) in cells.iter().enumerate().take(cols) {
                out.push_str(&format!("{:width$} | ", cell, width = widths[i]));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&sep);
        for row in &self.rows {
            line(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_sample() {
        let s = LatencyStats::from_ms(&[5.0; 100]);
        assert!((s.avg_ms - 5.0).abs() < 1e-9);
        assert!(s.stdev_ms < 1e-9);
        assert!((s.p99_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn stats_percentiles_ordered() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = LatencyStats::from_ms(&samples);
        assert!(s.avg_ms > 499.0 && s.avg_ms < 502.0);
        assert!(s.p99_ms >= 989.0);
        assert!(s.p999_ms >= s.p99_ms);
    }

    #[test]
    fn empty_sample_is_zero() {
        let s = LatencyStats::from_ms(&[]);
        assert_eq!(s.avg_ms, 0.0);
    }

    #[test]
    fn durations_convert_to_ms() {
        let s = LatencyStats::from_durations(&[Duration::from_millis(10)]);
        assert!((s.avg_ms - 10.0).abs() < 0.01);
    }
}
