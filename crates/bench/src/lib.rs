//! # fabric-bench
//!
//! The benchmark harness reproducing every table and figure of the paper's
//! evaluation (Sec. 5.2). Each `benches/*.rs` target is a standalone
//! binary (`harness = false`) that prints the paper's rows next to the
//! values measured (or simulated, for the WAN experiments) here; see
//! `EXPERIMENTS.md` for the index and for recorded paper-vs-measured
//! results.
//!
//! * [`pipeline`] — the measured end-to-end execute-order-validate run
//!   (Fig. 6, Fig. 7, Table 1, Experiment 3).
//! * [`model`] — the calibrated discrete-event WAN model
//!   (Fig. 8, Table 2).
//! * [`calibrate`] — host calibration feeding the model.
//! * [`stats`] — latency statistics and table rendering.

pub mod calibrate;
pub mod model;
pub mod pipeline;
pub mod stats;

use fabric::simnet::{GBPS, MBPS, MS};
use model::{LinkSpec, ValidationModel, WanExperiment};

/// Paper constants: transactions per 2 MB block (Sec. 5.2: 473 mint /
/// 670 spend).
pub const PAPER_SPEND_PER_2MB: usize = 670;
/// Paper constant: mint transactions per 2 MB block.
pub const PAPER_MINT_PER_2MB: usize = 473;

/// The paper's netperf measurements to Tokyo (Table 2 first row), Mbps.
pub const PAPER_NETPERF_TO_TK: [(&str, u64); 4] =
    [("HK", 240), ("ML", 98), ("SD", 108), ("OS", 54)];

/// Builds the Fig. 8 experiment: `peers` peers in one or two data centers.
///
/// `two_dc`: orderer + endorsers in TK, the (non-endorsing) measured peers
/// in HK behind 240 Mbps single-TCP paths. `gossip`: peers grouped into
/// orgs of 10 with one leader each.
pub fn fig8_experiment(
    peers: usize,
    two_dc: bool,
    gossip: bool,
    validation: ValidationModel,
    block_txs: usize,
    block_bytes: u64,
) -> WanExperiment {
    let lan = LinkSpec {
        latency_ns: MS / 2,
        bandwidth_bps: 5 * GBPS, // the paper measured 5-6.5 Gbps in-DC
    };
    let wan = LinkSpec {
        latency_ns: 30 * MS,
        bandwidth_bps: 240 * MBPS, // the paper's TK<->HK netperf
    };
    let (regions, links, peer_region) = if two_dc {
        (
            vec!["TK".to_string(), "HK".to_string()],
            vec![vec![lan, wan], vec![wan, lan]],
            1,
        )
    } else {
        (vec!["HK".to_string()], vec![vec![lan]], 0)
    };
    let gossip_orgs = gossip.then(|| {
        (0..peers.div_ceil(10))
            .map(|o| (o * 10..((o + 1) * 10).min(peers)).collect())
            .collect()
    });
    WanExperiment {
        regions,
        links,
        osn_region: 0,
        osn_count: 3,
        // Aggregate WAN egress per OSN: the paper's inter-DC capacity is
        // bounded well below the 5-6.5 Gbps LAN figure; 2 Gbps reproduces
        // the observed saturation point (~90 peers at ~2 ktps).
        osn_egress_bps: if two_dc { 2 * GBPS } else { 5 * GBPS },
        peer_egress_bps: 5 * GBPS,
        peer_regions: vec![peer_region; peers],
        gossip_orgs,
        block_txs,
        block_bytes,
        blocks: 40,
        validation,
    }
}

/// Builds the Table 2 experiment: orderer in TK, 20 peers in each of five
/// data centers, with the paper's netperf single-TCP caps.
pub fn table2_experiment(
    gossip: bool,
    validation: ValidationModel,
    block_txs: usize,
    block_bytes: u64,
) -> WanExperiment {
    let region_names = ["TK", "HK", "ML", "SD", "OS"];
    let to_tk_mbps = [5_000u64, 240, 98, 108, 54]; // TK row uses LAN speed
    let n = region_names.len();
    let mut links = vec![
        vec![
            LinkSpec {
                latency_ns: 60 * MS,
                bandwidth_bps: 100 * MBPS,
            };
            n
        ];
        n
    ];
    #[allow(clippy::needless_range_loop)]
    for r in 0..n {
        // Within a region: LAN.
        links[r][r] = LinkSpec {
            latency_ns: MS / 2,
            bandwidth_bps: 5 * GBPS,
        };
        // To/from TK: the paper's netperf numbers.
        links[r][0] = LinkSpec {
            latency_ns: 40 * MS,
            bandwidth_bps: to_tk_mbps[r] * MBPS,
        };
        links[0][r] = links[r][0];
    }
    // 20 peers per region.
    let mut peer_regions = Vec::new();
    for r in 0..n {
        peer_regions.extend(std::iter::repeat_n(r, 20));
    }
    let gossip_orgs = gossip.then(|| {
        // 2 orgs of 10 peers per DC (the paper's layout).
        (0..10usize)
            .map(|o| (o * 10..(o + 1) * 10).collect())
            .collect()
    });
    WanExperiment {
        regions: region_names.iter().map(|s| s.to_string()).collect(),
        links,
        osn_region: 0,
        osn_count: 3,
        osn_egress_bps: 2 * GBPS,
        peer_egress_bps: 5 * GBPS,
        peer_regions,
        gossip_orgs,
        block_txs,
        block_bytes,
        blocks: 40,
        validation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_lan_experiment_shape() {
        let exp = fig8_experiment(
            20,
            false,
            false,
            ValidationModel {
                vcpus: 16,
                vscc_ns_per_tx: 300_000,
                seq_ns_per_tx: 60_000,
            },
            670,
            2 * 1024 * 1024,
        );
        assert_eq!(exp.peer_regions.len(), 20);
        assert!(exp.gossip_orgs.is_none());
    }

    #[test]
    fn table2_has_100_peers_in_5_regions() {
        let exp = table2_experiment(
            true,
            ValidationModel {
                vcpus: 16,
                vscc_ns_per_tx: 300_000,
                seq_ns_per_tx: 60_000,
            },
            670,
            2 * 1024 * 1024,
        );
        assert_eq!(exp.peer_regions.len(), 100);
        assert_eq!(exp.regions.len(), 5);
        assert_eq!(exp.gossip_orgs.as_ref().unwrap().len(), 10);
    }
}
