//! The measured end-to-end pipeline: clients → endorser → ordering →
//! validation/commit, with per-stage timing (paper Sec. 5.2 methodology).
//!
//! The harness mirrors the paper's two-phase method: a mint phase creates
//! the coins, then the measured phase drives mint or spend transactions
//! through the full execute-order-validate flow at saturation (for
//! throughput) or paced (for latency staging), reporting the same stage
//! breakdown as the paper's Table 1.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fabric::client::Client;
use fabric::fabcoin::{
    coin_key, CentralBank, CoinState, FabcoinChaincode, FabcoinVscc, Wallet, FABCOIN_NAMESPACE,
};
use fabric::kvstore::backend::Backend;
use fabric::msp::Role;
use fabric::ordering::testkit::TestNet;
use fabric::ordering::OrderingCluster;
use fabric::peer::{Peer, PeerConfig, PipelineHandle, PipelineOptions, PipelineStats};
use fabric::primitives::config::{BatchConfig, ConsensusType};
use fabric::primitives::ids::{TxId, TxValidationCode};
use fabric::primitives::transaction::Envelope;
use fabric::primitives::wire::Wire;

use crate::stats::LatencyStats;

/// Transaction kind for the measured phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxKind {
    /// Coin-creating transactions.
    Mint,
    /// Single-input single-output spends (the paper's workload).
    Spend,
}

/// Peer storage backing.
#[derive(Clone, Debug)]
pub enum Storage {
    /// In-memory (the paper's RAM-disk variant).
    Mem,
    /// File-system directory with fsync (the paper's SSD variant).
    Fs(PathBuf),
}

/// Pipeline run configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Number of measured transactions.
    pub n_tx: usize,
    /// Measured transaction kind.
    pub kind: TxKind,
    /// Preferred block size in bytes (the Fig. 6 knob).
    pub preferred_block_bytes: u32,
    /// VSCC worker-pool width (the Fig. 7 knob).
    pub vscc_parallelism: usize,
    /// Ledger storage.
    pub storage: Storage,
    /// `Some(rate)` paces submission at `rate` tx/s (latency runs);
    /// `None` submits at saturation (throughput runs).
    pub paced_tps: Option<f64>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            n_tx: 1000,
            kind: TxKind::Spend,
            preferred_block_bytes: 2 * 1024 * 1024,
            vscc_parallelism: 4,
            storage: Storage::Mem,
            paced_tps: None,
        }
    }
}

/// Results of one pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// End-to-end committed transactions per second.
    pub tps: f64,
    /// Validation-phase-only throughput (txs / summed validation time).
    pub validation_tps: f64,
    /// Average serialized transaction size in bytes.
    pub avg_tx_bytes: f64,
    /// Average transactions per cut block.
    pub txs_per_block: f64,
    /// Number of blocks committed.
    pub blocks: usize,
    /// Endorsement latency.
    pub endorse: LatencyStats,
    /// Ordering latency (broadcast → block cut & received).
    pub ordering: LatencyStats,
    /// VSCC stage latency per block.
    pub vscc: LatencyStats,
    /// Read-write check stage latency per block.
    pub rw_check: LatencyStats,
    /// Ledger stage latency per block.
    pub ledger: LatencyStats,
    /// Whole-validation latency per block.
    pub validation: LatencyStats,
    /// End-to-end latency per transaction.
    pub e2e: LatencyStats,
    /// Transactions that failed validation (should be 0).
    pub invalid: usize,
    /// Pipelined-committer stage histograms and queue gauges.
    pub pipeline: PipelineStats,
}

/// Runs the full pipeline measurement.
pub fn run_pipeline(cfg: &PipelineConfig) -> PipelineResult {
    let batch = BatchConfig {
        max_message_count: 1_000_000,
        absolute_max_bytes: 64 * 1024 * 1024,
        preferred_max_bytes: cfg.preferred_block_bytes,
        batch_timeout_ms: 300,
    };
    let net = TestNet::with_batch(&["Org1"], ConsensusType::Solo, 1, batch);
    let mut ordering =
        OrderingCluster::new(ConsensusType::Solo, net.orderers(1), vec![net.genesis.clone()])
            .expect("valid genesis");
    let genesis = ordering.deliver(&net.channel, 0).expect("genesis");

    let bank = CentralBank::new(1, b"bench-cb");
    let backend: Arc<dyn Backend> = match &cfg.storage {
        Storage::Mem => Arc::new(fabric::kvstore::MemBackend::new()),
        Storage::Fs(dir) => {
            std::fs::remove_dir_all(dir).ok();
            Arc::new(fabric::kvstore::FsBackend::new(dir).expect("bench dir"))
        }
    };
    let identity = fabric::msp::issue_identity(
        &net.org_cas[0],
        "peer0.org1",
        Role::Peer,
        b"bench-peer",
    );
    let peer = Peer::join(
        identity,
        &genesis,
        backend,
        PeerConfig {
            vscc_parallelism: cfg.vscc_parallelism,
            runtime: fabric::chaincode::RuntimeConfig { exec_timeout: None, ..Default::default() },
            sync_writes: matches!(cfg.storage, Storage::Fs(_)),
            ..Default::default()
        },
    )
    .expect("peer joins");
    peer.install_chaincode(FABCOIN_NAMESPACE, Arc::new(FabcoinChaincode));
    peer.register_vscc(
        FABCOIN_NAMESPACE,
        Arc::new(FabcoinVscc::new(bank.public_keys(), 1)),
    );

    let client_identity = fabric::msp::issue_identity(
        &net.org_cas[0],
        "client.org1",
        Role::Client,
        b"bench-client",
    );
    let client = Client::new(client_identity, net.channel.clone());
    let mut wallet = Wallet::new();
    let address = wallet.new_address(b"bench-wallet");

    let mut endorse_samples: Vec<Duration> = Vec::new();

    // --- Phase 1: mint the coins the spend phase will consume (or the
    // measured mints themselves). ---
    let spends_needed = if cfg.kind == TxKind::Spend { cfg.n_tx } else { 0 };
    if spends_needed > 0 {
        // Batch mints: 200 outputs per mint keeps this phase short.
        let mut minted = 0usize;
        while minted < spends_needed {
            let count = 200.min(spends_needed - minted);
            let outputs: Vec<CoinState> = (0..count)
                .map(|_| CoinState {
                    amount: 10,
                    owner: address.clone(),
                    label: "FBC".into(),
                })
                .collect();
            let nonce = client.next_nonce();
            let txid = TxId::derive(&client.identity().serialized().to_wire(), &nonce);
            let request = bank.create_mint(outputs.clone(), &txid, 1);
            let proposal = client.create_proposal_with_nonce(
                FABCOIN_NAMESPACE,
                "mint",
                vec![request.to_wire()],
                nonce,
            );
            let responses = client
                .collect_endorsements(&proposal, &[&peer])
                .expect("mint endorses");
            let envelope = client.assemble_transaction(&proposal, &responses);
            ordering.broadcast(envelope).expect("mint broadcasts");
            for (j, output) in outputs.iter().enumerate() {
                wallet.note_coin(&coin_key(&txid, j as u32), output);
            }
            minted += count;
        }
        flush_and_commit(&mut ordering, &net, &peer);
    }

    // --- Phase 2: pre-build the measured envelopes (endorsement timed).
    let mut envelopes: Vec<(TxId, Envelope)> = Vec::with_capacity(cfg.n_tx);
    let mut total_bytes = 0usize;
    match cfg.kind {
        TxKind::Spend => {
            let coins = wallet.coins("FBC");
            assert!(coins.len() >= cfg.n_tx, "not enough coins minted");
            for coin in coins.iter().take(cfg.n_tx) {
                let nonce = client.next_nonce();
                let txid = TxId::derive(&client.identity().serialized().to_wire(), &nonce);
                let request = wallet
                    .create_spend(
                        std::slice::from_ref(&coin.key),
                        vec![CoinState {
                            amount: coin.amount,
                            owner: address.clone(),
                            label: "FBC".into(),
                        }],
                        &txid,
                    )
                    .expect("wallet owns coin");
                let proposal = client.create_proposal_with_nonce(
                    FABCOIN_NAMESPACE,
                    "spend",
                    vec![request.to_wire()],
                    nonce,
                );
                let start = Instant::now();
                let responses = client
                    .collect_endorsements(&proposal, &[&peer])
                    .expect("spend endorses");
                endorse_samples.push(start.elapsed());
                let envelope = client.assemble_transaction(&proposal, &responses);
                total_bytes += envelope.wire_size();
                envelopes.push((txid, envelope));
            }
        }
        TxKind::Mint => {
            for _ in 0..cfg.n_tx {
                let nonce = client.next_nonce();
                let txid = TxId::derive(&client.identity().serialized().to_wire(), &nonce);
                let request = bank.create_mint(
                    vec![CoinState {
                        amount: 10,
                        owner: address.clone(),
                        label: "FBC".into(),
                    }],
                    &txid,
                    1,
                );
                let proposal = client.create_proposal_with_nonce(
                    FABCOIN_NAMESPACE,
                    "mint",
                    vec![request.to_wire()],
                    nonce,
                );
                let start = Instant::now();
                let responses = client
                    .collect_endorsements(&proposal, &[&peer])
                    .expect("mint endorses");
                endorse_samples.push(start.elapsed());
                let envelope = client.assemble_transaction(&proposal, &responses);
                total_bytes += envelope.wire_size();
                envelopes.push((txid, envelope));
            }
        }
    }

    // --- Phase 3: measured submission, committed through the pipelined
    // committer (block n+1's VSCC overlaps block n's rw-check/append). ---
    let n = envelopes.len();
    let mut send_ts: std::collections::HashMap<TxId, Instant> =
        std::collections::HashMap::with_capacity(n);
    let mut ordering_samples: Vec<Duration> = Vec::with_capacity(n);
    let mut e2e_samples: Vec<Duration> = Vec::with_capacity(n);
    let mut timings = Vec::new();
    let mut block_sizes = Vec::new();
    let mut invalid = 0usize;

    let handle = peer.pipeline_with(PipelineOptions {
        vscc_workers: cfg.vscc_parallelism,
        intake_capacity: 64,
        ..PipelineOptions::default()
    });
    // Block number → tx ids, so commit events can be matched back to the
    // transactions' send timestamps.
    let mut block_txids: std::collections::HashMap<u64, Vec<TxId>> =
        std::collections::HashMap::new();
    let mut next_deliver = peer.height();

    let t0 = Instant::now();
    for (i, (txid, envelope)) in envelopes.into_iter().enumerate() {
        if let Some(rate) = cfg.paced_tps {
            let due = t0 + Duration::from_secs_f64(i as f64 / rate);
            while Instant::now() < due {
                std::hint::spin_loop();
            }
        }
        send_ts.insert(txid, Instant::now());
        ordering.broadcast(envelope).expect("broadcast accepted");
        // Feed any block the orderer has cut into the pipeline.
        submit_ready(
            &ordering,
            &net,
            &handle,
            &mut next_deliver,
            &send_ts,
            &mut ordering_samples,
            &mut block_txids,
        );
        drain_events(
            &handle,
            &send_ts,
            &mut block_txids,
            &mut e2e_samples,
            &mut timings,
            &mut block_sizes,
            &mut invalid,
        );
    }
    // Flush the tail: tick until the timeout cuts the last partial block.
    for _ in 0..10 {
        ordering.tick();
        submit_ready(
            &ordering,
            &net,
            &handle,
            &mut next_deliver,
            &send_ts,
            &mut ordering_samples,
            &mut block_txids,
        );
    }
    handle
        .wait_committed(next_deliver)
        .expect("pipeline drains");
    drain_events(
        &handle,
        &send_ts,
        &mut block_txids,
        &mut e2e_samples,
        &mut timings,
        &mut block_sizes,
        &mut invalid,
    );
    let elapsed = t0.elapsed();
    let pipeline_stats = handle.close().expect("pipeline closes clean");

    let committed: usize = block_sizes.iter().sum();
    assert_eq!(committed, n, "all measured txs committed");
    let validation_total: Duration = timings
        .iter()
        .map(|t: &fabric::peer::ValidationTiming| t.total())
        .sum();
    PipelineResult {
        tps: n as f64 / elapsed.as_secs_f64(),
        validation_tps: n as f64 / validation_total.as_secs_f64().max(1e-9),
        avg_tx_bytes: total_bytes as f64 / n as f64,
        txs_per_block: n as f64 / block_sizes.len().max(1) as f64,
        blocks: block_sizes.len(),
        endorse: LatencyStats::from_durations(&endorse_samples),
        ordering: LatencyStats::from_durations(&ordering_samples),
        vscc: LatencyStats::from_durations(
            &timings.iter().map(|t| t.vscc).collect::<Vec<_>>(),
        ),
        rw_check: LatencyStats::from_durations(
            &timings.iter().map(|t| t.rw_check).collect::<Vec<_>>(),
        ),
        ledger: LatencyStats::from_durations(
            &timings.iter().map(|t| t.ledger).collect::<Vec<_>>(),
        ),
        validation: LatencyStats::from_durations(
            &timings.iter().map(|t| t.total()).collect::<Vec<_>>(),
        ),
        e2e: LatencyStats::from_durations(&e2e_samples),
        invalid,
        pipeline: pipeline_stats,
    }
}

/// Submits every block the orderer has cut but the pipeline has not seen,
/// recording ordering latency at delivery time.
fn submit_ready(
    ordering: &OrderingCluster,
    net: &TestNet,
    handle: &PipelineHandle,
    next_deliver: &mut u64,
    send_ts: &std::collections::HashMap<TxId, Instant>,
    ordering_samples: &mut Vec<Duration>,
    block_txids: &mut std::collections::HashMap<u64, Vec<TxId>>,
) {
    while let Some(block) = ordering.deliver(&net.channel, *next_deliver) {
        let received = Instant::now();
        let tx_ids: Vec<TxId> = block.envelopes.iter().map(|e| e.tx_id()).collect();
        for txid in &tx_ids {
            if let Some(sent) = send_ts.get(txid) {
                ordering_samples.push(received.duration_since(*sent));
            }
        }
        block_txids.insert(block.header.number, tx_ids);
        handle.submit(block).expect("pipeline accepts block");
        *next_deliver += 1;
    }
}

/// Drains commit events from the pipeline, matching transactions back to
/// their send timestamps for end-to-end latency.
#[allow(clippy::too_many_arguments)]
fn drain_events(
    handle: &PipelineHandle,
    send_ts: &std::collections::HashMap<TxId, Instant>,
    block_txids: &mut std::collections::HashMap<u64, Vec<TxId>>,
    e2e_samples: &mut Vec<Duration>,
    timings: &mut Vec<fabric::peer::ValidationTiming>,
    block_sizes: &mut Vec<usize>,
    invalid: &mut usize,
) {
    while let Some(event) = handle.try_event() {
        let tx_ids = block_txids.remove(&event.block_num).unwrap_or_default();
        let mut measured_in_block = 0;
        for (txid, flag) in tx_ids.iter().zip(&event.validity) {
            if let Some(sent) = send_ts.get(txid) {
                e2e_samples.push(event.committed_at.duration_since(*sent));
                measured_in_block += 1;
                if *flag != TxValidationCode::Valid {
                    *invalid += 1;
                }
            }
        }
        if measured_in_block > 0 {
            timings.push(event.timing);
            block_sizes.push(measured_in_block);
        }
    }
}

/// Commits all outstanding blocks without measuring (setup phases).
fn flush_and_commit(ordering: &mut OrderingCluster, net: &TestNet, peer: &Peer) {
    for _ in 0..10 {
        ordering.tick();
        loop {
            let next = peer.height();
            let Some(block) = ordering.deliver(&net.channel, next) else {
                break;
            };
            let (flags, _) = peer.commit_block(&block).expect("setup commit");
            assert!(
                flags.iter().all(|f| f.is_valid()),
                "setup transactions must validate"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_spend_pipeline_runs() {
        let result = run_pipeline(&PipelineConfig {
            n_tx: 30,
            kind: TxKind::Spend,
            preferred_block_bytes: 16 * 1024,
            vscc_parallelism: 2,
            storage: Storage::Mem,
            paced_tps: None,
        });
        assert!(result.tps > 0.0);
        assert_eq!(result.invalid, 0);
        assert!(result.blocks >= 2, "16 kB blocks split 30 txs");
        assert!(result.avg_tx_bytes > 500.0);
    }

    #[test]
    fn small_mint_pipeline_runs() {
        let result = run_pipeline(&PipelineConfig {
            n_tx: 20,
            kind: TxKind::Mint,
            preferred_block_bytes: 1024 * 1024,
            vscc_parallelism: 2,
            storage: Storage::Mem,
            paced_tps: None,
        });
        assert!(result.tps > 0.0);
        assert_eq!(result.invalid, 0);
    }
}
