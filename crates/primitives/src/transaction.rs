//! Proposals, endorsements, transactions, and envelopes — the messages of
//! the execute-order-validate flow (paper Sec. 3.2–3.4).
//!
//! The lifecycle is:
//!
//! 1. A client builds a [`Proposal`] (chaincode operation + nonce) and signs
//!    it, producing a [`SignedProposal`] sent to endorsing peers.
//! 2. Each endorser simulates the proposal and returns a
//!    [`ProposalResponse`]: the simulation's [`ProposalResponsePayload`]
//!    (tx id, rw-set, chaincode response) plus its [`Endorsement`]
//!    signature over that payload.
//! 3. The client checks that all payloads are byte-identical, assembles a
//!    [`Transaction`], wraps it in a signed [`Envelope`], and broadcasts it
//!    to the ordering service.

use crate::config::ConfigUpdate;
use crate::ids::{ChaincodeId, ChannelId, SerializedIdentity, TxId};
use crate::rwset::TxReadWriteSet;
use crate::wire::{Decoder, Encoder, Wire, WireError};

/// The chaincode invocation carried by a proposal: which chaincode, which
/// function, and its arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProposalPayload {
    /// Target chaincode.
    pub chaincode: ChaincodeId,
    /// Function name within the chaincode.
    pub function: String,
    /// Raw arguments, interpreted by the chaincode.
    pub args: Vec<Vec<u8>>,
}

impl Wire for ProposalPayload {
    fn encode(&self, enc: &mut Encoder) {
        self.chaincode.encode(enc);
        enc.put_string(&self.function);
        enc.put_seq(&self.args, |e, a| e.put_bytes(a));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ProposalPayload {
            chaincode: ChaincodeId::decode(dec)?,
            function: dec.get_string()?,
            args: dec.get_seq(|d| d.get_bytes())?,
        })
    }
}

/// A transaction proposal: identity of the submitting client, the payload,
/// a single-use nonce, and the channel (paper Sec. 3.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proposal {
    /// The channel this proposal targets.
    pub channel: ChannelId,
    /// The submitting client's identity.
    pub creator: SerializedIdentity,
    /// Single-use nonce (counter or random value).
    pub nonce: [u8; 32],
    /// The chaincode operation to simulate.
    pub payload: ProposalPayload,
}

impl Proposal {
    /// Derives the transaction identifier from creator and nonce.
    pub fn tx_id(&self) -> TxId {
        TxId::derive(&self.creator.to_wire(), &self.nonce)
    }
}

impl Wire for Proposal {
    fn encode(&self, enc: &mut Encoder) {
        self.channel.encode(enc);
        self.creator.encode(enc);
        enc.put_raw(&self.nonce);
        self.payload.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Proposal {
            channel: ChannelId::decode(dec)?,
            creator: SerializedIdentity::decode(dec)?,
            nonce: dec.get_array32()?,
            payload: ProposalPayload::decode(dec)?,
        })
    }
}

/// A proposal together with the client's signature over its encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedProposal {
    /// The proposal.
    pub proposal: Proposal,
    /// Client signature over `proposal.to_wire()`.
    pub signature: Vec<u8>,
}

impl Wire for SignedProposal {
    fn encode(&self, enc: &mut Encoder) {
        self.proposal.encode(enc);
        enc.put_bytes(&self.signature);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SignedProposal {
            proposal: Proposal::decode(dec)?,
            signature: dec.get_bytes()?,
        })
    }
}

/// The result a chaincode returns from simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaincodeResponse {
    /// Status code; `200` means success (HTTP-inspired, as in Fabric).
    pub status: u32,
    /// Human-readable message (used for errors).
    pub message: String,
    /// Application-defined response payload.
    pub payload: Vec<u8>,
}

impl ChaincodeResponse {
    /// Status code signalling success.
    pub const OK: u32 = 200;
    /// Status code signalling a chaincode-level error.
    pub const ERROR: u32 = 500;

    /// Creates a success response with a payload.
    pub fn ok(payload: Vec<u8>) -> Self {
        ChaincodeResponse {
            status: Self::OK,
            message: String::new(),
            payload,
        }
    }

    /// Creates an error response with a message.
    pub fn error(message: impl Into<String>) -> Self {
        ChaincodeResponse {
            status: Self::ERROR,
            message: message.into(),
            payload: Vec::new(),
        }
    }

    /// Returns `true` if the status is `OK`.
    pub fn is_ok(&self) -> bool {
        self.status == Self::OK
    }
}

impl Wire for ChaincodeResponse {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.status);
        enc.put_string(&self.message);
        enc.put_bytes(&self.payload);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ChaincodeResponse {
            status: dec.get_u32()?,
            message: dec.get_string()?,
            payload: dec.get_bytes()?,
        })
    }
}

/// What an endorser signs: the simulation result that will be ordered and
/// validated. All endorsers of a transaction must produce byte-identical
/// payloads (paper Sec. 3.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProposalResponsePayload {
    /// The transaction id this simulation belongs to.
    pub tx_id: TxId,
    /// The chaincode invoked.
    pub chaincode: ChaincodeId,
    /// The read-write set produced by simulation.
    pub rwset: TxReadWriteSet,
    /// The chaincode's response value.
    pub response: ChaincodeResponse,
}

impl Wire for ProposalResponsePayload {
    fn encode(&self, enc: &mut Encoder) {
        self.tx_id.encode(enc);
        self.chaincode.encode(enc);
        self.rwset.encode(enc);
        self.response.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ProposalResponsePayload {
            tx_id: TxId::decode(dec)?,
            chaincode: ChaincodeId::decode(dec)?,
            rwset: TxReadWriteSet::decode(dec)?,
            response: ChaincodeResponse::decode(dec)?,
        })
    }
}

/// An endorser's signature over a [`ProposalResponsePayload`].
///
/// The signed message is `payload.to_wire() || endorser.to_wire()`, binding
/// the endorsement to the endorser's identity (as Fabric's ESCC does).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Endorsement {
    /// The endorsing peer's identity.
    pub endorser: SerializedIdentity,
    /// Signature bytes.
    pub signature: Vec<u8>,
}

impl Endorsement {
    /// Builds the exact byte string an endorser signs.
    pub fn signing_bytes(payload: &ProposalResponsePayload, endorser: &SerializedIdentity) -> Vec<u8> {
        let mut bytes = payload.to_wire();
        bytes.extend_from_slice(&endorser.to_wire());
        bytes
    }
}

impl Wire for Endorsement {
    fn encode(&self, enc: &mut Encoder) {
        self.endorser.encode(enc);
        enc.put_bytes(&self.signature);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Endorsement {
            endorser: SerializedIdentity::decode(dec)?,
            signature: dec.get_bytes()?,
        })
    }
}

/// An endorser's reply to a signed proposal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProposalResponse {
    /// The simulation result payload.
    pub payload: ProposalResponsePayload,
    /// The endorser's signature over it.
    pub endorsement: Endorsement,
}

impl Wire for ProposalResponse {
    fn encode(&self, enc: &mut Encoder) {
        self.payload.encode(enc);
        self.endorsement.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ProposalResponse {
            payload: ProposalResponsePayload::decode(dec)?,
            endorsement: Endorsement::decode(dec)?,
        })
    }
}

/// An endorsed transaction ready for ordering: the original operation, the
/// agreed simulation result, and the collected endorsements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// The channel this transaction belongs to.
    pub channel: ChannelId,
    /// The submitting client.
    pub creator: SerializedIdentity,
    /// The proposal nonce (tx id is derived from creator + nonce).
    pub nonce: [u8; 32],
    /// The chaincode operation that was executed.
    pub proposal_payload: ProposalPayload,
    /// The endorsed simulation result (identical across endorsers).
    pub response_payload: ProposalResponsePayload,
    /// Endorsements satisfying the chaincode's endorsement policy.
    pub endorsements: Vec<Endorsement>,
}

impl Transaction {
    /// The transaction id (derived, must match `response_payload.tx_id`).
    pub fn tx_id(&self) -> TxId {
        TxId::derive(&self.creator.to_wire(), &self.nonce)
    }
}

impl Wire for Transaction {
    fn encode(&self, enc: &mut Encoder) {
        self.channel.encode(enc);
        self.creator.encode(enc);
        enc.put_raw(&self.nonce);
        self.proposal_payload.encode(enc);
        self.response_payload.encode(enc);
        enc.put_seq(&self.endorsements, |e, x| x.encode(e));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Transaction {
            channel: ChannelId::decode(dec)?,
            creator: SerializedIdentity::decode(dec)?,
            nonce: dec.get_array32()?,
            proposal_payload: ProposalPayload::decode(dec)?,
            response_payload: ProposalResponsePayload::decode(dec)?,
            endorsements: dec.get_seq(Endorsement::decode)?,
        })
    }
}

/// The content of an envelope submitted to the ordering service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnvelopeContent {
    /// A normal endorsed application transaction.
    Transaction(Transaction),
    /// A channel configuration update (paper Sec. 4.6).
    Config(ConfigUpdate),
}

/// The unit submitted to `broadcast` and carried in blocks: content plus the
/// submitter's signature over the encoded content.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Transaction or configuration update.
    pub content: EnvelopeContent,
    /// Submitter signature over `content` encoding.
    pub signature: Vec<u8>,
}

impl Envelope {
    /// The channel this envelope targets.
    pub fn channel(&self) -> &ChannelId {
        match &self.content {
            EnvelopeContent::Transaction(tx) => &tx.channel,
            EnvelopeContent::Config(cfg) => &cfg.config.channel,
        }
    }

    /// The transaction id, if this is an application transaction. Config
    /// envelopes derive an id from their content hash.
    pub fn tx_id(&self) -> TxId {
        match &self.content {
            EnvelopeContent::Transaction(tx) => tx.tx_id(),
            EnvelopeContent::Config(cfg) => TxId(fabric_crypto::digest(&cfg.config.to_wire())),
        }
    }

    /// Returns `true` for configuration envelopes.
    pub fn is_config(&self) -> bool {
        matches!(self.content, EnvelopeContent::Config(_))
    }

    /// Builds the byte string the submitter signs.
    pub fn signing_bytes(content: &EnvelopeContent) -> Vec<u8> {
        let mut enc = Encoder::new();
        match content {
            EnvelopeContent::Transaction(tx) => {
                enc.put_u8(0);
                tx.encode(&mut enc);
            }
            EnvelopeContent::Config(cfg) => {
                enc.put_u8(1);
                cfg.encode(&mut enc);
            }
        }
        enc.finish()
    }
}

impl Wire for Envelope {
    fn encode(&self, enc: &mut Encoder) {
        match &self.content {
            EnvelopeContent::Transaction(tx) => {
                enc.put_u8(0);
                tx.encode(enc);
            }
            EnvelopeContent::Config(cfg) => {
                enc.put_u8(1);
                cfg.encode(enc);
            }
        }
        enc.put_bytes(&self.signature);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let content = match dec.get_u8()? {
            0 => EnvelopeContent::Transaction(Transaction::decode(dec)?),
            1 => EnvelopeContent::Config(ConfigUpdate::decode(dec)?),
            t => return Err(WireError::BadTag(t)),
        };
        Ok(Envelope {
            content,
            signature: dec.get_bytes()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwset::{KeyWrite, NsReadWriteSet};

    fn sample_payload() -> ProposalPayload {
        ProposalPayload {
            chaincode: ChaincodeId::new("fabcoin", "1.0"),
            function: "spend".into(),
            args: vec![b"in".to_vec(), b"out".to_vec()],
        }
    }

    fn sample_proposal() -> Proposal {
        Proposal {
            channel: ChannelId::new("ch1"),
            creator: SerializedIdentity::new("Org1MSP", vec![0xaa; 64]),
            nonce: [3u8; 32],
            payload: sample_payload(),
        }
    }

    fn sample_response_payload() -> ProposalResponsePayload {
        ProposalResponsePayload {
            tx_id: sample_proposal().tx_id(),
            chaincode: ChaincodeId::new("fabcoin", "1.0"),
            rwset: TxReadWriteSet::single(NsReadWriteSet {
                namespace: "fabcoin".into(),
                reads: vec![],
                range_queries: vec![],
                writes: vec![KeyWrite {
                    key: "k".into(),
                    value: Some(vec![1]),
                }],
            }),
            response: ChaincodeResponse::ok(vec![9]),
        }
    }

    fn sample_transaction() -> Transaction {
        let p = sample_proposal();
        Transaction {
            channel: p.channel.clone(),
            creator: p.creator.clone(),
            nonce: p.nonce,
            proposal_payload: p.payload,
            response_payload: sample_response_payload(),
            endorsements: vec![Endorsement {
                endorser: SerializedIdentity::new("Org2MSP", vec![0xbb; 64]),
                signature: vec![0xcc; 64],
            }],
        }
    }

    #[test]
    fn proposal_round_trip() {
        let p = sample_proposal();
        assert_eq!(Proposal::from_wire(&p.to_wire()).unwrap(), p);
    }

    #[test]
    fn proposal_txid_stable() {
        assert_eq!(sample_proposal().tx_id(), sample_proposal().tx_id());
        let mut p = sample_proposal();
        p.nonce = [4u8; 32];
        assert_ne!(p.tx_id(), sample_proposal().tx_id());
    }

    #[test]
    fn signed_proposal_round_trip() {
        let sp = SignedProposal {
            proposal: sample_proposal(),
            signature: vec![1; 64],
        };
        assert_eq!(SignedProposal::from_wire(&sp.to_wire()).unwrap(), sp);
    }

    #[test]
    fn chaincode_response_helpers() {
        assert!(ChaincodeResponse::ok(vec![]).is_ok());
        assert!(!ChaincodeResponse::error("boom").is_ok());
        assert_eq!(ChaincodeResponse::error("boom").message, "boom");
    }

    #[test]
    fn response_payload_round_trip() {
        let rp = sample_response_payload();
        assert_eq!(ProposalResponsePayload::from_wire(&rp.to_wire()).unwrap(), rp);
    }

    #[test]
    fn endorsement_signing_bytes_bind_identity() {
        let payload = sample_response_payload();
        let e1 = SerializedIdentity::new("Org1MSP", vec![1]);
        let e2 = SerializedIdentity::new("Org2MSP", vec![1]);
        assert_ne!(
            Endorsement::signing_bytes(&payload, &e1),
            Endorsement::signing_bytes(&payload, &e2)
        );
    }

    #[test]
    fn transaction_round_trip() {
        let tx = sample_transaction();
        assert_eq!(Transaction::from_wire(&tx.to_wire()).unwrap(), tx);
    }

    #[test]
    fn transaction_txid_matches_payload() {
        let tx = sample_transaction();
        assert_eq!(tx.tx_id(), tx.response_payload.tx_id);
    }

    #[test]
    fn envelope_round_trip() {
        let env = Envelope {
            content: EnvelopeContent::Transaction(sample_transaction()),
            signature: vec![5; 64],
        };
        assert_eq!(Envelope::from_wire(&env.to_wire()).unwrap(), env);
        assert!(!env.is_config());
        assert_eq!(env.channel().as_str(), "ch1");
    }

    #[test]
    fn envelope_bad_tag_rejected() {
        assert!(matches!(
            Envelope::from_wire(&[9, 0, 0, 0, 0]),
            Err(WireError::BadTag(9))
        ));
    }

    #[test]
    fn envelope_truncation_rejected() {
        let env = Envelope {
            content: EnvelopeContent::Transaction(sample_transaction()),
            signature: vec![5; 64],
        };
        let bytes = env.to_wire();
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(Envelope::from_wire(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
