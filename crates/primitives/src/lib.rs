//! # fabric-primitives
//!
//! Core data types of the `fabric-rs` workspace: identifiers, read-write
//! sets, proposals, endorsements, transactions, blocks, channel
//! configuration, and the deterministic binary wire codec they all share.
//!
//! These types mirror the message structures of the paper's transaction flow
//! (Sec. 3.2–3.4) and configuration system (Sec. 4.6). Everything here is
//! pure data: protocol behaviour lives in the `msp`, `ordering`, `peer`,
//! and `gossip` crates.

pub mod block;
pub mod config;
pub mod ids;
pub mod rwset;
pub mod transaction;
pub mod wire;

pub use block::{Block, BlockHeader, BlockMetadata, BlockSignature};
pub use config::{
    BatchConfig, ChannelConfig, ConfigSignature, ConfigUpdate, ConsensusType, OrdererConfig,
    OrgConfig,
};
pub use ids::{ChaincodeId, ChannelId, SerializedIdentity, TxId, TxValidationCode, Version};
pub use rwset::{KeyRead, KeyWrite, NsReadWriteSet, RangeQueryInfo, TxReadWriteSet};
pub use transaction::{
    ChaincodeResponse, Endorsement, Envelope, EnvelopeContent, Proposal, ProposalPayload,
    ProposalResponse, ProposalResponsePayload, SignedProposal, Transaction,
};
pub use wire::{Decoder, Encoder, Wire, WireError};
