//! Blocks and the hash chain (paper Sec. 3.3 and 4.4).
//!
//! The ordering service batches envelopes into blocks and chains them: each
//! header carries the hash of the previous header and a commitment to its
//! own payload (a domain-separated Merkle root over the serialized
//! envelopes). Peers verify both links when receiving blocks from the
//! ordering service or via gossip.
//!
//! Block *metadata* — the validation bit mask filled in by each peer during
//! the validation phase, the orderer's signature, and the last-config
//! pointer — is deliberately excluded from the data hash: the orderer signs
//! the header + its metadata, while validation flags are per-peer local
//! state persisted alongside the block (paper Sec. 3.4).

use fabric_crypto::sha256::Sha256;
use fabric_crypto::Digest;

use crate::ids::TxValidationCode;
use crate::transaction::Envelope;
use crate::wire::{Decoder, Encoder, Wire, WireError};

/// A block header: sequence number, previous-header hash, and payload
/// commitment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Block sequence number (0 = genesis).
    pub number: u64,
    /// Hash of the previous block's header (zeroes for genesis).
    pub previous_hash: Digest,
    /// Merkle root over the serialized envelopes in this block.
    pub data_hash: Digest,
}

impl BlockHeader {
    /// Computes this header's hash, the value chained into the next block.
    pub fn hash(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(&self.number.to_le_bytes());
        h.update(&self.previous_hash);
        h.update(&self.data_hash);
        h.finalize()
    }
}

impl Wire for BlockHeader {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.number);
        enc.put_raw(&self.previous_hash);
        enc.put_raw(&self.data_hash);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(BlockHeader {
            number: dec.get_u64()?,
            previous_hash: dec.get_array32()?,
            data_hash: dec.get_array32()?,
        })
    }
}

/// An orderer's signature over a block header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockSignature {
    /// The signing orderer's identity.
    pub signer: crate::ids::SerializedIdentity,
    /// Signature over the header hash.
    pub signature: Vec<u8>,
}

impl Wire for BlockSignature {
    fn encode(&self, enc: &mut Encoder) {
        self.signer.encode(enc);
        enc.put_bytes(&self.signature);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(BlockSignature {
            signer: crate::ids::SerializedIdentity::decode(dec)?,
            signature: dec.get_bytes()?,
        })
    }
}

/// Per-block metadata outside the data hash.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BlockMetadata {
    /// Validation outcome for each transaction, in block order. Empty until
    /// the peer's validation phase fills it in (paper Sec. 3.4 bit mask,
    /// generalized to carry the failure reason).
    pub validation: Vec<TxValidationCode>,
    /// Ordering-service signatures over the header (paper Sec. 4.3: "the
    /// blocks are signed by the ordering service").
    pub signatures: Vec<BlockSignature>,
    /// Sequence number of the most recent configuration block at the time
    /// this block was cut.
    pub last_config: u64,
}

impl Wire for BlockMetadata {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_seq(&self.validation, |e, v| v.encode(e));
        enc.put_seq(&self.signatures, |e, s| s.encode(e));
        enc.put_u64(self.last_config);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(BlockMetadata {
            validation: dec.get_seq(TxValidationCode::decode)?,
            signatures: dec.get_seq(BlockSignature::decode)?,
            last_config: dec.get_u64()?,
        })
    }
}

/// A block: header, ordered envelopes, and metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// The chained header.
    pub header: BlockHeader,
    /// The ordered transactions (or a single config envelope).
    pub envelopes: Vec<Envelope>,
    /// Signatures, validation flags, last-config pointer.
    pub metadata: BlockMetadata,
}

impl Block {
    /// Computes the payload commitment for a list of envelopes.
    pub fn compute_data_hash(envelopes: &[Envelope]) -> Digest {
        let serialized: Vec<Vec<u8>> = envelopes.iter().map(|e| e.to_wire()).collect();
        fabric_crypto::merkle::root(&serialized)
    }

    /// Assembles a block with a correct data hash and empty metadata.
    pub fn new(number: u64, previous_hash: Digest, envelopes: Vec<Envelope>) -> Block {
        let data_hash = Self::compute_data_hash(&envelopes);
        Block {
            header: BlockHeader {
                number,
                previous_hash,
                data_hash,
            },
            envelopes,
            metadata: BlockMetadata::default(),
        }
    }

    /// This block's header hash.
    pub fn hash(&self) -> Digest {
        self.header.hash()
    }

    /// Verifies that `data_hash` matches the envelopes actually carried.
    pub fn verify_data_hash(&self) -> bool {
        Self::compute_data_hash(&self.envelopes) == self.header.data_hash
    }

    /// Verifies the chain link from `previous` to `self`: consecutive
    /// numbers and matching previous-hash (the "hash chain integrity" and
    /// "no skipping" properties of paper Sec. 3.3).
    pub fn follows(&self, previous: &Block) -> bool {
        self.header.number == previous.header.number + 1
            && self.header.previous_hash == previous.hash()
    }

    /// Returns `true` if this is a configuration block (exactly one config
    /// envelope; config blocks contain no other transactions).
    pub fn is_config_block(&self) -> bool {
        self.envelopes.len() == 1 && self.envelopes[0].is_config()
    }
}

impl Wire for Block {
    fn encode(&self, enc: &mut Encoder) {
        self.header.encode(enc);
        enc.put_seq(&self.envelopes, |e, x| x.encode(e));
        self.metadata.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Block {
            header: BlockHeader::decode(dec)?,
            envelopes: dec.get_seq(Envelope::decode)?,
            metadata: BlockMetadata::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BatchConfig, ChannelConfig, ConfigUpdate, ConsensusType, OrdererConfig};
    use crate::ids::{ChaincodeId, ChannelId, SerializedIdentity};
    use crate::rwset::TxReadWriteSet;
    use crate::transaction::{
        ChaincodeResponse, EnvelopeContent, ProposalPayload, ProposalResponsePayload, Transaction,
    };

    fn tx_envelope(n: u8) -> Envelope {
        let creator = SerializedIdentity::new("Org1MSP", vec![n; 32]);
        let tx = Transaction {
            channel: ChannelId::new("ch1"),
            creator: creator.clone(),
            nonce: [n; 32],
            proposal_payload: ProposalPayload {
                chaincode: ChaincodeId::new("cc", "1"),
                function: "f".into(),
                args: vec![],
            },
            response_payload: ProposalResponsePayload {
                tx_id: crate::ids::TxId::derive(&creator.to_wire(), &[n; 32]),
                chaincode: ChaincodeId::new("cc", "1"),
                rwset: TxReadWriteSet::default(),
                response: ChaincodeResponse::ok(vec![]),
            },
            endorsements: vec![],
        };
        Envelope {
            content: EnvelopeContent::Transaction(tx),
            signature: vec![n; 64],
        }
    }

    fn config_envelope() -> Envelope {
        let cfg = ChannelConfig {
            channel: ChannelId::new("ch1"),
            sequence: 1,
            orgs: vec![],
            orderer: OrdererConfig {
                consensus: ConsensusType::Solo,
                addresses: vec!["osn0".into()],
                batch: BatchConfig::default(),
            },
            admin_policy: "ANY(admins)".into(),
            writer_policy: "ANY(members)".into(),
            reader_policy: "ANY(members)".into(),
        };
        Envelope {
            content: EnvelopeContent::Config(ConfigUpdate {
                config: cfg,
                signatures: vec![],
            }),
            signature: vec![],
        }
    }

    #[test]
    fn block_round_trip() {
        let mut b = Block::new(3, [9u8; 32], vec![tx_envelope(1), tx_envelope(2)]);
        b.metadata.validation = vec![TxValidationCode::Valid, TxValidationCode::MvccReadConflict];
        b.metadata.last_config = 1;
        assert_eq!(Block::from_wire(&b.to_wire()).unwrap(), b);
    }

    #[test]
    fn data_hash_verifies() {
        let b = Block::new(0, [0u8; 32], vec![tx_envelope(1)]);
        assert!(b.verify_data_hash());
    }

    #[test]
    fn tampered_payload_detected() {
        let mut b = Block::new(0, [0u8; 32], vec![tx_envelope(1)]);
        b.envelopes.push(tx_envelope(2));
        assert!(!b.verify_data_hash());
    }

    #[test]
    fn chain_links() {
        let b0 = Block::new(0, [0u8; 32], vec![tx_envelope(1)]);
        let b1 = Block::new(1, b0.hash(), vec![tx_envelope(2)]);
        assert!(b1.follows(&b0));
        // Wrong number.
        let b2 = Block::new(3, b1.hash(), vec![]);
        assert!(!b2.follows(&b1));
        // Wrong hash.
        let b3 = Block::new(2, b0.hash(), vec![]);
        assert!(!b3.follows(&b1));
    }

    #[test]
    fn header_hash_covers_all_fields() {
        let h = BlockHeader {
            number: 5,
            previous_hash: [1u8; 32],
            data_hash: [2u8; 32],
        };
        let mut h2 = h;
        h2.number = 6;
        assert_ne!(h.hash(), h2.hash());
        let mut h3 = h;
        h3.previous_hash[0] ^= 1;
        assert_ne!(h.hash(), h3.hash());
        let mut h4 = h;
        h4.data_hash[0] ^= 1;
        assert_ne!(h.hash(), h4.hash());
    }

    #[test]
    fn metadata_not_in_data_hash() {
        let mut b = Block::new(0, [0u8; 32], vec![tx_envelope(1)]);
        let hash_before = b.header.data_hash;
        b.metadata.validation = vec![TxValidationCode::Valid];
        assert_eq!(Block::compute_data_hash(&b.envelopes), hash_before);
    }

    #[test]
    fn config_block_detection() {
        let cb = Block::new(1, [0u8; 32], vec![config_envelope()]);
        assert!(cb.is_config_block());
        let normal = Block::new(1, [0u8; 32], vec![tx_envelope(1)]);
        assert!(!normal.is_config_block());
        let mixed = Block::new(1, [0u8; 32], vec![config_envelope(), tx_envelope(1)]);
        assert!(!mixed.is_config_block());
    }

    #[test]
    fn empty_block_round_trip() {
        let b = Block::new(7, [3u8; 32], vec![]);
        assert_eq!(Block::from_wire(&b.to_wire()).unwrap(), b);
        assert!(b.verify_data_hash());
    }
}
