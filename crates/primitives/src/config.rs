//! Channel configuration (paper Sec. 4.6).
//!
//! Each channel's configuration — member organizations with their MSP root
//! certificates, ordering-service nodes and batching parameters, and the
//! access/administration policies — lives in special *configuration blocks*.
//! A channel is bootstrapped from a *genesis block* holding the initial
//! [`ChannelConfig`], and updated by [`ConfigUpdate`] transactions whose
//! signatures are checked against the *current* configuration's admin
//! policy, both by orderers and by peers.

use crate::ids::{ChannelId, SerializedIdentity};
use crate::wire::{Decoder, Encoder, Wire, WireError};

/// Block-cutting parameters for the ordering service (paper Sec. 4.2).
///
/// A block is cut as soon as it holds `max_message_count` transactions, or
/// would exceed `preferred_max_bytes`, or `batch_timeout_ms` elapsed since
/// the first transaction of the block arrived (via time-to-cut).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum number of transactions in a block.
    pub max_message_count: u32,
    /// Hard upper bound on serialized block bytes; single transactions
    /// larger than this are rejected at broadcast.
    pub absolute_max_bytes: u32,
    /// Soft target for block size in bytes; a block is cut when the next
    /// transaction would push it past this.
    pub preferred_max_bytes: u32,
    /// Time-to-cut: maximum milliseconds between a block's first
    /// transaction and the block being cut.
    pub batch_timeout_ms: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        // Paper Sec. 5.2 experiment 1 settles on 2 MB preferred block size.
        BatchConfig {
            max_message_count: 500,
            absolute_max_bytes: 10 * 1024 * 1024,
            preferred_max_bytes: 2 * 1024 * 1024,
            batch_timeout_ms: 1_000,
        }
    }
}

impl Wire for BatchConfig {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.max_message_count);
        enc.put_u32(self.absolute_max_bytes);
        enc.put_u32(self.preferred_max_bytes);
        enc.put_u64(self.batch_timeout_ms);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(BatchConfig {
            max_message_count: dec.get_u32()?,
            absolute_max_bytes: dec.get_u32()?,
            preferred_max_bytes: dec.get_u32()?,
            batch_timeout_ms: dec.get_u64()?,
        })
    }
}

/// Which consensus implementation the ordering service runs (paper Sec. 4.2
/// lists Solo, Kafka, and a BFT-SMaRt proof of concept; here: Solo, Raft as
/// the CFT cluster, and PBFT as the BFT option).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsensusType {
    /// Centralized single-node orderer for development and testing.
    Solo,
    /// Crash-fault-tolerant replicated log (stands in for Kafka/ZooKeeper).
    Raft,
    /// Byzantine-fault-tolerant atomic broadcast (stands in for BFT-SMaRt).
    Pbft,
}

impl Wire for ConsensusType {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            ConsensusType::Solo => 0,
            ConsensusType::Raft => 1,
            ConsensusType::Pbft => 2,
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match dec.get_u8()? {
            0 => ConsensusType::Solo,
            1 => ConsensusType::Raft,
            2 => ConsensusType::Pbft,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// Configuration of one member organization: its MSP id and the root
/// certificate against which member certificates chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrgConfig {
    /// The organization's MSP identifier.
    pub msp_id: String,
    /// Serialized root CA certificate (see `fabric-msp`).
    pub root_cert: Vec<u8>,
}

impl Wire for OrgConfig {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_string(&self.msp_id);
        enc.put_bytes(&self.root_cert);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(OrgConfig {
            msp_id: dec.get_string()?,
            root_cert: dec.get_bytes()?,
        })
    }
}

/// Ordering-service section of the channel configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrdererConfig {
    /// Consensus implementation to use.
    pub consensus: ConsensusType,
    /// Logical addresses (node names) of the ordering-service nodes.
    pub addresses: Vec<String>,
    /// Block-cutting parameters.
    pub batch: BatchConfig,
}

impl Wire for OrdererConfig {
    fn encode(&self, enc: &mut Encoder) {
        self.consensus.encode(enc);
        enc.put_seq(&self.addresses, |e, a| e.put_string(a));
        self.batch.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(OrdererConfig {
            consensus: ConsensusType::decode(dec)?,
            addresses: dec.get_seq(|d| d.get_string())?,
            batch: BatchConfig::decode(dec)?,
        })
    }
}

/// The full configuration of one channel.
///
/// `sequence` increases by one with every configuration update; peers and
/// orderers reject updates whose sequence is not exactly `current + 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelConfig {
    /// The channel this configuration governs.
    pub channel: ChannelId,
    /// Monotonic configuration sequence number (0 = genesis).
    pub sequence: u64,
    /// Member organizations.
    pub orgs: Vec<OrgConfig>,
    /// Ordering-service configuration.
    pub orderer: OrdererConfig,
    /// Policy expression gating configuration updates
    /// (e.g. `"MAJORITY(admins)"`, parsed by `fabric-policy`).
    pub admin_policy: String,
    /// Policy expression gating `broadcast` access.
    pub writer_policy: String,
    /// Policy expression gating `deliver` access.
    pub reader_policy: String,
}

impl ChannelConfig {
    /// Returns the org config for `msp_id`, if that org is a member.
    pub fn org(&self, msp_id: &str) -> Option<&OrgConfig> {
        self.orgs.iter().find(|o| o.msp_id == msp_id)
    }

    /// Lists all member MSP ids.
    pub fn msp_ids(&self) -> Vec<&str> {
        self.orgs.iter().map(|o| o.msp_id.as_str()).collect()
    }
}

impl Wire for ChannelConfig {
    fn encode(&self, enc: &mut Encoder) {
        self.channel.encode(enc);
        enc.put_u64(self.sequence);
        enc.put_seq(&self.orgs, |e, o| o.encode(e));
        self.orderer.encode(enc);
        enc.put_string(&self.admin_policy);
        enc.put_string(&self.writer_policy);
        enc.put_string(&self.reader_policy);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ChannelConfig {
            channel: ChannelId::decode(dec)?,
            sequence: dec.get_u64()?,
            orgs: dec.get_seq(OrgConfig::decode)?,
            orderer: OrdererConfig::decode(dec)?,
            admin_policy: dec.get_string()?,
            writer_policy: dec.get_string()?,
            reader_policy: dec.get_string()?,
        })
    }
}

/// An admin's signature over a proposed configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigSignature {
    /// The signing admin identity.
    pub signer: SerializedIdentity,
    /// Signature over the new `ChannelConfig` encoding.
    pub signature: Vec<u8>,
}

impl Wire for ConfigSignature {
    fn encode(&self, enc: &mut Encoder) {
        self.signer.encode(enc);
        enc.put_bytes(&self.signature);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ConfigSignature {
            signer: SerializedIdentity::decode(dec)?,
            signature: dec.get_bytes()?,
        })
    }
}

/// A channel configuration update transaction (paper Sec. 4.6): the proposed
/// new configuration plus admin signatures evaluated against the *current*
/// configuration's admin policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigUpdate {
    /// The proposed new configuration (sequence must be current + 1).
    pub config: ChannelConfig,
    /// Admin signatures over `config.to_wire()`.
    pub signatures: Vec<ConfigSignature>,
}

impl Wire for ConfigUpdate {
    fn encode(&self, enc: &mut Encoder) {
        self.config.encode(enc);
        enc.put_seq(&self.signatures, |e, s| s.encode(e));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ConfigUpdate {
            config: ChannelConfig::decode(dec)?,
            signatures: dec.get_seq(ConfigSignature::decode)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub fn sample_config() -> ChannelConfig {
        ChannelConfig {
            channel: ChannelId::new("ch1"),
            sequence: 0,
            orgs: vec![
                OrgConfig {
                    msp_id: "Org1MSP".into(),
                    root_cert: vec![1; 65],
                },
                OrgConfig {
                    msp_id: "Org2MSP".into(),
                    root_cert: vec![2; 65],
                },
            ],
            orderer: OrdererConfig {
                consensus: ConsensusType::Raft,
                addresses: vec!["osn0".into(), "osn1".into(), "osn2".into()],
                batch: BatchConfig::default(),
            },
            admin_policy: "MAJORITY(admins)".into(),
            writer_policy: "OR(Org1MSP, Org2MSP)".into(),
            reader_policy: "OR(Org1MSP, Org2MSP)".into(),
        }
    }

    #[test]
    fn config_round_trip() {
        let cfg = sample_config();
        assert_eq!(ChannelConfig::from_wire(&cfg.to_wire()).unwrap(), cfg);
    }

    #[test]
    fn org_lookup() {
        let cfg = sample_config();
        assert!(cfg.org("Org1MSP").is_some());
        assert!(cfg.org("NoSuchOrg").is_none());
        assert_eq!(cfg.msp_ids(), vec!["Org1MSP", "Org2MSP"]);
    }

    #[test]
    fn batch_defaults_match_paper() {
        let b = BatchConfig::default();
        assert_eq!(b.preferred_max_bytes, 2 * 1024 * 1024);
    }

    #[test]
    fn consensus_type_round_trip() {
        for c in [ConsensusType::Solo, ConsensusType::Raft, ConsensusType::Pbft] {
            assert_eq!(ConsensusType::from_wire(&c.to_wire()).unwrap(), c);
        }
        assert!(ConsensusType::from_wire(&[7]).is_err());
    }

    #[test]
    fn config_update_round_trip() {
        let upd = ConfigUpdate {
            config: sample_config(),
            signatures: vec![ConfigSignature {
                signer: SerializedIdentity::new("Org1MSP", vec![3; 64]),
                signature: vec![4; 64],
            }],
        };
        assert_eq!(ConfigUpdate::from_wire(&upd.to_wire()).unwrap(), upd);
    }
}
