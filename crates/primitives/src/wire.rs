//! A compact, deterministic binary wire codec.
//!
//! Fabric serializes its protocol messages with protobuf; this workspace
//! uses a hand-rolled length-prefixed codec with the same essential
//! properties: deterministic encoding (required because endorsers sign over
//! serialized payloads and all peers must derive identical hashes), explicit
//! bounds checks on decode, and cheap size measurement for block cutting.
//!
//! All multi-byte integers are little-endian. Variable-length fields are
//! prefixed with a `u32` length. Decoding never panics; malformed input
//! yields [`WireError`].

use bytes::{Buf, BufMut, BytesMut};

/// Errors produced while decoding wire data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// A length prefix exceeded the remaining buffer or a sanity bound.
    BadLength,
    /// An enum discriminant or tag byte was not recognized.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Trailing bytes remained after a complete decode.
    TrailingBytes,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::BadLength => write!(f, "length prefix out of bounds"),
            WireError::BadTag(t) => write!(f, "unrecognized tag byte {t:#04x}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encoder accumulating bytes into a growable buffer.
#[derive(Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder {
            buf: BytesMut::with_capacity(256),
        }
    }

    /// Finishes encoding and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    /// Appends raw bytes *without* a length prefix (fixed-size fields).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Appends length-prefixed bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_string(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends an `Option`, prefixed with a presence byte.
    pub fn put_option<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Encoder, &T)) {
        match v {
            None => self.put_u8(0),
            Some(inner) => {
                self.put_u8(1);
                f(self, inner);
            }
        }
    }

    /// Appends a `Vec`, prefixed with a `u32` element count.
    pub fn put_seq<T>(&mut self, v: &[T], mut f: impl FnMut(&mut Encoder, &T)) {
        self.put_u32(v.len() as u32);
        for item in v {
            f(self, item);
        }
    }
}

/// Decoder reading from a byte slice with bounds checking.
pub struct Decoder<'a> {
    buf: &'a [u8],
}

/// A hard cap on decoded collection lengths, protecting against
/// maliciously huge length prefixes.
const MAX_SEQ_LEN: u32 = 16 * 1024 * 1024;

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails unless the input was fully consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        if self.buf.remaining() < 1 {
            return Err(WireError::UnexpectedEof);
        }
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        if self.buf.remaining() < 4 {
            return Err(WireError::UnexpectedEof);
        }
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        if self.buf.remaining() < 8 {
            return Err(WireError::UnexpectedEof);
        }
        Ok(self.buf.get_u64_le())
    }

    /// Reads a bool byte (`0` or `1`).
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Reads exactly `n` raw bytes (fixed-size fields).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::UnexpectedEof);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a 32-byte array (digests, nonces).
    pub fn get_array32(&mut self) -> Result<[u8; 32], WireError> {
        let raw = self.get_raw(32)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(raw);
        Ok(out)
    }

    /// Reads length-prefixed bytes.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.get_u32()?;
        if len > MAX_SEQ_LEN || len as usize > self.buf.len() {
            return Err(WireError::BadLength);
        }
        Ok(self.get_raw(len as usize)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, WireError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }

    /// Reads an `Option` with a presence byte.
    pub fn get_option<T>(
        &mut self,
        f: impl FnOnce(&mut Decoder<'a>) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Reads a `u32`-counted sequence.
    pub fn get_seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Decoder<'a>) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let count = self.get_u32()?;
        if count > MAX_SEQ_LEN {
            return Err(WireError::BadLength);
        }
        // Each element needs at least one byte; cheap sanity bound.
        if count as usize > self.buf.len() && count > 0 {
            return Err(WireError::BadLength);
        }
        let mut out = Vec::with_capacity(count.min(1024) as usize);
        for _ in 0..count {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// Types that can be serialized with the wire codec.
pub trait Wire: Sized {
    /// Appends this value to `enc`.
    fn encode(&self, enc: &mut Encoder);
    /// Reads a value from `dec`.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError>;

    /// Serializes to a standalone byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Deserializes from a complete byte slice, rejecting trailing bytes.
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        dec.expect_end()?;
        Ok(v)
    }

    /// Serialized size in bytes (used by the block cutter).
    fn wire_size(&self) -> usize {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xdead_beef);
        enc.put_u64(0x0123_4567_89ab_cdef);
        enc.put_bool(true);
        enc.put_bytes(b"hello");
        enc.put_string("world");
        let bytes = enc.finish();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert!(dec.get_bool().unwrap());
        assert_eq!(dec.get_bytes().unwrap(), b"hello");
        assert_eq!(dec.get_string().unwrap(), "world");
        dec.expect_end().unwrap();
    }

    #[test]
    fn option_round_trip() {
        let mut enc = Encoder::new();
        enc.put_option(&Some(42u64), |e, v| e.put_u64(*v));
        enc.put_option(&None::<u64>, |e, v| e.put_u64(*v));
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_option(|d| d.get_u64()).unwrap(), Some(42));
        assert_eq!(dec.get_option(|d| d.get_u64()).unwrap(), None);
    }

    #[test]
    fn seq_round_trip() {
        let mut enc = Encoder::new();
        enc.put_seq(&[1u32, 2, 3], |e, v| e.put_u32(*v));
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_seq(|d| d.get_u32()).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn eof_detected() {
        let mut dec = Decoder::new(&[1, 2]);
        assert_eq!(dec.get_u32(), Err(WireError::UnexpectedEof));
        let mut dec = Decoder::new(&[]);
        assert_eq!(dec.get_u8(), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_bytes(), Err(WireError::BadLength));
    }

    #[test]
    fn bad_bool_tag() {
        let mut dec = Decoder::new(&[9]);
        assert_eq!(dec.get_bool(), Err(WireError::BadTag(9)));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut enc = Encoder::new();
        enc.put_bytes(&[0xff, 0xfe]);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_string(), Err(WireError::BadUtf8));
    }

    #[test]
    fn trailing_bytes_detected() {
        #[derive(Debug)]
        struct Byte(u8);
        impl Wire for Byte {
            fn encode(&self, enc: &mut Encoder) {
                enc.put_u8(self.0);
            }
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
                Ok(Byte(dec.get_u8()?))
            }
        }
        assert!(Byte::from_wire(&[1]).is_ok());
        assert_eq!(
            Byte::from_wire(&[1, 2]).unwrap_err(),
            WireError::TrailingBytes
        );
    }

    #[test]
    fn array32_round_trip() {
        let mut enc = Encoder::new();
        enc.put_raw(&[7u8; 32]);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_array32().unwrap(), [7u8; 32]);
        assert!(Decoder::new(&[0u8; 31]).get_array32().is_err());
    }
}
