//! Identifiers and small shared enums used across the system.

use fabric_crypto::Digest;

use crate::wire::{Decoder, Encoder, Wire, WireError};

/// A channel identifier (each channel is one logical blockchain, Sec. 3.1).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub String);

impl ChannelId {
    /// Creates a channel id from any string-like value.
    pub fn new(s: impl Into<String>) -> Self {
        ChannelId(s.into())
    }

    /// Returns the id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl core::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Wire for ChannelId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_string(&self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ChannelId(dec.get_string()?))
    }
}

/// The name/version pair identifying a deployed chaincode.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ChaincodeId {
    /// Chaincode name, unique per channel.
    pub name: String,
    /// Deployed version string.
    pub version: String,
}

impl ChaincodeId {
    /// Creates a chaincode id.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        ChaincodeId {
            name: name.into(),
            version: version.into(),
        }
    }
}

impl core::fmt::Display for ChaincodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}", self.name, self.version)
    }
}

impl Wire for ChaincodeId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_string(&self.name);
        enc.put_string(&self.version);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ChaincodeId {
            name: dec.get_string()?,
            version: dec.get_string()?,
        })
    }
}

/// A transaction identifier, derived as `SHA-256(creator || nonce)`
/// (paper Sec. 3.2: "a transaction identifier derived from the client
/// identifier and the nonce").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub Digest);

impl TxId {
    /// Derives a transaction id from the creator's serialized identity and
    /// the per-transaction nonce.
    pub fn derive(creator_bytes: &[u8], nonce: &[u8; 32]) -> Self {
        TxId(fabric_crypto::sha256::digest2(creator_bytes, nonce))
    }

    /// Renders the id as hex.
    pub fn to_hex(&self) -> String {
        fabric_crypto::hex(&self.0)
    }
}

impl core::fmt::Debug for TxId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "TxId({}..)", &self.to_hex()[..12])
    }
}

impl Wire for TxId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_raw(&self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(TxId(dec.get_array32()?))
    }
}

/// The version of a key in the versioned state store: the coordinates of the
/// transaction that last wrote it (paper Sec. 4.4).
///
/// Versions are unique and monotonically increasing because blocks and
/// transactions-within-blocks are totally ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Version {
    /// Block sequence number of the writing transaction.
    pub block_num: u64,
    /// Index of the writing transaction within its block.
    pub tx_num: u32,
}

impl Version {
    /// Creates a version from block and transaction coordinates.
    pub fn new(block_num: u64, tx_num: u32) -> Self {
        Version { block_num, tx_num }
    }
}

impl Wire for Version {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.block_num);
        enc.put_u32(self.tx_num);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Version {
            block_num: dec.get_u64()?,
            tx_num: dec.get_u32()?,
        })
    }
}

/// Outcome of validating one transaction within a block.
///
/// Recorded in the block metadata bit mask (paper Sec. 3.4): the ledger keeps
/// invalid transactions for audit, marked with the reason they failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxValidationCode {
    /// The transaction passed all validation stages.
    Valid,
    /// The endorsement policy was not satisfied (VSCC stage).
    EndorsementPolicyFailure,
    /// A readset version no longer matched the current state (MVCC stage).
    MvccReadConflict,
    /// A range-query result hash no longer matched (phantom read).
    PhantomReadConflict,
    /// A signature on the transaction or an endorsement was invalid.
    BadSignature,
    /// The same transaction id was already committed.
    DuplicateTxId,
    /// The creator was not authorized on this channel.
    Unauthorized,
    /// The transaction was structurally malformed.
    BadPayload,
    /// A configuration transaction failed validation.
    InvalidConfig,
    /// Not yet validated (transient state; never persisted).
    NotValidated,
}

impl TxValidationCode {
    /// Returns `true` for [`TxValidationCode::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, TxValidationCode::Valid)
    }

    fn to_byte(self) -> u8 {
        match self {
            TxValidationCode::Valid => 0,
            TxValidationCode::EndorsementPolicyFailure => 1,
            TxValidationCode::MvccReadConflict => 2,
            TxValidationCode::PhantomReadConflict => 3,
            TxValidationCode::BadSignature => 4,
            TxValidationCode::DuplicateTxId => 5,
            TxValidationCode::Unauthorized => 6,
            TxValidationCode::BadPayload => 7,
            TxValidationCode::InvalidConfig => 8,
            TxValidationCode::NotValidated => 255,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => TxValidationCode::Valid,
            1 => TxValidationCode::EndorsementPolicyFailure,
            2 => TxValidationCode::MvccReadConflict,
            3 => TxValidationCode::PhantomReadConflict,
            4 => TxValidationCode::BadSignature,
            5 => TxValidationCode::DuplicateTxId,
            6 => TxValidationCode::Unauthorized,
            7 => TxValidationCode::BadPayload,
            8 => TxValidationCode::InvalidConfig,
            255 => TxValidationCode::NotValidated,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for TxValidationCode {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.to_byte());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Self::from_byte(dec.get_u8()?)
    }
}

/// A node's serialized identity: MSP id plus certificate bytes.
///
/// This mirrors Fabric's `SerializedIdentity` proto. The `msp` crate knows
/// how to interpret `cert_bytes`; primitives only carries them.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SerializedIdentity {
    /// The MSP (organization) that issued this identity.
    pub msp_id: String,
    /// Serialized certificate.
    pub cert_bytes: Vec<u8>,
}

impl SerializedIdentity {
    /// Creates a serialized identity.
    pub fn new(msp_id: impl Into<String>, cert_bytes: Vec<u8>) -> Self {
        SerializedIdentity {
            msp_id: msp_id.into(),
            cert_bytes,
        }
    }
}

impl Wire for SerializedIdentity {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_string(&self.msp_id);
        enc.put_bytes(&self.cert_bytes);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SerializedIdentity {
            msp_id: dec.get_string()?,
            cert_bytes: dec.get_bytes()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_id_round_trip() {
        let id = ChannelId::new("payments");
        let back = ChannelId::from_wire(&id.to_wire()).unwrap();
        assert_eq!(id, back);
        assert_eq!(id.to_string(), "payments");
    }

    #[test]
    fn chaincode_id_round_trip() {
        let id = ChaincodeId::new("fabcoin", "1.0");
        assert_eq!(ChaincodeId::from_wire(&id.to_wire()).unwrap(), id);
        assert_eq!(id.to_string(), "fabcoin:1.0");
    }

    #[test]
    fn txid_derivation_is_deterministic() {
        let a = TxId::derive(b"client-1", &[1u8; 32]);
        let b = TxId::derive(b"client-1", &[1u8; 32]);
        let c = TxId::derive(b"client-1", &[2u8; 32]);
        let d = TxId::derive(b"client-2", &[1u8; 32]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn txid_round_trip() {
        let id = TxId::derive(b"c", &[9u8; 32]);
        assert_eq!(TxId::from_wire(&id.to_wire()).unwrap(), id);
    }

    #[test]
    fn version_ordering() {
        assert!(Version::new(1, 5) < Version::new(2, 0));
        assert!(Version::new(2, 0) < Version::new(2, 1));
        assert_eq!(Version::new(3, 3), Version::new(3, 3));
    }

    #[test]
    fn version_round_trip() {
        let v = Version::new(42, 7);
        assert_eq!(Version::from_wire(&v.to_wire()).unwrap(), v);
    }

    #[test]
    fn validation_codes_round_trip() {
        for code in [
            TxValidationCode::Valid,
            TxValidationCode::EndorsementPolicyFailure,
            TxValidationCode::MvccReadConflict,
            TxValidationCode::PhantomReadConflict,
            TxValidationCode::BadSignature,
            TxValidationCode::DuplicateTxId,
            TxValidationCode::Unauthorized,
            TxValidationCode::BadPayload,
            TxValidationCode::InvalidConfig,
            TxValidationCode::NotValidated,
        ] {
            assert_eq!(TxValidationCode::from_wire(&code.to_wire()).unwrap(), code);
        }
        assert!(TxValidationCode::from_wire(&[42]).is_err());
    }

    #[test]
    fn identity_round_trip() {
        let id = SerializedIdentity::new("Org1MSP", vec![1, 2, 3]);
        assert_eq!(SerializedIdentity::from_wire(&id.to_wire()).unwrap(), id);
    }
}
