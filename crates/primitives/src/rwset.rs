//! Read-write sets: the output of transaction simulation (paper Sec. 3.2).
//!
//! During the execution phase an endorser simulates a proposal against its
//! local state snapshot and records:
//!
//! * a **readset** — every key read together with the version it had, plus a
//!   hash of the results of every range query (for phantom-read detection,
//!   Sec. 4.4); and
//! * a **writeset** — every key written with its new value, or marked
//!   deleted.
//!
//! Fabric orders *transaction outputs* (these rw-sets), not inputs; the
//! validation phase replays only the version checks, never the chaincode.

use fabric_crypto::sha256::Sha256;
use fabric_crypto::Digest;

use crate::ids::Version;
use crate::wire::{Decoder, Encoder, Wire, WireError};

/// A single read recorded during simulation: key plus the version observed
/// (`None` if the key did not exist).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyRead {
    /// The key that was read.
    pub key: String,
    /// The version observed, or `None` for a missing key.
    pub version: Option<Version>,
}

impl Wire for KeyRead {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_string(&self.key);
        enc.put_option(&self.version, |e, v| v.encode(e));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(KeyRead {
            key: dec.get_string()?,
            version: dec.get_option(Version::decode)?,
        })
    }
}

/// A single write recorded during simulation: a new value or a deletion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyWrite {
    /// The key being written.
    pub key: String,
    /// The new value, or `None` to delete the key.
    pub value: Option<Vec<u8>>,
}

impl KeyWrite {
    /// Returns `true` if this write deletes the key.
    pub fn is_delete(&self) -> bool {
        self.value.is_none()
    }
}

impl Wire for KeyWrite {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_string(&self.key);
        enc.put_option(&self.value, |e, v| e.put_bytes(v));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(KeyWrite {
            key: dec.get_string()?,
            value: dec.get_option(|d| d.get_bytes())?,
        })
    }
}

/// A recorded range query: the half-open key range scanned and a hash of the
/// `(key, version)` pairs it returned.
///
/// At validation time the peer re-executes the query against the current
/// state and compares hashes, detecting phantom reads (Sec. 4.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeQueryInfo {
    /// Inclusive start of the scanned range.
    pub start_key: String,
    /// Exclusive end of the scanned range (empty = unbounded).
    pub end_key: String,
    /// SHA-256 over the serialized `(key, version)` result pairs.
    pub results_hash: Digest,
}

impl RangeQueryInfo {
    /// Hashes a sequence of `(key, version)` results the way simulation and
    /// validation both must.
    pub fn hash_results<'a>(results: impl Iterator<Item = (&'a str, Version)>) -> Digest {
        let mut h = Sha256::new();
        for (key, version) in results {
            h.update(&(key.len() as u32).to_le_bytes());
            h.update(key.as_bytes());
            h.update(&version.block_num.to_le_bytes());
            h.update(&version.tx_num.to_le_bytes());
        }
        h.finalize()
    }
}

impl Wire for RangeQueryInfo {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_string(&self.start_key);
        enc.put_string(&self.end_key);
        enc.put_raw(&self.results_hash);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(RangeQueryInfo {
            start_key: dec.get_string()?,
            end_key: dec.get_string()?,
            results_hash: dec.get_array32()?,
        })
    }
}

/// The rw-set of one transaction against one chaincode namespace.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct NsReadWriteSet {
    /// The chaincode namespace these accesses belong to.
    pub namespace: String,
    /// Keys read with their observed versions.
    pub reads: Vec<KeyRead>,
    /// Range queries performed, with result hashes.
    pub range_queries: Vec<RangeQueryInfo>,
    /// Keys written or deleted.
    pub writes: Vec<KeyWrite>,
}

impl Wire for NsReadWriteSet {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_string(&self.namespace);
        enc.put_seq(&self.reads, |e, r| r.encode(e));
        enc.put_seq(&self.range_queries, |e, q| q.encode(e));
        enc.put_seq(&self.writes, |e, w| w.encode(e));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(NsReadWriteSet {
            namespace: dec.get_string()?,
            reads: dec.get_seq(KeyRead::decode)?,
            range_queries: dec.get_seq(RangeQueryInfo::decode)?,
            writes: dec.get_seq(KeyWrite::decode)?,
        })
    }
}

/// The complete rw-set of a transaction, spanning one or more chaincode
/// namespaces (chaincode-to-chaincode calls write in multiple namespaces).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TxReadWriteSet {
    /// Per-namespace rw-sets, in the order the namespaces were touched.
    pub ns_rwsets: Vec<NsReadWriteSet>,
}

impl TxReadWriteSet {
    /// Creates a rw-set with a single namespace.
    pub fn single(ns: NsReadWriteSet) -> Self {
        TxReadWriteSet {
            ns_rwsets: vec![ns],
        }
    }

    /// Total number of reads across namespaces.
    pub fn read_count(&self) -> usize {
        self.ns_rwsets.iter().map(|ns| ns.reads.len()).sum()
    }

    /// Total number of writes across namespaces.
    pub fn write_count(&self) -> usize {
        self.ns_rwsets.iter().map(|ns| ns.writes.len()).sum()
    }
}

impl Wire for TxReadWriteSet {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_seq(&self.ns_rwsets, |e, ns| ns.encode(e));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(TxReadWriteSet {
            ns_rwsets: dec.get_seq(NsReadWriteSet::decode)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TxReadWriteSet {
        TxReadWriteSet::single(NsReadWriteSet {
            namespace: "fabcoin".into(),
            reads: vec![
                KeyRead {
                    key: "coin.1".into(),
                    version: Some(Version::new(4, 2)),
                },
                KeyRead {
                    key: "coin.2".into(),
                    version: None,
                },
            ],
            range_queries: vec![RangeQueryInfo {
                start_key: "a".into(),
                end_key: "z".into(),
                results_hash: [7u8; 32],
            }],
            writes: vec![
                KeyWrite {
                    key: "coin.1".into(),
                    value: None,
                },
                KeyWrite {
                    key: "coin.3".into(),
                    value: Some(vec![1, 2, 3]),
                },
            ],
        })
    }

    #[test]
    fn round_trip() {
        let rw = sample();
        assert_eq!(TxReadWriteSet::from_wire(&rw.to_wire()).unwrap(), rw);
    }

    #[test]
    fn counts() {
        let rw = sample();
        assert_eq!(rw.read_count(), 2);
        assert_eq!(rw.write_count(), 2);
    }

    #[test]
    fn delete_flag() {
        let rw = sample();
        assert!(rw.ns_rwsets[0].writes[0].is_delete());
        assert!(!rw.ns_rwsets[0].writes[1].is_delete());
    }

    #[test]
    fn identical_rwsets_encode_identically() {
        // Endorsement comparison relies on deterministic encoding.
        assert_eq!(sample().to_wire(), sample().to_wire());
    }

    #[test]
    fn range_query_hash_sensitive_to_results() {
        let h1 = RangeQueryInfo::hash_results(
            [("a", Version::new(1, 0)), ("b", Version::new(1, 1))]
                .iter()
                .map(|(k, v)| (*k, *v)),
        );
        let h2 = RangeQueryInfo::hash_results(
            [("a", Version::new(1, 0)), ("b", Version::new(2, 1))]
                .iter()
                .map(|(k, v)| (*k, *v)),
        );
        let h3 = RangeQueryInfo::hash_results(
            [("a", Version::new(1, 0))].iter().map(|(k, v)| (*k, *v)),
        );
        assert_ne!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn range_query_hash_unambiguous_concatenation() {
        // ("ab", v) + ("c", v) must not hash like ("a", v) + ("bc", v).
        let v = Version::new(1, 0);
        let h1 = RangeQueryInfo::hash_results([("ab", v), ("c", v)].iter().map(|(k, x)| (*k, *x)));
        let h2 = RangeQueryInfo::hash_results([("a", v), ("bc", v)].iter().map(|(k, x)| (*k, *x)));
        assert_ne!(h1, h2);
    }

    #[test]
    fn empty_rwset() {
        let rw = TxReadWriteSet::default();
        assert_eq!(TxReadWriteSet::from_wire(&rw.to_wire()).unwrap(), rw);
        assert_eq!(rw.read_count(), 0);
    }
}
