//! An ordering-service node (OSN).
//!
//! The OSN is the proxy between clients/peers and the consensus backend
//! (paper Sec. 4.2): it validates `broadcast` calls against channel access
//! policies, injects envelopes into the atomic broadcast, batches the
//! totally-ordered stream into blocks with the deterministic cutter, signs
//! the blocks, and serves them through `deliver`.
//!
//! The consensus backend is pluggable — the paper's headline modularity
//! claim: [`ConsensusBackend::Solo`] (centralized, development),
//! [`ConsensusBackend::Raft`] (CFT cluster, the Kafka substitute), or
//! [`ConsensusBackend::Pbft`] (BFT, the BFT-SMaRt substitute). All three
//! order the same [`OrderedItem`] stream; switching is a config change.
//!
//! # The pipelined intake path
//!
//! Three mechanisms overlap the stages that a naive OSN would serialize:
//!
//! * **Pre-ordering verification** — [`OrderingNode::broadcast_batch`]
//!   checks submitter signatures on a [`crate::verify::VerifyPool`]
//!   worker pool (when one is attached), so ECDSA verification of batch
//!   *n+1* runs while consensus replicates batch *n*.
//! * **Batched consensus slots** — the surviving envelopes of a batch
//!   ride one [`OrderedItem::Batch`] through a single consensus slot,
//!   amortizing Raft/PBFT per-message overhead. Delivery unpacks the
//!   batch into consecutive leaf items, so the ordered stream (and hence
//!   every cut block) is byte-identical to submitting the envelopes one
//!   at a time.
//! * **Speculative block signing** — the Raft leader / PBFT primary knows
//!   the future ordered stream it proposes, so it pre-computes block
//!   header hashes and their ECDSA signatures while replication is still
//!   in flight. Header hashes cover only (number, previous hash, data
//!   hash) — never signatures — and our ECDSA is RFC 6979 deterministic,
//!   so a cache hit yields byte-for-byte the signature that would have
//!   been produced at cut time; a miss (reordering by TTC interleaving,
//!   view change, config block) just falls back to signing on the spot.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use fabric_crypto::Digest;
use fabric_msp::SigningIdentity;
use fabric_primitives::block::{Block, BlockSignature};
use fabric_primitives::config::ChannelConfig;
use fabric_primitives::transaction::{Envelope, EnvelopeContent};
use fabric_primitives::wire::Wire;
use fabric_primitives::ChannelId;

use crate::channel::ChannelState;
use crate::cutter::BlockCutter;
use crate::item::OrderedItem;
use crate::verify::VerifyPool;
use crate::OrderError;

/// Messages exchanged between OSNs.
#[derive(Clone, Debug)]
pub enum OsnMessage {
    /// A Raft protocol message.
    Raft(fabric_raft::Message),
    /// A PBFT protocol message.
    Pbft(fabric_pbft::PbftMessage),
    /// An item forwarded to the consensus leader for proposal.
    Forward(Vec<u8>),
}

/// Events an OSN driver must act on.
#[derive(Clone, Debug)]
pub enum OsnOutput {
    /// Send `message` to OSN `to`.
    Send {
        /// Destination OSN index.
        to: u64,
        /// The message.
        message: OsnMessage,
    },
    /// A block was cut on `channel`; deliver it to subscribed peers.
    BlockCut {
        /// The channel.
        channel: ChannelId,
        /// The freshly cut, signed block.
        block: Block,
    },
}

/// The pluggable consensus backend.
// One instance per OSN; the size skew between backends is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum ConsensusBackend {
    /// Single-node FIFO (development/testing, like Fabric's Solo).
    Solo,
    /// Raft replicated log.
    Raft(fabric_raft::RaftNode),
    /// PBFT atomic broadcast.
    Pbft(fabric_pbft::PbftNode),
}

/// Timing configuration for the OSN driver loop.
#[derive(Clone, Copy, Debug)]
pub struct OsnConfig {
    /// Milliseconds represented by one `tick()` (converts the channel's
    /// `batch_timeout_ms` into ticks).
    pub ms_per_tick: u64,
}

impl Default for OsnConfig {
    fn default() -> Self {
        OsnConfig { ms_per_tick: 100 }
    }
}

/// A leader-side shadow of one channel's cutting state, used to predict
/// the header hashes of blocks that consensus has not yet delivered.
struct SpecShadow {
    /// The number the next predicted block will carry.
    number: u64,
    /// Hash of the previous (predicted) block header.
    last_hash: Digest,
    /// A clone of the channel's cutter, advanced speculatively.
    cutter: BlockCutter,
}

/// The speculative block-signing cache (leader/primary only).
///
/// Predictions are *hints*: a cut consults the cache by the real header
/// hash, so a stale shadow can never corrupt a block — it only costs the
/// miss. Any miss clears that channel's shadow; the next leader-side
/// submission re-seeds it from the channel's real state.
#[derive(Default)]
struct SpecSigner {
    shadows: HashMap<ChannelId, SpecShadow>,
    /// Header hash → this node's signature over it.
    cache: HashMap<Digest, Vec<u8>>,
    hits: u64,
    misses: u64,
}

/// Bound on cached speculative signatures (stale entries from TTC races
/// or view changes are evicted wholesale rather than tracked precisely).
const SPEC_CACHE_MAX: usize = 256;

impl SpecSigner {
    /// Speculatively runs `envelope` through `channel`'s shadow cutter and
    /// pre-signs any blocks it would cut.
    fn speculate(
        &mut self,
        identity: &SigningIdentity,
        channel_id: &ChannelId,
        channel: &ChannelState,
        envelope: &Envelope,
    ) {
        if self.cache.len() >= SPEC_CACHE_MAX {
            self.cache.clear();
        }
        let shadow = self
            .shadows
            .entry(channel_id.clone())
            .or_insert_with(|| SpecShadow {
                number: channel.height(),
                last_hash: channel.last_hash(),
                cutter: channel.cutter.clone(),
            });
        for batch in shadow.cutter.ordered(envelope.clone()) {
            let block = Block::new(shadow.number, shadow.last_hash, batch);
            let header_hash = block.hash();
            self.cache.insert(
                header_hash,
                identity.sign(&header_hash).to_bytes().to_vec(),
            );
            shadow.number += 1;
            shadow.last_hash = header_hash;
        }
    }

    /// Produces this node's signature over `header_hash`, consuming a
    /// cached speculative signature when the prediction was right.
    fn signed(
        &mut self,
        identity: &SigningIdentity,
        channel_id: &ChannelId,
        header_hash: &Digest,
    ) -> BlockSignature {
        let signature = match self.cache.remove(header_hash) {
            Some(sig) => {
                self.hits += 1;
                sig
            }
            None => {
                self.misses += 1;
                // Prediction diverged (TTC cut, config block, lost
                // leadership): drop the shadow so it re-seeds.
                self.shadows.remove(channel_id);
                identity.sign(header_hash).to_bytes().to_vec()
            }
        };
        BlockSignature {
            signer: identity.serialized(),
            signature,
        }
    }

    /// Forgets a channel's shadow (config change, leadership loss).
    fn invalidate(&mut self, channel_id: &ChannelId) {
        self.shadows.remove(channel_id);
    }
}

/// One ordering-service node.
pub struct OrderingNode {
    id: u64,
    identity: SigningIdentity,
    config: OsnConfig,
    backend: ConsensusBackend,
    channels: HashMap<ChannelId, ChannelState>,
    /// Items waiting for a known consensus leader.
    parked: VecDeque<Vec<u8>>,
    /// Optional pre-ordering verification worker pool (shared).
    verify_pool: Option<Arc<VerifyPool>>,
    /// Leader-side speculative signing cache.
    spec: SpecSigner,
}

impl OrderingNode {
    /// Creates an OSN with the given consensus backend and the genesis
    /// configuration of each channel it serves.
    pub fn new(
        id: u64,
        identity: SigningIdentity,
        backend: ConsensusBackend,
        config: OsnConfig,
        genesis_configs: Vec<ChannelConfig>,
    ) -> Result<Self, OrderError> {
        let mut channels = HashMap::new();
        for genesis in genesis_configs {
            let state = ChannelState::from_genesis(genesis)?;
            channels.insert(state.channel.clone(), state);
        }
        Ok(OrderingNode {
            id,
            identity,
            config,
            backend,
            channels,
            parked: VecDeque::new(),
            verify_pool: None,
            spec: SpecSigner::default(),
        })
    }

    /// This OSN's index.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a shared verification pool; `broadcast_batch` offloads
    /// signature checks onto it. Without a pool, verification is inline.
    pub fn set_verify_pool(&mut self, pool: Arc<VerifyPool>) {
        self.verify_pool = Some(pool);
    }

    /// `(hits, misses)` of the speculative block-signing cache.
    pub fn spec_stats(&self) -> (u64, u64) {
        (self.spec.hits, self.spec.misses)
    }

    /// Read access to the consensus backend.
    pub(crate) fn backend_ref(&self) -> &ConsensusBackend {
        &self.backend
    }

    /// Read access to a channel's state.
    pub fn channel(&self, channel: &ChannelId) -> Option<&ChannelState> {
        self.channels.get(channel)
    }

    /// Serves `deliver(seq)` (paper Sec. 3.3): returns block `seq` once cut.
    pub fn deliver(&self, channel: &ChannelId, seq: u64) -> Option<Block> {
        self.channels.get(channel)?.deliver(seq).cloned()
    }

    /// Current height of a channel at this OSN.
    pub fn height(&self, channel: &ChannelId) -> Option<u64> {
        self.channels.get(channel).map(|c| c.height())
    }

    /// Handles a client `broadcast(tx)` call: validate, then inject into
    /// the atomic broadcast.
    pub fn broadcast(&mut self, envelope: Envelope) -> Result<Vec<OsnOutput>, OrderError> {
        let channel = self
            .channels
            .get(envelope.channel())
            .ok_or_else(|| OrderError::UnknownChannel(envelope.channel().clone()))?;
        channel.check_broadcast(&envelope)?;
        let item = OrderedItem::Tx {
            channel: envelope.channel().clone(),
            envelope,
        };
        let mut out = self.submit(item.to_wire())?;
        self.drain_immediate_ttc(&mut out);
        Ok(out)
    }

    /// Handles a batched `broadcast`: verifies every envelope (on the
    /// attached [`VerifyPool`] when present), then submits the survivors —
    /// in submission order — as **one** consensus slot.
    ///
    /// Returns one verdict per input envelope (same order) plus the
    /// outputs of the submission. Invalid envelopes are rejected here and
    /// never reach consensus; the valid ones keep their relative order.
    #[allow(clippy::type_complexity)]
    pub fn broadcast_batch(
        &mut self,
        envelopes: Vec<Envelope>,
    ) -> (Vec<Result<(), OrderError>>, Vec<OsnOutput>) {
        let n = envelopes.len();
        let mut verdicts: Vec<Option<Result<(), OrderError>>> = (0..n).map(|_| None).collect();
        // Pair each envelope with its channel's access snapshot; unknown
        // channels are rejected immediately.
        let mut jobs: Vec<(usize, Arc<crate::channel::ChannelAccess>, Envelope)> = Vec::new();
        for (slot, envelope) in envelopes.into_iter().enumerate() {
            match self.channels.get(envelope.channel()) {
                Some(channel) => jobs.push((slot, channel.access.clone(), envelope)),
                None => {
                    verdicts[slot] =
                        Some(Err(OrderError::UnknownChannel(envelope.channel().clone())))
                }
            }
        }
        // Verify — on the pool when attached, inline otherwise.
        let mut survivors: Vec<(usize, Envelope)> = Vec::new();
        match &self.verify_pool {
            Some(pool) => {
                let slots: Vec<usize> = jobs.iter().map(|(s, _, _)| *s).collect();
                let batch: Vec<_> = jobs
                    .into_iter()
                    .map(|(_, access, envelope)| (access, envelope))
                    .collect();
                for (slot, (envelope, verdict)) in
                    slots.into_iter().zip(pool.verify_batch(batch))
                {
                    match verdict {
                        Ok(()) => survivors.push((slot, envelope)),
                        Err(e) => verdicts[slot] = Some(Err(e)),
                    }
                }
            }
            None => {
                for (slot, access, envelope) in jobs {
                    match access.check_broadcast(&envelope) {
                        Ok(()) => survivors.push((slot, envelope)),
                        Err(e) => verdicts[slot] = Some(Err(e)),
                    }
                }
            }
        }
        survivors.sort_by_key(|(slot, _)| *slot);
        // Submit survivors as one consensus slot.
        let mut out = Vec::new();
        if !survivors.is_empty() {
            let items: Vec<OrderedItem> = survivors
                .iter()
                .map(|(_, envelope)| OrderedItem::Tx {
                    channel: envelope.channel().clone(),
                    envelope: envelope.clone(),
                })
                .collect();
            let wire = if items.len() == 1 {
                items.into_iter().next().expect("one item").to_wire()
            } else {
                OrderedItem::Batch { items }.to_wire()
            };
            match self.submit(wire) {
                Ok(mut o) => {
                    out.append(&mut o);
                    for (slot, _) in &survivors {
                        verdicts[*slot] = Some(Ok(()));
                    }
                }
                Err(e) => {
                    // Submission failed wholesale; the first survivor
                    // carries the error, the rest report denied intake.
                    let mut first = Some(e);
                    for (slot, _) in &survivors {
                        verdicts[*slot] = Some(match first.take() {
                            Some(e) => Err(e),
                            None => Err(OrderError::AccessDenied),
                        });
                    }
                }
            }
        }
        self.drain_immediate_ttc(&mut out);
        (
            verdicts
                .into_iter()
                .map(|v| v.expect("every slot decided"))
                .collect(),
            out,
        )
    }

    /// Injects an encoded item into the consensus backend.
    fn submit(&mut self, bytes: Vec<u8>) -> Result<Vec<OsnOutput>, OrderError> {
        match &mut self.backend {
            ConsensusBackend::Solo => {
                // Single trusted node: the submission order is the total
                // order.
                Ok(self.process_delivered(bytes))
            }
            ConsensusBackend::Raft(raft) => match raft.propose(bytes.clone()) {
                Ok((_, outputs)) => {
                    self.speculate_bytes(&bytes);
                    Ok(self.absorb_raft(outputs))
                }
                Err(fabric_raft::ProposeError::NotLeader(Some(leader))) => {
                    Ok(vec![OsnOutput::Send {
                        to: leader - 1, // raft ids are 1-based OSN index + 1
                        message: OsnMessage::Forward(bytes),
                    }])
                }
                Err(fabric_raft::ProposeError::NotLeader(None)) => {
                    // No leader yet: park until one emerges.
                    self.parked.push_back(bytes);
                    Ok(Vec::new())
                }
            },
            ConsensusBackend::Pbft(pbft) => {
                let primary = pbft.is_primary();
                let outputs = pbft.on_request(bytes.clone());
                if primary {
                    self.speculate_bytes(&bytes);
                }
                Ok(self.absorb_pbft(outputs))
            }
        }
    }

    /// Leader-side speculation: pre-sign the block headers this item will
    /// produce once committed. Only plain transactions advance the shadow;
    /// TTCs and configs invalidate it (their cuts depend on delivery-time
    /// interleaving this node cannot predict).
    fn speculate_bytes(&mut self, bytes: &[u8]) {
        let Ok(item) = OrderedItem::from_wire(bytes) else {
            return;
        };
        let leaves: Vec<OrderedItem> = match item {
            OrderedItem::Batch { items } => items,
            leaf => vec![leaf],
        };
        for leaf in leaves {
            match leaf {
                OrderedItem::Tx { channel, envelope } if !envelope.is_config() => {
                    if let Some(state) = self.channels.get(&channel) {
                        self.spec
                            .speculate(&self.identity, &channel, state, &envelope);
                    }
                }
                OrderedItem::Tx { channel, .. } | OrderedItem::TimeToCut { channel, .. } => {
                    self.spec.invalidate(&channel);
                }
                OrderedItem::Batch { .. } => {} // never nested
            }
        }
    }

    /// Handles an OSN-to-OSN message.
    pub fn step(&mut self, from: u64, message: OsnMessage) -> Vec<OsnOutput> {
        let mut out = match message {
            OsnMessage::Raft(msg) => {
                if let ConsensusBackend::Raft(raft) = &mut self.backend {
                    let outputs = raft.step(from + 1, msg);
                    self.absorb_raft(outputs)
                } else {
                    Vec::new()
                }
            }
            OsnMessage::Pbft(msg) => {
                if let ConsensusBackend::Pbft(pbft) = &mut self.backend {
                    let outputs = pbft.step(from, msg);
                    self.absorb_pbft(outputs)
                } else {
                    Vec::new()
                }
            }
            OsnMessage::Forward(bytes) => self.submit(bytes).unwrap_or_default(),
        };
        self.drain_immediate_ttc(&mut out);
        out
    }

    /// Advances timers: consensus heartbeats/elections plus the per-channel
    /// batch timeout (time-to-cut protocol).
    pub fn tick(&mut self) -> Vec<OsnOutput> {
        let mut out = match &mut self.backend {
            ConsensusBackend::Solo => Vec::new(),
            ConsensusBackend::Raft(raft) => {
                let outputs = raft.tick();
                self.absorb_raft(outputs)
            }
            ConsensusBackend::Pbft(pbft) => {
                let outputs = pbft.tick();
                self.absorb_pbft(outputs)
            }
        };
        // Retry parked submissions once a leader is known.
        if !self.parked.is_empty() {
            let parked: Vec<Vec<u8>> = self.parked.drain(..).collect();
            for bytes in parked {
                if let Ok(mut o) = self.submit(bytes) {
                    out.append(&mut o);
                }
            }
        }
        // Batch timers: if a partial batch has waited past the timeout and
        // we have not yet asked for this block to be cut, broadcast a
        // time-to-cut through consensus (paper Sec. 4.2). `div_ceil` so the
        // timer never fires *early*: a 250 ms timeout at 100 ms/tick waits
        // 3 ticks, not 2.
        let mut ttc_items = Vec::new();
        let ms = self.config.ms_per_tick.max(1);
        for (channel_id, channel) in self.channels.iter_mut() {
            if channel.cutter.has_pending() {
                channel.pending_ticks += 1;
                let timeout_ticks = channel
                    .config()
                    .orderer
                    .batch
                    .batch_timeout_ms
                    .div_ceil(ms)
                    .max(1);
                let next = channel.cutter.next_block();
                if channel.pending_ticks >= timeout_ticks && channel.ttc_sent < next {
                    channel.ttc_sent = next;
                    ttc_items.push(
                        OrderedItem::TimeToCut {
                            channel: channel_id.clone(),
                            block: next,
                        }
                        .to_wire(),
                    );
                }
            } else {
                channel.pending_ticks = 0;
            }
        }
        for item in ttc_items {
            if let Ok(mut o) = self.submit(item) {
                out.append(&mut o);
            }
        }
        self.drain_immediate_ttc(&mut out);
        out
    }

    /// Sub-tick batch timeouts: a `batch_timeout_ms` smaller than one tick
    /// used to quantize *up* to a full tick, stalling small batches for
    /// `ms_per_tick - timeout` extra milliseconds. Such timeouts cannot be
    /// expressed by the tick counter at all, so they fire as soon as a
    /// partial batch exists: every public entry point drains them after
    /// its main work. Monotonic `ttc_sent` bounds the loop.
    fn drain_immediate_ttc(&mut self, out: &mut Vec<OsnOutput>) {
        loop {
            let ms = self.config.ms_per_tick;
            let mut ttc_items = Vec::new();
            for (channel_id, channel) in self.channels.iter_mut() {
                if !channel.cutter.has_pending() {
                    continue;
                }
                if channel.config().orderer.batch.batch_timeout_ms >= ms {
                    continue;
                }
                let next = channel.cutter.next_block();
                if channel.ttc_sent < next {
                    channel.ttc_sent = next;
                    ttc_items.push(
                        OrderedItem::TimeToCut {
                            channel: channel_id.clone(),
                            block: next,
                        }
                        .to_wire(),
                    );
                }
            }
            if ttc_items.is_empty() {
                return;
            }
            for item in ttc_items {
                if let Ok(mut o) = self.submit(item) {
                    out.append(&mut o);
                }
            }
        }
    }

    fn absorb_raft(&mut self, outputs: Vec<fabric_raft::Output>) -> Vec<OsnOutput> {
        let mut out = Vec::new();
        for output in outputs {
            match output {
                fabric_raft::Output::Send { to, message } => out.push(OsnOutput::Send {
                    to: to - 1,
                    message: OsnMessage::Raft(message),
                }),
                fabric_raft::Output::Committed { data, .. } => {
                    out.extend(self.process_delivered(data));
                }
                fabric_raft::Output::BecameLeader => {}
                fabric_raft::Output::SteppedDown => {
                    // Our speculated stream may never commit.
                    self.spec.shadows.clear();
                    self.spec.cache.clear();
                }
            }
        }
        out
    }

    fn absorb_pbft(&mut self, outputs: Vec<fabric_pbft::Output>) -> Vec<OsnOutput> {
        let mut out = Vec::new();
        for output in outputs {
            match output {
                fabric_pbft::Output::Send { to, message } => out.push(OsnOutput::Send {
                    to,
                    message: OsnMessage::Pbft(message),
                }),
                fabric_pbft::Output::Delivered { data, .. } => {
                    if !data.is_empty() {
                        out.extend(self.process_delivered(data));
                    }
                }
            }
        }
        out
    }

    /// Processes one totally-ordered consensus slot: a leaf item, or a
    /// batch unpacked into consecutive leaf items. Deterministic across
    /// OSNs by construction.
    fn process_delivered(&mut self, bytes: Vec<u8>) -> Vec<OsnOutput> {
        let item = match OrderedItem::from_wire(&bytes) {
            Ok(item) => item,
            Err(_) => return Vec::new(), // corrupt item: skip deterministically
        };
        match item {
            OrderedItem::Batch { items } => {
                let mut out = Vec::new();
                for leaf in items {
                    out.extend(self.process_item(leaf));
                }
                out
            }
            leaf => self.process_item(leaf),
        }
    }

    /// Processes one totally-ordered leaf item: batching, config handling,
    /// block cutting.
    fn process_item(&mut self, item: OrderedItem) -> Vec<OsnOutput> {
        let mut out = Vec::new();
        let channel_id = item.channel().clone();
        let Some(channel) = self.channels.get_mut(&channel_id) else {
            return Vec::new();
        };
        let spec = &mut self.spec;
        let identity = &self.identity;
        match item {
            OrderedItem::Tx { envelope, .. } => {
                if envelope.is_config() {
                    // Re-validate against the current config (it may have
                    // changed since broadcast); drop if stale.
                    let update = match &envelope.content {
                        EnvelopeContent::Config(u) => u.clone(),
                        EnvelopeContent::Transaction(_) => unreachable!("is_config checked"),
                    };
                    if channel.check_config_update(&update).is_err() {
                        return Vec::new();
                    }
                    // Config blocks stand alone: flush the pending batch.
                    if let Some(batch) = channel.cutter.flush() {
                        let block = channel
                            .cut_block_with(batch, |h| spec.signed(identity, &channel_id, h));
                        out.push(OsnOutput::BlockCut {
                            channel: channel_id.clone(),
                            block,
                        });
                    }
                    let block = channel
                        .cut_block_with(vec![envelope], |h| spec.signed(identity, &channel_id, h));
                    channel.cutter.note_external_block();
                    channel
                        .apply_config(update.config)
                        .expect("config validated above");
                    channel.pending_ticks = 0;
                    spec.invalidate(&channel_id);
                    out.push(OsnOutput::BlockCut {
                        channel: channel_id,
                        block,
                    });
                } else {
                    for batch in channel.cutter.ordered(envelope) {
                        let block = channel
                            .cut_block_with(batch, |h| spec.signed(identity, &channel_id, h));
                        out.push(OsnOutput::BlockCut {
                            channel: channel_id.clone(),
                            block,
                        });
                    }
                    if !channel.cutter.has_pending() {
                        channel.pending_ticks = 0;
                    }
                }
            }
            OrderedItem::TimeToCut { block, .. } => {
                if let Some(batch) = channel.cutter.time_to_cut(block) {
                    let cut =
                        channel.cut_block_with(batch, |h| spec.signed(identity, &channel_id, h));
                    channel.pending_ticks = 0;
                    out.push(OsnOutput::BlockCut {
                        channel: channel_id,
                        block: cut,
                    });
                }
            }
            OrderedItem::Batch { .. } => {} // unpacked by process_delivered
        }
        out
    }
}
