//! An ordering-service node (OSN).
//!
//! The OSN is the proxy between clients/peers and the consensus backend
//! (paper Sec. 4.2): it validates `broadcast` calls against channel access
//! policies, injects envelopes into the atomic broadcast, batches the
//! totally-ordered stream into blocks with the deterministic cutter, signs
//! the blocks, and serves them through `deliver`.
//!
//! The consensus backend is pluggable — the paper's headline modularity
//! claim: [`ConsensusBackend::Solo`] (centralized, development),
//! [`ConsensusBackend::Raft`] (CFT cluster, the Kafka substitute), or
//! [`ConsensusBackend::Pbft`] (BFT, the BFT-SMaRt substitute). All three
//! order the same [`OrderedItem`] stream; switching is a config change.

use std::collections::{HashMap, VecDeque};

use fabric_msp::SigningIdentity;
use fabric_primitives::block::Block;
use fabric_primitives::config::ChannelConfig;
use fabric_primitives::transaction::{Envelope, EnvelopeContent};
use fabric_primitives::wire::Wire;
use fabric_primitives::ChannelId;

use crate::channel::ChannelState;
use crate::item::OrderedItem;
use crate::OrderError;

/// Messages exchanged between OSNs.
#[derive(Clone, Debug)]
pub enum OsnMessage {
    /// A Raft protocol message.
    Raft(fabric_raft::Message),
    /// A PBFT protocol message.
    Pbft(fabric_pbft::PbftMessage),
    /// An item forwarded to the consensus leader for proposal.
    Forward(Vec<u8>),
}

/// Events an OSN driver must act on.
#[derive(Clone, Debug)]
pub enum OsnOutput {
    /// Send `message` to OSN `to`.
    Send {
        /// Destination OSN index.
        to: u64,
        /// The message.
        message: OsnMessage,
    },
    /// A block was cut on `channel`; deliver it to subscribed peers.
    BlockCut {
        /// The channel.
        channel: ChannelId,
        /// The freshly cut, signed block.
        block: Block,
    },
}

/// The pluggable consensus backend.
pub enum ConsensusBackend {
    /// Single-node FIFO (development/testing, like Fabric's Solo).
    Solo,
    /// Raft replicated log.
    Raft(fabric_raft::RaftNode),
    /// PBFT atomic broadcast.
    Pbft(fabric_pbft::PbftNode),
}

/// Timing configuration for the OSN driver loop.
#[derive(Clone, Copy, Debug)]
pub struct OsnConfig {
    /// Milliseconds represented by one `tick()` (converts the channel's
    /// `batch_timeout_ms` into ticks).
    pub ms_per_tick: u64,
}

impl Default for OsnConfig {
    fn default() -> Self {
        OsnConfig { ms_per_tick: 100 }
    }
}

/// One ordering-service node.
pub struct OrderingNode {
    id: u64,
    identity: SigningIdentity,
    config: OsnConfig,
    backend: ConsensusBackend,
    channels: HashMap<ChannelId, ChannelState>,
    /// Items waiting for a known consensus leader.
    parked: VecDeque<Vec<u8>>,
}

impl OrderingNode {
    /// Creates an OSN with the given consensus backend and the genesis
    /// configuration of each channel it serves.
    pub fn new(
        id: u64,
        identity: SigningIdentity,
        backend: ConsensusBackend,
        config: OsnConfig,
        genesis_configs: Vec<ChannelConfig>,
    ) -> Result<Self, OrderError> {
        let mut channels = HashMap::new();
        for genesis in genesis_configs {
            let state = ChannelState::from_genesis(genesis)?;
            channels.insert(state.channel.clone(), state);
        }
        Ok(OrderingNode {
            id,
            identity,
            config,
            backend,
            channels,
            parked: VecDeque::new(),
        })
    }

    /// This OSN's index.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Read access to the consensus backend.
    pub(crate) fn backend_ref(&self) -> &ConsensusBackend {
        &self.backend
    }

    /// Read access to a channel's state.
    pub fn channel(&self, channel: &ChannelId) -> Option<&ChannelState> {
        self.channels.get(channel)
    }

    /// Serves `deliver(seq)` (paper Sec. 3.3): returns block `seq` once cut.
    pub fn deliver(&self, channel: &ChannelId, seq: u64) -> Option<Block> {
        self.channels.get(channel)?.deliver(seq).cloned()
    }

    /// Current height of a channel at this OSN.
    pub fn height(&self, channel: &ChannelId) -> Option<u64> {
        self.channels.get(channel).map(|c| c.height())
    }

    /// Handles a client `broadcast(tx)` call: validate, then inject into
    /// the atomic broadcast.
    pub fn broadcast(&mut self, envelope: Envelope) -> Result<Vec<OsnOutput>, OrderError> {
        let channel = self
            .channels
            .get(envelope.channel())
            .ok_or_else(|| OrderError::UnknownChannel(envelope.channel().clone()))?;
        channel.check_broadcast(&envelope)?;
        let item = OrderedItem::Tx {
            channel: envelope.channel().clone(),
            envelope,
        };
        self.submit(item.to_wire())
    }

    /// Injects an encoded item into the consensus backend.
    fn submit(&mut self, bytes: Vec<u8>) -> Result<Vec<OsnOutput>, OrderError> {
        match &mut self.backend {
            ConsensusBackend::Solo => {
                // Single trusted node: the submission order is the total
                // order.
                Ok(self.process_delivered(bytes))
            }
            ConsensusBackend::Raft(raft) => match raft.propose(bytes.clone()) {
                Ok((_, outputs)) => Ok(self.absorb_raft(outputs)),
                Err(fabric_raft::ProposeError::NotLeader(Some(leader))) => {
                    Ok(vec![OsnOutput::Send {
                        to: leader - 1, // raft ids are 1-based OSN index + 1
                        message: OsnMessage::Forward(bytes),
                    }])
                }
                Err(fabric_raft::ProposeError::NotLeader(None)) => {
                    // No leader yet: park until one emerges.
                    self.parked.push_back(bytes);
                    Ok(Vec::new())
                }
            },
            ConsensusBackend::Pbft(pbft) => {
                let outputs = pbft.on_request(bytes);
                Ok(self.absorb_pbft(outputs))
            }
        }
    }

    /// Handles an OSN-to-OSN message.
    pub fn step(&mut self, from: u64, message: OsnMessage) -> Vec<OsnOutput> {
        match message {
            OsnMessage::Raft(msg) => {
                if let ConsensusBackend::Raft(raft) = &mut self.backend {
                    let outputs = raft.step(from + 1, msg);
                    self.absorb_raft(outputs)
                } else {
                    Vec::new()
                }
            }
            OsnMessage::Pbft(msg) => {
                if let ConsensusBackend::Pbft(pbft) = &mut self.backend {
                    let outputs = pbft.step(from, msg);
                    self.absorb_pbft(outputs)
                } else {
                    Vec::new()
                }
            }
            OsnMessage::Forward(bytes) => self.submit(bytes).unwrap_or_default(),
        }
    }

    /// Advances timers: consensus heartbeats/elections plus the per-channel
    /// batch timeout (time-to-cut protocol).
    pub fn tick(&mut self) -> Vec<OsnOutput> {
        let mut out = match &mut self.backend {
            ConsensusBackend::Solo => Vec::new(),
            ConsensusBackend::Raft(raft) => {
                let outputs = raft.tick();
                self.absorb_raft(outputs)
            }
            ConsensusBackend::Pbft(pbft) => {
                let outputs = pbft.tick();
                self.absorb_pbft(outputs)
            }
        };
        // Retry parked submissions once a leader is known.
        if !self.parked.is_empty() {
            let parked: Vec<Vec<u8>> = self.parked.drain(..).collect();
            for bytes in parked {
                if let Ok(mut o) = self.submit(bytes) {
                    out.append(&mut o);
                }
            }
        }
        // Batch timers: if a partial batch has waited past the timeout and
        // we have not yet asked for this block to be cut, broadcast a
        // time-to-cut through consensus (paper Sec. 4.2).
        let mut ttc_items = Vec::new();
        let ms = self.config.ms_per_tick;
        for (channel_id, channel) in self.channels.iter_mut() {
            if channel.cutter.has_pending() {
                channel.pending_ticks += 1;
                let timeout_ticks =
                    (channel.config.orderer.batch.batch_timeout_ms / ms.max(1)).max(1);
                let next = channel.cutter.next_block();
                if channel.pending_ticks >= timeout_ticks && channel.ttc_sent < next {
                    channel.ttc_sent = next;
                    ttc_items.push(
                        OrderedItem::TimeToCut {
                            channel: channel_id.clone(),
                            block: next,
                        }
                        .to_wire(),
                    );
                }
            } else {
                channel.pending_ticks = 0;
            }
        }
        for item in ttc_items {
            if let Ok(mut o) = self.submit(item) {
                out.append(&mut o);
            }
        }
        out
    }

    fn absorb_raft(&mut self, outputs: Vec<fabric_raft::Output>) -> Vec<OsnOutput> {
        let mut out = Vec::new();
        for output in outputs {
            match output {
                fabric_raft::Output::Send { to, message } => out.push(OsnOutput::Send {
                    to: to - 1,
                    message: OsnMessage::Raft(message),
                }),
                fabric_raft::Output::Committed { data, .. } => {
                    out.extend(self.process_delivered(data));
                }
                fabric_raft::Output::BecameLeader | fabric_raft::Output::SteppedDown => {}
            }
        }
        out
    }

    fn absorb_pbft(&mut self, outputs: Vec<fabric_pbft::Output>) -> Vec<OsnOutput> {
        let mut out = Vec::new();
        for output in outputs {
            match output {
                fabric_pbft::Output::Send { to, message } => out.push(OsnOutput::Send {
                    to,
                    message: OsnMessage::Pbft(message),
                }),
                fabric_pbft::Output::Delivered { data, .. } => {
                    if !data.is_empty() {
                        out.extend(self.process_delivered(data));
                    }
                }
            }
        }
        out
    }

    /// Processes one totally-ordered item: batching, config handling, block
    /// cutting. Deterministic across OSNs by construction.
    fn process_delivered(&mut self, bytes: Vec<u8>) -> Vec<OsnOutput> {
        let item = match OrderedItem::from_wire(&bytes) {
            Ok(item) => item,
            Err(_) => return Vec::new(), // corrupt item: skip deterministically
        };
        let mut out = Vec::new();
        let channel_id = item.channel().clone();
        let Some(channel) = self.channels.get_mut(&channel_id) else {
            return Vec::new();
        };
        match item {
            OrderedItem::Tx { envelope, .. } => {
                if envelope.is_config() {
                    // Re-validate against the current config (it may have
                    // changed since broadcast); drop if stale.
                    let update = match &envelope.content {
                        EnvelopeContent::Config(u) => u.clone(),
                        EnvelopeContent::Transaction(_) => unreachable!("is_config checked"),
                    };
                    if channel.check_config_update(&update).is_err() {
                        return Vec::new();
                    }
                    // Config blocks stand alone: flush the pending batch.
                    if let Some(batch) = channel.cutter.flush() {
                        let block = channel.cut_block(batch, &self.identity);
                        out.push(OsnOutput::BlockCut {
                            channel: channel_id.clone(),
                            block,
                        });
                    }
                    let block = channel.cut_block(vec![envelope], &self.identity);
                    channel.cutter.note_external_block();
                    channel
                        .apply_config(update.config)
                        .expect("config validated above");
                    channel.pending_ticks = 0;
                    out.push(OsnOutput::BlockCut {
                        channel: channel_id,
                        block,
                    });
                } else {
                    for batch in channel.cutter.ordered(envelope) {
                        let block = channel.cut_block(batch, &self.identity);
                        out.push(OsnOutput::BlockCut {
                            channel: channel_id.clone(),
                            block,
                        });
                    }
                    if !channel.cutter.has_pending() {
                        channel.pending_ticks = 0;
                    }
                }
            }
            OrderedItem::TimeToCut { block, .. } => {
                if let Some(batch) = channel.cutter.time_to_cut(block) {
                    let cut = channel.cut_block(batch, &self.identity);
                    channel.pending_ticks = 0;
                    out.push(OsnOutput::BlockCut {
                        channel: channel_id,
                        block: cut,
                    });
                }
            }
        }
        out
    }
}
