//! Items carried by the atomic-broadcast stream.
//!
//! The consensus layer (Solo queue, Raft log, PBFT sequence) totally orders
//! opaque byte strings; the ordering service tags each with its channel and
//! kind. Besides transactions, the stream carries the *time-to-cut* markers
//! of the paper's deterministic batching protocol (Sec. 4.2): when an OSN's
//! batch timer fires it broadcasts a TTC for the block number it intends to
//! cut, and every OSN cuts that block on the *first* TTC it delivers.

use fabric_primitives::transaction::Envelope;
use fabric_primitives::wire::{Decoder, Encoder, Wire, WireError};
use fabric_primitives::ChannelId;

/// One totally-ordered item.
// Envelope dominates the size; boxing it would ripple through every
// construction site for a value that lives briefly on the submit path.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrderedItem {
    /// A transaction (or config) envelope for a channel.
    Tx {
        /// Target channel.
        channel: ChannelId,
        /// The envelope.
        envelope: Envelope,
    },
    /// A time-to-cut marker for `block` on `channel`.
    TimeToCut {
        /// Target channel.
        channel: ChannelId,
        /// The block number the sender intends to cut.
        block: u64,
    },
    /// Several leaf items riding one consensus slot (the batched intake
    /// path): delivered as if each item had been ordered consecutively.
    /// Batches never nest — the decoder rejects a batch inside a batch.
    Batch {
        /// The leaf items, in submission order.
        items: Vec<OrderedItem>,
    },
}

impl OrderedItem {
    /// The channel this item belongs to. For a batch, the first leaf's
    /// channel (batches may span channels; drivers dispatch per leaf).
    ///
    /// # Panics
    ///
    /// Panics on an empty batch (the decoder never produces one).
    pub fn channel(&self) -> &ChannelId {
        match self {
            OrderedItem::Tx { channel, .. } | OrderedItem::TimeToCut { channel, .. } => channel,
            OrderedItem::Batch { items } => items
                .first()
                .expect("batches are never empty")
                .channel(),
        }
    }

    /// Decodes a non-batch item (the recursion-free base case).
    fn decode_leaf(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let tag = dec.get_u8()?;
        OrderedItem::decode_leaf_body(tag, dec)
    }

    /// Decodes a leaf item whose tag byte has already been consumed.
    fn decode_leaf_body(tag: u8, dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match tag {
            0 => OrderedItem::Tx {
                channel: ChannelId::decode(dec)?,
                envelope: Envelope::decode(dec)?,
            },
            1 => OrderedItem::TimeToCut {
                channel: ChannelId::decode(dec)?,
                block: dec.get_u64()?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for OrderedItem {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            OrderedItem::Tx { channel, envelope } => {
                enc.put_u8(0);
                channel.encode(enc);
                envelope.encode(enc);
            }
            OrderedItem::TimeToCut { channel, block } => {
                enc.put_u8(1);
                channel.encode(enc);
                enc.put_u64(*block);
            }
            OrderedItem::Batch { items } => {
                enc.put_u8(2);
                enc.put_seq(items, |e, item| item.encode(e));
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        // A batch decodes its members through `decode_leaf` only, so
        // adversarial input cannot nest batches and overflow the stack
        // (this stream is fuzzed — see `tests/fuzz_decode.rs`).
        let tag = dec.get_u8()?;
        if tag == 2 {
            let items = dec.get_seq(OrderedItem::decode_leaf)?;
            if items.is_empty() {
                return Err(WireError::BadTag(2));
            }
            return Ok(OrderedItem::Batch { items });
        }
        OrderedItem::decode_leaf_body(tag, dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ttc_round_trip() {
        let item = OrderedItem::TimeToCut {
            channel: ChannelId::new("ch"),
            block: 7,
        };
        assert_eq!(OrderedItem::from_wire(&item.to_wire()).unwrap(), item);
        assert_eq!(item.channel().as_str(), "ch");
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(OrderedItem::from_wire(&[9]).is_err());
    }

    #[test]
    fn batch_round_trip() {
        let batch = OrderedItem::Batch {
            items: vec![
                OrderedItem::TimeToCut {
                    channel: ChannelId::new("a"),
                    block: 1,
                },
                OrderedItem::TimeToCut {
                    channel: ChannelId::new("b"),
                    block: 2,
                },
            ],
        };
        assert_eq!(OrderedItem::from_wire(&batch.to_wire()).unwrap(), batch);
        assert_eq!(batch.channel().as_str(), "a");
    }

    #[test]
    fn nested_and_empty_batches_rejected() {
        let inner = OrderedItem::Batch {
            items: vec![OrderedItem::TimeToCut {
                channel: ChannelId::new("a"),
                block: 1,
            }],
        };
        // Hand-craft a batch containing a batch: tag 2, count 1, inner.
        let mut nested = vec![2u8, 1, 0, 0, 0];
        nested.extend_from_slice(&inner.to_wire());
        assert!(OrderedItem::from_wire(&nested).is_err());
        // Empty batch: tag 2, count 0.
        assert!(OrderedItem::from_wire(&[2, 0, 0, 0, 0]).is_err());
    }
}
