//! Items carried by the atomic-broadcast stream.
//!
//! The consensus layer (Solo queue, Raft log, PBFT sequence) totally orders
//! opaque byte strings; the ordering service tags each with its channel and
//! kind. Besides transactions, the stream carries the *time-to-cut* markers
//! of the paper's deterministic batching protocol (Sec. 4.2): when an OSN's
//! batch timer fires it broadcasts a TTC for the block number it intends to
//! cut, and every OSN cuts that block on the *first* TTC it delivers.

use fabric_primitives::transaction::Envelope;
use fabric_primitives::wire::{Decoder, Encoder, Wire, WireError};
use fabric_primitives::ChannelId;

/// One totally-ordered item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrderedItem {
    /// A transaction (or config) envelope for a channel.
    Tx {
        /// Target channel.
        channel: ChannelId,
        /// The envelope.
        envelope: Envelope,
    },
    /// A time-to-cut marker for `block` on `channel`.
    TimeToCut {
        /// Target channel.
        channel: ChannelId,
        /// The block number the sender intends to cut.
        block: u64,
    },
}

impl OrderedItem {
    /// The channel this item belongs to.
    pub fn channel(&self) -> &ChannelId {
        match self {
            OrderedItem::Tx { channel, .. } | OrderedItem::TimeToCut { channel, .. } => channel,
        }
    }
}

impl Wire for OrderedItem {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            OrderedItem::Tx { channel, envelope } => {
                enc.put_u8(0);
                channel.encode(enc);
                envelope.encode(enc);
            }
            OrderedItem::TimeToCut { channel, block } => {
                enc.put_u8(1);
                channel.encode(enc);
                enc.put_u64(*block);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match dec.get_u8()? {
            0 => OrderedItem::Tx {
                channel: ChannelId::decode(dec)?,
                envelope: Envelope::decode(dec)?,
            },
            1 => OrderedItem::TimeToCut {
                channel: ChannelId::decode(dec)?,
                block: dec.get_u64()?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ttc_round_trip() {
        let item = OrderedItem::TimeToCut {
            channel: ChannelId::new("ch"),
            block: 7,
        };
        assert_eq!(OrderedItem::from_wire(&item.to_wire()).unwrap(), item);
        assert_eq!(item.channel().as_str(), "ch");
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(OrderedItem::from_wire(&[9]).is_err());
    }
}
