//! An in-memory multi-OSN ordering service driver.
//!
//! [`OrderingCluster`] wires several [`OrderingNode`]s together over an
//! in-memory network and exposes the two-call interface of the paper
//! (Sec. 3.3): `broadcast(tx)` and `deliver(seq)`. It also cross-checks
//! that every OSN cuts byte-identical blocks — the determinism property the
//! whole design rests on.

use std::collections::VecDeque;

use fabric_msp::SigningIdentity;
use fabric_primitives::block::Block;
use fabric_primitives::config::{ChannelConfig, ConsensusType};
use fabric_primitives::transaction::Envelope;
use fabric_primitives::ChannelId;

use crate::node::{ConsensusBackend, OrderingNode, OsnConfig, OsnMessage, OsnOutput};
use crate::OrderError;

/// A deterministic in-memory ordering service (any backend).
pub struct OrderingCluster {
    nodes: Vec<OrderingNode>,
    network: VecDeque<(u64, u64, OsnMessage)>,
    /// Round-robin entry point for broadcasts.
    next_entry: usize,
    /// Blocks each node has cut, per channel, for determinism checks.
    cut_log: Vec<Vec<(ChannelId, Block)>>,
}

impl OrderingCluster {
    /// Builds a cluster of `n` OSNs with the given consensus type, serving
    /// the given channels. `identities` supplies one orderer identity per
    /// node. For Raft/PBFT the consensus is bootstrapped (leader elected)
    /// before returning.
    pub fn new(
        consensus: ConsensusType,
        identities: Vec<SigningIdentity>,
        genesis_configs: Vec<ChannelConfig>,
    ) -> Result<Self, OrderError> {
        let n = identities.len();
        assert!(n >= 1);
        let mut nodes = Vec::with_capacity(n);
        for (i, identity) in identities.into_iter().enumerate() {
            let backend = match consensus {
                ConsensusType::Solo => {
                    assert_eq!(n, 1, "Solo runs on exactly one OSN");
                    ConsensusBackend::Solo
                }
                ConsensusType::Raft => {
                    let ids: Vec<u64> = (1..=n as u64).collect();
                    let peers: Vec<u64> =
                        ids.iter().copied().filter(|&p| p != i as u64 + 1).collect();
                    ConsensusBackend::Raft(fabric_raft::RaftNode::new(
                        i as u64 + 1,
                        peers,
                        fabric_raft::RaftConfig::default(),
                        0xfab,
                    ))
                }
                ConsensusType::Pbft => ConsensusBackend::Pbft(fabric_pbft::PbftNode::new(
                    i as u64,
                    n,
                    fabric_pbft::PbftConfig::default(),
                )),
            };
            nodes.push(OrderingNode::new(
                i as u64,
                identity,
                backend,
                OsnConfig::default(),
                genesis_configs.clone(),
            )?);
        }
        let mut cluster = OrderingCluster {
            nodes,
            network: VecDeque::new(),
            next_entry: 0,
            cut_log: vec![Vec::new(); n],
        };
        if consensus == ConsensusType::Raft {
            // Elect a leader before accepting traffic.
            for _ in 0..500 {
                cluster.tick();
                if cluster
                    .nodes
                    .iter()
                    .any(|node| node.consensus_leader() == Some(node.id()))
                {
                    break;
                }
            }
        }
        Ok(cluster)
    }

    fn absorb(&mut self, from: u64, outputs: Vec<OsnOutput>) {
        for output in outputs {
            match output {
                OsnOutput::Send { to, message } => self.network.push_back((from, to, message)),
                OsnOutput::BlockCut { channel, block } => {
                    self.cut_log[from as usize].push((channel, block));
                }
            }
        }
    }

    /// Delivers all in-flight OSN messages.
    pub fn drain(&mut self) {
        let mut budget = 500_000;
        while let Some((from, to, message)) = self.network.pop_front() {
            budget -= 1;
            assert!(budget > 0, "OSN network did not quiesce");
            let outputs = self.nodes[to as usize].step(from, message);
            self.absorb(to, outputs);
        }
    }

    /// Advances every OSN's clock one tick and drains the network.
    pub fn tick(&mut self) {
        for i in 0..self.nodes.len() {
            let outputs = self.nodes[i].tick();
            self.absorb(i as u64, outputs);
        }
        self.drain();
    }

    /// Broadcasts an envelope via the next OSN (round robin), as clients
    /// connecting to arbitrary OSNs would.
    pub fn broadcast(&mut self, envelope: Envelope) -> Result<(), OrderError> {
        let entry = self.next_entry % self.nodes.len();
        self.next_entry += 1;
        let outputs = self.nodes[entry].broadcast(envelope)?;
        self.absorb(entry as u64, outputs);
        self.drain();
        Ok(())
    }

    /// Serves `deliver(seq)` from the given OSN.
    pub fn deliver_from(&self, osn: usize, channel: &ChannelId, seq: u64) -> Option<Block> {
        self.nodes[osn].deliver(channel, seq)
    }

    /// Serves `deliver(seq)` from OSN 0.
    pub fn deliver(&self, channel: &ChannelId, seq: u64) -> Option<Block> {
        self.deliver_from(0, channel, seq)
    }

    /// Chain height at OSN 0.
    pub fn height(&self, channel: &ChannelId) -> u64 {
        self.nodes[0].height(channel).unwrap_or(0)
    }

    /// Access to the nodes (assertions, fault injection in tests).
    pub fn nodes(&self) -> &[OrderingNode] {
        &self.nodes
    }

    /// Asserts every OSN cut an identical block sequence per channel
    /// (prefix-wise, since some OSNs may lag).
    pub fn assert_identical_chains(&self, channel: &ChannelId) {
        let heights: Vec<u64> = self
            .nodes
            .iter()
            .map(|n| n.height(channel).unwrap_or(0))
            .collect();
        let min_height = *heights.iter().min().expect("at least one node");
        for seq in 0..min_height {
            let reference = self.nodes[0]
                .deliver(channel, seq)
                .expect("below min height");
            for node in &self.nodes[1..] {
                let block = node.deliver(channel, seq).expect("below min height");
                assert_eq!(
                    block.header, reference.header,
                    "OSN {} cut a different block {}",
                    node.id(),
                    seq
                );
                assert_eq!(block.envelopes, reference.envelopes);
            }
        }
    }
}

impl OrderingNode {
    /// The node this OSN believes is the consensus leader/primary, if any.
    pub fn consensus_leader(&self) -> Option<u64> {
        match self.backend_ref() {
            ConsensusBackend::Solo => Some(self.id()),
            ConsensusBackend::Raft(raft) => raft.leader_hint().map(|id| id - 1),
            ConsensusBackend::Pbft(pbft) => Some(pbft.primary()),
        }
    }
}
