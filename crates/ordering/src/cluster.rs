//! An in-memory multi-OSN ordering service driver.
//!
//! [`OrderingCluster`] wires several [`OrderingNode`]s together over an
//! in-memory network and exposes the two-call interface of the paper
//! (Sec. 3.3): `broadcast(tx)` and `deliver(seq)`. It also cross-checks
//! that every OSN cuts byte-identical blocks — the determinism property the
//! whole design rests on.
//!
//! For the ordering fault battery the cluster supports node crashes
//! ([`OrderingCluster::crash`]) and a message-level fault hook
//! ([`OrderingCluster::set_fault`]) that can drop or observe any OSN-to-OSN
//! message — enough to express leader crashes mid-pipeline, partitions
//! that heal, and message loss.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use fabric_msp::SigningIdentity;
use fabric_primitives::block::Block;
use fabric_primitives::config::{ChannelConfig, ConsensusType};
use fabric_primitives::transaction::Envelope;
use fabric_primitives::ChannelId;

use crate::node::{ConsensusBackend, OrderingNode, OsnConfig, OsnMessage, OsnOutput};
use crate::verify::VerifyPool;
use crate::OrderError;

/// Decides the fate of one in-flight message: `(from, to, message)` →
/// deliver (`true`) or drop (`false`).
pub type FaultHook = Box<dyn FnMut(u64, u64, &OsnMessage) -> bool>;

/// Construction knobs for [`OrderingCluster::new_with`].
pub struct ClusterOptions {
    /// The consensus backend type.
    pub consensus: ConsensusType,
    /// Raft tuning (replication mode, window, timeouts).
    pub raft: fabric_raft::RaftConfig,
    /// PBFT tuning (batch size, in-flight window, timeouts).
    pub pbft: fabric_pbft::PbftConfig,
    /// OSN driver timing.
    pub osn: OsnConfig,
    /// Verification pool worker count; `0` keeps verification inline.
    pub verify_workers: usize,
}

impl ClusterOptions {
    /// Default options for a backend type.
    pub fn new(consensus: ConsensusType) -> Self {
        ClusterOptions {
            consensus,
            raft: fabric_raft::RaftConfig::default(),
            pbft: fabric_pbft::PbftConfig::default(),
            osn: OsnConfig::default(),
            verify_workers: 0,
        }
    }
}

/// A deterministic in-memory ordering service (any backend).
pub struct OrderingCluster {
    nodes: Vec<OrderingNode>,
    network: VecDeque<(u64, u64, OsnMessage)>,
    /// Round-robin entry point for broadcasts.
    next_entry: usize,
    /// Blocks each node has cut, per channel, for determinism checks.
    cut_log: Vec<Vec<(ChannelId, Block)>>,
    /// Crashed nodes: their timers stop and all their traffic is dropped.
    down: HashSet<u64>,
    /// Optional message-fate hook.
    fault: Option<FaultHook>,
    /// Keeps the shared verification pool alive.
    _verify_pool: Option<Arc<VerifyPool>>,
}

impl OrderingCluster {
    /// Builds a cluster of `n` OSNs with the given consensus type, serving
    /// the given channels. `identities` supplies one orderer identity per
    /// node. For Raft/PBFT the consensus is bootstrapped (leader elected)
    /// before returning.
    pub fn new(
        consensus: ConsensusType,
        identities: Vec<SigningIdentity>,
        genesis_configs: Vec<ChannelConfig>,
    ) -> Result<Self, OrderError> {
        Self::new_with(ClusterOptions::new(consensus), identities, genesis_configs)
    }

    /// Builds a cluster with explicit tuning (see [`ClusterOptions`]).
    pub fn new_with(
        options: ClusterOptions,
        identities: Vec<SigningIdentity>,
        genesis_configs: Vec<ChannelConfig>,
    ) -> Result<Self, OrderError> {
        let n = identities.len();
        assert!(n >= 1);
        let verify_pool = if options.verify_workers > 0 {
            Some(Arc::new(VerifyPool::new(options.verify_workers)))
        } else {
            None
        };
        let mut nodes = Vec::with_capacity(n);
        for (i, identity) in identities.into_iter().enumerate() {
            let backend = match options.consensus {
                ConsensusType::Solo => {
                    assert_eq!(n, 1, "Solo runs on exactly one OSN");
                    ConsensusBackend::Solo
                }
                ConsensusType::Raft => {
                    let ids: Vec<u64> = (1..=n as u64).collect();
                    let peers: Vec<u64> =
                        ids.iter().copied().filter(|&p| p != i as u64 + 1).collect();
                    ConsensusBackend::Raft(fabric_raft::RaftNode::new(
                        i as u64 + 1,
                        peers,
                        options.raft,
                        0xfab,
                    ))
                }
                ConsensusType::Pbft => ConsensusBackend::Pbft(fabric_pbft::PbftNode::new(
                    i as u64,
                    n,
                    options.pbft,
                )),
            };
            let mut node = OrderingNode::new(
                i as u64,
                identity,
                backend,
                options.osn,
                genesis_configs.clone(),
            )?;
            if let Some(pool) = &verify_pool {
                node.set_verify_pool(pool.clone());
            }
            nodes.push(node);
        }
        let mut cluster = OrderingCluster {
            nodes,
            network: VecDeque::new(),
            next_entry: 0,
            cut_log: vec![Vec::new(); n],
            down: HashSet::new(),
            fault: None,
            _verify_pool: verify_pool,
        };
        if options.consensus == ConsensusType::Raft {
            // Elect a leader before accepting traffic.
            for _ in 0..500 {
                cluster.tick();
                if cluster
                    .nodes
                    .iter()
                    .any(|node| node.consensus_leader() == Some(node.id()))
                {
                    break;
                }
            }
        }
        Ok(cluster)
    }

    /// Installs a message-fate hook (drop/observe OSN-to-OSN traffic).
    pub fn set_fault(&mut self, hook: FaultHook) {
        self.fault = Some(hook);
    }

    /// Removes the fault hook (heals a partition it expressed).
    pub fn clear_fault(&mut self) {
        self.fault = None;
    }

    /// Crashes an OSN: its timers stop and every message to or from it is
    /// dropped. The crash is permanent (fail-stop).
    pub fn crash(&mut self, osn: u64) {
        self.down.insert(osn);
    }

    /// Whether `osn` has been crashed.
    pub fn is_down(&self, osn: u64) -> bool {
        self.down.contains(&osn)
    }

    fn absorb(&mut self, from: u64, outputs: Vec<OsnOutput>) {
        for output in outputs {
            match output {
                OsnOutput::Send { to, message } => self.network.push_back((from, to, message)),
                OsnOutput::BlockCut { channel, block } => {
                    self.cut_log[from as usize].push((channel, block));
                }
            }
        }
    }

    /// Delivers all in-flight OSN messages.
    pub fn drain(&mut self) {
        let mut budget = 500_000;
        while let Some((from, to, message)) = self.network.pop_front() {
            budget -= 1;
            assert!(budget > 0, "OSN network did not quiesce");
            if self.down.contains(&from) || self.down.contains(&to) {
                continue;
            }
            if let Some(hook) = &mut self.fault {
                if !hook(from, to, &message) {
                    continue;
                }
            }
            let outputs = self.nodes[to as usize].step(from, message);
            self.absorb(to, outputs);
        }
    }

    /// Advances every live OSN's clock one tick and drains the network.
    pub fn tick(&mut self) {
        for i in 0..self.nodes.len() {
            if self.down.contains(&(i as u64)) {
                continue;
            }
            let outputs = self.nodes[i].tick();
            self.absorb(i as u64, outputs);
        }
        self.drain();
    }

    /// Broadcasts an envelope via the next live OSN (round robin), as
    /// clients connecting to arbitrary OSNs would.
    pub fn broadcast(&mut self, envelope: Envelope) -> Result<(), OrderError> {
        let entry = self.next_live_entry();
        self.broadcast_via(entry, envelope)
    }

    /// Broadcasts an envelope via a specific OSN.
    pub fn broadcast_via(&mut self, osn: usize, envelope: Envelope) -> Result<(), OrderError> {
        let outputs = self.nodes[osn].broadcast(envelope)?;
        self.absorb(osn as u64, outputs);
        self.drain();
        Ok(())
    }

    /// Broadcasts a batch of envelopes via the next live OSN in one
    /// intake round (pre-ordering verification + one consensus slot);
    /// returns one verdict per envelope, in order.
    pub fn broadcast_batch(
        &mut self,
        envelopes: Vec<Envelope>,
    ) -> Vec<Result<(), OrderError>> {
        let entry = self.next_live_entry();
        self.broadcast_batch_via(entry, envelopes)
    }

    /// Like [`OrderingCluster::broadcast_batch`] via a specific OSN.
    pub fn broadcast_batch_via(
        &mut self,
        osn: usize,
        envelopes: Vec<Envelope>,
    ) -> Vec<Result<(), OrderError>> {
        let (verdicts, outputs) = self.nodes[osn].broadcast_batch(envelopes);
        self.absorb(osn as u64, outputs);
        self.drain();
        verdicts
    }

    /// The first live OSN at or after `preferred` (wrapping), or `None`
    /// when every node is down. Lets a caller keep a sticky entry point
    /// and fail over deterministically without the round-robin state.
    pub fn live_entry(&self, preferred: usize) -> Option<usize> {
        let n = self.nodes.len();
        (0..n)
            .map(|i| (preferred + i) % n)
            .find(|&i| !self.down.contains(&(i as u64)))
    }

    fn next_live_entry(&mut self) -> usize {
        for _ in 0..self.nodes.len() {
            let entry = self.next_entry % self.nodes.len();
            self.next_entry += 1;
            if !self.down.contains(&(entry as u64)) {
                return entry;
            }
        }
        panic!("all OSNs are down");
    }

    /// Serves `deliver(seq)` from the given OSN.
    pub fn deliver_from(&self, osn: usize, channel: &ChannelId, seq: u64) -> Option<Block> {
        self.nodes[osn].deliver(channel, seq)
    }

    /// Serves `deliver(seq)` from OSN 0.
    pub fn deliver(&self, channel: &ChannelId, seq: u64) -> Option<Block> {
        self.deliver_from(0, channel, seq)
    }

    /// Chain height at OSN 0.
    pub fn height(&self, channel: &ChannelId) -> u64 {
        self.nodes[0].height(channel).unwrap_or(0)
    }

    /// Access to the nodes (assertions, fault injection in tests).
    pub fn nodes(&self) -> &[OrderingNode] {
        &self.nodes
    }

    /// Asserts every *live* OSN cut an identical block sequence per channel
    /// (prefix-wise, since some OSNs may lag).
    pub fn assert_identical_chains(&self, channel: &ChannelId) {
        let live: Vec<&OrderingNode> = self
            .nodes
            .iter()
            .filter(|n| !self.down.contains(&n.id()))
            .collect();
        let min_height = live
            .iter()
            .map(|n| n.height(channel).unwrap_or(0))
            .min()
            .expect("at least one live node");
        let reference = live.first().expect("at least one live node");
        for seq in 0..min_height {
            let expected = reference.deliver(channel, seq).expect("below min height");
            for node in &live[1..] {
                let block = node.deliver(channel, seq).expect("below min height");
                assert_eq!(
                    block.header, expected.header,
                    "OSN {} cut a different block {}",
                    node.id(),
                    seq
                );
                assert_eq!(block.envelopes, expected.envelopes);
            }
        }
    }
}

impl OrderingNode {
    /// The node this OSN believes is the consensus leader/primary, if any.
    pub fn consensus_leader(&self) -> Option<u64> {
        match self.backend_ref() {
            ConsensusBackend::Solo => Some(self.id()),
            ConsensusBackend::Raft(raft) => raft.leader_hint().map(|id| id - 1),
            ConsensusBackend::Pbft(pbft) => Some(pbft.primary()),
        }
    }
}
