//! Deterministic block cutting (paper Sec. 4.2).
//!
//! A block is cut as soon as one of three conditions holds:
//!
//! 1. it contains `max_message_count` transactions;
//! 2. adding the next transaction would exceed `preferred_max_bytes`
//!    (a transaction larger than the preferred size forms its own block);
//! 3. a time-to-cut marker for the pending block number is delivered.
//!
//! Conditions 1 and 2 are trivially deterministic given the ordered stream;
//! condition 3 is made deterministic by routing the timeout *through* the
//! atomic broadcast: every OSN cuts on the first TTC for a given number, so
//! all OSNs produce identical blocks.

use fabric_primitives::config::BatchConfig;
use fabric_primitives::transaction::Envelope;
use fabric_primitives::wire::Wire;

/// Deterministic batcher for one channel.
#[derive(Clone)]
pub struct BlockCutter {
    config: BatchConfig,
    pending: Vec<Envelope>,
    pending_bytes: usize,
    /// Number the next cut block will carry.
    next_block: u64,
}

impl BlockCutter {
    /// Creates a cutter; `next_block` is the number of the next block to
    /// cut (1 for a fresh channel whose genesis block is number 0).
    pub fn new(config: BatchConfig, next_block: u64) -> Self {
        BlockCutter {
            config,
            pending: Vec::new(),
            pending_bytes: 0,
            next_block,
        }
    }

    /// Updates batching parameters (after a config block).
    pub fn set_config(&mut self, config: BatchConfig) {
        self.config = config;
    }

    /// The block number the next cut will produce.
    pub fn next_block(&self) -> u64 {
        self.next_block
    }

    /// Whether a partially filled batch is pending (drives the TTC timer).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Offers an ordered envelope; returns zero, one, or two cut batches
    /// (two when an oversized transaction first flushes the pending batch
    /// and then forms its own block).
    pub fn ordered(&mut self, envelope: Envelope) -> Vec<Vec<Envelope>> {
        let size = envelope.wire_size();
        let mut cuts = Vec::new();
        let preferred = self.config.preferred_max_bytes as usize;

        if size > preferred {
            // Oversized: flush whatever is pending, then emit it alone.
            if !self.pending.is_empty() {
                cuts.push(self.take_pending());
            }
            self.pending.push(envelope);
            self.pending_bytes = size;
            cuts.push(self.take_pending());
            return cuts;
        }
        if !self.pending.is_empty() && self.pending_bytes + size > preferred {
            cuts.push(self.take_pending());
        }
        self.pending.push(envelope);
        self.pending_bytes += size;
        if self.pending.len() >= self.config.max_message_count as usize {
            cuts.push(self.take_pending());
        }
        cuts
    }

    /// Handles a delivered time-to-cut for `block`; cuts the pending batch
    /// if the marker is current (stale markers are ignored).
    pub fn time_to_cut(&mut self, block: u64) -> Option<Vec<Envelope>> {
        if block == self.next_block && !self.pending.is_empty() {
            Some(self.take_pending())
        } else {
            None
        }
    }

    /// Immediately cuts the pending batch (used before emitting a config
    /// block, which must sit alone in its own block).
    pub fn flush(&mut self) -> Option<Vec<Envelope>> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.take_pending())
        }
    }

    fn take_pending(&mut self) -> Vec<Envelope> {
        self.pending_bytes = 0;
        self.next_block += 1;
        std::mem::take(&mut self.pending)
    }

    /// Registers an externally produced block (config blocks are cut by the
    /// service itself, not by batching).
    pub fn note_external_block(&mut self) {
        self.next_block += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_primitives::config::ChannelConfig;
    use fabric_primitives::ids::ChannelId;
    use fabric_primitives::transaction::EnvelopeContent;

    /// An envelope whose serialized size is roughly `payload` bytes.
    fn env(payload: usize) -> Envelope {
        use fabric_primitives::config::{ConsensusType, OrdererConfig, OrgConfig};
        // Config envelopes are the simplest way to get a size-controllable
        // payload without building a whole transaction.
        Envelope {
            content: EnvelopeContent::Config(fabric_primitives::config::ConfigUpdate {
                config: ChannelConfig {
                    channel: ChannelId::new("ch"),
                    sequence: 0,
                    orgs: vec![OrgConfig {
                        msp_id: "x".into(),
                        root_cert: vec![0u8; payload],
                    }],
                    orderer: OrdererConfig {
                        consensus: ConsensusType::Solo,
                        addresses: vec![],
                        batch: BatchConfig::default(),
                    },
                    admin_policy: String::new(),
                    writer_policy: String::new(),
                    reader_policy: String::new(),
                },
                signatures: vec![],
            }),
            signature: vec![],
        }
    }

    fn cutter(max_count: u32, preferred: u32) -> BlockCutter {
        BlockCutter::new(
            BatchConfig {
                max_message_count: max_count,
                absolute_max_bytes: 1024 * 1024,
                preferred_max_bytes: preferred,
                batch_timeout_ms: 1000,
            },
            1,
        )
    }

    #[test]
    fn cuts_on_message_count() {
        let mut c = cutter(3, 1_000_000);
        assert!(c.ordered(env(10)).is_empty());
        assert!(c.ordered(env(10)).is_empty());
        let cuts = c.ordered(env(10));
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].len(), 3);
        assert!(!c.has_pending());
        assert_eq!(c.next_block(), 2);
    }

    #[test]
    fn cuts_on_preferred_bytes() {
        let mut c = cutter(1000, 1000);
        assert!(c.ordered(env(400)).is_empty());
        // Next envelope would push past 1000 bytes: cut first, then pend.
        let cuts = c.ordered(env(700));
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].len(), 1);
        assert!(c.has_pending());
    }

    #[test]
    fn oversized_tx_forms_own_block() {
        let mut c = cutter(1000, 500);
        assert!(c.ordered(env(100)).is_empty());
        let cuts = c.ordered(env(2000));
        assert_eq!(cuts.len(), 2);
        assert_eq!(cuts[0].len(), 1, "pending flushed first");
        assert_eq!(cuts[1].len(), 1, "oversized tx alone");
        assert!(!c.has_pending());
    }

    #[test]
    fn oversized_tx_with_empty_pending() {
        let mut c = cutter(1000, 500);
        let cuts = c.ordered(env(2000));
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].len(), 1);
    }

    #[test]
    fn time_to_cut_flushes_current_block() {
        let mut c = cutter(1000, 1_000_000);
        c.ordered(env(10));
        c.ordered(env(10));
        let batch = c.time_to_cut(1).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(c.next_block(), 2);
    }

    #[test]
    fn stale_time_to_cut_ignored() {
        let mut c = cutter(2, 1_000_000);
        c.ordered(env(10));
        c.ordered(env(10)); // cut happens here; next_block = 2
        c.ordered(env(10));
        assert!(c.time_to_cut(1).is_none(), "stale TTC for block 1");
        assert!(c.has_pending());
        assert!(c.time_to_cut(2).is_some());
    }

    #[test]
    fn ttc_with_nothing_pending_ignored() {
        let mut c = cutter(2, 1_000_000);
        assert!(c.time_to_cut(1).is_none());
    }

    #[test]
    fn flush_cuts_pending() {
        let mut c = cutter(100, 1_000_000);
        assert!(c.flush().is_none());
        c.ordered(env(10));
        assert_eq!(c.flush().unwrap().len(), 1);
    }

    #[test]
    fn determinism_across_replicas() {
        // Two cutters fed the same stream cut identical batches.
        let stream: Vec<Envelope> = (0..50).map(|i| env(100 + (i % 7) * 53)).collect();
        let run = |mut c: BlockCutter| {
            let mut batches = Vec::new();
            for e in stream.clone() {
                batches.extend(c.ordered(e));
            }
            batches
        };
        let a = run(cutter(10, 800));
        let b = run(cutter(10, 800));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
