//! Pre-ordering signature verification (the tentpole's intake stage).
//!
//! `broadcast` validation — ECDSA verification of the submitter's
//! signature plus the writer-policy check — is the CPU-heavy part of the
//! ordering service's front end, and it is embarrassingly parallel: each
//! envelope verifies against an immutable [`ChannelAccess`] snapshot and
//! no envelope's verdict depends on another's. The [`VerifyPool`] runs
//! those checks on a fixed set of worker threads *before* consensus sees
//! the payload, so signature verification overlaps with Raft/PBFT
//! replication of earlier batches instead of serializing ahead of it
//! (paper Sec. 4.2 places validation at the OSN boundary for exactly this
//! reason: the consensus cluster never wastes ordering work on envelopes
//! that would be discarded).
//!
//! The pool is deliberately *order-preserving at the batch level*:
//! [`VerifyPool::verify_batch`] scatters a batch across the workers and
//! gathers verdicts back into submission-slot order, so the caller can
//! submit survivors to consensus in exactly the order the client sent
//! them. This mirrors the batching signer of the endorsement pipeline
//! (PR 5): parallel inside, deterministic outside.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Receiver, Sender};

use fabric_primitives::transaction::Envelope;

use crate::channel::ChannelAccess;
use crate::OrderError;

/// One verification request: check `envelope` against `access`, report
/// under `slot`.
struct Job {
    access: Arc<ChannelAccess>,
    envelope: Envelope,
    slot: usize,
    reply: Sender<(usize, Envelope, Result<(), OrderError>)>,
}

/// A pool of persistent verification workers shared by every OSN in a
/// process (cloning the `Arc` it usually lives behind is cheap).
pub struct VerifyPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl VerifyPool {
    /// Spawns a pool with `workers` threads; `0` uses the host's available
    /// parallelism.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            workers
        };
        let (tx, rx): (Sender<Job>, Receiver<Job>) = channel::unbounded();
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("osn-verify-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let verdict = job.access.check_broadcast(&job.envelope);
                            // A dropped receiver means the caller gave up;
                            // nothing useful to do with the verdict.
                            let _ = job.reply.send((job.slot, job.envelope, verdict));
                        }
                    })
                    .expect("spawn verify worker")
            })
            .collect();
        VerifyPool {
            tx: Some(tx),
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Verifies a batch of `(access, envelope)` pairs in parallel,
    /// returning `(envelope, verdict)` in the submission order given.
    pub fn verify_batch(
        &self,
        jobs: Vec<(Arc<ChannelAccess>, Envelope)>,
    ) -> Vec<(Envelope, Result<(), OrderError>)> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let tx = self.tx.as_ref().expect("pool is open");
        let (reply_tx, reply_rx) = channel::bounded(n);
        for (slot, (access, envelope)) in jobs.into_iter().enumerate() {
            let sent = tx.send(Job {
                access,
                envelope,
                slot,
                reply: reply_tx.clone(),
            });
            assert!(sent.is_ok(), "verify workers alive");
        }
        drop(reply_tx);
        let mut out: Vec<Option<(Envelope, Result<(), OrderError>)>> =
            (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (slot, envelope, verdict) = reply_rx.recv().expect("worker reply");
            out[slot] = Some((envelope, verdict));
        }
        out.into_iter()
            .map(|x| x.expect("every slot filled"))
            .collect()
    }

    /// Shuts the pool down, joining all workers. Called by `Drop`.
    pub fn close(&mut self) {
        if let Some(tx) = self.tx.take() {
            drop(tx);
            for handle in self.workers.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        self.close();
    }
}
