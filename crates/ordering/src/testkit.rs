//! Reusable fixtures for building test networks: CAs, identities, channel
//! configs, and signed envelopes.
//!
//! Used by this crate's tests, the peer/client crates, integration tests,
//! and the benchmark harness — so it lives in the library (it contains no
//! test-only hacks, just deterministic setup helpers).

use fabric_msp::{CertificateAuthority, Role, SigningIdentity};
use fabric_primitives::config::{
    BatchConfig, ChannelConfig, ConsensusType, OrdererConfig, OrgConfig,
};
use fabric_primitives::ids::{ChaincodeId, ChannelId, SerializedIdentity, TxId};
use fabric_primitives::rwset::TxReadWriteSet;
use fabric_primitives::transaction::{
    ChaincodeResponse, Endorsement, Envelope, EnvelopeContent, ProposalPayload,
    ProposalResponsePayload, Transaction,
};
use fabric_primitives::wire::Wire;

/// A ready-made test network: per-org CAs plus orderer org, identities, and
/// a channel configuration.
pub struct TestNet {
    /// The channel id.
    pub channel: ChannelId,
    /// One CA per application org, in org order.
    pub org_cas: Vec<CertificateAuthority>,
    /// The orderer org's CA.
    pub orderer_ca: CertificateAuthority,
    /// The channel genesis configuration.
    pub genesis: ChannelConfig,
}

impl TestNet {
    /// Builds a network with `org_names` application orgs plus an
    /// `OrdererOrg`, with the given consensus type and OSN count.
    pub fn new(org_names: &[&str], consensus: ConsensusType, osn_count: usize) -> Self {
        Self::with_batch(org_names, consensus, osn_count, BatchConfig::default())
    }

    /// Like [`TestNet::new`] with explicit batch parameters.
    pub fn with_batch(
        org_names: &[&str],
        consensus: ConsensusType,
        osn_count: usize,
        batch: BatchConfig,
    ) -> Self {
        let channel = ChannelId::new("testchannel");
        let org_cas: Vec<CertificateAuthority> = org_names
            .iter()
            .map(|name| {
                CertificateAuthority::new(
                    format!("ca.{name}"),
                    format!("{name}MSP"),
                    format!("seed-{name}").as_bytes(),
                )
            })
            .collect();
        let orderer_ca = CertificateAuthority::new("ca.orderer", "OrdererMSP", b"seed-orderer");
        let mut orgs: Vec<OrgConfig> = org_cas
            .iter()
            .map(|ca| OrgConfig {
                msp_id: ca.msp_id().to_string(),
                root_cert: ca.root_cert().to_wire(),
            })
            .collect();
        orgs.push(OrgConfig {
            msp_id: "OrdererMSP".into(),
            root_cert: orderer_ca.root_cert().to_wire(),
        });
        let genesis = ChannelConfig {
            channel: channel.clone(),
            sequence: 0,
            orgs,
            orderer: OrdererConfig {
                consensus,
                addresses: (0..osn_count).map(|i| format!("osn{i}")).collect(),
                batch,
            },
            admin_policy: "MAJORITY(admins)".into(),
            writer_policy: "ANY(members)".into(),
            reader_policy: "ANY(members)".into(),
        };
        TestNet {
            channel,
            org_cas,
            orderer_ca,
            genesis,
        }
    }

    /// Issues a client identity in org `org_index`.
    pub fn client(&self, org_index: usize, name: &str) -> SigningIdentity {
        fabric_msp::issue_identity(
            &self.org_cas[org_index],
            name,
            Role::Client,
            format!("client-{org_index}-{name}").as_bytes(),
        )
    }

    /// Issues a peer identity in org `org_index`.
    pub fn peer(&self, org_index: usize, name: &str) -> SigningIdentity {
        fabric_msp::issue_identity(
            &self.org_cas[org_index],
            name,
            Role::Peer,
            format!("peer-{org_index}-{name}").as_bytes(),
        )
    }

    /// Issues an admin identity in org `org_index`.
    pub fn admin(&self, org_index: usize, name: &str) -> SigningIdentity {
        fabric_msp::issue_identity(
            &self.org_cas[org_index],
            name,
            Role::Admin,
            format!("admin-{org_index}-{name}").as_bytes(),
        )
    }

    /// Issues the OSN identities.
    pub fn orderers(&self, count: usize) -> Vec<SigningIdentity> {
        (0..count)
            .map(|i| {
                fabric_msp::issue_identity(
                    &self.orderer_ca,
                    &format!("osn{i}"),
                    Role::Orderer,
                    format!("osn-{i}").as_bytes(),
                )
            })
            .collect()
    }
}

/// Builds a signed transaction envelope carrying an explicit rw-set, with
/// no endorsements (sufficient wherever only broadcast access control and
/// ordering are under test).
pub fn make_envelope(
    client: &SigningIdentity,
    channel: &ChannelId,
    nonce: [u8; 32],
    rwset: TxReadWriteSet,
) -> Envelope {
    make_envelope_endorsed(client, channel, nonce, rwset, Vec::new())
}

/// Builds a signed transaction envelope with explicit endorsements.
pub fn make_envelope_endorsed(
    client: &SigningIdentity,
    channel: &ChannelId,
    nonce: [u8; 32],
    rwset: TxReadWriteSet,
    endorsements: Vec<Endorsement>,
) -> Envelope {
    let creator: SerializedIdentity = client.serialized();
    let chaincode = ChaincodeId::new("testcc", "1.0");
    let tx_id = TxId::derive(&creator.to_wire(), &nonce);
    let tx = Transaction {
        channel: channel.clone(),
        creator,
        nonce,
        proposal_payload: ProposalPayload {
            chaincode: chaincode.clone(),
            function: "invoke".into(),
            args: vec![],
        },
        response_payload: ProposalResponsePayload {
            tx_id,
            chaincode,
            rwset,
            response: ChaincodeResponse::ok(vec![]),
        },
        endorsements,
    };
    let content = EnvelopeContent::Transaction(tx);
    let signature = client
        .sign(&Envelope::signing_bytes(&content))
        .to_bytes()
        .to_vec();
    Envelope { content, signature }
}

/// Builds a signed envelope with a padded rw-set of roughly `extra_bytes`
/// (for block-size-driven tests and benches).
pub fn make_padded_envelope(
    client: &SigningIdentity,
    channel: &ChannelId,
    nonce: [u8; 32],
    extra_bytes: usize,
) -> Envelope {
    use fabric_primitives::rwset::{KeyWrite, NsReadWriteSet};
    let rwset = TxReadWriteSet::single(NsReadWriteSet {
        namespace: "testcc".into(),
        reads: vec![],
        range_queries: vec![],
        writes: vec![KeyWrite {
            key: format!("k{}", u64::from_le_bytes(nonce[..8].try_into().unwrap())),
            value: Some(vec![0xab; extra_bytes]),
        }],
    });
    make_envelope(client, channel, nonce, rwset)
}
