//! Per-channel state kept by every ordering-service node (paper Sec. 4.2):
//! the current configuration (with its MSP registry and access policies),
//! the deterministic block cutter, and the chain of cut blocks retained to
//! answer `deliver` calls.

use fabric_msp::{MspRegistry, SigningIdentity};
use fabric_policy::{PolicyExpr, Signer};
use fabric_primitives::block::{Block, BlockSignature};
use fabric_primitives::config::{ChannelConfig, ConfigUpdate};
use fabric_primitives::transaction::{Envelope, EnvelopeContent};
use fabric_primitives::wire::Wire;
use fabric_primitives::ChannelId;

use crate::cutter::BlockCutter;
use crate::OrderError;

/// One channel's state at an OSN.
pub struct ChannelState {
    /// The channel id.
    pub channel: ChannelId,
    /// Current configuration.
    pub config: ChannelConfig,
    /// MSP federation built from `config.orgs`.
    pub msp: MspRegistry,
    writer_policy: PolicyExpr,
    admin_policy: PolicyExpr,
    reader_policy: PolicyExpr,
    /// The block cutter.
    pub cutter: BlockCutter,
    /// All blocks cut so far (the paper's OSNs persist recent blocks to
    /// answer `deliver`; we retain all for simplicity).
    pub blocks: Vec<Block>,
    /// Ticks since the current pending batch started (drives TTC).
    pub pending_ticks: u64,
    /// Highest block number this node already sent a time-to-cut for.
    pub ttc_sent: u64,
    /// Number of the most recent config block.
    pub last_config: u64,
}

impl ChannelState {
    /// Bootstraps a channel from its genesis configuration, producing the
    /// genesis block (number 0) containing the config.
    pub fn from_genesis(config: ChannelConfig) -> Result<Self, OrderError> {
        if config.sequence != 0 {
            return Err(OrderError::BadConfig("genesis sequence must be 0".into()));
        }
        let msp = MspRegistry::from_channel_config(&config).map_err(OrderError::Identity)?;
        let writer_policy = PolicyExpr::parse(&config.writer_policy)
            .map_err(|e| OrderError::BadConfig(format!("writer policy: {e}")))?;
        let admin_policy = PolicyExpr::parse(&config.admin_policy)
            .map_err(|e| OrderError::BadConfig(format!("admin policy: {e}")))?;
        let reader_policy = PolicyExpr::parse(&config.reader_policy)
            .map_err(|e| OrderError::BadConfig(format!("reader policy: {e}")))?;
        let genesis_envelope = Envelope {
            content: EnvelopeContent::Config(ConfigUpdate {
                config: config.clone(),
                signatures: vec![],
            }),
            signature: vec![],
        };
        let genesis = Block::new(0, [0u8; 32], vec![genesis_envelope]);
        let cutter = BlockCutter::new(config.orderer.batch, 1);
        Ok(ChannelState {
            channel: config.channel.clone(),
            config,
            msp,
            writer_policy,
            admin_policy,
            reader_policy,
            cutter,
            blocks: vec![genesis],
            pending_ticks: 0,
            ttc_sent: 0,
            last_config: 0,
        })
    }

    /// The hash of the last cut block.
    pub fn last_hash(&self) -> fabric_crypto::Digest {
        self.blocks.last().expect("genesis always present").hash()
    }

    /// Current chain height.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Serves a `deliver(seq)` call.
    pub fn deliver(&self, seq: u64) -> Option<&Block> {
        self.blocks.get(seq as usize)
    }

    fn signer_of(&self, identity: &fabric_msp::ValidatedIdentity) -> Signer {
        Signer {
            msp_id: identity.msp_id().to_string(),
            role: identity.role().as_str().to_string(),
        }
    }

    /// Validates an envelope at `broadcast` time: signature authenticity,
    /// size bound, and the channel's writer (or admin, for config) policy —
    /// the access-control role of the ordering service (paper Sec. 3.3).
    pub fn check_broadcast(&self, envelope: &Envelope) -> Result<(), OrderError> {
        let size = envelope.wire_size();
        if size > self.config.orderer.batch.absolute_max_bytes as usize {
            return Err(OrderError::TooLarge {
                size,
                max: self.config.orderer.batch.absolute_max_bytes as usize,
            });
        }
        match &envelope.content {
            EnvelopeContent::Transaction(tx) => {
                let signing_bytes = Envelope::signing_bytes(&envelope.content);
                let identity = self
                    .msp
                    .validate_and_verify(&tx.creator, &signing_bytes, &envelope.signature)
                    .map_err(OrderError::Identity)?;
                let orgs: Vec<String> =
                    self.config.orgs.iter().map(|o| o.msp_id.clone()).collect();
                let satisfied = self
                    .writer_policy
                    .evaluate(&orgs, &[self.signer_of(&identity)])
                    .map_err(|e| OrderError::BadConfig(e.to_string()))?;
                if !satisfied {
                    return Err(OrderError::AccessDenied);
                }
                Ok(())
            }
            EnvelopeContent::Config(update) => self.check_config_update(update),
        }
    }

    /// Validates a configuration update against the *current* configuration
    /// (paper Sec. 4.6): next sequence number and admin-policy signatures
    /// over the new config bytes.
    pub fn check_config_update(&self, update: &ConfigUpdate) -> Result<(), OrderError> {
        if update.config.channel != self.channel {
            return Err(OrderError::BadConfig("config targets another channel".into()));
        }
        if update.config.sequence != self.config.sequence + 1 {
            return Err(OrderError::BadConfig(format!(
                "config sequence {} != current {} + 1",
                update.config.sequence, self.config.sequence
            )));
        }
        let config_bytes = update.config.to_wire();
        let mut signers = Vec::new();
        for sig in &update.signatures {
            let identity = self
                .msp
                .validate_and_verify(&sig.signer, &config_bytes, &sig.signature)
                .map_err(OrderError::Identity)?;
            signers.push(self.signer_of(&identity));
        }
        let orgs: Vec<String> = self.config.orgs.iter().map(|o| o.msp_id.clone()).collect();
        let satisfied = self
            .admin_policy
            .evaluate(&orgs, &signers)
            .map_err(|e| OrderError::BadConfig(e.to_string()))?;
        if !satisfied {
            return Err(OrderError::AccessDenied);
        }
        // The new config must itself be well-formed.
        MspRegistry::from_channel_config(&update.config).map_err(OrderError::Identity)?;
        PolicyExpr::parse(&update.config.writer_policy)
            .map_err(|e| OrderError::BadConfig(format!("writer policy: {e}")))?;
        PolicyExpr::parse(&update.config.admin_policy)
            .map_err(|e| OrderError::BadConfig(format!("admin policy: {e}")))?;
        PolicyExpr::parse(&update.config.reader_policy)
            .map_err(|e| OrderError::BadConfig(format!("reader policy: {e}")))?;
        Ok(())
    }

    /// Checks whether `identity` may receive blocks (`deliver` access).
    pub fn check_deliver(
        &self,
        identity: &fabric_primitives::SerializedIdentity,
        challenge: &[u8],
        signature: &[u8],
    ) -> Result<(), OrderError> {
        let validated = self
            .msp
            .validate_and_verify(identity, challenge, signature)
            .map_err(OrderError::Identity)?;
        let orgs: Vec<String> = self.config.orgs.iter().map(|o| o.msp_id.clone()).collect();
        let satisfied = self
            .reader_policy
            .evaluate(&orgs, &[self.signer_of(&validated)])
            .map_err(|e| OrderError::BadConfig(e.to_string()))?;
        if satisfied {
            Ok(())
        } else {
            Err(OrderError::AccessDenied)
        }
    }

    /// Applies a validated config update delivered through consensus:
    /// rebuilds MSPs and policies, updates batch parameters.
    pub fn apply_config(&mut self, config: ChannelConfig) -> Result<(), OrderError> {
        self.msp = MspRegistry::from_channel_config(&config).map_err(OrderError::Identity)?;
        self.writer_policy = PolicyExpr::parse(&config.writer_policy)
            .map_err(|e| OrderError::BadConfig(e.to_string()))?;
        self.admin_policy = PolicyExpr::parse(&config.admin_policy)
            .map_err(|e| OrderError::BadConfig(e.to_string()))?;
        self.reader_policy = PolicyExpr::parse(&config.reader_policy)
            .map_err(|e| OrderError::BadConfig(e.to_string()))?;
        self.cutter.set_config(config.orderer.batch);
        self.config = config;
        Ok(())
    }

    /// Builds, signs, and appends the next block from `envelopes`.
    pub fn cut_block(&mut self, envelopes: Vec<Envelope>, signer: &SigningIdentity) -> Block {
        let number = self.height();
        let mut block = Block::new(number, self.last_hash(), envelopes);
        block.metadata.last_config = self.last_config;
        let header_hash = block.hash();
        block.metadata.signatures.push(BlockSignature {
            signer: signer.serialized(),
            signature: signer.sign(&header_hash).to_bytes().to_vec(),
        });
        if block.is_config_block() {
            self.last_config = number;
        }
        self.blocks.push(block.clone());
        block
    }
}
