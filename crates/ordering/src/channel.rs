//! Per-channel state kept by every ordering-service node (paper Sec. 4.2):
//! the current configuration (with its MSP registry and access policies),
//! the deterministic block cutter, and the chain of cut blocks retained to
//! answer `deliver` calls.
//!
//! The validation-relevant slice of the state — configuration, MSPs, and
//! the three access policies — is factored into an immutable
//! [`ChannelAccess`] snapshot behind an `Arc`, so the pre-ordering
//! signature-verification pool (see `verify`) can check envelopes on
//! worker threads without holding up the consensus path. A config update
//! swaps in a fresh snapshot; in-flight verifications against the old
//! snapshot mirror real Fabric, where broadcast validation races
//! reconfiguration and the delivered config transaction is re-validated
//! in ordered position anyway.

use std::sync::Arc;

use fabric_msp::{MspRegistry, SigningIdentity};
use fabric_policy::{PolicyExpr, Signer};
use fabric_primitives::block::{Block, BlockSignature};
use fabric_primitives::config::{ChannelConfig, ConfigUpdate};
use fabric_primitives::transaction::{Envelope, EnvelopeContent};
use fabric_primitives::wire::Wire;
use fabric_primitives::ChannelId;

use crate::cutter::BlockCutter;
use crate::OrderError;

/// An immutable snapshot of everything needed to validate envelopes and
/// deliver requests against one channel: the configuration plus the MSP
/// registry and parsed policies derived from it. Shared (`Arc`) with the
/// verification worker pool.
pub struct ChannelAccess {
    /// The configuration this snapshot was built from.
    pub config: ChannelConfig,
    /// MSP federation built from `config.orgs`.
    pub msp: MspRegistry,
    writer_policy: PolicyExpr,
    admin_policy: PolicyExpr,
    reader_policy: PolicyExpr,
}

impl ChannelAccess {
    /// Builds a snapshot from a configuration, parsing its policies and
    /// constructing the MSP registry.
    pub fn from_config(config: ChannelConfig) -> Result<Self, OrderError> {
        let msp = MspRegistry::from_channel_config(&config).map_err(OrderError::Identity)?;
        let writer_policy = PolicyExpr::parse(&config.writer_policy)
            .map_err(|e| OrderError::BadConfig(format!("writer policy: {e}")))?;
        let admin_policy = PolicyExpr::parse(&config.admin_policy)
            .map_err(|e| OrderError::BadConfig(format!("admin policy: {e}")))?;
        let reader_policy = PolicyExpr::parse(&config.reader_policy)
            .map_err(|e| OrderError::BadConfig(format!("reader policy: {e}")))?;
        Ok(ChannelAccess {
            config,
            msp,
            writer_policy,
            admin_policy,
            reader_policy,
        })
    }

    fn signer_of(&self, identity: &fabric_msp::ValidatedIdentity) -> Signer {
        Signer {
            msp_id: identity.msp_id().to_string(),
            role: identity.role().as_str().to_string(),
        }
    }

    fn org_ids(&self) -> Vec<String> {
        self.config.orgs.iter().map(|o| o.msp_id.clone()).collect()
    }

    /// Validates an envelope at `broadcast` time: signature authenticity,
    /// size bound, and the channel's writer (or admin, for config) policy —
    /// the access-control role of the ordering service (paper Sec. 3.3).
    pub fn check_broadcast(&self, envelope: &Envelope) -> Result<(), OrderError> {
        let size = envelope.wire_size();
        if size > self.config.orderer.batch.absolute_max_bytes as usize {
            return Err(OrderError::TooLarge {
                size,
                max: self.config.orderer.batch.absolute_max_bytes as usize,
            });
        }
        match &envelope.content {
            EnvelopeContent::Transaction(tx) => {
                let signing_bytes = Envelope::signing_bytes(&envelope.content);
                let identity = self
                    .msp
                    .validate_and_verify(&tx.creator, &signing_bytes, &envelope.signature)
                    .map_err(OrderError::Identity)?;
                let satisfied = self
                    .writer_policy
                    .evaluate(&self.org_ids(), &[self.signer_of(&identity)])
                    .map_err(|e| OrderError::BadConfig(e.to_string()))?;
                if !satisfied {
                    return Err(OrderError::AccessDenied);
                }
                Ok(())
            }
            EnvelopeContent::Config(update) => self.check_config_update(update),
        }
    }

    /// Validates a configuration update against the *current* configuration
    /// (paper Sec. 4.6): next sequence number and admin-policy signatures
    /// over the new config bytes.
    pub fn check_config_update(&self, update: &ConfigUpdate) -> Result<(), OrderError> {
        if update.config.channel != self.config.channel {
            return Err(OrderError::BadConfig("config targets another channel".into()));
        }
        if update.config.sequence != self.config.sequence + 1 {
            return Err(OrderError::BadConfig(format!(
                "config sequence {} != current {} + 1",
                update.config.sequence, self.config.sequence
            )));
        }
        let config_bytes = update.config.to_wire();
        let mut signers = Vec::new();
        for sig in &update.signatures {
            let identity = self
                .msp
                .validate_and_verify(&sig.signer, &config_bytes, &sig.signature)
                .map_err(OrderError::Identity)?;
            signers.push(self.signer_of(&identity));
        }
        let satisfied = self
            .admin_policy
            .evaluate(&self.org_ids(), &signers)
            .map_err(|e| OrderError::BadConfig(e.to_string()))?;
        if !satisfied {
            return Err(OrderError::AccessDenied);
        }
        // The new config must itself be well-formed.
        MspRegistry::from_channel_config(&update.config).map_err(OrderError::Identity)?;
        PolicyExpr::parse(&update.config.writer_policy)
            .map_err(|e| OrderError::BadConfig(format!("writer policy: {e}")))?;
        PolicyExpr::parse(&update.config.admin_policy)
            .map_err(|e| OrderError::BadConfig(format!("admin policy: {e}")))?;
        PolicyExpr::parse(&update.config.reader_policy)
            .map_err(|e| OrderError::BadConfig(format!("reader policy: {e}")))?;
        Ok(())
    }

    /// Checks whether `identity` may receive blocks (`deliver` access).
    pub fn check_deliver(
        &self,
        identity: &fabric_primitives::SerializedIdentity,
        challenge: &[u8],
        signature: &[u8],
    ) -> Result<(), OrderError> {
        let validated = self
            .msp
            .validate_and_verify(identity, challenge, signature)
            .map_err(OrderError::Identity)?;
        let satisfied = self
            .reader_policy
            .evaluate(&self.org_ids(), &[self.signer_of(&validated)])
            .map_err(|e| OrderError::BadConfig(e.to_string()))?;
        if satisfied {
            Ok(())
        } else {
            Err(OrderError::AccessDenied)
        }
    }
}

/// One channel's state at an OSN.
pub struct ChannelState {
    /// The channel id.
    pub channel: ChannelId,
    /// The current validation snapshot (config + MSPs + policies),
    /// shareable with verification worker threads.
    pub access: Arc<ChannelAccess>,
    /// The block cutter.
    pub cutter: BlockCutter,
    /// All blocks cut so far (the paper's OSNs persist recent blocks to
    /// answer `deliver`; we retain all for simplicity).
    pub blocks: Vec<Block>,
    /// Ticks since the current pending batch started (drives TTC).
    pub pending_ticks: u64,
    /// Highest block number this node already sent a time-to-cut for.
    pub ttc_sent: u64,
    /// Number of the most recent config block.
    pub last_config: u64,
}

impl ChannelState {
    /// Bootstraps a channel from its genesis configuration, producing the
    /// genesis block (number 0) containing the config.
    pub fn from_genesis(config: ChannelConfig) -> Result<Self, OrderError> {
        if config.sequence != 0 {
            return Err(OrderError::BadConfig("genesis sequence must be 0".into()));
        }
        let genesis_envelope = Envelope {
            content: EnvelopeContent::Config(ConfigUpdate {
                config: config.clone(),
                signatures: vec![],
            }),
            signature: vec![],
        };
        let genesis = Block::new(0, [0u8; 32], vec![genesis_envelope]);
        let cutter = BlockCutter::new(config.orderer.batch, 1);
        let channel = config.channel.clone();
        let access = Arc::new(ChannelAccess::from_config(config)?);
        Ok(ChannelState {
            channel,
            access,
            cutter,
            blocks: vec![genesis],
            pending_ticks: 0,
            ttc_sent: 0,
            last_config: 0,
        })
    }

    /// The current configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.access.config
    }

    /// The hash of the last cut block.
    pub fn last_hash(&self) -> fabric_crypto::Digest {
        self.blocks.last().expect("genesis always present").hash()
    }

    /// Current chain height.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Serves a `deliver(seq)` call.
    pub fn deliver(&self, seq: u64) -> Option<&Block> {
        self.blocks.get(seq as usize)
    }

    /// See [`ChannelAccess::check_broadcast`].
    pub fn check_broadcast(&self, envelope: &Envelope) -> Result<(), OrderError> {
        self.access.check_broadcast(envelope)
    }

    /// See [`ChannelAccess::check_config_update`].
    pub fn check_config_update(&self, update: &ConfigUpdate) -> Result<(), OrderError> {
        self.access.check_config_update(update)
    }

    /// See [`ChannelAccess::check_deliver`].
    pub fn check_deliver(
        &self,
        identity: &fabric_primitives::SerializedIdentity,
        challenge: &[u8],
        signature: &[u8],
    ) -> Result<(), OrderError> {
        self.access.check_deliver(identity, challenge, signature)
    }

    /// Applies a validated config update delivered through consensus:
    /// swaps in a fresh access snapshot and updates batch parameters.
    pub fn apply_config(&mut self, config: ChannelConfig) -> Result<(), OrderError> {
        let batch = config.orderer.batch;
        self.access = Arc::new(ChannelAccess::from_config(config)?);
        self.cutter.set_config(batch);
        Ok(())
    }

    /// Builds, signs, and appends the next block from `envelopes`.
    pub fn cut_block(&mut self, envelopes: Vec<Envelope>, signer: &SigningIdentity) -> Block {
        self.cut_block_with(envelopes, |header_hash| BlockSignature {
            signer: signer.serialized(),
            signature: signer.sign(header_hash).to_bytes().to_vec(),
        })
    }

    /// Builds the next block from `envelopes` and signs its header hash via
    /// `sign` — the hook the speculative-signing cache uses to supply a
    /// pre-computed signature (the header hash covers only number, previous
    /// hash, and data hash, so it is known before consensus finishes).
    pub fn cut_block_with(
        &mut self,
        envelopes: Vec<Envelope>,
        sign: impl FnOnce(&fabric_crypto::Digest) -> BlockSignature,
    ) -> Block {
        let number = self.height();
        let mut block = Block::new(number, self.last_hash(), envelopes);
        block.metadata.last_config = self.last_config;
        let header_hash = block.hash();
        block.metadata.signatures.push(sign(&header_hash));
        if block.is_config_block() {
            self.last_config = number;
        }
        self.blocks.push(block.clone());
        block
    }
}
