//! # fabric-ordering
//!
//! The ordering service (paper Sec. 3.3, 4.2): stateless atomic broadcast
//! of transaction envelopes, deterministic batching into hash-chained
//! signed blocks, channel configuration and reconfiguration, and access
//! control — with **pluggable consensus** (Solo / Raft / PBFT), the paper's
//! headline modularity property.
//!
//! The service guarantees, per channel (Sec. 3.3): *agreement*, *hash-chain
//! integrity*, *no skipping*, *no creation*, and (per backend) *validity*.
//! It deliberately does **not** filter duplicate transactions — peers catch
//! those in the read-write check — and never executes or validates
//! transaction semantics: it is entirely unaware of application state.

pub mod channel;
pub mod cluster;
pub mod cutter;
pub mod item;
pub mod node;
pub mod testkit;
pub mod verify;

pub use channel::{ChannelAccess, ChannelState};
pub use cluster::{ClusterOptions, OrderingCluster};
pub use cutter::BlockCutter;
pub use item::OrderedItem;
pub use node::{ConsensusBackend, OrderingNode, OsnConfig, OsnMessage, OsnOutput};
pub use verify::VerifyPool;

use fabric_primitives::ChannelId;

/// Errors returned by ordering-service operations.
#[derive(Debug)]
pub enum OrderError {
    /// The envelope targeted a channel this OSN does not serve.
    UnknownChannel(ChannelId),
    /// Identity validation failed (unknown MSP, bad cert, bad signature).
    Identity(fabric_msp::CertError),
    /// The submitter does not satisfy the channel's writer/admin policy.
    AccessDenied,
    /// The envelope exceeds the configured absolute maximum size.
    TooLarge {
        /// Serialized envelope size.
        size: usize,
        /// Configured maximum.
        max: usize,
    },
    /// A configuration (genesis or update) was malformed.
    BadConfig(String),
}

impl core::fmt::Display for OrderError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OrderError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            OrderError::Identity(e) => write!(f, "identity rejected: {e}"),
            OrderError::AccessDenied => write!(f, "access denied by channel policy"),
            OrderError::TooLarge { size, max } => {
                write!(f, "envelope of {size} bytes exceeds maximum {max}")
            }
            OrderError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for OrderError {}

#[cfg(test)]
mod tests {
    use super::testkit::{make_envelope, make_padded_envelope, TestNet};
    use super::*;
    use fabric_primitives::config::{BatchConfig, ConfigSignature, ConsensusType};
    use fabric_primitives::rwset::TxReadWriteSet;
    use fabric_primitives::transaction::{Envelope, EnvelopeContent};
    use fabric_primitives::wire::Wire;

    fn nonce(i: u64) -> [u8; 32] {
        let mut n = [0u8; 32];
        n[..8].copy_from_slice(&i.to_le_bytes());
        n
    }

    fn solo_cluster(net: &TestNet) -> OrderingCluster {
        OrderingCluster::new(
            ConsensusType::Solo,
            net.orderers(1),
            vec![net.genesis.clone()],
        )
        .unwrap()
    }

    #[test]
    fn solo_orders_and_cuts_by_count() {
        let net = TestNet::with_batch(
            &["Org1"],
            ConsensusType::Solo,
            1,
            BatchConfig {
                max_message_count: 3,
                absolute_max_bytes: 1 << 20,
                preferred_max_bytes: 1 << 20,
                batch_timeout_ms: 10_000,
            },
        );
        let mut cluster = solo_cluster(&net);
        let client = net.client(0, "c1");
        assert_eq!(cluster.height(&net.channel), 1, "genesis only");
        for i in 0..6 {
            cluster
                .broadcast(make_envelope(
                    &client,
                    &net.channel,
                    nonce(i),
                    TxReadWriteSet::default(),
                ))
                .unwrap();
        }
        // 6 txs at 3 per block = 2 blocks after genesis.
        assert_eq!(cluster.height(&net.channel), 3);
        let b1 = cluster.deliver(&net.channel, 1).unwrap();
        assert_eq!(b1.envelopes.len(), 3);
        assert!(b1.verify_data_hash());
        let b2 = cluster.deliver(&net.channel, 2).unwrap();
        assert!(b2.follows(&b1));
    }

    #[test]
    fn genesis_block_contains_config() {
        let net = TestNet::new(&["Org1"], ConsensusType::Solo, 1);
        let cluster = solo_cluster(&net);
        let genesis = cluster.deliver(&net.channel, 0).unwrap();
        assert!(genesis.is_config_block());
        assert_eq!(genesis.header.number, 0);
        assert_eq!(genesis.header.previous_hash, [0u8; 32]);
    }

    #[test]
    fn timeout_cuts_partial_batch() {
        let net = TestNet::with_batch(
            &["Org1"],
            ConsensusType::Solo,
            1,
            BatchConfig {
                max_message_count: 100,
                absolute_max_bytes: 1 << 20,
                preferred_max_bytes: 1 << 20,
                batch_timeout_ms: 300, // = 3 ticks at 100 ms/tick
            },
        );
        let mut cluster = solo_cluster(&net);
        let client = net.client(0, "c1");
        cluster
            .broadcast(make_envelope(
                &client,
                &net.channel,
                nonce(1),
                TxReadWriteSet::default(),
            ))
            .unwrap();
        assert_eq!(cluster.height(&net.channel), 1, "still pending");
        for _ in 0..5 {
            cluster.tick();
        }
        assert_eq!(cluster.height(&net.channel), 2, "TTC cut the batch");
        assert_eq!(cluster.deliver(&net.channel, 1).unwrap().envelopes.len(), 1);
    }

    #[test]
    fn size_based_cut() {
        let net = TestNet::with_batch(
            &["Org1"],
            ConsensusType::Solo,
            1,
            BatchConfig {
                max_message_count: 1000,
                absolute_max_bytes: 1 << 20,
                preferred_max_bytes: 4096,
                batch_timeout_ms: 1_000_000,
            },
        );
        let mut cluster = solo_cluster(&net);
        let client = net.client(0, "c1");
        // ~1.5 kB each: the 3rd tx pushes past 4 kB and cuts a block.
        for i in 0..3 {
            cluster
                .broadcast(make_padded_envelope(&client, &net.channel, nonce(i), 1500))
                .unwrap();
        }
        assert_eq!(cluster.height(&net.channel), 2);
    }

    #[test]
    fn oversized_envelope_rejected() {
        let net = TestNet::with_batch(
            &["Org1"],
            ConsensusType::Solo,
            1,
            BatchConfig {
                max_message_count: 10,
                absolute_max_bytes: 2048,
                preferred_max_bytes: 1024,
                batch_timeout_ms: 1000,
            },
        );
        let mut cluster = solo_cluster(&net);
        let client = net.client(0, "c1");
        let huge = make_padded_envelope(&client, &net.channel, nonce(1), 10_000);
        assert!(matches!(
            cluster.broadcast(huge),
            Err(OrderError::TooLarge { .. })
        ));
    }

    #[test]
    fn foreign_client_rejected() {
        let net = TestNet::new(&["Org1"], ConsensusType::Solo, 1);
        let mut cluster = solo_cluster(&net);
        // A client from an org that is not a channel member.
        let rogue_ca =
            fabric_msp::CertificateAuthority::new("ca.rogue", "RogueMSP", b"rogue-seed");
        let rogue = fabric_msp::issue_identity(&rogue_ca, "evil", fabric_msp::Role::Client, b"ek");
        let env = make_envelope(&rogue, &net.channel, nonce(1), TxReadWriteSet::default());
        assert!(matches!(
            cluster.broadcast(env),
            Err(OrderError::Identity(_))
        ));
    }

    #[test]
    fn tampered_signature_rejected() {
        let net = TestNet::new(&["Org1"], ConsensusType::Solo, 1);
        let mut cluster = solo_cluster(&net);
        let client = net.client(0, "c1");
        let mut env = make_envelope(&client, &net.channel, nonce(1), TxReadWriteSet::default());
        env.signature[10] ^= 0xff;
        assert!(matches!(
            cluster.broadcast(env),
            Err(OrderError::Identity(_))
        ));
    }

    #[test]
    fn unknown_channel_rejected() {
        let net = TestNet::new(&["Org1"], ConsensusType::Solo, 1);
        let mut cluster = solo_cluster(&net);
        let client = net.client(0, "c1");
        let env = make_envelope(
            &client,
            &fabric_primitives::ChannelId::new("ghost"),
            nonce(1),
            TxReadWriteSet::default(),
        );
        assert!(matches!(
            cluster.broadcast(env),
            Err(OrderError::UnknownChannel(_))
        ));
    }

    #[test]
    fn raft_cluster_cuts_identical_blocks() {
        let net = TestNet::with_batch(
            &["Org1"],
            ConsensusType::Raft,
            3,
            BatchConfig {
                max_message_count: 2,
                absolute_max_bytes: 1 << 20,
                preferred_max_bytes: 1 << 20,
                batch_timeout_ms: 10_000,
            },
        );
        let mut cluster = OrderingCluster::new(
            ConsensusType::Raft,
            net.orderers(3),
            vec![net.genesis.clone()],
        )
        .unwrap();
        let client = net.client(0, "c1");
        for i in 0..8 {
            cluster
                .broadcast(make_envelope(
                    &client,
                    &net.channel,
                    nonce(i),
                    TxReadWriteSet::default(),
                ))
                .unwrap();
            cluster.tick();
        }
        for _ in 0..20 {
            cluster.tick();
        }
        assert_eq!(cluster.height(&net.channel), 5, "genesis + 4 blocks of 2");
        cluster.assert_identical_chains(&net.channel);
        // Every block is signed by an orderer.
        let b = cluster.deliver(&net.channel, 1).unwrap();
        assert!(!b.metadata.signatures.is_empty());
    }

    #[test]
    fn pbft_cluster_cuts_identical_blocks() {
        let net = TestNet::with_batch(
            &["Org1"],
            ConsensusType::Pbft,
            4,
            BatchConfig {
                max_message_count: 2,
                absolute_max_bytes: 1 << 20,
                preferred_max_bytes: 1 << 20,
                batch_timeout_ms: 10_000,
            },
        );
        let mut cluster = OrderingCluster::new(
            ConsensusType::Pbft,
            net.orderers(4),
            vec![net.genesis.clone()],
        )
        .unwrap();
        let client = net.client(0, "c1");
        for i in 0..6 {
            cluster
                .broadcast(make_envelope(
                    &client,
                    &net.channel,
                    nonce(i),
                    TxReadWriteSet::default(),
                ))
                .unwrap();
        }
        for _ in 0..10 {
            cluster.tick();
        }
        assert_eq!(cluster.height(&net.channel), 4, "genesis + 3 blocks of 2");
        cluster.assert_identical_chains(&net.channel);
    }

    #[test]
    fn config_update_reconfigures_batching() {
        let net = TestNet::with_batch(
            &["Org1", "Org2"],
            ConsensusType::Solo,
            1,
            BatchConfig {
                max_message_count: 4,
                absolute_max_bytes: 1 << 20,
                preferred_max_bytes: 1 << 20,
                batch_timeout_ms: 10_000,
            },
        );
        let mut cluster = solo_cluster(&net);
        let client = net.client(0, "c1");

        // New config: cut after 2 messages.
        let mut new_config = net.genesis.clone();
        new_config.sequence = 1;
        new_config.orderer.batch.max_message_count = 2;
        let config_bytes = new_config.to_wire();
        // MAJORITY(admins) over 3 orgs (Org1, Org2, OrdererMSP) needs 2.
        let admin1 = net.admin(0, "a1");
        let admin2 = net.admin(1, "a2");
        let update = fabric_primitives::config::ConfigUpdate {
            config: new_config,
            signatures: vec![
                ConfigSignature {
                    signer: admin1.serialized(),
                    signature: admin1.sign(&config_bytes).to_bytes().to_vec(),
                },
                ConfigSignature {
                    signer: admin2.serialized(),
                    signature: admin2.sign(&config_bytes).to_bytes().to_vec(),
                },
            ],
        };
        let content = EnvelopeContent::Config(update);
        let signature = admin1
            .sign(&Envelope::signing_bytes(&content))
            .to_bytes()
            .to_vec();
        cluster.broadcast(Envelope { content, signature }).unwrap();

        // Config block was cut (block 1).
        assert_eq!(cluster.height(&net.channel), 2);
        let config_block = cluster.deliver(&net.channel, 1).unwrap();
        assert!(config_block.is_config_block());

        // Batching now cuts after 2 transactions.
        for i in 0..2 {
            cluster
                .broadcast(make_envelope(
                    &client,
                    &net.channel,
                    nonce(100 + i),
                    TxReadWriteSet::default(),
                ))
                .unwrap();
        }
        assert_eq!(cluster.height(&net.channel), 3);
        // last_config metadata points at the config block.
        let b2 = cluster.deliver(&net.channel, 2).unwrap();
        assert_eq!(b2.metadata.last_config, 1);
    }

    #[test]
    fn config_update_without_quorum_rejected() {
        let net = TestNet::new(&["Org1", "Org2"], ConsensusType::Solo, 1);
        let mut cluster = solo_cluster(&net);
        let mut new_config = net.genesis.clone();
        new_config.sequence = 1;
        let config_bytes = new_config.to_wire();
        let admin1 = net.admin(0, "a1");
        let update = fabric_primitives::config::ConfigUpdate {
            config: new_config,
            signatures: vec![ConfigSignature {
                signer: admin1.serialized(),
                signature: admin1.sign(&config_bytes).to_bytes().to_vec(),
            }],
        };
        let content = EnvelopeContent::Config(update);
        let signature = admin1
            .sign(&Envelope::signing_bytes(&content))
            .to_bytes()
            .to_vec();
        assert!(matches!(
            cluster.broadcast(Envelope { content, signature }),
            Err(OrderError::AccessDenied)
        ));
    }

    #[test]
    fn config_update_with_wrong_sequence_rejected() {
        let net = TestNet::new(&["Org1"], ConsensusType::Solo, 1);
        let mut cluster = solo_cluster(&net);
        let mut new_config = net.genesis.clone();
        new_config.sequence = 5;
        let config_bytes = new_config.to_wire();
        let admin1 = net.admin(0, "a1");
        let update = fabric_primitives::config::ConfigUpdate {
            config: new_config,
            signatures: vec![ConfigSignature {
                signer: admin1.serialized(),
                signature: admin1.sign(&config_bytes).to_bytes().to_vec(),
            }],
        };
        let content = EnvelopeContent::Config(update);
        let signature = admin1
            .sign(&Envelope::signing_bytes(&content))
            .to_bytes()
            .to_vec();
        assert!(matches!(
            cluster.broadcast(Envelope { content, signature }),
            Err(OrderError::BadConfig(_))
        ));
    }

    #[test]
    fn duplicate_transactions_are_not_filtered() {
        // Paper Sec. 3.3: the ordering service does not deduplicate;
        // peers filter duplicates during validation.
        let net = TestNet::with_batch(
            &["Org1"],
            ConsensusType::Solo,
            1,
            BatchConfig {
                max_message_count: 2,
                absolute_max_bytes: 1 << 20,
                preferred_max_bytes: 1 << 20,
                batch_timeout_ms: 10_000,
            },
        );
        let mut cluster = solo_cluster(&net);
        let client = net.client(0, "c1");
        let env = make_envelope(&client, &net.channel, nonce(1), TxReadWriteSet::default());
        cluster.broadcast(env.clone()).unwrap();
        cluster.broadcast(env.clone()).unwrap();
        let block = cluster.deliver(&net.channel, 1).unwrap();
        assert_eq!(block.envelopes.len(), 2);
        assert_eq!(block.envelopes[0], block.envelopes[1]);
    }

    #[test]
    fn orderer_block_signature_verifies() {
        let net = TestNet::new(&["Org1"], ConsensusType::Solo, 1);
        let mut cluster = solo_cluster(&net);
        let client = net.client(0, "c1");
        let mut batch_net = net.genesis.clone();
        batch_net.orderer.batch.max_message_count = 1;
        // (Batch config in TestNet::new defaults to 500; use timeout path.)
        cluster
            .broadcast(make_envelope(
                &client,
                &net.channel,
                nonce(1),
                TxReadWriteSet::default(),
            ))
            .unwrap();
        for _ in 0..20 {
            cluster.tick();
        }
        let block = cluster.deliver(&net.channel, 1).expect("block cut by timeout");
        let sig = &block.metadata.signatures[0];
        // Verify against the orderer MSP.
        let msp = fabric_msp::MspRegistry::from_channel_config(&net.genesis).unwrap();
        msp.validate_and_verify(&sig.signer, &block.hash(), &sig.signature)
            .unwrap();
    }

    /// Regression: a `batch_timeout_ms` smaller than one driver tick used
    /// to quantize *up* to a whole tick, so a lone transaction sat pending
    /// until the next tick. Sub-tick timeouts now fire on the submission
    /// path itself — the block is cut with zero `tick()` calls.
    #[test]
    fn sub_tick_timeout_cuts_without_a_tick() {
        let net = TestNet::with_batch(
            &["Org1"],
            ConsensusType::Solo,
            1,
            BatchConfig {
                max_message_count: 100,
                absolute_max_bytes: 1 << 20,
                preferred_max_bytes: 1 << 20,
                batch_timeout_ms: 10, // < 100 ms/tick
            },
        );
        let mut cluster = solo_cluster(&net);
        let client = net.client(0, "c1");
        cluster
            .broadcast(make_envelope(
                &client,
                &net.channel,
                nonce(1),
                TxReadWriteSet::default(),
            ))
            .unwrap();
        assert_eq!(
            cluster.height(&net.channel),
            2,
            "sub-tick timeout cut the batch immediately"
        );
    }

    /// Regression for the other side of the quantization fix: a timeout
    /// between tick multiples must round *up* (`div_ceil`), never fire a
    /// tick early. 250 ms at 100 ms/tick waits 3 ticks, not 2.
    #[test]
    fn batch_timeout_never_fires_a_tick_early() {
        let net = TestNet::with_batch(
            &["Org1"],
            ConsensusType::Solo,
            1,
            BatchConfig {
                max_message_count: 100,
                absolute_max_bytes: 1 << 20,
                preferred_max_bytes: 1 << 20,
                batch_timeout_ms: 250,
            },
        );
        let mut cluster = solo_cluster(&net);
        let client = net.client(0, "c1");
        cluster
            .broadcast(make_envelope(
                &client,
                &net.channel,
                nonce(1),
                TxReadWriteSet::default(),
            ))
            .unwrap();
        cluster.tick();
        cluster.tick();
        assert_eq!(cluster.height(&net.channel), 1, "2 ticks = 200 ms < 250 ms");
        cluster.tick();
        assert_eq!(cluster.height(&net.channel), 2, "3 ticks = 300 ms >= 250 ms");
    }

    #[test]
    fn broadcast_batch_rejects_bad_signatures_and_keeps_order() {
        let net = TestNet::with_batch(
            &["Org1"],
            ConsensusType::Solo,
            1,
            BatchConfig {
                max_message_count: 3,
                absolute_max_bytes: 1 << 20,
                preferred_max_bytes: 1 << 20,
                batch_timeout_ms: 10_000,
            },
        );
        let mut options = ClusterOptions::new(ConsensusType::Solo);
        options.verify_workers = 2;
        let mut cluster =
            OrderingCluster::new_with(options, net.orderers(1), vec![net.genesis.clone()])
                .unwrap();
        let client = net.client(0, "c1");
        let envs: Vec<_> = (0..4)
            .map(|i| make_envelope(&client, &net.channel, nonce(i), TxReadWriteSet::default()))
            .collect();
        let mut forged = envs[2].clone();
        forged.signature[5] ^= 0xff;
        let verdicts = cluster.broadcast_batch(vec![
            envs[0].clone(),
            envs[1].clone(),
            forged,
            envs[3].clone(),
        ]);
        assert!(verdicts[0].is_ok() && verdicts[1].is_ok() && verdicts[3].is_ok());
        assert!(
            matches!(verdicts[2], Err(OrderError::Identity(_))),
            "forged signature rejected before ordering"
        );
        // The three survivors filled one block, in submission order.
        let block = cluster.deliver(&net.channel, 1).expect("batch cut");
        assert_eq!(block.envelopes, vec![envs[0].clone(), envs[1].clone(), envs[3].clone()]);
    }

    #[test]
    fn speculative_signing_hits_on_raft_leader() {
        let net = TestNet::with_batch(
            &["Org1"],
            ConsensusType::Raft,
            3,
            BatchConfig {
                max_message_count: 2,
                absolute_max_bytes: 1 << 20,
                preferred_max_bytes: 1 << 20,
                batch_timeout_ms: 10_000,
            },
        );
        let mut cluster = OrderingCluster::new(
            ConsensusType::Raft,
            net.orderers(3),
            vec![net.genesis.clone()],
        )
        .unwrap();
        let client = net.client(0, "c1");
        for i in 0..8 {
            cluster
                .broadcast(make_envelope(
                    &client,
                    &net.channel,
                    nonce(i),
                    TxReadWriteSet::default(),
                ))
                .unwrap();
            cluster.tick();
        }
        for _ in 0..20 {
            cluster.tick();
        }
        cluster.assert_identical_chains(&net.channel);
        assert!(cluster.height(&net.channel) >= 5, "4 blocks cut");
        let (hits, _) = cluster
            .nodes()
            .iter()
            .map(|n| n.spec_stats())
            .fold((0, 0), |(h, m), (nh, nm)| (h + nh, m + nm));
        assert!(hits >= 3, "leader pre-signed most blocks, got {hits} hits");
    }
}
