//! # fabric-pbft
//!
//! A PBFT-style Byzantine-fault-tolerant atomic broadcast, standing in for
//! the BFT-SMaRt proof-of-concept ordering service the paper references
//! (Sec. 3.5, 4.2, reference 53). With `n = 3f + 1` replicas it tolerates up to
//! `f` Byzantine ordering nodes.
//!
//! The implementation follows Castro & Liskov's three-phase commit pattern
//! — pre-prepare / prepare / commit with quorums of `2f + 1` — plus a
//! simplified view change that carries prepared certificates forward and
//! fills sequence gaps with no-ops. Like the Raft crate, the node is a pure
//! deterministic state machine driven by `tick`/`step`, making Byzantine
//! behaviours injectable in tests.
//!
//! ## Simplifications (documented scope)
//!
//! * Point-to-point channels are assumed authenticated (the deployment
//!   layer runs PBFT among identified OSNs over authenticated transports;
//!   original PBFT uses MACs the same way). View-change messages carry
//!   prepared certificates by value rather than signed proofs, so a
//!   Byzantine *primary* can be displaced but a Byzantine replica forging
//!   view-change contents is outside the tested model.
//! * No checkpoint/garbage-collection protocol: the in-memory log grows for
//!   the lifetime of a run, which is adequate for benchmarks and tests.

pub mod node;

pub use node::{
    decode_batch, encode_batch, Output, PbftConfig, PbftMessage, PbftNode, ProposeError,
};

/// Identifier of a PBFT replica (0-based; view `v` is led by `v mod n`).
pub type ReplicaId = u64;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Deterministic in-memory PBFT cluster harness.
    struct Cluster {
        nodes: Vec<PbftNode>,
        network: VecDeque<(ReplicaId, ReplicaId, PbftMessage)>,
        delivered: Vec<Vec<(u64, Vec<u8>)>>,
        /// Replica ids that are crashed (drop all their traffic).
        down: Vec<ReplicaId>,
    }

    impl Cluster {
        fn new(n: usize) -> Self {
            Self::new_with(n, PbftConfig::default())
        }

        fn new_with(n: usize, config: PbftConfig) -> Self {
            Cluster {
                nodes: (0..n as u64)
                    .map(|id| PbftNode::new(id, n, config))
                    .collect(),
                network: VecDeque::new(),
                delivered: vec![Vec::new(); n],
                down: Vec::new(),
            }
        }

        fn absorb(&mut self, from: ReplicaId, outputs: Vec<Output>) {
            for output in outputs {
                match output {
                    Output::Send { to, message } => {
                        self.network.push_back((from, to, message));
                    }
                    Output::Delivered { seq, data } => {
                        if !data.is_empty() {
                            self.delivered[from as usize].push((seq, data));
                        }
                    }
                }
            }
        }

        fn drain(&mut self) {
            let mut budget = 200_000;
            while let Some((from, to, msg)) = self.network.pop_front() {
                budget -= 1;
                assert!(budget > 0, "network did not quiesce");
                if self.down.contains(&from) || self.down.contains(&to) {
                    continue;
                }
                let outputs = self.nodes[to as usize].step(from, msg);
                self.absorb(to, outputs);
            }
        }

        fn tick(&mut self) {
            for i in 0..self.nodes.len() {
                if self.down.contains(&(i as u64)) {
                    continue;
                }
                let outputs = self.nodes[i].tick();
                self.absorb(i as u64, outputs);
            }
            self.drain();
        }

        fn propose_at_primary(&mut self, data: Vec<u8>) {
            // Find the live node that currently believes it is primary.
            let primary = (0..self.nodes.len() as u64)
                .find(|&i| !self.down.contains(&i) && self.nodes[i as usize].is_primary())
                .expect("a live primary");
            let outputs = self.nodes[primary as usize]
                .propose(data)
                .expect("primary accepts");
            self.absorb(primary, outputs);
            self.drain();
        }

        fn assert_agreement(&self) {
            let longest = self
                .delivered
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.down.contains(&(*i as u64)))
                .map(|(_, d)| d)
                .max_by_key(|d| d.len())
                .unwrap();
            for (i, delivered) in self.delivered.iter().enumerate() {
                if self.down.contains(&(i as u64)) {
                    continue;
                }
                for (pos, entry) in delivered.iter().enumerate() {
                    assert_eq!(entry, &longest[pos], "replica {i} diverges at {pos}");
                }
            }
        }
    }

    #[test]
    fn normal_case_delivery() {
        let mut cluster = Cluster::new(4);
        for i in 0..5u8 {
            cluster.propose_at_primary(vec![i]);
        }
        cluster.assert_agreement();
        for d in &cluster.delivered {
            assert_eq!(d.len(), 5, "all replicas deliver all requests");
            let seqs: Vec<u64> = d.iter().map(|(s, _)| *s).collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted, "in-order delivery");
        }
    }

    #[test]
    fn tolerates_f_silent_replicas() {
        let mut cluster = Cluster::new(4);
        cluster.down = vec![3]; // f = 1 replica silent (not the primary)
        for i in 0..5u8 {
            cluster.propose_at_primary(vec![i]);
        }
        cluster.assert_agreement();
        for (i, d) in cluster.delivered.iter().enumerate() {
            if i != 3 {
                assert_eq!(d.len(), 5);
            }
        }
    }

    #[test]
    fn view_change_on_primary_failure() {
        let mut cluster = Cluster::new(4);
        cluster.propose_at_primary(vec![1]);
        // Kill the primary (replica 0 in view 0).
        cluster.down = vec![0];
        // Replicas notice the missing primary via request timeout: inject a
        // pending request at a backup, which forwards to the (dead)
        // primary and eventually triggers a view change.
        let outputs = cluster.nodes[1].on_request(vec![2]);
        cluster.absorb(1, outputs);
        cluster.drain();
        for _ in 0..100 {
            cluster.tick();
            if cluster.delivered[1].iter().any(|(_, d)| d == &vec![2]) {
                break;
            }
        }
        cluster.assert_agreement();
        for i in [1usize, 2, 3] {
            assert!(
                cluster.delivered[i].iter().any(|(_, d)| d == &vec![2]),
                "replica {i} delivered the request after view change"
            );
            assert!(
                cluster.nodes[i].view() > 0,
                "replica {i} moved past view 0"
            );
        }
    }

    #[test]
    fn committed_request_survives_view_change() {
        let mut cluster = Cluster::new(4);
        cluster.propose_at_primary(vec![1]);
        cluster.down = vec![0];
        let outputs = cluster.nodes[2].on_request(vec![2]);
        cluster.absorb(2, outputs);
        cluster.drain();
        for _ in 0..100 {
            cluster.tick();
            if cluster.delivered[2].iter().any(|(_, d)| d == &vec![2]) {
                break;
            }
        }
        cluster.assert_agreement();
        let d1 = &cluster.delivered[1];
        assert!(d1.iter().any(|(_, d)| d == &vec![1]));
        assert!(d1.iter().any(|(_, d)| d == &vec![2]));
    }

    #[test]
    fn seven_replicas_tolerate_two_faults() {
        let mut cluster = Cluster::new(7); // f = 2
        cluster.down = vec![5, 6];
        for i in 0..4u8 {
            cluster.propose_at_primary(vec![i]);
        }
        cluster.assert_agreement();
        for i in 0..5usize {
            assert_eq!(cluster.delivered[i].len(), 4);
        }
    }

    #[test]
    fn non_primary_rejects_proposals() {
        let mut cluster = Cluster::new(4);
        assert!(cluster.nodes[1].propose(vec![9]).is_err());
        assert!(cluster.nodes[0].propose(vec![9]).is_ok());
    }

    #[test]
    fn batch_frame_roundtrip() {
        let payloads = vec![b"alpha".to_vec(), Vec::new(), b"b".to_vec()];
        let frame = encode_batch(&payloads);
        assert_eq!(decode_batch(&frame), Some(payloads));
        assert_eq!(decode_batch(&encode_batch(&[])), Some(Vec::new()));
        // Not a frame: wrong marker.
        assert_eq!(decode_batch(b"not a frame"), None);
        // Truncated and trailing-garbage frames are rejected.
        let frame = encode_batch(&[b"x".to_vec()]);
        assert_eq!(decode_batch(&frame[..frame.len() - 1]), None);
        let mut padded = frame.clone();
        padded.push(0);
        assert_eq!(decode_batch(&padded), None);
    }

    #[test]
    fn backlogged_requests_coalesce_into_batches() {
        // One in-flight slot: the first request seals alone; the rest
        // must queue and seal as a single batch once slot 1 delivers.
        let config = PbftConfig {
            max_inflight: 1,
            ..PbftConfig::default()
        };
        let mut cluster = Cluster::new_with(4, config);
        for i in 0..5u8 {
            let outputs = cluster.nodes[0].on_request(vec![i]);
            cluster.absorb(0, outputs);
        }
        cluster.drain();
        cluster.assert_agreement();
        for (i, d) in cluster.delivered.iter().enumerate() {
            let data: Vec<&Vec<u8>> = d.iter().map(|(_, p)| p).collect();
            assert_eq!(
                data,
                (0..5u8).map(|i| vec![i]).collect::<Vec<_>>().iter().collect::<Vec<_>>(),
                "replica {i} delivers every payload once, in intake order"
            );
        }
        let (batches, payloads) = cluster.nodes[0].batch_stats();
        assert_eq!(payloads, 5);
        assert_eq!(batches, 2, "backlog coalesced into one follow-up batch");
    }

    #[test]
    fn partially_replicated_batch_survives_view_change_exactly_once() {
        // The primary seals a batch of three but its pre-prepare reaches
        // only replica 1 before the primary dies. After the view change,
        // every payload must deliver exactly once on every live replica:
        // none lost, none committed twice (the re-proposed batch and any
        // carried-over state overlap is resolved by delivery-time dedup).
        let mut cluster = Cluster::new(4);
        let batch: Vec<Vec<u8>> = (10..13u8).map(|i| vec![i]).collect();
        let frame = encode_batch(&batch);
        let pre = PbftMessage::PrePrepare {
            view: 0,
            seq: 1,
            digest: fabric_crypto::digest(&frame),
            payload: frame,
        };
        let outputs = cluster.nodes[1].step(0, pre);
        cluster.absorb(1, outputs);
        cluster.down = vec![0];
        cluster.drain();
        // Clients re-submit at a live backup; timers expire; view changes.
        for payload in &batch {
            let outputs = cluster.nodes[2].on_request(payload.clone());
            cluster.absorb(2, outputs);
        }
        cluster.drain();
        for _ in 0..100 {
            cluster.tick();
            if cluster.delivered[1].len() >= batch.len()
                && cluster.delivered[2].len() >= batch.len()
                && cluster.delivered[3].len() >= batch.len()
            {
                break;
            }
        }
        cluster.assert_agreement();
        for i in [1usize, 2, 3] {
            let data: Vec<&Vec<u8>> = cluster.delivered[i].iter().map(|(_, p)| p).collect();
            for payload in &batch {
                assert_eq!(
                    data.iter().filter(|p| **p == payload).count(),
                    1,
                    "replica {i}: payload {payload:?} must deliver exactly once"
                );
            }
        }
    }

    #[test]
    fn conflicting_preprepare_from_byzantine_primary_is_isolated() {
        // A Byzantine primary equivocates: sends different payloads for the
        // same (view, seq) to different replicas. Quorum intersection must
        // prevent both from committing.
        let mut cluster = Cluster::new(4);
        let a = PbftMessage::PrePrepare {
            view: 0,
            seq: 1,
            digest: fabric_crypto::digest(b"A"),
            payload: b"A".to_vec(),
        };
        let b = PbftMessage::PrePrepare {
            view: 0,
            seq: 1,
            digest: fabric_crypto::digest(b"B"),
            payload: b"B".to_vec(),
        };
        // Replica 1 and 2 get A; replica 3 gets B.
        let o = cluster.nodes[1].step(0, a.clone());
        cluster.absorb(1, o);
        let o = cluster.nodes[2].step(0, a);
        cluster.absorb(2, o);
        let o = cluster.nodes[3].step(0, b);
        cluster.absorb(3, o);
        cluster.drain();
        // At most one of the values may be delivered anywhere, and whatever
        // is delivered must agree across replicas.
        cluster.assert_agreement();
        let all: Vec<&(u64, Vec<u8>)> = cluster.delivered.iter().flatten().collect();
        let delivered_a = all.iter().any(|(_, d)| d == b"A");
        let delivered_b = all.iter().any(|(_, d)| d == b"B");
        assert!(
            !(delivered_a && delivered_b),
            "equivocation must not commit both values"
        );
    }
}
