//! The PBFT replica state machine.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use fabric_crypto::Digest;

use crate::ReplicaId;

/// Timing configuration, in driver-defined ticks.
#[derive(Clone, Copy, Debug)]
pub struct PbftConfig {
    /// Ticks a replica waits for a forwarded request to be delivered before
    /// suspecting the primary and starting a view change.
    pub request_timeout: u64,
    /// Maximum client payloads sealed into one pre-prepare batch.
    pub max_batch: usize,
    /// Maximum undelivered sequence numbers the primary keeps in flight;
    /// further requests queue until delivery frees a slot.
    pub max_inflight: u64,
}

impl Default for PbftConfig {
    fn default() -> Self {
        PbftConfig {
            request_timeout: 10,
            max_batch: 64,
            max_inflight: 8,
        }
    }
}

/// First byte of a batched pre-prepare payload. Client payloads are opaque
/// but the batch frame is distinguished by this marker; `encode_batch`
/// always frames (even single payloads), so committed non-empty payloads
/// are frames unless they predate batching (handled as a legacy single).
const BATCH_MAGIC: u8 = 0xB5;

/// Frames `payloads` into one batch: marker, count, then length-prefixed
/// payloads.
pub fn encode_batch(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = vec![BATCH_MAGIC];
    buf.extend((payloads.len() as u32).to_le_bytes());
    for p in payloads {
        buf.extend((p.len() as u32).to_le_bytes());
        buf.extend(p.iter());
    }
    buf
}

/// Inverse of [`encode_batch`]; `None` if `frame` is not a well-formed
/// batch (wrong marker, truncated, or trailing bytes).
pub fn decode_batch(frame: &[u8]) -> Option<Vec<Vec<u8>>> {
    if frame.first() != Some(&BATCH_MAGIC) {
        return None;
    }
    let mut at = 1usize;
    let count = u32::from_le_bytes(frame.get(at..at + 4)?.try_into().ok()?) as usize;
    at += 4;
    let mut payloads = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let len = u32::from_le_bytes(frame.get(at..at + 4)?.try_into().ok()?) as usize;
        at += 4;
        payloads.push(frame.get(at..at + len)?.to_vec());
        at += len;
    }
    if at != frame.len() {
        return None;
    }
    Some(payloads)
}

/// A prepared certificate carried in view-change messages: evidence that a
/// value reached the prepare quorum for a sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparedCert {
    /// Sequence number.
    pub seq: u64,
    /// View in which it prepared.
    pub view: u64,
    /// Digest of the payload.
    pub digest: Digest,
    /// The payload itself.
    pub payload: Vec<u8>,
}

/// PBFT protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PbftMessage {
    /// A client request forwarded to the primary.
    Request {
        /// Opaque request payload.
        payload: Vec<u8>,
    },
    /// Primary assigns a sequence number to a request.
    PrePrepare {
        /// Current view.
        view: u64,
        /// Assigned sequence number.
        seq: u64,
        /// SHA-256 of the payload.
        digest: Digest,
        /// The request payload.
        payload: Vec<u8>,
    },
    /// A replica acknowledges the pre-prepare.
    Prepare {
        /// View.
        view: u64,
        /// Sequence.
        seq: u64,
        /// Payload digest.
        digest: Digest,
    },
    /// A replica has collected a prepare quorum.
    Commit {
        /// View.
        view: u64,
        /// Sequence.
        seq: u64,
        /// Payload digest.
        digest: Digest,
    },
    /// A replica votes to move to `new_view`.
    ViewChange {
        /// The view being proposed.
        new_view: u64,
        /// This replica's prepared certificates.
        prepared: Vec<PreparedCert>,
    },
    /// The new primary installs `new_view`.
    NewView {
        /// The view being installed.
        new_view: u64,
        /// Re-proposals for every in-flight sequence number (empty payload
        /// = no-op filler).
        pre_prepares: Vec<(u64, Vec<u8>)>,
    },
}

/// Events the driver must act on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Output {
    /// Send `message` to replica `to`.
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// The message.
        message: PbftMessage,
    },
    /// Sequence `seq` is committed; deliver `data` (empty = no-op filler,
    /// skip it).
    Delivered {
        /// Committed sequence number.
        seq: u64,
        /// Payload.
        data: Vec<u8>,
    },
}

/// Errors from [`PbftNode::propose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposeError {
    /// Only the primary assigns sequence numbers; the hint is the current
    /// primary's id.
    NotPrimary(ReplicaId),
}

#[derive(Default)]
struct Slot {
    /// The pre-prepared value accepted in the current view.
    accepted: Option<(Digest, Vec<u8>)>,
    /// View in which `accepted` was set.
    accepted_view: u64,
    /// Prepare votes per digest.
    prepares: HashMap<Digest, HashSet<ReplicaId>>,
    /// Commit votes per digest.
    commits: HashMap<Digest, HashSet<ReplicaId>>,
    /// Set once the commit quorum is reached.
    committed: Option<Vec<u8>>,
    /// Whether our own prepare/commit were already broadcast.
    sent_prepare: bool,
    sent_commit: bool,
}

/// A pending (forwarded) request with its timeout.
struct Pending {
    digest: Digest,
    payload: Vec<u8>,
    ticks_left: u64,
}

/// One PBFT replica.
pub struct PbftNode {
    id: ReplicaId,
    n: usize,
    f: usize,
    config: PbftConfig,
    view: u64,
    /// Next sequence number this node assigns when primary.
    next_seq: u64,
    log: BTreeMap<u64, Slot>,
    last_delivered: u64,
    pending: Vec<Pending>,
    /// View-change votes: new_view -> voter -> certificates.
    vc_votes: HashMap<u64, HashMap<ReplicaId, Vec<PreparedCert>>>,
    /// Highest view this node has voted to change to.
    vc_voted: u64,
    /// Digests of already-delivered payloads (duplicate suppression). For
    /// batched slots this holds the *sub-payload* digests, which is what
    /// makes delivery exactly-once across view changes (a payload can sit
    /// both in a carried-over certificate batch and in a re-proposed one).
    delivered_digests: HashSet<Digest>,
    /// Primary-only intake queue of raw client payloads awaiting a batch.
    queue: VecDeque<Vec<u8>>,
    /// Digests of queued payloads (intake dedup).
    queued_digests: HashSet<Digest>,
    /// Re-entrancy guard: delivery inside a `pump`-driven accept chain
    /// must not pump recursively.
    pumping: bool,
    /// Batches sealed by this node as primary (stats).
    sealed_batches: u64,
    /// Client payloads sealed into those batches (stats).
    sealed_payloads: u64,
}

impl PbftNode {
    /// Creates replica `id` in a cluster of `n` replicas.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 4` (PBFT needs `n = 3f + 1` with `f >= 1`) —
    /// except `n = 1`, allowed for degenerate test setups.
    pub fn new(id: ReplicaId, n: usize, config: PbftConfig) -> Self {
        assert!(n == 1 || n >= 4, "PBFT needs n >= 4 (n = 3f + 1)");
        PbftNode {
            id,
            n,
            f: (n - 1) / 3,
            config,
            view: 0,
            next_seq: 1,
            log: BTreeMap::new(),
            last_delivered: 0,
            pending: Vec::new(),
            vc_votes: HashMap::new(),
            vc_voted: 0,
            delivered_digests: HashSet::new(),
            queue: VecDeque::new(),
            queued_digests: HashSet::new(),
            pumping: false,
            sealed_batches: 0,
            sealed_payloads: 0,
        }
    }

    /// `(sealed_batches, sealed_payloads)` counters for this node's time
    /// as primary.
    pub fn batch_stats(&self) -> (u64, u64) {
        (self.sealed_batches, self.sealed_payloads)
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Id of the current view's primary.
    pub fn primary(&self) -> ReplicaId {
        self.view % self.n as u64
    }

    /// Whether this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.primary() == self.id
    }

    /// Quorum size (`2f + 1`).
    fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    fn broadcast(&self, message: PbftMessage, out: &mut Vec<Output>) {
        for peer in 0..self.n as u64 {
            if peer != self.id {
                out.push(Output::Send {
                    to: peer,
                    message: message.clone(),
                });
            }
        }
    }

    /// Entry point for client requests arriving at this replica. The
    /// primary sequences them directly; backups relay the request to *all*
    /// replicas (so every correct replica arms its view-change timer, the
    /// PBFT liveness mechanism) and wait.
    pub fn on_request(&mut self, payload: Vec<u8>) -> Vec<Output> {
        let mut out = Vec::new();
        if self.is_primary() {
            self.enqueue(payload);
            self.pump(&mut out);
            return out;
        }
        self.broadcast(
            PbftMessage::Request {
                payload: payload.clone(),
            },
            &mut out,
        );
        self.arm_pending(payload);
        out
    }

    /// Arms the view-change timer for a request this backup is waiting on.
    fn arm_pending(&mut self, payload: Vec<u8>) {
        let digest = fabric_crypto::digest(&payload);
        if self.delivered_digests.contains(&digest)
            || self.pending.iter().any(|p| p.digest == digest)
        {
            return;
        }
        self.pending.push(Pending {
            digest,
            payload,
            ticks_left: self.config.request_timeout,
        });
    }

    /// Sequences a request; primary only. The payload joins the intake
    /// queue and ships in the next sealed batch (immediately if a
    /// sequence-number slot is free).
    pub fn propose(&mut self, payload: Vec<u8>) -> Result<Vec<Output>, ProposeError> {
        if !self.is_primary() {
            return Err(ProposeError::NotPrimary(self.primary()));
        }
        let mut out = Vec::new();
        self.enqueue(payload);
        self.pump(&mut out);
        Ok(out)
    }

    /// Adds a raw client payload to the primary's intake queue unless it
    /// was already delivered or is already queued.
    fn enqueue(&mut self, payload: Vec<u8>) {
        let digest = fabric_crypto::digest(&payload);
        if self.delivered_digests.contains(&digest) || !self.queued_digests.insert(digest) {
            return;
        }
        self.queue.push_back(payload);
    }

    /// Seals queued payloads into batched pre-prepares while undelivered
    /// sequence numbers stay under `max_inflight` — this is what overlaps
    /// agreement on consecutive batches instead of running them one at a
    /// time.
    fn pump(&mut self, out: &mut Vec<Output>) {
        if !self.is_primary() || self.pumping {
            return;
        }
        self.pumping = true;
        while !self.queue.is_empty() {
            let inflight = (self.next_seq - 1).saturating_sub(self.last_delivered);
            if inflight >= self.config.max_inflight {
                break;
            }
            let take = self.queue.len().min(self.config.max_batch.max(1));
            let batch: Vec<Vec<u8>> = self.queue.drain(..take).collect();
            for p in &batch {
                self.queued_digests.remove(&fabric_crypto::digest(p));
            }
            self.sealed_batches += 1;
            self.sealed_payloads += batch.len() as u64;
            let frame = encode_batch(&batch);
            let digest = fabric_crypto::digest(&frame);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.broadcast(
                PbftMessage::PrePrepare {
                    view: self.view,
                    seq,
                    digest,
                    payload: frame.clone(),
                },
                out,
            );
            self.accept_preprepare(seq, digest, frame, out);
        }
        self.pumping = false;
    }

    /// Advances timers; may initiate a view change.
    pub fn tick(&mut self) -> Vec<Output> {
        let mut out = Vec::new();
        // Catch-all: seal anything still queued if delivery freed slots.
        self.pump(&mut out);
        let mut expired = false;
        for p in &mut self.pending {
            if p.ticks_left > 0 {
                p.ticks_left -= 1;
                if p.ticks_left == 0 {
                    expired = true;
                }
            }
        }
        if expired {
            let target = (self.view.max(self.vc_voted)) + 1;
            self.start_view_change(target, &mut out);
            // Re-arm so a stalled view change escalates further.
            for p in &mut self.pending {
                if p.ticks_left == 0 {
                    p.ticks_left = self.config.request_timeout;
                }
            }
        }
        out
    }

    fn start_view_change(&mut self, new_view: u64, out: &mut Vec<Output>) {
        if new_view <= self.vc_voted {
            return;
        }
        self.vc_voted = new_view;
        let prepared = self.prepared_certs();
        self.vc_votes
            .entry(new_view)
            .or_default()
            .insert(self.id, prepared.clone());
        self.broadcast(
            PbftMessage::ViewChange { new_view, prepared },
            out,
        );
        self.maybe_install_view(new_view, out);
    }

    /// All sequence numbers with a local prepare quorum, as certificates.
    fn prepared_certs(&self) -> Vec<PreparedCert> {
        let mut certs = Vec::new();
        for (&seq, slot) in &self.log {
            if let Some((digest, payload)) = &slot.accepted {
                let votes = slot.prepares.get(digest).map(|s| s.len()).unwrap_or(0);
                if votes >= self.quorum() || slot.committed.is_some() {
                    certs.push(PreparedCert {
                        seq,
                        view: slot.accepted_view,
                        digest: *digest,
                        payload: payload.clone(),
                    });
                }
            }
        }
        certs
    }

    /// Handles a protocol message from `from`.
    pub fn step(&mut self, from: ReplicaId, message: PbftMessage) -> Vec<Output> {
        let mut out = Vec::new();
        match message {
            PbftMessage::Request { payload } => {
                let digest = fabric_crypto::digest(&payload);
                if self.delivered_digests.contains(&digest) {
                    // Already ordered; duplicates are filtered downstream
                    // (Fabric's validation handles duplicate transactions).
                } else if self.is_primary() {
                    self.enqueue(payload);
                    self.pump(&mut out);
                } else {
                    // Arm the timer so this replica also suspects a faulty
                    // primary that never orders the request.
                    self.arm_pending(payload);
                }
            }
            PbftMessage::PrePrepare {
                view,
                seq,
                digest,
                payload,
            } => {
                if view == self.view && from == self.primary() {
                    self.accept_preprepare(seq, digest, payload, &mut out);
                }
            }
            PbftMessage::Prepare { view, seq, digest } => {
                if view == self.view {
                    self.record_prepare(seq, digest, from, &mut out);
                }
            }
            PbftMessage::Commit { view, seq, digest } => {
                if view == self.view {
                    self.record_commit(seq, digest, from, &mut out);
                }
            }
            PbftMessage::ViewChange { new_view, prepared } => {
                if new_view > self.view {
                    self.vc_votes
                        .entry(new_view)
                        .or_default()
                        .insert(from, prepared);
                    let votes = self.vc_votes[&new_view].len();
                    // Liveness amplification: join once f + 1 replicas vote.
                    if votes > self.f && self.vc_voted < new_view {
                        self.start_view_change(new_view, &mut out);
                    }
                    self.maybe_install_view(new_view, &mut out);
                }
            }
            PbftMessage::NewView {
                new_view,
                pre_prepares,
            } => {
                if new_view >= self.view && from == new_view % self.n as u64 {
                    self.adopt_view(new_view, &mut out);
                    for (seq, payload) in pre_prepares {
                        let digest = fabric_crypto::digest(&payload);
                        self.accept_preprepare(seq, digest, payload, &mut out);
                    }
                }
            }
        }
        out
    }

    fn maybe_install_view(&mut self, new_view: u64, out: &mut Vec<Output>) {
        if new_view % self.n as u64 != self.id || new_view <= self.view {
            return;
        }
        let votes = match self.vc_votes.get(&new_view) {
            Some(v) => v,
            None => return,
        };
        if votes.len() < self.quorum() {
            return;
        }
        // Merge prepared certificates, choosing the highest-view value per
        // sequence number.
        let mut chosen: BTreeMap<u64, PreparedCert> = BTreeMap::new();
        for certs in votes.values() {
            for cert in certs {
                let replace = chosen
                    .get(&cert.seq)
                    .map(|existing| cert.view > existing.view)
                    .unwrap_or(true);
                if replace {
                    chosen.insert(cert.seq, cert.clone());
                }
            }
        }
        let max_seq = chosen.keys().next_back().copied().unwrap_or(0);
        // Fill gaps with no-ops so delivery can progress past them.
        let mut pre_prepares = Vec::new();
        for seq in 1..=max_seq {
            let payload = chosen
                .get(&seq)
                .map(|c| c.payload.clone())
                .unwrap_or_default();
            pre_prepares.push((seq, payload));
        }
        self.adopt_view(new_view, out);
        self.next_seq = max_seq + 1;
        self.broadcast(
            PbftMessage::NewView {
                new_view,
                pre_prepares: pre_prepares.clone(),
            },
            out,
        );
        for (seq, payload) in pre_prepares {
            let digest = fabric_crypto::digest(&payload);
            self.accept_preprepare(seq, digest, payload, out);
        }
        // Re-propose pending requests in the new view, batched like any
        // other intake. A payload may now sit both in a carried-over
        // certificate batch above and in one of these fresh batches;
        // delivery-time sub-payload dedup keeps it exactly-once.
        let pending: Vec<Vec<u8>> = self.pending.iter().map(|p| p.payload.clone()).collect();
        for payload in pending {
            self.enqueue(payload);
        }
        self.pump(out);
    }

    fn adopt_view(&mut self, new_view: u64, out: &mut Vec<Output>) {
        self.view = new_view;
        self.vc_voted = self.vc_voted.max(new_view);
        // A demoted primary relays its unsequenced intake like a backup
        // (Request broadcast + view-change timer) so the payloads reach
        // the new primary instead of silently dying in the queue.
        if !self.is_primary() {
            self.queued_digests.clear();
            let queued: Vec<Vec<u8>> = self.queue.drain(..).collect();
            for payload in queued {
                self.broadcast(
                    PbftMessage::Request {
                        payload: payload.clone(),
                    },
                    out,
                );
                self.arm_pending(payload);
            }
        }
        // Reset per-view progress on undelivered slots: votes from older
        // views don't count in the new one.
        for slot in self.log.values_mut() {
            if slot.committed.is_none() {
                slot.accepted = None;
                slot.prepares.clear();
                slot.commits.clear();
                slot.sent_prepare = false;
                slot.sent_commit = false;
            }
        }
        // Forward pending requests to the new primary if we're a backup.
        // (Done lazily: `maybe_install_view` re-proposes at the primary.)
    }

    fn accept_preprepare(
        &mut self,
        seq: u64,
        digest: Digest,
        payload: Vec<u8>,
        out: &mut Vec<Output>,
    ) {
        if seq <= self.last_delivered {
            return;
        }
        if fabric_crypto::digest(&payload) != digest {
            return; // malformed
        }
        let slot = self.log.entry(seq).or_default();
        if slot.committed.is_some() {
            return;
        }
        if let Some((accepted_digest, _)) = &slot.accepted {
            if *accepted_digest != digest {
                // Conflicting proposal for the same slot in the same view:
                // ignore it (a correct primary never does this).
                return;
            }
        } else {
            slot.accepted = Some((digest, payload));
            slot.accepted_view = self.view;
        }
        if !slot.sent_prepare {
            slot.sent_prepare = true;
            let view = self.view;
            self.broadcast(PbftMessage::Prepare { view, seq, digest }, out);
            self.record_prepare(seq, digest, self.id, out);
        }
    }

    fn record_prepare(&mut self, seq: u64, digest: Digest, from: ReplicaId, out: &mut Vec<Output>) {
        if seq <= self.last_delivered {
            return;
        }
        let quorum = self.quorum();
        let id = self.id;
        let view = self.view;
        let slot = self.log.entry(seq).or_default();
        slot.prepares.entry(digest).or_default().insert(from);
        let have_value = matches!(&slot.accepted, Some((d, _)) if *d == digest);
        let votes = slot.prepares.get(&digest).map(|s| s.len()).unwrap_or(0);
        if have_value && votes >= quorum && !slot.sent_commit {
            slot.sent_commit = true;
            self.broadcast(PbftMessage::Commit { view, seq, digest }, out);
            self.record_commit(seq, digest, id, out);
        }
    }

    fn record_commit(&mut self, seq: u64, digest: Digest, from: ReplicaId, out: &mut Vec<Output>) {
        if seq <= self.last_delivered {
            return;
        }
        let quorum = self.quorum();
        let slot = self.log.entry(seq).or_default();
        slot.commits.entry(digest).or_default().insert(from);
        let votes = slot.commits.get(&digest).map(|s| s.len()).unwrap_or(0);
        let have_value = matches!(&slot.accepted, Some((d, _)) if *d == digest);
        if have_value && votes >= quorum && slot.committed.is_none() {
            let payload = slot
                .accepted
                .as_ref()
                .map(|(_, p)| p.clone())
                .expect("have_value checked");
            slot.committed = Some(payload);
            self.deliver_ready(out);
        }
    }

    fn deliver_ready(&mut self, out: &mut Vec<Output>) {
        loop {
            let next = self.last_delivered + 1;
            let payload = match self.log.get(&next).and_then(|s| s.committed.clone()) {
                Some(p) => p,
                None => break,
            };
            self.last_delivered = next;
            if payload.is_empty() {
                // View-change no-op filler: emit as-is (drivers skip it).
                out.push(Output::Delivered {
                    seq: next,
                    data: payload,
                });
                continue;
            }
            // A batched slot delivers each client payload separately (all
            // under the slot's sequence number). Sub-payload digests are
            // the dedup unit: a payload carried both in a view-change
            // certificate batch and in a re-proposed batch delivers once.
            let subs = match decode_batch(&payload) {
                Some(subs) => subs,
                None => vec![payload],
            };
            for sub in subs {
                if sub.is_empty() {
                    continue;
                }
                let digest = fabric_crypto::digest(&sub);
                if !self.delivered_digests.insert(digest) {
                    continue;
                }
                // Clear any pending request satisfied by this delivery.
                self.pending.retain(|p| p.digest != digest);
                out.push(Output::Delivered {
                    seq: next,
                    data: sub,
                });
            }
        }
        // Delivery frees in-flight sequence slots; seal anything queued.
        self.pump(out);
    }
}
