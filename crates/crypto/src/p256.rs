//! The NIST P-256 (secp256r1) elliptic curve group.
//!
//! The curve is `y^2 = x^3 - 3x + b` over the prime field `F_p`. Points are
//! represented internally in Jacobian projective coordinates with
//! Montgomery-form field elements; `Z = 0` encodes the point at infinity.
//!
//! The group law uses the classical Jacobian addition and the `a = -3`
//! doubling formulas. Scalar multiplication is plain double-and-add and is
//! **not constant time** — see the crate-level security note.

use std::sync::OnceLock;

use crate::field::Modulus;
use crate::u256::U256;

/// Hex encoding of the field prime `p = 2^256 - 2^224 + 2^192 + 2^96 - 1`.
pub const P_HEX: &str = "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
/// Hex encoding of the group order `n`.
pub const N_HEX: &str = "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";
/// Hex encoding of the curve coefficient `b`.
pub const B_HEX: &str = "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b";
/// Hex encoding of the base point x-coordinate.
pub const GX_HEX: &str = "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296";
/// Hex encoding of the base point y-coordinate.
pub const GY_HEX: &str = "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5";

/// Returns the shared field modulus context (`mod p`).
pub fn fp() -> &'static Modulus {
    static FP: OnceLock<Modulus> = OnceLock::new();
    FP.get_or_init(|| Modulus::new(U256::from_hex(P_HEX).expect("valid p")))
}

/// Returns the shared scalar modulus context (`mod n`, the group order).
pub fn fq() -> &'static Modulus {
    static FQ: OnceLock<Modulus> = OnceLock::new();
    FQ.get_or_init(|| Modulus::new(U256::from_hex(N_HEX).expect("valid n")))
}

/// Returns the group order `n` as a plain integer.
pub fn order() -> U256 {
    fq().m
}

/// A point on P-256 in Jacobian coordinates with Montgomery-form components.
///
/// Invariant: either `z == 0` (infinity) or the de-projectivized affine point
/// satisfies the curve equation.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: U256,
    y: U256,
    z: U256,
}

impl Point {
    /// The point at infinity (the group identity).
    pub fn infinity() -> Point {
        Point {
            x: fp().one(),
            y: fp().one(),
            z: U256::ZERO,
        }
    }

    /// The generator (base point) `G`.
    pub fn generator() -> Point {
        static G: OnceLock<Point> = OnceLock::new();
        *G.get_or_init(|| {
            Point::from_affine(
                U256::from_hex(GX_HEX).expect("valid gx"),
                U256::from_hex(GY_HEX).expect("valid gy"),
            )
            .expect("generator is on the curve")
        })
    }

    /// Constructs a point from plain (non-Montgomery) affine coordinates.
    ///
    /// Returns `None` if `(x, y)` does not satisfy the curve equation or the
    /// coordinates are not reduced modulo `p`.
    pub fn from_affine(x: U256, y: U256) -> Option<Point> {
        let f = fp();
        if x >= f.m || y >= f.m {
            return None;
        }
        let xm = f.to_mont(&x);
        let ym = f.to_mont(&y);
        if !Self::on_curve_mont(&xm, &ym) {
            return None;
        }
        Some(Point {
            x: xm,
            y: ym,
            z: f.one(),
        })
    }

    /// Checks the curve equation for Montgomery-form affine coordinates.
    fn on_curve_mont(xm: &U256, ym: &U256) -> bool {
        let f = fp();
        let b = f.to_mont(&U256::from_hex(B_HEX).expect("valid b"));
        // y^2 == x^3 - 3x + b.
        let y2 = f.sqr(ym);
        let x3 = f.mul(&f.sqr(xm), xm);
        let three_x = f.add(&f.add(xm, xm), xm);
        let rhs = f.add(&f.sub(&x3, &three_x), &b);
        y2 == rhs
    }

    /// Returns `true` if this is the point at infinity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts to plain (non-Montgomery) affine coordinates.
    ///
    /// Returns `None` for the point at infinity.
    pub fn to_affine(&self) -> Option<(U256, U256)> {
        if self.is_infinity() {
            return None;
        }
        let f = fp();
        let zinv = f.inv(&self.z);
        let zinv2 = f.sqr(&zinv);
        let zinv3 = f.mul(&zinv2, &zinv);
        let x = f.mul(&self.x, &zinv2);
        let y = f.mul(&self.y, &zinv3);
        Some((f.from_mont(&x), f.from_mont(&y)))
    }

    /// Point doubling using the `a = -3` Jacobian formulas.
    pub fn double(&self) -> Point {
        if self.is_infinity() || self.y.is_zero() {
            return Point::infinity();
        }
        let f = fp();
        let delta = f.sqr(&self.z);
        let gamma = f.sqr(&self.y);
        let beta = f.mul(&self.x, &gamma);
        // alpha = 3 * (x - delta) * (x + delta)  (uses a = -3).
        let t1 = f.sub(&self.x, &delta);
        let t2 = f.add(&self.x, &delta);
        let t3 = f.mul(&t1, &t2);
        let alpha = f.add(&f.add(&t3, &t3), &t3);
        // x3 = alpha^2 - 8*beta.
        let beta2 = f.add(&beta, &beta);
        let beta4 = f.add(&beta2, &beta2);
        let beta8 = f.add(&beta4, &beta4);
        let x3 = f.sub(&f.sqr(&alpha), &beta8);
        // z3 = (y + z)^2 - gamma - delta.
        let yz = f.add(&self.y, &self.z);
        let z3 = f.sub(&f.sub(&f.sqr(&yz), &gamma), &delta);
        // y3 = alpha * (4*beta - x3) - 8*gamma^2.
        let g2 = f.sqr(&gamma);
        let g2_2 = f.add(&g2, &g2);
        let g2_4 = f.add(&g2_2, &g2_2);
        let g2_8 = f.add(&g2_4, &g2_4);
        let y3 = f.sub(&f.mul(&alpha, &f.sub(&beta4, &x3)), &g2_8);
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian point addition.
    pub fn add(&self, other: &Point) -> Point {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let f = fp();
        let z1z1 = f.sqr(&self.z);
        let z2z2 = f.sqr(&other.z);
        let u1 = f.mul(&self.x, &z2z2);
        let u2 = f.mul(&other.x, &z1z1);
        let s1 = f.mul(&f.mul(&self.y, &other.z), &z2z2);
        let s2 = f.mul(&f.mul(&other.y, &self.z), &z1z1);
        if u1 == u2 {
            return if s1 == s2 {
                self.double()
            } else {
                Point::infinity()
            };
        }
        let h = f.sub(&u2, &u1);
        let r = f.sub(&s2, &s1);
        let hh = f.sqr(&h);
        let hhh = f.mul(&h, &hh);
        let v = f.mul(&u1, &hh);
        // x3 = r^2 - hhh - 2v.
        let x3 = f.sub(&f.sub(&f.sqr(&r), &hhh), &f.add(&v, &v));
        // y3 = r*(v - x3) - s1*hhh.
        let y3 = f.sub(&f.mul(&r, &f.sub(&v, &x3)), &f.mul(&s1, &hhh));
        // z3 = z1*z2*h.
        let z3 = f.mul(&f.mul(&self.z, &other.z), &h);
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Point negation.
    pub fn neg(&self) -> Point {
        Point {
            x: self.x,
            y: fp().neg(&self.y),
            z: self.z,
        }
    }

    /// Scalar multiplication `k * self` by plain double-and-add.
    pub fn mul(&self, k: &U256) -> Point {
        let mut acc = Point::infinity();
        for i in (0..k.bits()).rev() {
            acc = acc.double();
            if k.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Simultaneous double-scalar multiplication `a*self + b*other`
    /// (Shamir's trick), the hot operation in ECDSA verification.
    pub fn double_scalar_mul(&self, a: &U256, other: &Point, b: &U256) -> Point {
        let sum = self.add(other);
        let bits = a.bits().max(b.bits());
        let mut acc = Point::infinity();
        for i in (0..bits).rev() {
            acc = acc.double();
            match (a.bit(i), b.bit(i)) {
                (true, true) => acc = acc.add(&sum),
                (true, false) => acc = acc.add(self),
                (false, true) => acc = acc.add(other),
                (false, false) => {}
            }
        }
        acc
    }

    /// Equality as group elements (compares affine forms).
    pub fn eq_point(&self, other: &Point) -> bool {
        match (self.to_affine(), other.to_affine()) {
            (None, None) => true,
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Serializes the point in uncompressed SEC1 form (`0x04 || X || Y`).
    ///
    /// Returns `None` for the point at infinity.
    pub fn to_uncompressed(&self) -> Option<[u8; 65]> {
        let (x, y) = self.to_affine()?;
        let mut out = [0u8; 65];
        out[0] = 0x04;
        out[1..33].copy_from_slice(&x.to_be_bytes());
        out[33..65].copy_from_slice(&y.to_be_bytes());
        Some(out)
    }

    /// Serializes the point in compressed SEC1 form (`0x02/0x03 || X`).
    ///
    /// Returns `None` for the point at infinity.
    pub fn to_compressed(&self) -> Option<[u8; 33]> {
        let (x, y) = self.to_affine()?;
        let mut out = [0u8; 33];
        out[0] = if y.is_odd() { 0x03 } else { 0x02 };
        out[1..33].copy_from_slice(&x.to_be_bytes());
        Some(out)
    }

    /// Parses a SEC1-encoded point (compressed or uncompressed).
    ///
    /// Returns `None` for malformed encodings or points off the curve.
    pub fn from_sec1(bytes: &[u8]) -> Option<Point> {
        match bytes.first()? {
            0x04 if bytes.len() == 65 => {
                let mut xb = [0u8; 32];
                let mut yb = [0u8; 32];
                xb.copy_from_slice(&bytes[1..33]);
                yb.copy_from_slice(&bytes[33..65]);
                Point::from_affine(U256::from_be_bytes(&xb), U256::from_be_bytes(&yb))
            }
            tag @ (0x02 | 0x03) if bytes.len() == 33 => {
                let mut xb = [0u8; 32];
                xb.copy_from_slice(&bytes[1..33]);
                let x = U256::from_be_bytes(&xb);
                let f = fp();
                if x >= f.m {
                    return None;
                }
                // y^2 = x^3 - 3x + b; p == 3 (mod 4) so sqrt = rhs^((p+1)/4).
                let xm = f.to_mont(&x);
                let b = f.to_mont(&U256::from_hex(B_HEX).expect("valid b"));
                let x3 = f.mul(&f.sqr(&xm), &xm);
                let three_x = f.add(&f.add(&xm, &xm), &xm);
                let rhs = f.add(&f.sub(&x3, &three_x), &b);
                let exp = f.m.adc(&U256::ONE).0.shr1().shr1(); // (p+1)/4
                let ym = f.pow(&rhs, &exp);
                if f.sqr(&ym) != rhs {
                    return None; // rhs is not a quadratic residue
                }
                let y = f.from_mont(&ym);
                let y = if y.is_odd() == (*tag == 0x03) {
                    y
                } else {
                    f.m.sbb(&y).0
                };
                Point::from_affine(x, y)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_on_curve() {
        // from_affine validates the curve equation.
        assert!(!Point::generator().is_infinity());
    }

    #[test]
    fn generator_times_order_is_infinity() {
        let n = order();
        assert!(Point::generator().mul(&n).is_infinity());
    }

    #[test]
    fn generator_times_order_minus_one_is_neg_g() {
        let n_minus_1 = order().sbb(&U256::ONE).0;
        let p = Point::generator().mul(&n_minus_1);
        assert!(p.eq_point(&Point::generator().neg()));
        assert!(p.add(&Point::generator()).is_infinity());
    }

    #[test]
    fn double_matches_add_self() {
        let g = Point::generator();
        // add() detects the doubling case.
        assert!(g.double().eq_point(&g.add(&g)));
    }

    #[test]
    fn scalar_mul_small_values() {
        let g = Point::generator();
        let two_g = g.double();
        let three_g = two_g.add(&g);
        assert!(g.mul(&U256::from_u64(1)).eq_point(&g));
        assert!(g.mul(&U256::from_u64(2)).eq_point(&two_g));
        assert!(g.mul(&U256::from_u64(3)).eq_point(&three_g));
        assert!(g.mul(&U256::ZERO).is_infinity());
    }

    #[test]
    fn known_2g_coordinates() {
        // 2G for P-256 (public test vector).
        let (x, y) = Point::generator().double().to_affine().unwrap();
        assert_eq!(
            x.to_hex(),
            "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978"
        );
        assert_eq!(
            y.to_hex(),
            "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1"
        );
    }

    #[test]
    fn addition_commutes() {
        let g = Point::generator();
        let a = g.mul(&U256::from_u64(5));
        let b = g.mul(&U256::from_u64(11));
        assert!(a.add(&b).eq_point(&b.add(&a)));
    }

    #[test]
    fn addition_associates() {
        let g = Point::generator();
        let a = g.mul(&U256::from_u64(7));
        let b = g.mul(&U256::from_u64(13));
        let c = g.mul(&U256::from_u64(29));
        assert!(a.add(&b).add(&c).eq_point(&a.add(&b.add(&c))));
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = Point::generator();
        // (5 + 11) G == 5G + 11G.
        let lhs = g.mul(&U256::from_u64(16));
        let rhs = g.mul(&U256::from_u64(5)).add(&g.mul(&U256::from_u64(11)));
        assert!(lhs.eq_point(&rhs));
    }

    #[test]
    fn double_scalar_mul_matches_naive() {
        let g = Point::generator();
        let q = g.mul(&U256::from_u64(999));
        let a = U256::from_u64(123456);
        let b = U256::from_u64(654321);
        let fast = g.double_scalar_mul(&a, &q, &b);
        let slow = g.mul(&a).add(&q.mul(&b));
        assert!(fast.eq_point(&slow));
    }

    #[test]
    fn infinity_identity() {
        let g = Point::generator();
        let inf = Point::infinity();
        assert!(g.add(&inf).eq_point(&g));
        assert!(inf.add(&g).eq_point(&g));
        assert!(inf.add(&inf).is_infinity());
        assert!(inf.double().is_infinity());
    }

    #[test]
    fn neg_cancels() {
        let g = Point::generator().mul(&U256::from_u64(42));
        assert!(g.add(&g.neg()).is_infinity());
    }

    #[test]
    fn off_curve_rejected() {
        assert!(Point::from_affine(U256::from_u64(1), U256::from_u64(1)).is_none());
    }

    #[test]
    fn sec1_uncompressed_round_trip() {
        let p = Point::generator().mul(&U256::from_u64(777));
        let enc = p.to_uncompressed().unwrap();
        let q = Point::from_sec1(&enc).unwrap();
        assert!(p.eq_point(&q));
    }

    #[test]
    fn sec1_compressed_round_trip() {
        for k in [1u64, 2, 3, 7, 1000, 123456789] {
            let p = Point::generator().mul(&U256::from_u64(k));
            let enc = p.to_compressed().unwrap();
            let q = Point::from_sec1(&enc).unwrap();
            assert!(p.eq_point(&q), "k = {k}");
        }
    }

    #[test]
    fn sec1_malformed_rejected() {
        assert!(Point::from_sec1(&[]).is_none());
        assert!(Point::from_sec1(&[0x04; 10]).is_none());
        assert!(Point::from_sec1(&[0x05; 65]).is_none());
        let mut enc = Point::generator().to_uncompressed().unwrap();
        enc[10] ^= 0xff;
        assert!(Point::from_sec1(&enc).is_none());
    }
}
