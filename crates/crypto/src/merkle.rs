//! Binary Merkle trees over SHA-256.
//!
//! Blocks commit to their transaction set via a Merkle root; peers can serve
//! membership proofs for audit tooling. Leaves are hashed with a `0x00`
//! domain-separation prefix and interior nodes with `0x01`, preventing
//! second-preimage attacks that splice interior nodes in as leaves. An odd
//! node at any level is promoted (not duplicated), so a proof is never valid
//! for a transaction count it was not built for.

use crate::sha256::{Digest, Sha256};

/// Hashes a leaf value with the leaf domain prefix.
pub fn leaf_hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

/// Hashes two child digests with the interior-node domain prefix.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// Computes the Merkle root of a list of leaf payloads.
///
/// The root of an empty list is defined as `SHA-256(0x02)`, a distinguished
/// constant that cannot collide with any leaf or node hash.
pub fn root(leaves: &[impl AsRef<[u8]>]) -> Digest {
    if leaves.is_empty() {
        let mut h = Sha256::new();
        h.update(&[0x02]);
        return h.finalize();
    }
    let mut level: Vec<Digest> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(node_hash(&pair[0], &pair[1]));
            } else {
                // Odd node is promoted unchanged.
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// One step of a Merkle membership proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling digest combined at this level.
    pub sibling: Digest,
    /// `true` if the sibling is on the left (`node_hash(sibling, acc)`).
    pub sibling_on_left: bool,
}

/// A Merkle membership proof for a single leaf.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Proof {
    /// Bottom-up sequence of siblings.
    pub steps: Vec<ProofStep>,
}

/// Builds a membership proof for `leaves[index]`.
///
/// Returns `None` if `index` is out of range.
pub fn prove(leaves: &[impl AsRef<[u8]>], index: usize) -> Option<Proof> {
    if index >= leaves.len() {
        return None;
    }
    let mut level: Vec<Digest> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
    let mut idx = index;
    let mut steps = Vec::new();
    while level.len() > 1 {
        let sibling_idx = idx ^ 1;
        if sibling_idx < level.len() {
            steps.push(ProofStep {
                sibling: level[sibling_idx],
                sibling_on_left: sibling_idx < idx,
            });
        }
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(node_hash(&pair[0], &pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        idx /= 2;
        level = next;
    }
    Some(Proof { steps })
}

/// Verifies that `leaf_data` is a member of the tree with the given `root`.
pub fn verify(root_digest: &Digest, leaf_data: &[u8], proof: &Proof) -> bool {
    let mut acc = leaf_hash(leaf_data);
    for step in &proof.steps {
        acc = if step.sibling_on_left {
            node_hash(&step.sibling, &acc)
        } else {
            node_hash(&acc, &step.sibling)
        };
    }
    acc == *root_digest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("tx-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_root_is_stable() {
        let l: Vec<Vec<u8>> = Vec::new();
        assert_eq!(root(&l), root(&l));
        assert_ne!(root(&l), root(&leaves(1)));
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let l = leaves(1);
        assert_eq!(root(&l), leaf_hash(&l[0]));
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let mut l = leaves(5);
        let r1 = root(&l);
        l[3] = b"tampered".to_vec();
        assert_ne!(root(&l), r1);
    }

    #[test]
    fn root_depends_on_order() {
        let l = leaves(4);
        let mut swapped = l.clone();
        swapped.swap(0, 1);
        assert_ne!(root(&l), root(&swapped));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17 {
            let l = leaves(n);
            let r = root(&l);
            for i in 0..n {
                let p = prove(&l, i).unwrap();
                assert!(verify(&r, &l[i], &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf() {
        let l = leaves(8);
        let r = root(&l);
        let p = prove(&l, 3).unwrap();
        assert!(!verify(&r, &l[4], &p));
        assert!(!verify(&r, b"not-a-tx", &p));
    }

    #[test]
    fn proof_fails_for_wrong_root() {
        let l = leaves(8);
        let p = prove(&l, 0).unwrap();
        let other_root = root(&leaves(9));
        assert!(!verify(&other_root, &l[0], &p));
    }

    #[test]
    fn out_of_range_index() {
        assert!(prove(&leaves(3), 3).is_none());
        assert!(prove(&leaves(0), 0).is_none());
    }

    #[test]
    fn leaf_and_node_domains_differ() {
        // A leaf whose bytes equal an interior-node preimage must not
        // produce the interior hash.
        let a = leaf_hash(b"a");
        let b = leaf_hash(b"b");
        let mut spliced = vec![0x01u8];
        spliced.extend_from_slice(&a);
        spliced.extend_from_slice(&b);
        assert_ne!(leaf_hash(&spliced), node_hash(&a, &b));
    }
}
