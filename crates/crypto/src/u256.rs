//! Fixed-width 256-bit unsigned integer arithmetic.
//!
//! [`U256`] is the limb-level substrate for the modular arithmetic in
//! [`crate::field`] and ultimately for the P-256 ECDSA implementation. It is
//! stored as four little-endian `u64` limbs and provides exactly the
//! operations the cryptographic layers need: carry-propagating add/sub,
//! widening multiplication, comparisons, shifts, and byte/hex conversions.

use core::cmp::Ordering;

/// A 256-bit unsigned integer stored as four little-endian 64-bit limbs.
///
/// `limbs[0]` is the least significant limb. All arithmetic is plain
/// fixed-width integer arithmetic; modular semantics live in
/// [`crate::field`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The value zero.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value one.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a `U256` from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Parses a big-endian hex string (with or without a `0x` prefix).
    ///
    /// Returns `None` if the string is empty, longer than 64 hex digits, or
    /// contains a non-hex character.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut bytes = [0u8; 32];
        // Left-pad the hex string to 64 nibbles.
        let mut nibbles = [0u8; 64];
        let offset = 64 - s.len();
        for (i, c) in s.bytes().enumerate() {
            nibbles[offset + i] = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => return None,
            };
        }
        for i in 0..32 {
            bytes[i] = (nibbles[2 * i] << 4) | nibbles[2 * i + 1];
        }
        Some(Self::from_be_bytes(&bytes))
    }

    /// Renders the value as a 64-digit lowercase big-endian hex string.
    pub fn to_hex(&self) -> String {
        let bytes = self.to_be_bytes();
        let mut s = String::with_capacity(64);
        for b in bytes {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Interprets 32 big-endian bytes as a `U256`.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut limb = [0u8; 8];
            limb.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            limbs[3 - i] = u64::from_be_bytes(limb);
        }
        U256(limbs)
    }

    /// Serializes the value as 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.0[3 - i].to_be_bytes());
        }
        out
    }

    /// Adds `other`, returning the wrapped sum and the carry-out bit.
    pub fn adc(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (o, (s, r)) in out.iter_mut().zip(self.0.iter().zip(&other.0)) {
            let sum = *s as u128 + *r as u128 + carry as u128;
            *o = sum as u64;
            carry = (sum >> 64) as u64;
        }
        (U256(out), carry != 0)
    }

    /// Subtracts `other`, returning the wrapped difference and the borrow bit.
    pub fn sbb(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for (o, (s, r)) in out.iter_mut().zip(self.0.iter().zip(&other.0)) {
            let (d1, b1) = s.overflowing_sub(*r);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *o = d2;
            borrow = (b1 | b2) as u64;
        }
        (U256(out), borrow != 0)
    }

    /// Computes the full 512-bit product, returned as `(low, high)` halves.
    pub fn mul_wide(&self, other: &U256) -> (U256, U256) {
        let mut t = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let acc =
                    t[i + j] as u128 + self.0[i] as u128 * other.0[j] as u128 + carry;
                t[i + j] = acc as u64;
                carry = acc >> 64;
            }
            t[i + 4] = carry as u64;
        }
        (
            U256([t[0], t[1], t[2], t[3]]),
            U256([t[4], t[5], t[6], t[7]]),
        )
    }

    /// Returns bit `i` (0 = least significant). Bits at or above 256 are zero.
    pub fn bit(&self, i: usize) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the number of significant bits (`0` for zero).
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Shifts left by one bit, discarding the carry-out.
    pub fn shl1(&self) -> U256 {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (o, s) in out.iter_mut().zip(&self.0) {
            *o = (s << 1) | carry;
            carry = s >> 63;
        }
        U256(out)
    }

    /// Shifts right by one bit.
    pub fn shr1(&self) -> U256 {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in (0..4).rev() {
            out[i] = (self.0[i] >> 1) | (carry << 63);
            carry = self.0[i] & 1;
        }
        U256(out)
    }

    /// Modular addition: `(self + other) mod m`.
    ///
    /// Both operands must already be reduced modulo `m`.
    pub fn add_mod(&self, other: &U256, m: &U256) -> U256 {
        let (sum, carry) = self.adc(other);
        // If the 257-bit sum overflowed or reached `m`, subtract `m` once.
        if carry || sum.cmp(m) != Ordering::Less {
            sum.sbb(m).0
        } else {
            sum
        }
    }

    /// Modular subtraction: `(self - other) mod m`.
    ///
    /// Both operands must already be reduced modulo `m`.
    pub fn sub_mod(&self, other: &U256, m: &U256) -> U256 {
        let (diff, borrow) = self.sbb(other);
        if borrow {
            diff.adc(m).0
        } else {
            diff
        }
    }

    /// Reduces an arbitrary `U256` modulo `m` by conditional subtraction.
    ///
    /// Intended for values at most a few multiples of `m` (e.g. hash outputs
    /// reduced modulo a 256-bit prime); runs in a short loop.
    pub fn reduce_once(&self, m: &U256) -> U256 {
        let mut v = *self;
        while v.cmp(m) != Ordering::Less {
            v = v.sbb(m).0;
        }
        v
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl core::fmt::Debug for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "U256(0x{})", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let v = U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
            .unwrap();
        assert_eq!(
            v.to_hex(),
            "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"
        );
    }

    #[test]
    fn hex_prefix_and_short() {
        assert_eq!(U256::from_hex("0x10").unwrap(), U256::from_u64(16));
        assert_eq!(U256::from_hex("f").unwrap(), U256::from_u64(15));
        assert!(U256::from_hex("").is_none());
        assert!(U256::from_hex("xyz").is_none());
        assert!(U256::from_hex(&"f".repeat(65)).is_none());
    }

    #[test]
    fn bytes_round_trip() {
        let v = U256::from_hex("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20")
            .unwrap();
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn add_with_carry() {
        let (sum, carry) = U256::MAX.adc(&U256::ONE);
        assert!(carry);
        assert_eq!(sum, U256::ZERO);
        let (sum, carry) = U256::from_u64(2).adc(&U256::from_u64(3));
        assert!(!carry);
        assert_eq!(sum, U256::from_u64(5));
    }

    #[test]
    fn sub_with_borrow() {
        let (diff, borrow) = U256::ZERO.sbb(&U256::ONE);
        assert!(borrow);
        assert_eq!(diff, U256::MAX);
        let (diff, borrow) = U256::from_u64(5).sbb(&U256::from_u64(3));
        assert!(!borrow);
        assert_eq!(diff, U256::from_u64(2));
    }

    #[test]
    fn mul_wide_small() {
        let (lo, hi) = U256::from_u64(u64::MAX).mul_wide(&U256::from_u64(u64::MAX));
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1.
        assert_eq!(lo, U256([1, u64::MAX - 1, 0, 0]));
        assert_eq!(hi, U256::ZERO);
    }

    #[test]
    fn mul_wide_max() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1.
        let (lo, hi) = U256::MAX.mul_wide(&U256::MAX);
        assert_eq!(lo, U256::ONE);
        assert_eq!(hi, U256([u64::MAX - 1, u64::MAX, u64::MAX, u64::MAX]));
    }

    #[test]
    fn bit_access() {
        let v = U256::from_u64(0b1010);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(256));
        assert!(!v.bit(1000));
    }

    #[test]
    fn bit_length() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::from_u64(0x80).bits(), 8);
        assert_eq!(U256::MAX.bits(), 256);
        assert_eq!(U256([0, 1, 0, 0]).bits(), 65);
    }

    #[test]
    fn shifts() {
        let v = U256::from_hex("8000000000000000000000000000000000000000000000000000000000000001")
            .unwrap();
        assert_eq!(v.shl1(), U256::from_u64(2));
        let w = v.shr1();
        assert_eq!(
            w.to_hex(),
            "4000000000000000000000000000000000000000000000000000000000000000"
        );
    }

    #[test]
    fn modular_add_sub() {
        let m = U256::from_u64(97);
        let a = U256::from_u64(90);
        let b = U256::from_u64(20);
        assert_eq!(a.add_mod(&b, &m), U256::from_u64(13));
        assert_eq!(b.sub_mod(&a, &m), U256::from_u64(27));
        assert_eq!(a.sub_mod(&b, &m), U256::from_u64(70));
    }

    #[test]
    fn modular_add_near_overflow() {
        // m just above 2^255: adding two reduced values can overflow 256 bits.
        let m = U256::from_hex("8000000000000000000000000000000000000000000000000000000000000001")
            .unwrap();
        let a = m.sbb(&U256::ONE).0; // m - 1
        let sum = a.add_mod(&a, &m); // 2m - 2 mod m = m - 2
        assert_eq!(sum, m.sbb(&U256::from_u64(2)).0);
    }

    #[test]
    fn reduce_once_multiples() {
        let m = U256::from_u64(100);
        assert_eq!(U256::from_u64(250).reduce_once(&m), U256::from_u64(50));
        assert_eq!(U256::from_u64(99).reduce_once(&m), U256::from_u64(99));
    }

    #[test]
    fn ordering() {
        let a = U256([0, 0, 0, 1]);
        let b = U256([u64::MAX, u64::MAX, u64::MAX, 0]);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
