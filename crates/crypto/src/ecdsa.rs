//! ECDSA over P-256 with SHA-256 and deterministic nonces (RFC 6979).
//!
//! This module provides the signature scheme used everywhere in the
//! workspace: client transaction signatures, peer endorsements, orderer
//! block signatures, and certificate issuance all go through
//! [`SigningKey::sign`] / [`VerifyingKey::verify`].
//!
//! Nonces are derived deterministically from the private key and message
//! (RFC 6979), so signing never consumes external randomness and repeated
//! signatures over the same message are identical — convenient for
//! reproducible tests and immune to nonce-reuse key leakage.

use rand::RngCore;

use crate::hmac::HmacSha256;
use crate::p256::{fq, order, Point};
use crate::sha256::{digest, Digest};
use crate::u256::U256;

/// Errors produced by key parsing and signature verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The private scalar was zero or not less than the group order.
    InvalidPrivateKey,
    /// The public key bytes did not decode to a curve point.
    InvalidPublicKey,
    /// The signature components were out of range.
    InvalidSignature,
    /// The signature did not verify against the key and message.
    VerificationFailed,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::InvalidPrivateKey => write!(f, "invalid private key scalar"),
            Error::InvalidPublicKey => write!(f, "invalid public key encoding"),
            Error::InvalidSignature => write!(f, "signature components out of range"),
            Error::VerificationFailed => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for Error {}

/// An ECDSA P-256 signature `(r, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The `r` component.
    pub r: U256,
    /// The `s` component.
    pub s: U256,
}

impl Signature {
    /// Serializes as 64 bytes: `r || s`, both big-endian.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses a 64-byte `r || s` signature.
    ///
    /// Returns an error if either component is zero or not below the group
    /// order.
    pub fn from_bytes(bytes: &[u8]) -> Result<Signature, Error> {
        if bytes.len() != 64 {
            return Err(Error::InvalidSignature);
        }
        let mut rb = [0u8; 32];
        let mut sb = [0u8; 32];
        rb.copy_from_slice(&bytes[..32]);
        sb.copy_from_slice(&bytes[32..]);
        let r = U256::from_be_bytes(&rb);
        let s = U256::from_be_bytes(&sb);
        let n = order();
        if r.is_zero() || s.is_zero() || r >= n || s >= n {
            return Err(Error::InvalidSignature);
        }
        Ok(Signature { r, s })
    }
}

impl core::fmt::Debug for Signature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Signature(r=0x{}, s=0x{})", self.r.to_hex(), self.s.to_hex())
    }
}

/// A P-256 public (verifying) key.
#[derive(Clone, Copy, Debug)]
pub struct VerifyingKey {
    point: Point,
}

impl VerifyingKey {
    /// Wraps a curve point as a verifying key.
    ///
    /// Returns an error for the point at infinity.
    pub fn from_point(point: Point) -> Result<Self, Error> {
        if point.is_infinity() {
            return Err(Error::InvalidPublicKey);
        }
        Ok(VerifyingKey { point })
    }

    /// Parses a SEC1-encoded public key (compressed or uncompressed).
    pub fn from_sec1(bytes: &[u8]) -> Result<Self, Error> {
        let point = Point::from_sec1(bytes).ok_or(Error::InvalidPublicKey)?;
        Self::from_point(point)
    }

    /// Serializes in uncompressed SEC1 form (65 bytes).
    pub fn to_sec1(&self) -> [u8; 65] {
        self.point
            .to_uncompressed()
            .expect("verifying key is never infinity")
    }

    /// Serializes in compressed SEC1 form (33 bytes).
    pub fn to_sec1_compressed(&self) -> [u8; 33] {
        self.point
            .to_compressed()
            .expect("verifying key is never infinity")
    }

    /// Verifies `signature` over the raw `message` (hashed internally with
    /// SHA-256).
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), Error> {
        self.verify_prehashed(&digest(message), signature)
    }

    /// Verifies `signature` over an externally computed SHA-256 digest.
    pub fn verify_prehashed(&self, hash: &Digest, signature: &Signature) -> Result<(), Error> {
        let q = fq();
        let n = order();
        let (r, s) = (signature.r, signature.s);
        if r.is_zero() || s.is_zero() || r >= n || s >= n {
            return Err(Error::InvalidSignature);
        }
        let e = hash_to_scalar(hash);
        // w = s^-1 mod n; u1 = e*w; u2 = r*w.
        let sm = q.to_mont(&s);
        let w = q.inv(&sm);
        let em = q.to_mont(&e);
        let rm = q.to_mont(&r);
        let u1 = q.from_mont(&q.mul(&em, &w));
        let u2 = q.from_mont(&q.mul(&rm, &w));
        let point = Point::generator().double_scalar_mul(&u1, &self.point, &u2);
        let (x, _) = point.to_affine().ok_or(Error::VerificationFailed)?;
        if x.reduce_once(&n) == r {
            Ok(())
        } else {
            Err(Error::VerificationFailed)
        }
    }

    /// Returns the underlying curve point.
    pub fn point(&self) -> &Point {
        &self.point
    }
}

impl PartialEq for VerifyingKey {
    fn eq(&self, other: &Self) -> bool {
        self.point.eq_point(&other.point)
    }
}

impl Eq for VerifyingKey {}

/// A P-256 private (signing) key.
#[derive(Clone)]
pub struct SigningKey {
    d: U256,
    public: VerifyingKey,
}

impl SigningKey {
    /// Creates a signing key from a raw scalar.
    ///
    /// Returns an error if the scalar is zero or not below the group order.
    pub fn from_scalar(d: U256) -> Result<Self, Error> {
        let n = order();
        if d.is_zero() || d >= n {
            return Err(Error::InvalidPrivateKey);
        }
        let point = Point::generator().mul(&d);
        Ok(SigningKey {
            d,
            public: VerifyingKey::from_point(point)?,
        })
    }

    /// Generates a fresh random key from `rng` by rejection sampling.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        loop {
            let mut bytes = [0u8; 32];
            rng.fill_bytes(&mut bytes);
            let d = U256::from_be_bytes(&bytes);
            if let Ok(key) = Self::from_scalar(d) {
                return key;
            }
        }
    }

    /// Derives a key deterministically from a seed (for tests and
    /// reproducible network setups): the scalar is
    /// `SHA-256(seed || counter)` with rejection sampling.
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut counter: u32 = 0;
        loop {
            let mut h = crate::sha256::Sha256::new();
            h.update(seed);
            h.update(&counter.to_be_bytes());
            let d = U256::from_be_bytes(&h.finalize());
            if let Ok(key) = Self::from_scalar(d) {
                return key;
            }
            counter += 1;
        }
    }

    /// Returns the corresponding public key.
    pub fn verifying_key(&self) -> &VerifyingKey {
        &self.public
    }

    /// Returns the private scalar as 32 big-endian bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.d.to_be_bytes()
    }

    /// Signs the raw `message` (hashed internally with SHA-256).
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.sign_prehashed(&digest(message))
    }

    /// Signs an externally computed SHA-256 digest.
    pub fn sign_prehashed(&self, hash: &Digest) -> Signature {
        let q = fq();
        let n = order();
        let e = hash_to_scalar(hash);
        let mut nonce_gen = Rfc6979::new(&self.d, hash);
        loop {
            let k = nonce_gen.next_nonce();
            let point = Point::generator().mul(&k);
            let (x, _) = point.to_affine().expect("k in [1, n-1] never yields infinity");
            let r = x.reduce_once(&n);
            if r.is_zero() {
                continue;
            }
            // s = k^-1 (e + r d) mod n.
            let km = q.to_mont(&k);
            let kinv = q.inv(&km);
            let rm = q.to_mont(&r);
            let dm = q.to_mont(&self.d);
            let em = q.to_mont(&e);
            let rd = q.mul(&rm, &dm);
            let sum = q.add(&em, &rd);
            let s = q.from_mont(&q.mul(&kinv, &sum));
            if s.is_zero() {
                continue;
            }
            return Signature { r, s };
        }
    }

    /// Signs many raw messages at once (each hashed internally with
    /// SHA-256). See [`SigningKey::sign_prehashed_batch`].
    pub fn sign_batch(&self, messages: &[&[u8]]) -> Vec<Signature> {
        let hashes: Vec<Digest> = messages.iter().map(|m| digest(m)).collect();
        self.sign_prehashed_batch(&hashes)
    }

    /// Signs a batch of digests, amortizing the modular inversion.
    ///
    /// Produces signatures byte-identical to calling
    /// [`SigningKey::sign_prehashed`] per digest (nonces are the same
    /// RFC 6979 derivation), but computes all the `k^-1` values with one
    /// Fermat inversion via Montgomery's batch-inversion trick — 1
    /// inversion + 3(N-1) multiplications instead of N inversions. The
    /// per-signature point multiplication is unchanged, so the saving is
    /// the inversion share of the signing cost.
    pub fn sign_prehashed_batch(&self, hashes: &[Digest]) -> Vec<Signature> {
        let q = fq();
        let n = order();
        let dm = q.to_mont(&self.d);
        // Phase 1: per digest, derive the nonce and compute everything
        // except the inversion: k (Montgomery form), r, and
        // (e + r·d) in Montgomery form. The retry conditions mirror
        // `sign_prehashed` exactly: r == 0 retries the nonce, and
        // s == 0 ⇔ (e + r·d) == 0 (since k^-1 ≠ 0), so checking the sum
        // here is the same retry the sequential signer performs.
        let mut km = Vec::with_capacity(hashes.len());
        let mut sums = Vec::with_capacity(hashes.len());
        let mut rs = Vec::with_capacity(hashes.len());
        for hash in hashes {
            let e = hash_to_scalar(hash);
            let mut nonce_gen = Rfc6979::new(&self.d, hash);
            loop {
                let k = nonce_gen.next_nonce();
                let point = Point::generator().mul(&k);
                let (x, _) = point.to_affine().expect("k in [1, n-1] never yields infinity");
                let r = x.reduce_once(&n);
                if r.is_zero() {
                    continue;
                }
                let rm = q.to_mont(&r);
                let em = q.to_mont(&e);
                let sum = q.add(&em, &q.mul(&rm, &dm));
                if sum.is_zero() {
                    continue;
                }
                km.push(q.to_mont(&k));
                sums.push(sum);
                rs.push(r);
                break;
            }
        }
        // Phase 2: batch-invert the nonces. prefix[i] = k_0·…·k_i; one
        // inversion of the total product, then peel inverses off the back.
        let mut prefix = Vec::with_capacity(km.len());
        let mut acc = q.one();
        for k in &km {
            acc = q.mul(&acc, k);
            prefix.push(acc);
        }
        let mut inv_acc = q.inv(&acc);
        let mut kinv = vec![U256::ZERO; km.len()];
        for i in (0..km.len()).rev() {
            if i == 0 {
                kinv[0] = inv_acc;
            } else {
                kinv[i] = q.mul(&inv_acc, &prefix[i - 1]);
                inv_acc = q.mul(&inv_acc, &km[i]);
            }
        }
        // Phase 3: s_i = k_i^-1 (e_i + r_i·d).
        (0..km.len())
            .map(|i| Signature {
                r: rs[i],
                s: q.from_mont(&q.mul(&kinv[i], &sums[i])),
            })
            .collect()
    }
}

impl core::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print the private scalar.
        write!(f, "SigningKey({:?})", self.public)
    }
}

/// Converts a 32-byte hash to a scalar modulo `n` (FIPS 186-4 style
/// truncation followed by modular reduction).
fn hash_to_scalar(hash: &Digest) -> U256 {
    U256::from_be_bytes(hash).reduce_once(&order())
}

/// RFC 6979 deterministic nonce generator (HMAC-SHA256 based).
struct Rfc6979 {
    k: Digest,
    v: Digest,
}

impl Rfc6979 {
    fn new(private_scalar: &U256, hash: &Digest) -> Self {
        let x_bytes = private_scalar.to_be_bytes();
        // bits2octets: reduce the hash modulo n, then serialize.
        let h_reduced = U256::from_be_bytes(hash).reduce_once(&order()).to_be_bytes();
        let mut k = [0u8; 32];
        let v = [0x01u8; 32];
        // K = HMAC_K(V || 0x00 || x || h).
        let mut mac = HmacSha256::new(&k);
        mac.update(&v);
        mac.update(&[0x00]);
        mac.update(&x_bytes);
        mac.update(&h_reduced);
        k = mac.finalize();
        // V = HMAC_K(V).
        let mut v = crate::hmac::hmac(&k, &v);
        // K = HMAC_K(V || 0x01 || x || h).
        let mut mac = HmacSha256::new(&k);
        mac.update(&v);
        mac.update(&[0x01]);
        mac.update(&x_bytes);
        mac.update(&h_reduced);
        k = mac.finalize();
        // V = HMAC_K(V).
        v = crate::hmac::hmac(&k, &v);
        Rfc6979 { k, v }
    }

    /// Produces the next candidate nonce in `[1, n-1]`.
    fn next_nonce(&mut self) -> U256 {
        let n = order();
        loop {
            self.v = crate::hmac::hmac(&self.k, &self.v);
            let candidate = U256::from_be_bytes(&self.v);
            if !candidate.is_zero() && candidate < n {
                return candidate;
            }
            let mut mac = HmacSha256::new(&self.k);
            mac.update(&self.v);
            mac.update(&[0x00]);
            self.k = mac.finalize();
            self.v = crate::hmac::hmac(&self.k, &self.v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sign_verify_round_trip() {
        let key = SigningKey::from_seed(b"test-key-1");
        let sig = key.sign(b"hello fabric");
        key.verifying_key().verify(b"hello fabric", &sig).unwrap();
    }

    #[test]
    fn batch_signing_matches_sequential() {
        let key = SigningKey::from_seed(b"batch-key");
        let messages: Vec<Vec<u8>> = (0..17u32)
            .map(|i| format!("payload-{i}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = messages.iter().map(|m| m.as_slice()).collect();
        let batch = key.sign_batch(&refs);
        assert_eq!(batch.len(), messages.len());
        for (message, sig) in messages.iter().zip(&batch) {
            // Byte-identical to the one-at-a-time signer (RFC 6979 nonces
            // are deterministic) and verifiable.
            assert_eq!(sig.to_bytes(), key.sign(message).to_bytes());
            key.verifying_key().verify(message, sig).unwrap();
        }
    }

    #[test]
    fn batch_signing_empty_and_single() {
        let key = SigningKey::from_seed(b"batch-key-2");
        assert!(key.sign_batch(&[]).is_empty());
        let batch = key.sign_batch(&[b"only".as_slice()]);
        assert_eq!(batch[0].to_bytes(), key.sign(b"only").to_bytes());
    }

    #[test]
    fn rfc6979_p256_sha256_sample_vector() {
        // RFC 6979 A.2.5: P-256, SHA-256, message "sample".
        let d = U256::from_hex("c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721")
            .unwrap();
        let key = SigningKey::from_scalar(d).unwrap();
        let sig = key.sign(b"sample");
        assert_eq!(
            sig.r.to_hex(),
            "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716"
        );
        assert_eq!(
            sig.s.to_hex(),
            "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8"
        );
        key.verifying_key().verify(b"sample", &sig).unwrap();
    }

    #[test]
    fn rfc6979_p256_sha256_test_vector() {
        // RFC 6979 A.2.5: P-256, SHA-256, message "test".
        let d = U256::from_hex("c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721")
            .unwrap();
        let key = SigningKey::from_scalar(d).unwrap();
        let sig = key.sign(b"test");
        assert_eq!(
            sig.r.to_hex(),
            "f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367"
        );
        assert_eq!(
            sig.s.to_hex(),
            "019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083"
        );
    }

    #[test]
    fn rfc6979_public_key_vector() {
        // RFC 6979 A.2.5 also lists the public key for the test scalar.
        let d = U256::from_hex("c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721")
            .unwrap();
        let key = SigningKey::from_scalar(d).unwrap();
        let sec1 = key.verifying_key().to_sec1();
        let x: String = sec1[1..33].iter().map(|b| format!("{b:02x}")).collect();
        let y: String = sec1[33..].iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(x, "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6");
        assert_eq!(y, "7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299");
    }

    #[test]
    fn deterministic_signatures() {
        let key = SigningKey::from_seed(b"det");
        assert_eq!(key.sign(b"m").to_bytes(), key.sign(b"m").to_bytes());
        assert_ne!(key.sign(b"m").to_bytes(), key.sign(b"m2").to_bytes());
    }

    #[test]
    fn wrong_message_rejected() {
        let key = SigningKey::from_seed(b"k");
        let sig = key.sign(b"message");
        assert_eq!(
            key.verifying_key().verify(b"other", &sig),
            Err(Error::VerificationFailed)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let k1 = SigningKey::from_seed(b"k1");
        let k2 = SigningKey::from_seed(b"k2");
        let sig = k1.sign(b"msg");
        assert_eq!(
            k2.verifying_key().verify(b"msg", &sig),
            Err(Error::VerificationFailed)
        );
    }

    #[test]
    fn corrupted_signature_rejected() {
        let key = SigningKey::from_seed(b"k");
        let sig = key.sign(b"msg");
        let mut bytes = sig.to_bytes();
        bytes[5] ^= 0x40;
        match Signature::from_bytes(&bytes) {
            // Either the parse fails (out of range) or verification fails.
            Ok(bad) => assert!(key.verifying_key().verify(b"msg", &bad).is_err()),
            Err(e) => assert_eq!(e, Error::InvalidSignature),
        }
    }

    #[test]
    fn signature_encoding_round_trip() {
        let key = SigningKey::from_seed(b"enc");
        let sig = key.sign(b"data");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
    }

    #[test]
    fn zero_signature_rejected() {
        assert!(Signature::from_bytes(&[0u8; 64]).is_err());
        assert!(Signature::from_bytes(&[0u8; 63]).is_err());
        assert!(Signature::from_bytes(&[0xffu8; 64]).is_err());
    }

    #[test]
    fn invalid_private_scalars_rejected() {
        assert!(SigningKey::from_scalar(U256::ZERO).is_err());
        assert!(SigningKey::from_scalar(order()).is_err());
        assert!(SigningKey::from_scalar(U256::MAX).is_err());
        assert!(SigningKey::from_scalar(U256::ONE).is_ok());
    }

    #[test]
    fn generated_keys_work() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..4 {
            let key = SigningKey::generate(&mut rng);
            let sig = key.sign(b"random key test");
            key.verifying_key().verify(b"random key test", &sig).unwrap();
        }
    }

    #[test]
    fn public_key_sec1_round_trip() {
        let key = SigningKey::from_seed(b"sec1");
        let vk = key.verifying_key();
        let parsed = VerifyingKey::from_sec1(&vk.to_sec1()).unwrap();
        assert_eq!(&parsed, vk);
        let parsed_c = VerifyingKey::from_sec1(&vk.to_sec1_compressed()).unwrap();
        assert_eq!(&parsed_c, vk);
    }

    #[test]
    fn prehashed_matches_raw() {
        let key = SigningKey::from_seed(b"pre");
        let h = digest(b"payload");
        let sig = key.sign_prehashed(&h);
        assert_eq!(sig, key.sign(b"payload"));
        key.verifying_key().verify_prehashed(&h, &sig).unwrap();
    }
}
