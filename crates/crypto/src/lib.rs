//! # fabric-crypto
//!
//! From-scratch cryptographic substrate for the `fabric-rs` workspace, the
//! Rust reproduction of *Hyperledger Fabric: A Distributed Operating System
//! for Permissioned Blockchains* (EuroSys 2018).
//!
//! The paper's deployment signs every client transaction, endorsement, and
//! orderer block with 256-bit ECDSA (Sec. 5.2: "signatures use the default
//! 256-bit ECDSA scheme"), and signature verification dominates the
//! validation phase CPU profile (Fig. 7). To reproduce that cost profile
//! without external dependencies this crate implements the full stack:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4), the workspace-wide hash.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104).
//! * [`u256`] — fixed-width 256-bit integer arithmetic.
//! * [`field`] — Montgomery modular arithmetic over 256-bit odd moduli.
//! * [`p256`] — the NIST P-256 group (Jacobian coordinates).
//! * [`ecdsa`] — ECDSA signing/verification with RFC 6979 nonces.
//! * [`merkle`] — domain-separated binary Merkle trees for block commitments.
//!
//! ## Security note
//!
//! This implementation targets *functional and performance-profile* fidelity
//! for a systems-research reproduction. Field and scalar arithmetic are not
//! constant-time, so the signing path is not hardened against local timing
//! side channels. Do not use this crate to protect real assets.

pub mod ecdsa;
pub mod field;
pub mod hmac;
pub mod merkle;
pub mod p256;
pub mod sha256;
pub mod u256;

pub use ecdsa::{Error as EcdsaError, Signature, SigningKey, VerifyingKey};
pub use sha256::{digest, Digest};
pub use u256::U256;

/// Renders a digest (or any byte slice) as lowercase hex.
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Parses a lowercase/uppercase hex string into bytes.
///
/// Returns `None` on odd length or non-hex characters.
pub fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for i in (0..s.len()).step_by(2) {
        let hi = (bytes[i] as char).to_digit(16)?;
        let lo = (bytes[i + 1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let data = [0x00u8, 0x01, 0xab, 0xff];
        assert_eq!(hex(&data), "0001abff");
        assert_eq!(unhex("0001abff").unwrap(), data);
        assert_eq!(unhex("0001ABFF").unwrap(), data);
    }

    #[test]
    fn unhex_rejects_bad_input() {
        assert!(unhex("abc").is_none());
        assert!(unhex("zz").is_none());
        assert_eq!(unhex("").unwrap(), Vec::<u8>::new());
    }
}
