//! Generic modular arithmetic over 256-bit odd moduli using Montgomery
//! multiplication.
//!
//! A [`Modulus`] precomputes the Montgomery constants for a fixed odd prime
//! (or any odd modulus) and then offers multiplication, squaring,
//! exponentiation, and Fermat inversion on values kept in *Montgomery form*
//! (`aR mod m` with `R = 2^256`). The P-256 field and scalar arithmetic in
//! [`crate::p256`] are thin wrappers over two `Modulus` instances.
//!
//! The implementation uses the CIOS (coarsely integrated operand scanning)
//! algorithm with 64-bit limbs and 128-bit intermediates. It is not
//! constant-time; see the crate-level security note.

use crate::u256::U256;

/// A fixed odd 256-bit modulus with precomputed Montgomery constants.
#[derive(Clone, Debug)]
pub struct Modulus {
    /// The modulus `m` itself.
    pub m: U256,
    /// `-m^{-1} mod 2^64`, the Montgomery reduction constant.
    n0: u64,
    /// `R mod m` where `R = 2^256` (the Montgomery form of 1).
    r1: U256,
    /// `R^2 mod m`, used to convert into Montgomery form.
    r2: U256,
}

impl Modulus {
    /// Creates a modulus context.
    ///
    /// # Panics
    ///
    /// Panics if `m` is even or zero, since Montgomery reduction requires an
    /// odd modulus.
    pub fn new(m: U256) -> Self {
        assert!(m.is_odd(), "Montgomery modulus must be odd");
        let n0 = Self::neg_inv_u64(m.0[0]);
        // R mod m for R = 2^256, via 256 modular doublings of 1. This costs
        // a few hundred adds once per modulus and works for any m, including
        // small ones where repeated subtraction would be intractable.
        let mut r1 = U256::ONE.reduce_once(&m);
        for _ in 0..256 {
            r1 = r1.add_mod(&r1, &m);
        }
        // R^2 mod m by 256 modular doublings of R mod m.
        let mut r2 = r1;
        for _ in 0..256 {
            r2 = r2.add_mod(&r2, &m);
        }
        Modulus { m, n0, r1, r2 }
    }

    /// Computes `-a^{-1} mod 2^64` for odd `a` by Newton iteration.
    fn neg_inv_u64(a: u64) -> u64 {
        debug_assert!(a & 1 == 1);
        let mut x: u64 = 1;
        // Five iterations double the number of correct low bits: 1 -> 64.
        for _ in 0..6 {
            x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
        }
        x.wrapping_neg()
    }

    /// Returns the Montgomery form of 1 (`R mod m`).
    pub fn one(&self) -> U256 {
        self.r1
    }

    /// Converts a reduced integer into Montgomery form.
    pub fn to_mont(&self, a: &U256) -> U256 {
        self.mul(a, &self.r2)
    }

    /// Converts a Montgomery-form value back to a plain integer.
    pub fn from_mont(&self, a: &U256) -> U256 {
        self.mul(a, &U256::ONE)
    }

    /// Montgomery multiplication: returns `a * b * R^{-1} mod m`.
    ///
    /// Both inputs must be less than `m` (in Montgomery form when used via
    /// [`Self::to_mont`]).
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        // CIOS with 4 limbs; t holds 4 limbs plus two carry slots.
        let mut t = [0u64; 6];
        for i in 0..4 {
            // t += a * b[i]
            let bi = b.0[i] as u128;
            let mut carry: u128 = 0;
            for (tj, aj) in t.iter_mut().zip(&a.0) {
                let acc = *tj as u128 + *aj as u128 * bi + carry;
                *tj = acc as u64;
                carry = acc >> 64;
            }
            let acc = t[4] as u128 + carry;
            t[4] = acc as u64;
            t[5] = (acc >> 64) as u64;

            // Reduce: add mm * m where mm makes the low limb vanish.
            let mm = (t[0].wrapping_mul(self.n0)) as u128;
            let acc = t[0] as u128 + mm * self.m.0[0] as u128;
            let mut carry = acc >> 64;
            for j in 1..4 {
                let acc = t[j] as u128 + mm * self.m.0[j] as u128 + carry;
                t[j - 1] = acc as u64;
                carry = acc >> 64;
            }
            let acc = t[4] as u128 + carry;
            t[3] = acc as u64;
            t[4] = t[5].wrapping_add((acc >> 64) as u64);
            t[5] = 0;
        }
        let mut r = U256([t[0], t[1], t[2], t[3]]);
        if t[4] != 0 || r >= self.m {
            r = r.sbb(&self.m).0;
        }
        r
    }

    /// Montgomery squaring (delegates to [`Self::mul`]).
    pub fn sqr(&self, a: &U256) -> U256 {
        self.mul(a, a)
    }

    /// Modular addition of two reduced values.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        a.add_mod(b, &self.m)
    }

    /// Modular subtraction of two reduced values.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        a.sub_mod(b, &self.m)
    }

    /// Modular negation of a reduced value.
    pub fn neg(&self, a: &U256) -> U256 {
        if a.is_zero() {
            U256::ZERO
        } else {
            self.m.sbb(a).0
        }
    }

    /// Modular exponentiation of a Montgomery-form base by a plain exponent.
    ///
    /// Returns the result in Montgomery form.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        let mut acc = self.one();
        let bits = exp.bits();
        for i in (0..bits).rev() {
            acc = self.sqr(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Modular inverse of a Montgomery-form value via Fermat's little
    /// theorem (`a^{m-2}`); requires `m` prime and `a` nonzero.
    ///
    /// Returns the inverse in Montgomery form.
    pub fn inv(&self, a: &U256) -> U256 {
        let exp = self.m.sbb(&U256::from_u64(2)).0;
        self.pow(a, &exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_prime() -> Modulus {
        // 2^61 - 1 is prime (a Mersenne prime) and fits in one limb.
        Modulus::new(U256::from_u64((1u64 << 61) - 1))
    }

    fn p256_prime() -> Modulus {
        Modulus::new(
            U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
                .unwrap(),
        )
    }

    #[test]
    fn mont_round_trip_small() {
        let m = small_prime();
        for v in [0u64, 1, 2, 12345, (1 << 61) - 2] {
            let x = U256::from_u64(v);
            assert_eq!(m.from_mont(&m.to_mont(&x)), x, "v = {v}");
        }
    }

    #[test]
    fn mont_round_trip_p256() {
        let m = p256_prime();
        let x = U256::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296")
            .unwrap();
        assert_eq!(m.from_mont(&m.to_mont(&x)), x);
    }

    #[test]
    fn multiplication_matches_schoolbook() {
        let m = small_prime();
        let p = (1u64 << 61) - 1;
        for (a, b) in [(3u64, 5u64), (p - 1, p - 1), (123456789, 987654321)] {
            let am = m.to_mont(&U256::from_u64(a));
            let bm = m.to_mont(&U256::from_u64(b));
            let prod = m.from_mont(&m.mul(&am, &bm));
            let expected = ((a as u128 * b as u128) % p as u128) as u64;
            assert_eq!(prod, U256::from_u64(expected), "{a} * {b}");
        }
    }

    #[test]
    fn one_is_identity() {
        let m = p256_prime();
        let x = m.to_mont(&U256::from_u64(42));
        assert_eq!(m.mul(&x, &m.one()), x);
    }

    #[test]
    fn inverse_small() {
        let m = small_prime();
        let a = m.to_mont(&U256::from_u64(7));
        let inv = m.inv(&a);
        assert_eq!(m.from_mont(&m.mul(&a, &inv)), U256::ONE);
    }

    #[test]
    fn inverse_p256() {
        let m = p256_prime();
        let a = m.to_mont(
            &U256::from_hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b")
                .unwrap(),
        );
        let inv = m.inv(&a);
        assert_eq!(m.from_mont(&m.mul(&a, &inv)), U256::ONE);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let m = small_prime();
        let a = m.to_mont(&U256::from_u64(3));
        let cube = m.pow(&a, &U256::from_u64(3));
        let manual = m.mul(&m.mul(&a, &a), &a);
        assert_eq!(cube, manual);
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        let m = p256_prime();
        let a = m.to_mont(&U256::from_u64(99));
        assert_eq!(m.pow(&a, &U256::ZERO), m.one());
    }

    #[test]
    fn negation() {
        let m = small_prime();
        let a = U256::from_u64(10);
        let na = m.neg(&a);
        assert_eq!(m.add(&a, &na), U256::ZERO);
        assert_eq!(m.neg(&U256::ZERO), U256::ZERO);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        Modulus::new(U256::from_u64(100));
    }

    #[test]
    fn fermat_little_theorem_p256() {
        // a^(p-1) == 1 for the P-256 prime: a strong self-check of the whole
        // Montgomery pipeline on a full-width modulus.
        let m = p256_prime();
        let a = m.to_mont(&U256::from_u64(0xdeadbeef));
        let exp = m.m.sbb(&U256::ONE).0;
        assert_eq!(m.pow(&a, &exp), m.one());
    }
}
