//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the RFC 6979 deterministic-nonce generator and available for
//! message authentication in transport layers.

use crate::sha256::{digest, Digest, Sha256};

const BLOCK_LEN: usize = 64;

/// Incremental HMAC-SHA256 computation.
///
/// # Examples
///
/// ```
/// use fabric_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert_eq!(tag, fabric_crypto::hmac::hmac(b"key", b"message"));
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = digest(key);
            block_key[..d.len()].copy_from_slice(&d);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Feeds message data into the MAC.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Consumes the MAC and returns the 32-byte tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256 of `data` under `key`.
pub fn hmac(key: &[u8], data: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

/// Constant-time equality comparison for MAC tags.
///
/// Returns `true` iff `a == b`, without early exit on the first differing
/// byte.
pub fn verify_tag(a: &Digest, b: &Digest) -> bool {
    let mut acc = 0u8;
    for i in 0..a.len() {
        acc |= a[i] ^ b[i];
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case1() {
        // Key = 0x0b * 20, Data = "Hi There".
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // Keys longer than the block size are first hashed (RFC 4231 case 6).
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac(&key, b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut mac = HmacSha256::new(b"secret");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac(b"secret", b"hello world"));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac(b"k1", b"m"), hmac(b"k2", b"m"));
    }

    #[test]
    fn tag_verification() {
        let t1 = hmac(b"k", b"m");
        let mut t2 = t1;
        assert!(verify_tag(&t1, &t2));
        t2[31] ^= 1;
        assert!(!verify_tag(&t1, &t2));
    }
}
