//! The endorser: the execution phase of execute-order-validate (paper
//! Sec. 3.2).
//!
//! An endorsing peer receives a signed proposal, authenticates the client,
//! *simulates* the chaincode against a stable snapshot of its local state
//! (no coordination with other peers, no persistence of results), and
//! signs the resulting read-write set + response — the endorsement. Two
//! endorsers simulating against different states may produce different
//! rw-sets; the client detects that when collecting endorsements, and the
//! version checks at validation time catch whatever slips through.

use std::sync::Arc;

use parking_lot::RwLock;

use fabric_chaincode::{default_escc, ChaincodeRuntime, Invocation};
use fabric_ledger::Ledger;
use fabric_msp::SigningIdentity;
use fabric_primitives::transaction::{
    ProposalResponse, ProposalResponsePayload, SignedProposal,
};
use fabric_primitives::wire::Wire;

use crate::view::ChannelView;
use crate::PeerError;

/// The endorsement component of a peer.
pub struct Endorser {
    identity: SigningIdentity,
    runtime: Arc<ChaincodeRuntime>,
    view: Arc<RwLock<ChannelView>>,
}

impl Endorser {
    /// Creates an endorser signing with `identity`.
    pub fn new(
        identity: SigningIdentity,
        runtime: Arc<ChaincodeRuntime>,
        view: Arc<RwLock<ChannelView>>,
    ) -> Self {
        Endorser {
            identity,
            runtime,
            view,
        }
    }

    /// The signing identity endorsements are issued under (the pipeline's
    /// signer stage batches over it).
    pub(crate) fn identity(&self) -> &SigningIdentity {
        &self.identity
    }

    /// The execute phase without the signature: authenticate the client,
    /// simulate the chaincode against a snapshot, and assemble the
    /// response payload. Results are NOT persisted (the ledger only
    /// changes in the validation phase).
    ///
    /// This is the parallelizable part of endorsement — the
    /// [`crate::EndorsePipeline`] runs it on its simulation workers and
    /// defers the ESCC signature to a batching signer stage.
    pub fn simulate(
        &self,
        ledger: &Ledger,
        signed: &SignedProposal,
    ) -> Result<ProposalResponsePayload, PeerError> {
        let proposal = &signed.proposal;
        // Authenticate the client and its signature over the proposal.
        let validated = {
            let view = self.view.read();
            view.msp
                .validate_and_verify(
                    &proposal.creator,
                    &proposal.to_wire(),
                    &signed.signature,
                )
                .map_err(PeerError::Identity)?
        };
        let tx_id = proposal.tx_id();
        let invocation = Invocation {
            function: proposal.payload.function.clone(),
            args: proposal.payload.args.clone(),
            creator: proposal.creator.clone(),
            creator_msp: validated.msp_id().to_string(),
            creator_role: validated.role().as_str().to_string(),
            tx_id,
            channel: proposal.channel.clone(),
        };
        let result = self
            .runtime
            .execute(ledger, &proposal.payload.chaincode.name, invocation)
            .map_err(PeerError::Chaincode)?;
        if !result.response.is_ok() {
            return Err(PeerError::ChaincodeRejected(result.response.message));
        }
        Ok(ProposalResponsePayload {
            tx_id,
            chaincode: proposal.payload.chaincode.clone(),
            rwset: result.rwset,
            response: result.response,
        })
    }

    /// Processes a signed proposal: authenticate, simulate, endorse.
    pub fn process_proposal(
        &self,
        ledger: &Ledger,
        signed: &SignedProposal,
    ) -> Result<ProposalResponse, PeerError> {
        let payload = self.simulate(ledger, signed)?;
        // Default ESCC: sign the payload bound to our identity.
        let endorsement = default_escc(&self.identity, &payload);
        Ok(ProposalResponse {
            payload,
            endorsement,
        })
    }
}
