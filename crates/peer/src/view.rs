//! The peer's view of a channel's configuration.

use fabric_msp::MspRegistry;
use fabric_primitives::config::ChannelConfig;

use crate::PeerError;

/// Materialized channel configuration: the raw config plus the MSP
/// federation and org list derived from it. Rebuilt whenever a config
/// block commits.
pub struct ChannelView {
    /// The current channel configuration.
    pub config: ChannelConfig,
    /// MSP federation over the member orgs.
    pub msp: MspRegistry,
    /// Member MSP ids (policy evaluation domain).
    pub orgs: Vec<String>,
}

impl ChannelView {
    /// Builds a view from a configuration.
    pub fn new(config: ChannelConfig) -> Result<Self, PeerError> {
        let msp = MspRegistry::from_channel_config(&config).map_err(PeerError::Identity)?;
        let orgs = config.orgs.iter().map(|o| o.msp_id.clone()).collect();
        Ok(ChannelView { config, msp, orgs })
    }
}
