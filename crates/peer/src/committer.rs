//! The committer: the validation phase of execute-order-validate (paper
//! Sec. 3.4).
//!
//! A delivered block passes through three sequential stages:
//!
//! 1. **VSCC** — endorsement-policy evaluation, *in parallel across the
//!    transactions of the block* ("embarrassingly parallel", Sec. 5.2);
//!    the worker-pool width is the experiment knob behind Fig. 7.
//! 2. **Read-write check** — sequential MVCC version validation against
//!    the current state plus preceding in-block writes (one-copy
//!    serializability, incl. phantom detection for range queries).
//! 3. **Ledger update** — append the block (with the validity mask in its
//!    metadata) to the block store and apply the writesets of valid
//!    transactions; the savepoint makes this crash-recoverable.
//!
//! The committer reports per-stage wall-clock durations, which the
//! benchmark harness uses to regenerate Table 1 and Fig. 7.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use fabric_chaincode::{DefaultVscc, Vscc, LSCC_NAMESPACE};
use fabric_ledger::Ledger;
use fabric_primitives::block::Block;
use fabric_primitives::ids::TxValidationCode;
use fabric_primitives::transaction::{Envelope, EnvelopeContent};
use fabric_primitives::wire::Wire;

use crate::view::ChannelView;
use crate::PeerError;

/// Endorsement policy enforced for lifecycle (LSCC) transactions: any
/// member peer may endorse; the admin check happens inside the LSCC
/// chaincode during simulation.
const LSCC_POLICY: &str = "ANY(members)";

/// Per-stage validation latencies (Table 1 / Fig. 7 staging).
#[derive(Clone, Copy, Debug, Default)]
pub struct ValidationTiming {
    /// Stage 1: parallel VSCC evaluation.
    pub vscc: Duration,
    /// Stage 2: sequential read-write conflict check.
    pub rw_check: Duration,
    /// Stage 3: ledger append + state update.
    pub ledger: Duration,
}

impl ValidationTiming {
    /// Total validation time (sum of the three stages).
    pub fn total(&self) -> Duration {
        self.vscc + self.rw_check + self.ledger
    }
}

/// The validation/commit component of a peer.
///
/// Cloning is cheap and shares the channel view and VSCC registry — the
/// cross-block pipeline (see [`crate::pipeline`]) hands clones to its
/// worker threads.
#[derive(Clone)]
pub struct Committer {
    view: Arc<RwLock<ChannelView>>,
    /// Custom VSCCs by chaincode name (e.g. Fabcoin's, paper Sec. 5.1).
    custom_vsccs: Arc<RwLock<HashMap<String, Arc<dyn Vscc>>>>,
    /// VSCC worker-pool width (the "vCPUs" knob of Fig. 7).
    vscc_parallelism: usize,
}

impl Committer {
    /// Creates a committer with the given VSCC parallelism.
    pub fn new(view: Arc<RwLock<ChannelView>>, vscc_parallelism: usize) -> Self {
        Committer {
            view,
            custom_vsccs: Arc::new(RwLock::new(HashMap::new())),
            vscc_parallelism: vscc_parallelism.max(1),
        }
    }

    /// Registers a custom VSCC for a chaincode (statically configured, as
    /// the paper requires — untrusted applications cannot change it).
    pub fn register_vscc(&self, chaincode: impl Into<String>, vscc: Arc<dyn Vscc>) {
        self.custom_vsccs.write().insert(chaincode.into(), vscc);
    }

    /// Changes the VSCC worker-pool width.
    pub fn set_vscc_parallelism(&mut self, n: usize) {
        self.vscc_parallelism = n.max(1);
    }

    /// The configured VSCC worker-pool width.
    pub fn vscc_parallelism(&self) -> usize {
        self.vscc_parallelism
    }

    /// Whether a custom VSCC is registered for the chaincode — such VSCCs
    /// may read committed state, which the pipeline must order around.
    pub(crate) fn has_custom_vscc(&self, chaincode: &str) -> bool {
        self.custom_vsccs.read().contains_key(chaincode)
    }

    /// The shared channel view (the pipeline updates it on config commits).
    pub(crate) fn view(&self) -> &Arc<RwLock<ChannelView>> {
        &self.view
    }

    /// Verifies the block's integrity before validation: payload
    /// commitment and (when present) an ordering-service signature.
    pub fn verify_block(&self, block: &Block) -> Result<(), PeerError> {
        if !block.verify_data_hash() {
            return Err(PeerError::BadBlock("data hash mismatch".into()));
        }
        let view = self.view.read();
        if let Some(sig) = block.metadata.signatures.first() {
            view.msp
                .validate_and_verify(&sig.signer, &block.hash(), &sig.signature)
                .map_err(PeerError::Identity)?;
        }
        Ok(())
    }

    /// Runs the full validation pipeline and commits the block.
    ///
    /// Returns the per-transaction validity mask and per-stage timings.
    pub fn validate_and_commit(
        &self,
        ledger: &Ledger,
        block: &Block,
    ) -> Result<(Vec<TxValidationCode>, ValidationTiming), PeerError> {
        let mut timing = ValidationTiming::default();

        // Stage 1: VSCC, parallel across transactions.
        let start = Instant::now();
        let mut flags = self.vscc_stage(ledger, block);
        timing.vscc = start.elapsed();

        // Stage 2: sequential read-write conflict check.
        let start = Instant::now();
        ledger
            .mvcc_validate(block, &mut flags)
            .map_err(PeerError::Ledger)?;
        timing.rw_check = start.elapsed();

        // Stage 3: ledger update (block + state + savepoint).
        let start = Instant::now();
        let mut committed = block.clone();
        committed.metadata.validation = flags.clone();
        ledger.commit(&committed).map_err(PeerError::Ledger)?;
        timing.ledger = start.elapsed();

        Ok((flags, timing))
    }

    /// Stage 1: evaluate each transaction's endorsements in parallel.
    fn vscc_stage(&self, ledger: &Ledger, block: &Block) -> Vec<TxValidationCode> {
        let n = block.envelopes.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.vscc_parallelism.min(n);
        if workers <= 1 {
            return block
                .envelopes
                .iter()
                .map(|env| self.validate_envelope(ledger, env))
                .collect();
        }
        let mut flags = vec![TxValidationCode::NotValidated; n];
        let chunk = n.div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            for (envs, out) in block
                .envelopes
                .chunks(chunk)
                .zip(flags.chunks_mut(chunk))
            {
                scope.spawn(move |_| {
                    for (env, flag) in envs.iter().zip(out.iter_mut()) {
                        *flag = self.validate_envelope(ledger, env);
                    }
                });
            }
        })
        .expect("vscc worker panicked");
        flags
    }

    /// Validates one envelope: creator signature, then the chaincode's
    /// VSCC (custom or default-with-committed-policy).
    pub(crate) fn validate_envelope(&self, ledger: &Ledger, envelope: &Envelope) -> TxValidationCode {
        let view = self.view.read();
        match &envelope.content {
            EnvelopeContent::Config(update) => {
                // Peers re-validate config updates against their current
                // config (paper Sec. 4.6).
                if update.config.sequence != view.config.sequence + 1 {
                    return TxValidationCode::InvalidConfig;
                }
                let config_bytes = update.config.to_wire();
                let mut signers = Vec::new();
                for sig in &update.signatures {
                    match view
                        .msp
                        .validate_and_verify(&sig.signer, &config_bytes, &sig.signature)
                    {
                        Ok(identity) => signers.push(fabric_policy::Signer {
                            msp_id: identity.msp_id().to_string(),
                            role: identity.role().as_str().to_string(),
                        }),
                        Err(_) => return TxValidationCode::BadSignature,
                    }
                }
                let admin_policy = match fabric_policy::PolicyExpr::parse(
                    &view.config.admin_policy,
                ) {
                    Ok(p) => p,
                    Err(_) => return TxValidationCode::InvalidConfig,
                };
                match admin_policy.evaluate(&view.orgs, &signers) {
                    Ok(true) => TxValidationCode::Valid,
                    _ => TxValidationCode::InvalidConfig,
                }
            }
            EnvelopeContent::Transaction(tx) => {
                // Creator signature over the envelope content.
                let signing_bytes = Envelope::signing_bytes(&envelope.content);
                if view
                    .msp
                    .validate_and_verify(&tx.creator, &signing_bytes, &envelope.signature)
                    .is_err()
                {
                    return TxValidationCode::BadSignature;
                }
                // The derived tx id must match the endorsed payload.
                if tx.tx_id() != tx.response_payload.tx_id {
                    return TxValidationCode::BadPayload;
                }
                let cc_name = &tx.response_payload.chaincode.name;
                // Custom VSCC takes precedence (static configuration).
                if let Some(vscc) = self.custom_vsccs.read().get(cc_name) {
                    return vscc.validate(tx, &view.msp, &view.orgs, ledger);
                }
                // Default VSCC with the policy committed via LSCC.
                let policy_text = if cc_name == LSCC_NAMESPACE {
                    LSCC_POLICY.to_string()
                } else {
                    match fabric_chaincode::get_definition(ledger, cc_name) {
                        Ok(Some(def)) => def.endorsement_policy,
                        // Invoking an undeployed chaincode is invalid.
                        Ok(None) => return TxValidationCode::BadPayload,
                        Err(_) => return TxValidationCode::BadPayload,
                    }
                };
                match DefaultVscc::from_text(&policy_text) {
                    Ok(vscc) => vscc.validate(tx, &view.msp, &view.orgs, ledger),
                    Err(_) => TxValidationCode::EndorsementPolicyFailure,
                }
            }
        }
    }
}
