//! # fabric-peer
//!
//! The peer node (paper Fig. 5): the **endorser** (execution phase,
//! Sec. 3.2), the **committer** (three-stage validation phase, Sec. 3.4),
//! the peer's channel-configuration view, and the QSCC/CSCC-style query
//! surface. Peers maintain the ledger; they never talk to each other about
//! application state except through ordered blocks.

pub mod committer;
pub mod endorse_pipeline;
pub mod endorser;
pub mod intake;
pub mod peer;
pub mod pipeline;
pub mod view;

pub use committer::{Committer, ValidationTiming};
pub use endorse_pipeline::{
    EndorseOptions, EndorsePipeline, EndorseReject, EndorseStats, EndorseTicket,
};
pub use endorser::Endorser;
pub use intake::{Deliver, DeliverMux, MuxGauges};
pub use peer::{Peer, PeerConfig};
pub use pipeline::{
    CommitEvent, DependencyMode, PipelineHandle, PipelineManager, PipelineOptions, PipelineStats,
    QueueGauges, SchedulerPolicy, StageHistogram, StageSummary,
};
pub use view::ChannelView;

/// Errors surfaced by peer operations.
#[derive(Debug)]
pub enum PeerError {
    /// Identity/signature validation failed.
    Identity(fabric_msp::CertError),
    /// Chaincode execution plumbing failed (timeout, not installed, …).
    Chaincode(fabric_chaincode::ChaincodeError),
    /// The chaincode rejected the proposal (business error).
    ChaincodeRejected(String),
    /// Ledger failure.
    Ledger(fabric_ledger::LedgerError),
    /// A received block failed integrity or sequencing checks.
    BadBlock(String),
    /// Snapshot production or install failed.
    Snapshot(fabric_statesync::SyncError),
}

impl core::fmt::Display for PeerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PeerError::Identity(e) => write!(f, "identity rejected: {e}"),
            PeerError::Chaincode(e) => write!(f, "chaincode execution failed: {e}"),
            PeerError::ChaincodeRejected(msg) => write!(f, "chaincode rejected proposal: {msg}"),
            PeerError::Ledger(e) => write!(f, "ledger error: {e}"),
            PeerError::BadBlock(msg) => write!(f, "bad block: {msg}"),
            PeerError::Snapshot(e) => write!(f, "state snapshot failed: {e}"),
        }
    }
}

impl std::error::Error for PeerError {}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::Arc;

    use fabric_chaincode::{ChaincodeDefinition, Stub, LSCC_NAMESPACE};
    use fabric_kvstore::MemBackend;
    use fabric_msp::{CertificateAuthority, Role, SigningIdentity};
    use fabric_primitives::block::Block;
    use fabric_primitives::config::{
        BatchConfig, ChannelConfig, ConfigUpdate, ConsensusType, OrdererConfig, OrgConfig,
    };
    use fabric_primitives::ids::{ChaincodeId, ChannelId, TxValidationCode};
    use fabric_primitives::transaction::{
        Envelope, EnvelopeContent, Proposal, ProposalPayload, SignedProposal, Transaction,
    };
    use fabric_primitives::wire::Wire;

    /// Test fixture: two orgs, a genesis block, and a peer per org.
    pub(crate) struct Fixture {
        pub(crate) ca1: CertificateAuthority,
        pub(crate) ca2: CertificateAuthority,
        pub(crate) genesis: Block,
        pub(crate) channel: ChannelId,
    }

    pub(crate) fn fixture() -> Fixture {
        let ca1 = CertificateAuthority::new("ca.org1", "Org1MSP", b"f-s1");
        let ca2 = CertificateAuthority::new("ca.org2", "Org2MSP", b"f-s2");
        let channel = ChannelId::new("ch");
        let config = ChannelConfig {
            channel: channel.clone(),
            sequence: 0,
            orgs: vec![
                OrgConfig {
                    msp_id: "Org1MSP".into(),
                    root_cert: ca1.root_cert().to_wire(),
                },
                OrgConfig {
                    msp_id: "Org2MSP".into(),
                    root_cert: ca2.root_cert().to_wire(),
                },
            ],
            orderer: OrdererConfig {
                consensus: ConsensusType::Solo,
                addresses: vec!["osn0".into()],
                batch: BatchConfig::default(),
            },
            admin_policy: "MAJORITY(admins)".into(),
            writer_policy: "ANY(members)".into(),
            reader_policy: "ANY(members)".into(),
        };
        let genesis_env = Envelope {
            content: EnvelopeContent::Config(ConfigUpdate {
                config,
                signatures: vec![],
            }),
            signature: vec![],
        };
        Fixture {
            ca1,
            ca2,
            genesis: Block::new(0, [0u8; 32], vec![genesis_env]),
            channel,
        }
    }

    pub(crate) fn make_peer(fx: &Fixture, ca: &CertificateAuthority, name: &str) -> Peer {
        let identity = fabric_msp::issue_identity(ca, name, Role::Peer, name.as_bytes());
        let peer = Peer::join(
            identity,
            &fx.genesis,
            Arc::new(MemBackend::new()),
            PeerConfig {
                vscc_parallelism: 2,
                runtime: fabric_chaincode::RuntimeConfig { exec_timeout: None, ..Default::default() },
                sync_writes: false,
                ..Default::default()
            },
        )
        .unwrap();
        peer.install_chaincode("kvcc", Arc::new(kv_chaincode));
        peer
    }

    /// A tiny KV chaincode: put(key, value) / get(key) / del(key).
    pub(crate) fn kv_chaincode(stub: &mut Stub<'_>) -> Result<Vec<u8>, String> {
        match stub.function() {
            "put" => {
                let key = stub.arg_string(0)?;
                let value = stub.args()[1].clone();
                stub.put_state(&key, value);
                Ok(vec![])
            }
            "get" => {
                let key = stub.arg_string(0)?;
                stub.get_state(&key)?
                    .ok_or_else(|| format!("{key} not found"))
            }
            "del" => {
                let key = stub.arg_string(0)?;
                stub.del_state(&key);
                Ok(vec![])
            }
            other => Err(format!("unknown function {other}")),
        }
    }

    pub(crate) fn signed_proposal(
        client: &SigningIdentity,
        channel: &ChannelId,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
        nonce: [u8; 32],
    ) -> SignedProposal {
        let proposal = Proposal {
            channel: channel.clone(),
            creator: client.serialized(),
            nonce,
            payload: ProposalPayload {
                chaincode: ChaincodeId::new(chaincode, "1.0"),
                function: function.into(),
                args,
            },
        };
        let signature = client.sign(&proposal.to_wire()).to_bytes().to_vec();
        SignedProposal {
            proposal,
            signature,
        }
    }

    /// Assembles a transaction envelope from proposal + responses.
    pub(crate) fn assemble(
        client: &SigningIdentity,
        signed: &SignedProposal,
        responses: &[fabric_primitives::transaction::ProposalResponse],
    ) -> Envelope {
        let tx = Transaction {
            channel: signed.proposal.channel.clone(),
            creator: signed.proposal.creator.clone(),
            nonce: signed.proposal.nonce,
            proposal_payload: signed.proposal.payload.clone(),
            response_payload: responses[0].payload.clone(),
            endorsements: responses.iter().map(|r| r.endorsement.clone()).collect(),
        };
        let content = EnvelopeContent::Transaction(tx);
        let signature = client
            .sign(&Envelope::signing_bytes(&content))
            .to_bytes()
            .to_vec();
        Envelope { content, signature }
    }

    /// Deploys `kvcc` with the given endorsement policy via LSCC.
    pub(crate) fn deploy_kvcc(
        fx: &Fixture,
        peers: &[&Peer],
        policy: &str,
        admin: &SigningIdentity,
    ) -> Envelope {
        let def = ChaincodeDefinition {
            name: "kvcc".into(),
            version: "1.0".into(),
            endorsement_policy: policy.into(),
        };
        let sp = signed_proposal(
            admin,
            &fx.channel,
            LSCC_NAMESPACE,
            "deploy",
            vec![def.to_wire()],
            [0xda; 32],
        );
        let responses: Vec<_> = peers
            .iter()
            .map(|p| p.process_proposal(&sp).unwrap())
            .collect();
        assemble(admin, &sp, &responses)
    }

    pub(crate) fn next_block(peer: &Peer, envelopes: Vec<Envelope>) -> Block {
        let prev = peer.get_block(peer.height() - 1).unwrap().unwrap().hash();
        Block::new(peer.height(), prev, envelopes)
    }

    #[test]
    fn full_endorse_order_validate_flow() {
        let fx = fixture();
        let peer1 = make_peer(&fx, &fx.ca1, "peer0.org1");
        let peer2 = make_peer(&fx, &fx.ca2, "peer0.org2");
        let admin = fabric_msp::issue_identity(&fx.ca1, "admin1", Role::Admin, b"a1");
        let client = fabric_msp::issue_identity(&fx.ca1, "client1", Role::Client, b"c1");

        // Deploy kvcc requiring both orgs to endorse.
        let deploy = deploy_kvcc(&fx, &[&peer1, &peer2], "AND(Org1MSP, Org2MSP)", &admin);
        let block1 = next_block(&peer1, vec![deploy]);
        let (flags, _) = peer1.commit_block(&block1).unwrap();
        assert_eq!(flags, vec![TxValidationCode::Valid]);
        peer2.commit_block(&block1).unwrap();

        // Invoke: put k=v, endorsed by both peers.
        let sp = signed_proposal(
            &client,
            &fx.channel,
            "kvcc",
            "put",
            vec![b"k".to_vec(), b"v".to_vec()],
            [1; 32],
        );
        let r1 = peer1.process_proposal(&sp).unwrap();
        let r2 = peer2.process_proposal(&sp).unwrap();
        // Identical results across endorsers (paper Sec. 3.2).
        assert_eq!(r1.payload, r2.payload);
        let env = assemble(&client, &sp, &[r1, r2]);
        let block2 = next_block(&peer1, vec![env]);
        let (flags, timing) = peer1.commit_block(&block2).unwrap();
        assert_eq!(flags, vec![TxValidationCode::Valid]);
        assert!(timing.total().as_nanos() > 0);
        peer2.commit_block(&block2).unwrap();

        // State visible on both peers.
        assert_eq!(peer1.get_state("kvcc", "k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(peer2.get_state("kvcc", "k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn under_endorsed_transaction_invalidated() {
        let fx = fixture();
        let peer1 = make_peer(&fx, &fx.ca1, "peer0.org1");
        let peer2 = make_peer(&fx, &fx.ca2, "peer0.org2");
        let admin = fabric_msp::issue_identity(&fx.ca1, "admin1", Role::Admin, b"a1");
        let client = fabric_msp::issue_identity(&fx.ca1, "client1", Role::Client, b"c1");

        let deploy = deploy_kvcc(&fx, &[&peer1, &peer2], "AND(Org1MSP, Org2MSP)", &admin);
        let block1 = next_block(&peer1, vec![deploy]);
        peer1.commit_block(&block1).unwrap();

        // Only one endorsement, but the policy demands both orgs.
        let sp = signed_proposal(
            &client,
            &fx.channel,
            "kvcc",
            "put",
            vec![b"k".to_vec(), b"v".to_vec()],
            [2; 32],
        );
        let r1 = peer1.process_proposal(&sp).unwrap();
        let env = assemble(&client, &sp, &[r1]);
        let block2 = next_block(&peer1, vec![env]);
        let (flags, _) = peer1.commit_block(&block2).unwrap();
        assert_eq!(flags, vec![TxValidationCode::EndorsementPolicyFailure]);
        // Its writes were disregarded...
        assert_eq!(peer1.get_state("kvcc", "k").unwrap(), None);
        // ...but the tx is on the ledger for audit.
        let tx_id = sp.proposal.tx_id();
        let (_, _, flag) = peer1.get_transaction(&tx_id).unwrap().unwrap();
        assert_eq!(flag, TxValidationCode::EndorsementPolicyFailure);
    }

    #[test]
    fn undeployed_chaincode_transaction_invalid() {
        let fx = fixture();
        let peer1 = make_peer(&fx, &fx.ca1, "peer0.org1");
        let client = fabric_msp::issue_identity(&fx.ca1, "client1", Role::Client, b"c1");
        // Endorse against the chaincode binary without an LSCC definition.
        let sp = signed_proposal(
            &client,
            &fx.channel,
            "kvcc",
            "put",
            vec![b"k".to_vec(), b"v".to_vec()],
            [3; 32],
        );
        let r1 = peer1.process_proposal(&sp).unwrap();
        let env = assemble(&client, &sp, &[r1]);
        let block = next_block(&peer1, vec![env]);
        let (flags, _) = peer1.commit_block(&block).unwrap();
        assert_eq!(flags, vec![TxValidationCode::BadPayload]);
    }

    #[test]
    fn unknown_client_cannot_endorse() {
        let fx = fixture();
        let peer1 = make_peer(&fx, &fx.ca1, "peer0.org1");
        let rogue_ca = CertificateAuthority::new("ca.rogue", "RogueMSP", b"rogue");
        let rogue = fabric_msp::issue_identity(&rogue_ca, "evil", Role::Client, b"e");
        let sp = signed_proposal(&rogue, &fx.channel, "kvcc", "get", vec![b"k".to_vec()], [4; 32]);
        assert!(matches!(
            peer1.process_proposal(&sp),
            Err(PeerError::Identity(_))
        ));
    }

    #[test]
    fn tampered_proposal_signature_rejected() {
        let fx = fixture();
        let peer1 = make_peer(&fx, &fx.ca1, "peer0.org1");
        let client = fabric_msp::issue_identity(&fx.ca1, "client1", Role::Client, b"c1");
        let mut sp =
            signed_proposal(&client, &fx.channel, "kvcc", "get", vec![b"k".to_vec()], [5; 32]);
        sp.signature[3] ^= 1;
        assert!(matches!(
            peer1.process_proposal(&sp),
            Err(PeerError::Identity(_))
        ));
    }

    #[test]
    fn block_with_bad_data_hash_rejected() {
        let fx = fixture();
        let peer1 = make_peer(&fx, &fx.ca1, "peer0.org1");
        let mut block = next_block(&peer1, vec![]);
        block.header.data_hash = [7u8; 32];
        assert!(matches!(
            peer1.commit_block(&block),
            Err(PeerError::BadBlock(_))
        ));
    }

    #[test]
    fn out_of_sequence_block_rejected() {
        let fx = fixture();
        let peer1 = make_peer(&fx, &fx.ca1, "peer0.org1");
        let block = Block::new(5, [0u8; 32], vec![]);
        assert!(matches!(
            peer1.commit_block(&block),
            Err(PeerError::BadBlock(_))
        ));
    }

    #[test]
    fn config_block_updates_channel_view() {
        let fx = fixture();
        let peer1 = make_peer(&fx, &fx.ca1, "peer0.org1");
        let admin1 = fabric_msp::issue_identity(&fx.ca1, "admin1", Role::Admin, b"a1");
        let admin2 = fabric_msp::issue_identity(&fx.ca2, "admin2", Role::Admin, b"a2");
        let mut new_config = peer1.channel_config();
        new_config.sequence = 1;
        new_config.orderer.batch.max_message_count = 42;
        let bytes = new_config.to_wire();
        let update = ConfigUpdate {
            config: new_config,
            signatures: vec![
                fabric_primitives::config::ConfigSignature {
                    signer: admin1.serialized(),
                    signature: admin1.sign(&bytes).to_bytes().to_vec(),
                },
                fabric_primitives::config::ConfigSignature {
                    signer: admin2.serialized(),
                    signature: admin2.sign(&bytes).to_bytes().to_vec(),
                },
            ],
        };
        let env = Envelope {
            content: EnvelopeContent::Config(update),
            signature: vec![],
        };
        let block = next_block(&peer1, vec![env]);
        let (flags, _) = peer1.commit_block(&block).unwrap();
        assert_eq!(flags, vec![TxValidationCode::Valid]);
        assert_eq!(peer1.channel_config().sequence, 1);
        assert_eq!(peer1.channel_config().orderer.batch.max_message_count, 42);
    }

    #[test]
    fn config_block_without_admin_quorum_invalid() {
        let fx = fixture();
        let peer1 = make_peer(&fx, &fx.ca1, "peer0.org1");
        let admin1 = fabric_msp::issue_identity(&fx.ca1, "admin1", Role::Admin, b"a1");
        let mut new_config = peer1.channel_config();
        new_config.sequence = 1;
        let bytes = new_config.to_wire();
        let update = ConfigUpdate {
            config: new_config,
            signatures: vec![fabric_primitives::config::ConfigSignature {
                signer: admin1.serialized(),
                signature: admin1.sign(&bytes).to_bytes().to_vec(),
            }],
        };
        let env = Envelope {
            content: EnvelopeContent::Config(update),
            signature: vec![],
        };
        let block = next_block(&peer1, vec![env]);
        let (flags, _) = peer1.commit_block(&block).unwrap();
        assert_eq!(flags, vec![TxValidationCode::InvalidConfig]);
        assert_eq!(peer1.channel_config().sequence, 0, "view unchanged");
    }

    #[test]
    fn crash_recovery_preserves_state() {
        let fx = fixture();
        let backend = Arc::new(MemBackend::new());
        let identity =
            fabric_msp::issue_identity(&fx.ca1, "peer0.org1", Role::Peer, b"peer0.org1");
        let admin = fabric_msp::issue_identity(&fx.ca1, "admin1", Role::Admin, b"a1");
        let client = fabric_msp::issue_identity(&fx.ca1, "client1", Role::Client, b"c1");
        let tx_id;
        {
            let peer = Peer::join(
                identity.clone(),
                &fx.genesis,
                backend.clone(),
                PeerConfig {
                    vscc_parallelism: 1,
                    runtime: fabric_chaincode::RuntimeConfig { exec_timeout: None, ..Default::default() },
                    sync_writes: false,
                    ..Default::default()
                },
            )
            .unwrap();
            peer.install_chaincode("kvcc", Arc::new(kv_chaincode));
            let deploy = deploy_kvcc(&fx, &[&peer], "Org1MSP", &admin);
            let b1 = next_block(&peer, vec![deploy]);
            peer.commit_block(&b1).unwrap();
            let sp = signed_proposal(
                &client,
                &fx.channel,
                "kvcc",
                "put",
                vec![b"persist".to_vec(), b"yes".to_vec()],
                [9; 32],
            );
            tx_id = sp.proposal.tx_id();
            let r = peer.process_proposal(&sp).unwrap();
            let env = assemble(&client, &sp, &[r]);
            let b2 = next_block(&peer, vec![env]);
            peer.commit_block(&b2).unwrap();
        }
        // "Restart" the peer on the same backend.
        let peer = Peer::join(identity, &fx.genesis, backend, PeerConfig::default()).unwrap();
        assert_eq!(peer.height(), 3);
        assert_eq!(
            peer.get_state("kvcc", "persist").unwrap(),
            Some(b"yes".to_vec())
        );
        let (_, _, flag) = peer.get_transaction(&tx_id).unwrap().unwrap();
        assert_eq!(flag, TxValidationCode::Valid);
    }

    #[test]
    fn snapshot_join_matches_replayed_peer() {
        let fx = fixture();
        let peer1 = make_peer(&fx, &fx.ca1, "peer0.org1");
        let admin = fabric_msp::issue_identity(&fx.ca1, "admin1", Role::Admin, b"a1");
        let client = fabric_msp::issue_identity(&fx.ca1, "client1", Role::Client, b"c1");

        let deploy = deploy_kvcc(&fx, &[&peer1], "Org1MSP", &admin);
        let b1 = next_block(&peer1, vec![deploy]);
        peer1.commit_block(&b1).unwrap();
        let mut blocks = vec![b1];
        for i in 0..4u8 {
            let sp = signed_proposal(
                &client,
                &fx.channel,
                "kvcc",
                "put",
                vec![vec![b'k', i], vec![b'v', i]],
                [i + 20; 32],
            );
            let r = peer1.process_proposal(&sp).unwrap();
            let block = next_block(&peer1, vec![assemble(&client, &sp, &[r])]);
            peer1.commit_block(&block).unwrap();
            blocks.push(block);
        }
        assert_eq!(peer1.height(), 6);

        // Snapshot at height 4, then two more blocks exist above it.
        let snap_height = 4;
        let snapshot = {
            let fresh = make_peer(&fx, &fx.ca1, "peer1.org1");
            for b in &blocks[..(snap_height - 1) as usize] {
                fresh.commit_block(b).unwrap();
            }
            assert_eq!(fresh.height(), snap_height);
            fresh
                .state_snapshot(&fabric_statesync::SnapshotConfig::default())
                .unwrap()
        };
        let entries =
            fabric_statesync::decode_entries(&snapshot.manifest.manifest, &snapshot.segments)
                .unwrap();

        // Join a new peer from the snapshot and replay only the tail.
        let joiner = Peer::join_from_snapshot(
            fabric_msp::issue_identity(&fx.ca1, "peer2.org1", Role::Peer, b"peer2.org1"),
            &fx.genesis,
            &snapshot.manifest,
            &entries,
            Arc::new(MemBackend::new()),
            PeerConfig {
                vscc_parallelism: 1,
                runtime: fabric_chaincode::RuntimeConfig { exec_timeout: None, ..Default::default() },
                sync_writes: false,
                ..Default::default()
            },
        )
        .unwrap();
        joiner.install_chaincode("kvcc", Arc::new(kv_chaincode));
        assert_eq!(joiner.height(), snap_height);
        for b in &blocks[(snap_height - 1) as usize..] {
            joiner.commit_block(b).unwrap();
        }
        assert_eq!(joiner.height(), peer1.height());
        assert_eq!(joiner.ledger().last_hash(), peer1.ledger().last_hash());
        for i in 0..4u8 {
            let key = String::from_utf8(vec![b'k', i]).unwrap();
            assert_eq!(
                joiner.get_state("kvcc", &key).unwrap(),
                peer1.get_state("kvcc", &key).unwrap()
            );
        }
        // Byte-identical world state (incl. version metadata and history).
        assert_eq!(
            joiner.ledger().state_entries(),
            peer1.ledger().state_entries()
        );
    }

    #[test]
    fn snapshot_from_rogue_signer_rejected_on_join() {
        let fx = fixture();
        let peer1 = make_peer(&fx, &fx.ca1, "peer0.org1");
        let admin = fabric_msp::issue_identity(&fx.ca1, "admin1", Role::Admin, b"a1");
        let deploy = deploy_kvcc(&fx, &[&peer1], "Org1MSP", &admin);
        let b1 = next_block(&peer1, vec![deploy]);
        peer1.commit_block(&b1).unwrap();
        let snapshot = peer1
            .state_snapshot(&fabric_statesync::SnapshotConfig::default())
            .unwrap();
        let entries =
            fabric_statesync::decode_entries(&snapshot.manifest.manifest, &snapshot.segments)
                .unwrap();
        // Re-sign the manifest under a CA outside the channel federation.
        let rogue_ca = CertificateAuthority::new("ca.rogue", "RogueMSP", b"rogue");
        let rogue = fabric_msp::issue_identity(&rogue_ca, "evil", Role::Peer, b"e");
        let forged =
            fabric_statesync::SignedManifest::sign(snapshot.manifest.manifest.clone(), &rogue);
        let result = Peer::join_from_snapshot(
            fabric_msp::issue_identity(&fx.ca1, "peer3.org1", Role::Peer, b"peer3.org1"),
            &fx.genesis,
            &forged,
            &entries,
            Arc::new(MemBackend::new()),
            PeerConfig::default(),
        );
        assert!(matches!(result, Err(PeerError::Snapshot(_))));
    }

    #[test]
    fn vscc_parallelism_agrees_with_sequential() {
        let fx = fixture();
        let peer_par = make_peer(&fx, &fx.ca1, "peer-par");
        let peer_seq = {
            let identity =
                fabric_msp::issue_identity(&fx.ca1, "peer-seq", Role::Peer, b"peer-seq");
            let p = Peer::join(
                identity,
                &fx.genesis,
                Arc::new(MemBackend::new()),
                PeerConfig {
                    vscc_parallelism: 1,
                    runtime: fabric_chaincode::RuntimeConfig { exec_timeout: None, ..Default::default() },
                    sync_writes: false,
                    ..Default::default()
                },
            )
            .unwrap();
            p.install_chaincode("kvcc", Arc::new(kv_chaincode));
            p
        };
        let admin = fabric_msp::issue_identity(&fx.ca1, "admin1", Role::Admin, b"a1");
        let client = fabric_msp::issue_identity(&fx.ca1, "client1", Role::Client, b"c1");
        let deploy = deploy_kvcc(&fx, &[&peer_par], "Org1MSP", &admin);
        let b1 = next_block(&peer_par, vec![deploy]);
        peer_par.commit_block(&b1).unwrap();
        peer_seq.commit_block(&b1).unwrap();

        // A mixed block: several valid txs and one with no endorsement.
        let mut envelopes = Vec::new();
        for i in 0..5u8 {
            let sp = signed_proposal(
                &client,
                &fx.channel,
                "kvcc",
                "put",
                vec![vec![b'k', i], vec![b'v', i]],
                [i + 10; 32],
            );
            let r = peer_par.process_proposal(&sp).unwrap();
            let mut env = assemble(&client, &sp, &[r]);
            if i == 3 {
                // Strip endorsements from one tx and re-sign.
                if let EnvelopeContent::Transaction(tx) = &mut env.content {
                    tx.endorsements.clear();
                }
                let content = env.content.clone();
                env.signature = client
                    .sign(&Envelope::signing_bytes(&content))
                    .to_bytes()
                    .to_vec();
            }
            envelopes.push(env);
        }
        let height = peer_par.height();
        let prev = peer_par.get_block(height - 1).unwrap().unwrap().hash();
        let block = Block::new(height, prev, envelopes);
        let (flags_par, _) = peer_par.commit_block(&block).unwrap();
        let (flags_seq, _) = peer_seq.commit_block(&block).unwrap();
        assert_eq!(flags_par, flags_seq);
        assert_eq!(flags_par[3], TxValidationCode::EndorsementPolicyFailure);
        assert_eq!(flags_par.iter().filter(|f| f.is_valid()).count(), 4);
    }
}
