//! Multi-channel deliver intake: routes the gossip/deliver block stream
//! of many channels into per-channel validation pipelines that share one
//! global VSCC worker pool.
//!
//! The gossip layer emits `DeliverBlock { channel, block_num, payload }`
//! outputs — re-delivered at-least-once (a pull and a push may both
//! surface the same block) and, across providers, not necessarily in
//! order. [`DeliverMux`] owns that boundary: it decodes the payload,
//! drops duplicates, parks a bounded window of out-of-order arrivals for
//! in-order re-admission, and feeds each channel's [`PipelineHandle`] in
//! strict order, exactly as the paper's one-blockchain-per-channel model
//! prescribes (Sec. 3.1).
//!
//! # Credit-based backpressure
//!
//! Each channel holds a *credit window*: at most `deliver_credits` blocks
//! may be in flight (submitted to the pipeline but not yet committed).
//! When the window is exhausted the mux *parks* further deliveries
//! instead of blocking the deliver thread on the pipeline's bounded
//! intake — a saturated channel therefore never stalls deliveries for
//! its siblings, and [`DeliverMux::credits`] exposes the remaining
//! headroom so the gossip layer can advertise it on the membership path
//! (providers prefer channels with credits; see `fabric-gossip`).
//! Credits are self-refreshing: headroom is recomputed from the
//! pipeline's committed height, so every commit implicitly returns one
//! credit and a [`DeliverMux::pump`] (or the next delivery) submits the
//! parked successor.

use std::collections::{BTreeMap, HashMap};

use crossbeam::channel::Receiver;
use parking_lot::Mutex;

use fabric_gossip::{GossipNode, PeerId as GossipPeerId};
use fabric_primitives::block::Block;
use fabric_primitives::ids::ChannelId;
use fabric_primitives::wire::Wire;

use crate::pipeline::{CommitEvent, PipelineManager, PipelineOptions, PipelineStats, SchedulerPolicy};
use crate::{Peer, PeerError, PipelineHandle};

/// What [`DeliverMux::deliver`] did with one delivered block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Deliver {
    /// Submitted to the channel's pipeline (possibly along with parked
    /// successors it unblocked).
    Submitted,
    /// Parked: either out of order (a gap below it is still missing) or
    /// credit-stalled (the channel's in-flight window is full). It will
    /// be submitted in order by a later delivery, [`DeliverMux::pump`],
    /// or [`DeliverMux::wait_committed`].
    Parked,
    /// Already submitted, committed, or parked — gossip re-delivery.
    Duplicate,
    /// Refused: the block is beyond the channel's parking window
    /// (`next + park_window`). The provider should back off and re-offer
    /// once the channel advertises credits again.
    Saturated,
}

/// Per-channel intake counters (fairness/backpressure observability).
#[derive(Clone, Copy, Debug, Default)]
pub struct MuxGauges {
    /// Deliveries of the next-expected block that had to park because the
    /// credit window was exhausted.
    pub credit_stalls: u64,
    /// Deepest the parking buffer ever got.
    pub parked_peak: usize,
    /// Re-deliveries dropped (below `next`, or already parked).
    pub duplicates: u64,
    /// Deliveries refused beyond the parking window.
    pub saturated: u64,
}

struct MuxEntry {
    handle: PipelineHandle,
    /// Next block number this channel's pipeline expects.
    next: u64,
    /// Credit window: max blocks in flight (submitted − committed).
    window: u64,
    /// Parking window: how far above `next` deliveries are held.
    park: u64,
    /// Out-of-order and credit-stalled blocks awaiting in-order submit,
    /// keyed by block number; bounded by `park`.
    parked: BTreeMap<u64, Block>,
    gauges: MuxGauges,
}

impl MuxEntry {
    /// Remaining credits: how many more blocks may be submitted before
    /// the in-flight window is full.
    fn credits(&self) -> u64 {
        let inflight = self.next.saturating_sub(self.handle.committed_height());
        self.window.saturating_sub(inflight)
    }

    /// Submits parked blocks in order while credits last. Returns how
    /// many were submitted.
    fn pump(&mut self) -> Result<usize, PeerError> {
        let mut submitted = 0;
        while self.credits() > 0 {
            let Some(block) = self.parked.remove(&self.next) else {
                break;
            };
            self.handle.submit(block)?;
            self.next += 1;
            submitted += 1;
        }
        Ok(submitted)
    }
}

/// Per-channel pipelines behind one shared VSCC worker pool, keyed by
/// channel id, fed from serialized deliver/gossip payloads.
pub struct DeliverMux {
    pool: PipelineManager,
    channels: Mutex<HashMap<ChannelId, MuxEntry>>,
}

impl DeliverMux {
    /// Creates a mux whose channels share a pool of `vscc_workers`
    /// persistent workers under the default cross-channel scheduler
    /// (weighted DRR).
    pub fn new(vscc_workers: usize) -> Self {
        Self::with_policy(vscc_workers, SchedulerPolicy::default())
    }

    /// Creates a mux with an explicit pool scheduling policy
    /// ([`SchedulerPolicy::Fifo`] for the pre-scheduler baseline).
    pub fn with_policy(vscc_workers: usize, policy: SchedulerPolicy) -> Self {
        DeliverMux {
            pool: PipelineManager::with_policy(vscc_workers, policy),
            channels: Mutex::new(HashMap::new()),
        }
    }

    /// Attaches `peer` (one channel's ledger) under `channel`. The
    /// pipeline resumes at the peer's current height, so re-delivered
    /// older blocks are dropped rather than re-submitted.
    ///
    /// `opts.deliver_credits` is clamped to `1..=intake_capacity` — a
    /// submit under credits must never block the deliver thread on a
    /// full pipeline intake (it holds the mux lock, shared by every
    /// channel).
    pub fn attach(
        &self,
        channel: ChannelId,
        peer: &Peer,
        opts: PipelineOptions,
    ) -> Result<(), PeerError> {
        let mut channels = self.channels.lock();
        if channels.contains_key(&channel) {
            return Err(PeerError::BadBlock(format!(
                "channel {channel:?} already attached"
            )));
        }
        let next = peer.height();
        let handle = peer.pipeline_shared(&self.pool, opts);
        channels.insert(
            channel,
            MuxEntry {
                handle,
                next,
                window: opts.deliver_credits.clamp(1, opts.intake_capacity.max(1)) as u64,
                park: opts.park_window.max(1) as u64,
                parked: BTreeMap::new(),
                gauges: MuxGauges::default(),
            },
        );
        Ok(())
    }

    /// Routes one delivered block; never blocks on a saturated pipeline.
    ///
    /// Errors are reserved for malformed input (unknown channel,
    /// undecodable payload, payload/number mismatch) and stopped
    /// pipelines; flow-control outcomes are the [`Deliver`] variants.
    pub fn deliver(
        &self,
        channel: &ChannelId,
        block_num: u64,
        payload: &[u8],
    ) -> Result<Deliver, PeerError> {
        let mut channels = self.channels.lock();
        let entry = channels
            .get_mut(channel)
            .ok_or_else(|| PeerError::BadBlock(format!("channel {channel:?} not attached")))?;
        if block_num < entry.next || entry.parked.contains_key(&block_num) {
            entry.gauges.duplicates += 1;
            return Ok(Deliver::Duplicate);
        }
        if block_num >= entry.next + entry.park {
            entry.gauges.saturated += 1;
            return Ok(Deliver::Saturated);
        }
        let block = Block::from_wire(payload)
            .map_err(|err| PeerError::BadBlock(format!("undecodable delivered block: {err:?}")))?;
        if block.header.number != block_num {
            return Err(PeerError::BadBlock(format!(
                "delivered payload is block {}, labelled {block_num}",
                block.header.number
            )));
        }
        if block_num == entry.next && entry.credits() == 0 {
            entry.gauges.credit_stalls += 1;
        }
        entry.parked.insert(block_num, block);
        entry.gauges.parked_peak = entry.gauges.parked_peak.max(entry.parked.len());
        entry.pump()?;
        Ok(if block_num < entry.next {
            Deliver::Submitted
        } else {
            Deliver::Parked
        })
    }

    /// Routes a gossip `DeliverBlock` output and reports the intake
    /// verdict back to the gossip node, closing its reputation loop:
    /// an undecodable payload or a payload/number mismatch charges the
    /// supplying peer (`GossipNode::report_verdict(from, false)` — enough
    /// repeats quarantine it), while an accepted block credits it.
    ///
    /// Only *provider-attributable* failures are scored: an unattached
    /// channel is this node's own configuration problem and charges no
    /// one. Deeper verification failures (tampered content caught by the
    /// async pipeline's integrity/VSCC stages) surface later; drivers
    /// report those directly with `report_verdict` when the pipeline
    /// errors.
    pub fn deliver_from_gossip(
        &self,
        gossip: &mut GossipNode,
        channel: &ChannelId,
        block_num: u64,
        payload: &[u8],
        from: Option<GossipPeerId>,
    ) -> Result<Deliver, PeerError> {
        if !self.channels.lock().contains_key(channel) {
            return Err(PeerError::BadBlock(format!(
                "channel {channel:?} not attached"
            )));
        }
        let result = self.deliver(channel, block_num, payload);
        if let Some(peer) = from {
            gossip.report_verdict(peer, result.is_ok());
        }
        result
    }

    /// Re-checks one channel's credits and submits any parked blocks they
    /// now cover (commits since the last delivery return credits).
    /// Returns how many blocks were submitted.
    pub fn pump(&self, channel: &ChannelId) -> Result<usize, PeerError> {
        let mut channels = self.channels.lock();
        let entry = channels
            .get_mut(channel)
            .ok_or_else(|| PeerError::BadBlock(format!("channel {channel:?} not attached")))?;
        entry.pump()
    }

    /// One channel's remaining deliver credits (`None` if not attached):
    /// how many more blocks it can absorb right now. Zero means
    /// saturated — gossip advertises this so providers prefer channels
    /// with headroom.
    pub fn credits(&self, channel: &ChannelId) -> Option<u64> {
        self.channels.lock().get(channel).map(MuxEntry::credits)
    }

    /// One channel's intake counters (`None` if not attached).
    pub fn gauges(&self, channel: &ChannelId) -> Option<MuxGauges> {
        self.channels.lock().get(channel).map(|entry| entry.gauges)
    }

    /// A clonable receiver of one channel's commit events.
    pub fn events(&self, channel: &ChannelId) -> Option<Receiver<CommitEvent>> {
        self.channels
            .lock()
            .get(channel)
            .map(|entry| entry.handle.events())
    }

    /// One channel's committed height (0 if not attached).
    pub fn committed_height(&self, channel: &ChannelId) -> u64 {
        self.channels
            .lock()
            .get(channel)
            .map_or(0, |entry| entry.handle.committed_height())
    }

    /// Blocks until `channel` has committed up to `height`, pumping
    /// credit-stalled parked blocks as commits free the window.
    pub fn wait_committed(&self, channel: &ChannelId, height: u64) -> Result<(), PeerError> {
        // Don't hold the map lock while waiting: poll through a
        // short-lived borrow, pumping on each pass so parked blocks the
        // wait depends on keep flowing.
        loop {
            {
                let mut channels = self.channels.lock();
                let entry = channels.get_mut(channel).ok_or_else(|| {
                    PeerError::BadBlock(format!("channel {channel:?} not attached"))
                })?;
                entry.pump()?;
                if entry.handle.committed_height() >= height {
                    return Ok(());
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Closes every channel pipeline (graceful drain) and then the shared
    /// pool, returning per-channel statistics or the first error.
    ///
    /// Credit-stalled parked blocks are drained through the window first;
    /// gap-parked blocks (their predecessor never arrived) are dropped —
    /// they re-arrive through gossip after a restart.
    pub fn close(self) -> Result<HashMap<ChannelId, PipelineStats>, PeerError> {
        let channels = self.channels.into_inner();
        let mut stats = HashMap::with_capacity(channels.len());
        let mut first_err = None;
        for (channel, mut entry) in channels {
            // Drain the contiguous parked prefix, waiting for commits to
            // return credits; a pipeline error aborts the drain.
            let drained = loop {
                match entry.pump() {
                    Ok(_) => {}
                    Err(err) => break Err(err),
                }
                if !entry.parked.contains_key(&entry.next) {
                    break Ok(());
                }
                // One more credit frees once the pipeline commits past
                // `next − window`.
                let need = (entry.next + 1).saturating_sub(entry.window);
                if let Err(err) = entry.handle.wait_committed(need) {
                    break Err(err);
                }
            };
            match drained.and_then(|()| entry.handle.close()) {
                Ok(channel_stats) => {
                    stats.insert(channel, channel_stats);
                }
                Err(err) => {
                    if first_err.is_none() {
                        first_err = Some(err);
                    }
                }
            }
        }
        self.pool.close();
        match first_err {
            Some(err) => Err(err),
            None => Ok(stats),
        }
    }
}
